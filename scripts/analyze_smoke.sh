#!/usr/bin/env bash
# Analyze smoke: the leakage-observability pipeline end to end.
#
#  1. A leakage_timeline sweep with --series-out must emit the same
#     sweep JSON as one without it (the observer observes, it never
#     perturbs -- scripts/diff_sweep_json.py modulo wall_seconds and
#     the provenance timestamp).
#  2. `pracbench analyze --defense-matrix` over the recorded series
#     alone must reproduce, per defense, the scenario's own in-sim
#     verdicts AND the paper's defense-matrix goldens (the same table
#     defense_matrix_leakage pins): ABO/ACB leak channel-wide,
#     Graphene/PB-RFM leak same-bank, PARA/TB-RFM and no-defense
#     leak nothing.
#  3. record + replay with --series-out must produce a series the
#     analyzer accepts, with one record per replayed defense.
#
# Usage: scripts/analyze_smoke.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    results location (default: results/analyze_smoke)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results/analyze_smoke}"
PRACBENCH="${BUILD_DIR}/pracbench"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first" >&2
    exit 1
fi

rm -rf "${OUT_DIR}"
mkdir -p "${OUT_DIR}"

# CI-sized: the full 7-defense axis (the matrix is the point -- no
# --smoke, which would truncate it) with shortened bursts.
SWEEP=(leakage_timeline --jobs 2 --quiet --no-table
       --set window_ms=0.15 --set bursts=4)

echo "==> reference sweep (no series)"
"${PRACBENCH}" run "${SWEEP[@]}" --out "${OUT_DIR}/reference.json"

echo "==> sweep with --series-out, must not perturb the result"
"${PRACBENCH}" run "${SWEEP[@]}" \
    --series-out "${OUT_DIR}/timeline.jsonl" \
    --out "${OUT_DIR}/observed.json"

python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/reference.json" "${OUT_DIR}/observed.json"

echo "==> offline analysis of the recorded series"
"${PRACBENCH}" analyze "${OUT_DIR}/timeline.jsonl" \
    --defense-matrix --out "${OUT_DIR}/verdicts.json" --no-table

echo "==> analyzer verdicts vs in-sim verdicts vs paper goldens"
python3 - "${OUT_DIR}/observed.json" "${OUT_DIR}/verdicts.json" <<'EOF'
import json
import sys

sweep = json.load(open(sys.argv[1]))
analysis = json.load(open(sys.argv[2]))

# The paper's defense matrix (defense_matrix_leakage's goldens).
GOLDEN = {
    "none": "none",
    "abo-only": "any probe",
    "abo+acb-rfm": "any probe",
    "tprac": "none",
    "para": "none",
    "graphene": "same-bank probe",
    "pb-rfm": "same-bank probe",
}

in_sim = {row["mitigation"]: row["observable_to"]
          for row in sweep["summary"]}
offline = {row["mitigation"]: row["observable_to"]
           for row in analysis["summary"]}

failures = []
if set(offline) != set(GOLDEN):
    failures.append(f"defense set mismatch: {sorted(offline)}")
for defense, expected in GOLDEN.items():
    got_sim = in_sim.get(defense)
    got_offline = offline.get(defense)
    if got_sim != expected:
        failures.append(
            f"{defense}: in-sim verdict {got_sim!r}, golden {expected!r}")
    if got_offline != expected:
        failures.append(
            f"{defense}: offline verdict {got_offline!r}, "
            f"golden {expected!r}")
for failure in failures:
    print(f"FAIL: {failure}", file=sys.stderr)
if failures:
    sys.exit(1)
print(f"defense matrix reproduced offline for all "
      f"{len(GOLDEN)} defenses")
EOF

echo "==> record/replay with --series-out"
"${PRACBENCH}" record "${OUT_DIR}/traces" --workload h_rand_heavy \
    --set warmup=2000 --set measure=10000 \
    --series-out "${OUT_DIR}/record_series.jsonl" --quiet
"${PRACBENCH}" replay "${OUT_DIR}/traces/h_rand_heavy.trc" \
    --set mitigation=tprac,pb-rfm --quiet --no-table \
    --series-out "${OUT_DIR}/replay_series.jsonl" \
    --out "${OUT_DIR}/replay.json"

echo "==> analyzer accepts record + replay series"
"${PRACBENCH}" analyze "${OUT_DIR}/record_series.jsonl" \
    "${OUT_DIR}/replay_series.jsonl" \
    --out "${OUT_DIR}/replay_verdicts.json" --no-table
python3 - "${OUT_DIR}/replay_verdicts.json" <<'EOF'
import json
import sys

analysis = json.load(open(sys.argv[1]))
rows = analysis["rows"]
labels = [row["label"] for row in rows]
failures = []
if len(rows) < 3:
    failures.append(f"expected >=3 series records "
                    f"(1 record + 2 replays), got {len(rows)}")
if not any("tprac" in label for label in labels):
    failures.append(f"no tprac replay record in {labels}")
if not any("pb-rfm" in label for label in labels):
    failures.append(f"no pb-rfm replay record in {labels}")
if any(row["windows"] == 0 for row in rows):
    failures.append("a series record holds no windows")
for failure in failures:
    print(f"FAIL: {failure}", file=sys.stderr)
if failures:
    sys.exit(1)
print(f"record/replay series analyzed: {labels}")
EOF

echo "analyze smoke passed"
