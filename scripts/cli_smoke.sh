#!/usr/bin/env bash
# CLI contract smoke: the subcommand form and the deprecated flat-flag
# form of every migrated verb produce identical results, and unknown
# subcommands / flags / scenarios are rejected with exit 2 plus a
# "did you mean" hint instead of being silently ignored.
#
# Usage: scripts/cli_smoke.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    scratch space (default: results/cli_smoke)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results/cli_smoke}"
PRACBENCH="${BUILD_DIR}/pracbench"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first" >&2
    exit 1
fi

rm -rf "${OUT_DIR}"
mkdir -p "${OUT_DIR}"

# --- a command must FAIL with exit 2 and print the expected hint ---
expect_reject() {
    local needle="$1"
    shift
    local rc=0 output
    output="$("$@" 2>&1)" || rc=$?
    if [[ "${rc}" -ne 2 ]]; then
        echo "error: expected exit 2 from: $* (got ${rc})" >&2
        echo "${output}" >&2
        exit 1
    fi
    if [[ "${output}" != *"${needle}"* ]]; then
        echo "error: expected '${needle}' in output of: $*" >&2
        echo "${output}" >&2
        exit 1
    fi
    echo "    rejected as expected: $*"
}

echo "==> list: subcommand and flat flag print identical catalogs"
"${PRACBENCH}" list > "${OUT_DIR}/list_new.txt"
"${PRACBENCH}" --list > "${OUT_DIR}/list_old.txt" \
    2> "${OUT_DIR}/list_old.err"
cmp "${OUT_DIR}/list_new.txt" "${OUT_DIR}/list_old.txt"
grep -q "deprecated" "${OUT_DIR}/list_old.err"

echo "==> run: subcommand and flat flag sweep identically"
"${PRACBENCH}" run fig07_tmax_analysis --smoke --quiet --no-table \
    --out "${OUT_DIR}/run_new.json"
"${PRACBENCH}" --scenario fig07_tmax_analysis --smoke --quiet \
    --no-table --out "${OUT_DIR}/run_old.json" \
    2> "${OUT_DIR}/run_old.err"
python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/run_new.json" "${OUT_DIR}/run_old.json"
grep -q "deprecated" "${OUT_DIR}/run_old.err"

echo "==> record/replay: subcommand and flat flag round-trip"
"${PRACBENCH}" record "${OUT_DIR}/traces_new" --workload h_rand_heavy \
    --set warmup=2000 --set measure=10000 --quiet
"${PRACBENCH}" --record-trace "${OUT_DIR}/traces_old" \
    --workload h_rand_heavy --set warmup=2000 --set measure=10000 \
    --quiet 2> "${OUT_DIR}/record_old.err"
grep -q "deprecated" "${OUT_DIR}/record_old.err"
# Replay the SAME trace in both spellings: the emitted JSON embeds
# the trace path, so replaying two separate recordings would differ
# on that field alone.
"${PRACBENCH}" replay "${OUT_DIR}/traces_new/h_rand_heavy.trc" \
    --verify --quiet --no-table \
    --out "${OUT_DIR}/replay_new.json"
"${PRACBENCH}" --replay "${OUT_DIR}/traces_new/h_rand_heavy.trc" \
    --verify --quiet --no-table \
    --out "${OUT_DIR}/replay_old.json" 2> "${OUT_DIR}/replay_old.err"
python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/replay_new.json" "${OUT_DIR}/replay_old.json"
grep -q "deprecated" "${OUT_DIR}/replay_old.err"

echo "==> help exits 0 in both spellings"
"${PRACBENCH}" help > /dev/null
"${PRACBENCH}" --help > /dev/null

echo "==> typos are rejected with exit 2 and a hint"
expect_reject "did you mean 'merge'" "${PRACBENCH}" mrege
expect_reject "did you mean '--shard'" \
    "${PRACBENCH}" run fig07_tmax_analysis --shrad 0/2
expect_reject "did you mean 'fig07_tmax_analysis'" \
    "${PRACBENCH}" run fig07_tmax_analysiss --smoke
expect_reject "unknown" \
    "${PRACBENCH}" run fig07_tmax_analysis --frobnicate
expect_reject "unknown" "${PRACBENCH}" --scenario nope_not_real

echo "cli smoke passed"
