#!/usr/bin/env bash
# Run one scenario as an N-way sharded fleet on this host (N shard
# processes sharing a checkpoint directory -- a stand-in for N hosts
# sharing a filesystem), then fuse the shard journals with
# `pracbench merge` into the single-host-identical JSON/CSV.
#
# Usage: scripts/fleet_sweep.sh SCENARIO N [BUILD_DIR] [OUT_DIR]
#   SCENARIO   registered scenario name (see `pracbench list`)
#   N          shard count (one process per shard)
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    results + checkpoint location (default: results/fleet)
#
# Extra pracbench arguments pass through PRACBENCH_ARGS, e.g.
#   PRACBENCH_ARGS="--set measure=50000" scripts/fleet_sweep.sh \
#       defense_matrix_perf 4
# (axis overrides change the grid hash, so pass the same
# PRACBENCH_ARGS to every later resume of the same directory).
#
# Shards journal under OUT_DIR/ckpt and every shard runs with
# --resume, so rerunning this script after a crash continues instead
# of restarting.  To spread across real hosts, run on each host i:
#   pracbench run SCENARIO --checkpoint SHARED_DIR --shard i/N --resume
# and merge from any host once all shards finish -- or use
# `--steal --worker-id $(hostname)` instead of --shard when hosts
# are unreliable or unevenly sized.

set -euo pipefail

if [[ $# -lt 2 ]]; then
    echo "usage: $0 SCENARIO N [BUILD_DIR] [OUT_DIR]" >&2
    exit 1
fi
SCENARIO="$1"
COUNT="$2"
BUILD_DIR="${3:-build}"
OUT_DIR="${4:-results/fleet}"
PRACBENCH="${BUILD_DIR}/pracbench"
CKPT="${OUT_DIR}/ckpt"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first" >&2
    exit 1
fi
if ! [[ "${COUNT}" =~ ^[1-9][0-9]*$ ]]; then
    echo "error: N must be a positive integer, got '${COUNT}'" >&2
    exit 1
fi

mkdir -p "${OUT_DIR}"

echo "==> ${SCENARIO} across ${COUNT} shards -> ${CKPT}"
PIDS=()
for ((index = 0; index < COUNT; ++index)); do
    # shellcheck disable=SC2086  # PRACBENCH_ARGS is intentionally split
    "${PRACBENCH}" run "${SCENARIO}" --quiet --no-table \
        --checkpoint "${CKPT}" --shard "${index}/${COUNT}" --resume \
        ${PRACBENCH_ARGS:-} &
    PIDS+=($!)
done

FAILED=0
for pid in "${PIDS[@]}"; do
    wait "${pid}" || FAILED=1
done
if [[ "${FAILED}" -ne 0 ]]; then
    echo "error: a shard failed; fix and rerun (completed points" \
         "are journaled and will not be recomputed)" >&2
    exit 1
fi

echo "==> merging shard journals"
# shellcheck disable=SC2086
"${PRACBENCH}" merge "${CKPT}" --scenario "${SCENARIO}" --no-table \
    --out "${OUT_DIR}/${SCENARIO}.json" \
    --csv "${OUT_DIR}/${SCENARIO}.csv"
echo "done: ${OUT_DIR}/${SCENARIO}.json"
