#!/usr/bin/env bash
# Event-vs-lockstep scheduler perf smoke (CI gate).
#
# Runs the eventqueue_benchmark scenario at a reduced horizon and
# fails when the event scheduler's sweep speedup drops below the
# checked-in floor, when any sweep point's statistics diverge from
# lockstep, or when the same-defense replay stops being bit-identical
# to its recording.  The floor is deliberately far below the numbers
# in results/eventqueue_bench.json (shared CI runners are noisy); it
# exists to catch the scheduler regressing to lockstep-equivalent
# cost, not to pin the exact speedup.
#
# Also archives the scheduler-efficiency counters (ticks fired vs
# cycles jumped, nextWorkAt cache behaviour, queue occupancy) from a
# defense_matrix_perf smoke run next to OUT_JSON, so CI keeps a
# history of how much work the event scheduler actually skips.
#
# usage: perf_smoke.sh [BUILD_DIR [OUT_JSON]]
#   PERF_SMOKE_FLOOR    minimum sweep speedup   (default 2.0)
#   PERF_SMOKE_MEASURE  measured cycles per recording (default 60000)
set -euo pipefail

build=${1:-build}
out=${2:-$(mktemp -t perf_smoke.XXXXXX.json)}
floor=${PERF_SMOKE_FLOOR:-2.0}
measure=${PERF_SMOKE_MEASURE:-60000}
sched_out=${out%.json}_sched.json

"$build/pracbench" run eventqueue_benchmark --jobs 1 --quiet \
    --no-table --set "measure=$measure" --out "$out"

python3 - "$out" "$floor" <<'EOF'
import json
import sys

document = json.load(open(sys.argv[1]))
floor = float(sys.argv[2])
summary = document["summary"][0]
speedup = summary["speedup"]
print(f"perf_smoke: sweep speedup {speedup:.2f}x "
      f"(lockstep {summary['sweep_lockstep_seconds']:.2f}s, "
      f"event {summary['sweep_event_seconds']:.2f}s), "
      f"floor {floor:.2f}x")

failures = []
if summary["non_identical_points"] != 0:
    failures.append(f"{summary['non_identical_points']} sweep "
                    f"points diverged from lockstep statistics")
if not summary["all_bit_identical"]:
    failures.append("same-defense replay is not bit-identical "
                    "to its recording")
if speedup < floor:
    failures.append(f"speedup {speedup:.2f}x is below the "
                    f"floor {floor:.2f}x")
for failure in failures:
    print(f"perf_smoke: FAIL: {failure}")
sys.exit(1 if failures else 0)
EOF

"$build/pracbench" run defense_matrix_perf --smoke --jobs 1 --quiet \
    --no-table --out "$sched_out"

python3 - "$sched_out" <<'EOF'
import json
import sys

document = json.load(open(sys.argv[1]))
rows = document["rows"]
failures = []
for row in rows:
    ticks = row["ticks_fired"]
    jumped = row["cycles_jumped"]
    label = f"{row['mitigation']}/{row['entry']}"
    print(f"perf_smoke: sched {label}: {ticks} ticks fired, "
          f"{jumped} cycles jumped, "
          f"{row['nextwork_cache_hits']} nextWorkAt cache hits, "
          f"{row['nextwork_rebuilds']} rebuilds")
    if ticks <= 0:
        failures.append(f"{label}: no ticks fired")
    if jumped <= 0:
        failures.append(f"{label}: event scheduler jumped no cycles "
                        "(lockstep-equivalent cost)")
    if "queue_occupancy" not in row:
        failures.append(f"{label}: missing queue_occupancy histogram")
for failure in failures:
    print(f"perf_smoke: FAIL: {failure}")
sys.exit(1 if failures else 0)
EOF
