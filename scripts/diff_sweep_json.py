#!/usr/bin/env python3
"""Diff two pracbench sweep JSON files modulo nondeterminism.

A checkpointed-and-resumed sweep must emit exactly what an
uninterrupted run emits, except for the fields that track wall-clock
time: the top-level "wall_seconds" and the provenance "generated_at"
timestamp.  Everything else -- rows, summary, grid, git revision,
grid hash, jobs, point count -- must match key for key.

Usage: diff_sweep_json.py [--ignore KEY]... A.json B.json

"wall_seconds" and "generated_at" are always ignored; each --ignore
KEY (repeatable) additionally strips that key wherever it appears in
either document, at any nesting depth -- for comparisons across runs
that legitimately differ in a provenance-ish field (say, --ignore
jobs for sweeps run at different widths, or --ignore trace for
replay outputs naming different trace paths).

Exits 0 when equivalent, 1 (with a field-level report) when not, and
2 when an input is missing, unreadable, or not valid JSON.
"""

import json
import sys

ALWAYS_IGNORED = ("wall_seconds", "generated_at")


def fail(message):
    """Unusable input: report clearly and exit 2 (vs 1 = mismatch)."""
    print(f"diff_sweep_json: error: {message}", file=sys.stderr)
    sys.exit(2)


def strip(document, ignored):
    """Drop every ignored key at any depth (dicts only; lists recurse)."""
    if isinstance(document, dict):
        return {key: strip(value, ignored)
                for key, value in document.items()
                if key not in ignored}
    if isinstance(document, list):
        return [strip(item, ignored) for item in document]
    return document


def canonical(path, ignored):
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as error:
        fail(f"cannot read {path}: {error.strerror or error}")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON (line {error.lineno}, "
             f"column {error.colno}: {error.msg}); was the sweep "
             f"interrupted mid-write?")
    if not isinstance(document, dict):
        fail(f"{path} is not a sweep document (expected a JSON "
             f"object, got {type(document).__name__})")
    return strip(document, ignored)


def report(a, b, path="$"):
    """Print the first few places two documents diverge."""
    if type(a) is not type(b):
        print(f"  {path}: {type(a).__name__} vs {type(b).__name__}")
        return 1
    if isinstance(a, dict):
        shown = 0
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                shown += report(a.get(key), b.get(key),
                                f"{path}.{key}")
                if shown >= 5:
                    break
        return shown
    if isinstance(a, list):
        if len(a) != len(b):
            print(f"  {path}: {len(a)} vs {len(b)} elements")
            return 1
        shown = 0
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                shown += report(x, y, f"{path}[{i}]")
                if shown >= 5:
                    break
        return shown
    print(f"  {path}: {a!r} vs {b!r}")
    return 1


def parse_args(argv):
    ignored = set(ALWAYS_IGNORED)
    paths = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--ignore":
            if i + 1 >= len(argv):
                fail("--ignore needs a KEY")
            ignored.add(argv[i + 1])
            i += 2
        elif arg.startswith("--ignore="):
            ignored.add(arg[len("--ignore="):])
            i += 1
        elif arg.startswith("-") and arg not in ("-",):
            fail(f"unknown option {arg}")
        else:
            paths.append(arg)
            i += 1
    if len(paths) != 2:
        sys.exit(__doc__)
    return paths, ignored


def main():
    paths, ignored = parse_args(sys.argv[1:])
    a, b = (canonical(path, ignored) for path in paths)
    if a == b:
        print(f"equivalent: {paths[0]} == {paths[1]} "
              f"(modulo {', '.join(sorted(ignored))})")
        return 0
    print(f"MISMATCH between {paths[0]} and {paths[1]}:")
    report(a, b)
    return 1


if __name__ == "__main__":
    sys.exit(main())
