#!/usr/bin/env python3
"""Diff two pracbench sweep JSON files modulo nondeterminism.

A checkpointed-and-resumed sweep must emit exactly what an
uninterrupted run emits, except for the two fields that track
wall-clock time: the top-level "wall_seconds" and the provenance
"generated_at" timestamp.  Everything else -- rows, summary, grid,
git revision, grid hash, jobs, point count -- must match key for key.

Usage: diff_sweep_json.py A.json B.json
Exits 0 when equivalent, 1 (with a field-level report) when not, and
2 when an input is missing, unreadable, or not valid JSON.
"""

import json
import sys

STRIPPED_TOP_LEVEL = ("wall_seconds",)
STRIPPED_PROVENANCE = ("generated_at",)


def fail(message):
    """Unusable input: report clearly and exit 2 (vs 1 = mismatch)."""
    print(f"diff_sweep_json: error: {message}", file=sys.stderr)
    sys.exit(2)


def canonical(path):
    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as error:
        fail(f"cannot read {path}: {error.strerror or error}")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON (line {error.lineno}, "
             f"column {error.colno}: {error.msg}); was the sweep "
             f"interrupted mid-write?")
    if not isinstance(document, dict):
        fail(f"{path} is not a sweep document (expected a JSON "
             f"object, got {type(document).__name__})")
    for field in STRIPPED_TOP_LEVEL:
        document.pop(field, None)
    for field in STRIPPED_PROVENANCE:
        document.get("provenance", {}).pop(field, None)
    return document


def report(a, b, path="$"):
    """Print the first few places two documents diverge."""
    if type(a) is not type(b):
        print(f"  {path}: {type(a).__name__} vs {type(b).__name__}")
        return 1
    if isinstance(a, dict):
        shown = 0
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                shown += report(a.get(key), b.get(key),
                                f"{path}.{key}")
                if shown >= 5:
                    break
        return shown
    if isinstance(a, list):
        if len(a) != len(b):
            print(f"  {path}: {len(a)} vs {len(b)} elements")
            return 1
        shown = 0
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                shown += report(x, y, f"{path}[{i}]")
                if shown >= 5:
                    break
        return shown
    print(f"  {path}: {a!r} vs {b!r}")
    return 1


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    a, b = map(canonical, sys.argv[1:3])
    if a == b:
        print(f"equivalent: {sys.argv[1]} == {sys.argv[2]} "
              f"(modulo {', '.join(STRIPPED_TOP_LEVEL + STRIPPED_PROVENANCE)})")
        return 0
    print(f"MISMATCH between {sys.argv[1]} and {sys.argv[2]}:")
    report(a, b)
    return 1


if __name__ == "__main__":
    sys.exit(main())
