#!/usr/bin/env bash
# Drive pracbench over every registered scenario and drop JSON (and
# CSV) results under results/.
#
# Usage: scripts/run_all_figures.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    where results land     (default: results)
#
# Extra pracbench arguments can be passed via PRACBENCH_ARGS, e.g.
#   PRACBENCH_ARGS="--jobs 8" scripts/run_all_figures.sh
# A quick smoke pass over the expensive perf sweeps (--try-set only
# applies where a scenario declares the axis):
#   PRACBENCH_ARGS="--try-set measure=50000" scripts/run_all_figures.sh
# Resumable runs: set CHECKPOINT_DIR to journal every sweep point
# under it (one DIR/<scenario>.jsonl per scenario) and pick up where
# a killed run left off:
#   CHECKPOINT_DIR=ckpt scripts/run_all_figures.sh
# Fleet runs: set SHARD=i/N (requires CHECKPOINT_DIR, ideally on a
# shared filesystem) to run only every N-th grid point of every
# scenario on this host.  Once all N shards finish, fuse with
#   build/pracbench merge CHECKPOINT_DIR --out results/ --csv results/
# -- sharded runs skip per-shard JSON emission, since a shard's
# output is partial by construction.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
PRACBENCH="${BUILD_DIR}/pracbench"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first:" >&2
    echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
    exit 1
fi

mkdir -p "${OUT_DIR}"

# --resume is safe with a fresh directory (a missing journal is a
# fresh start) and turns any rerun into a continuation.
CHECKPOINT=()
[[ -n "${CHECKPOINT_DIR:-}" ]] &&
    CHECKPOINT=(--checkpoint "${CHECKPOINT_DIR}" --resume)

EMIT=(--out "${OUT_DIR}/" --csv "${OUT_DIR}/")
if [[ -n "${SHARD:-}" ]]; then
    if [[ -z "${CHECKPOINT_DIR:-}" ]]; then
        echo "error: SHARD=${SHARD} requires CHECKPOINT_DIR (the" \
             "shard journals are the fleet's only output)" >&2
        exit 1
    fi
    CHECKPOINT+=(--shard "${SHARD}")
    EMIT=()
fi

# `list` prints one header line, then per scenario a summary line
# plus an indented one-line description; keep the summary lines only.
mapfile -t SCENARIOS < <("${PRACBENCH}" list |
    awk 'NR > 1 && $0 !~ /^ / {print $1}')
echo "running ${#SCENARIOS[@]} scenarios -> ${OUT_DIR}/"

for scenario in "${SCENARIOS[@]}"; do
    echo "==> ${scenario}"
    EXTRA=()
    # Wall-clock benchmarks need a quiet machine: run them serially
    # so the thread pool does not skew the timings they report.
    [[ "${scenario}" == "fastforward_benchmark" ]] && EXTRA+=(--jobs 1)
    # shellcheck disable=SC2086  # PRACBENCH_ARGS is intentionally split
    # (the array expansion guards keep `set -u` happy on bash < 4.4;
    # EXTRA comes last so the forced --jobs 1 beats PRACBENCH_ARGS)
    "${PRACBENCH}" run "${scenario}" --quiet --no-table \
        ${EMIT[@]+"${EMIT[@]}"} \
        ${CHECKPOINT[@]+"${CHECKPOINT[@]}"} \
        ${PRACBENCH_ARGS:-} ${EXTRA[@]+"${EXTRA[@]}"}
done

if [[ -n "${SHARD:-}" ]]; then
    echo "done: shard ${SHARD} journaled under ${CHECKPOINT_DIR}/;" \
         "merge once all shards finish"
else
    echo "done: $(ls "${OUT_DIR}"/*.json | wc -l) JSON files in ${OUT_DIR}/"
fi
