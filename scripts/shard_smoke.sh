#!/usr/bin/env bash
# Fleet smoke: run one sweep as two static shards plus work-stealing
# workers over a shared checkpoint directory -- the first steal
# worker is SIGKILLed mid-flight (a dead host) and a forged stale
# claim is injected -- then `pracbench merge` fuses the journals and
# the result must be byte-identical to an uninterrupted single-host
# run (stripping only wall_seconds and the provenance timestamp --
# scripts/diff_sweep_json.py; the CSV must match byte-for-byte).
#
# Usage: scripts/shard_smoke.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    results + checkpoint location (default: results/shard_smoke)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results/shard_smoke}"
PRACBENCH="${BUILD_DIR}/pracbench"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first" >&2
    exit 1
fi

rm -rf "${OUT_DIR}"
mkdir -p "${OUT_DIR}"

# Six points (3 defenses x 2 workloads), heavy enough that the kill
# lands mid-sweep but the whole exercise stays CI-sized.  Identical
# to the resume smoke's sweep so the two jobs cross-check.
SWEEP=(defense_matrix_perf --jobs 2 --quiet --no-table
       --set mitigation=none,para,tprac
       --set entry=h_rand_heavy,m_blend
       --set warmup=20000 --set measure=200000)
CKPT="${OUT_DIR}/ckpt"
DEAD_JOURNAL="${CKPT}/defense_matrix_perf.worker-dead.jsonl"
CLAIMS="${CKPT}/defense_matrix_perf.claims"

echo "==> single-host reference run"
"${PRACBENCH}" run "${SWEEP[@]}" \
    --out "${OUT_DIR}/reference.json" --csv "${OUT_DIR}/reference.csv"

echo "==> static shards 0/3 and 1/3 (shard 2/3 never reports in)"
for index in 0 1; do
    "${PRACBENCH}" run "${SWEEP[@]}" \
        --checkpoint "${CKPT}" --shard "${index}/3"
done

echo "==> steal worker 'dead', SIGKILLed mid-flight"
"${PRACBENCH}" run "${SWEEP[@]}" --checkpoint "${CKPT}" \
    --steal --worker-id dead --claim-ttl 600 &
VICTIM=$!
# Kill once the dead worker's journal holds a completed point
# (header + 1 record): its partial work must survive the merge.
for _ in $(seq 1 600); do
    if [[ -f "${DEAD_JOURNAL}" ]] &&
       [[ "$(wc -l < "${DEAD_JOURNAL}")" -ge 2 ]]; then
        break
    fi
    if ! kill -0 "${VICTIM}" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -KILL "${VICTIM}" 2>/dev/null; then
    echo "==> SIGKILLed pid ${VICTIM}"
else
    echo "warning: dead worker finished before the kill landed" >&2
fi
wait "${VICTIM}" 2>/dev/null || true

if [[ ! -f "${DEAD_JOURNAL}" ]]; then
    echo "error: the dead worker never wrote its journal" >&2
    exit 1
fi

# The dead worker's leftover claims have fresh mtimes (claim-ttl 600
# would stall the live worker for minutes); age them, and forge one
# extra stale claim from a host that vanished without journaling
# anything, so the live worker must exercise the steal path.
mkdir -p "${CLAIMS}"
printf 'vanished\n' > "${CLAIMS}/point-0.claim" 2>/dev/null || true
find "${CLAIMS}" -name '*.claim' \
    -exec touch -d '2 hours ago' {} + 2>/dev/null || true

echo "==> steal worker 'live' finishes the sweep"
"${PRACBENCH}" run "${SWEEP[@]}" --checkpoint "${CKPT}" \
    --steal --worker-id live --claim-ttl 60 \
    --out "${OUT_DIR}/live.json"

echo "==> merging $(ls "${CKPT}"/*.jsonl | wc -l) journals"
"${PRACBENCH}" merge "${CKPT}" --jobs 2 --no-table \
    --out "${OUT_DIR}/merged.json" --csv "${OUT_DIR}/merged.csv"

echo "==> diffing merged and live outputs against the reference"
python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/reference.json" "${OUT_DIR}/merged.json"
# A finished steal worker exits holding the complete merged result.
python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/reference.json" "${OUT_DIR}/live.json"
# The CSV carries no timestamps: byte-identical, full stop.
cmp "${OUT_DIR}/reference.csv" "${OUT_DIR}/merged.csv"
echo "shard smoke passed"
