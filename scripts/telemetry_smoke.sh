#!/usr/bin/env bash
# Telemetry smoke: the three observability surfaces end to end.
#
#  1. A sweep run with --trace-out must produce the same result JSON
#     as an untraced run (stripping only wall_seconds and the
#     provenance timestamp -- scripts/diff_sweep_json.py), and the
#     trace itself must be a loadable Chrome trace with the expected
#     lanes, spans, and checkpoint instants.
#  2. A steal worker SIGKILLed mid-flight must show up as STALE in
#     `pracbench status` once its heartbeat ages past the TTL, while
#     a live worker shows up as live.
#  3. After the live worker drains the sweep, status must report the
#     fleet complete (done == total, eta complete).
#
# Usage: scripts/telemetry_smoke.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    results + checkpoint location (default: results/telemetry_smoke)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results/telemetry_smoke}"
PRACBENCH="${BUILD_DIR}/pracbench"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first" >&2
    exit 1
fi

rm -rf "${OUT_DIR}"
mkdir -p "${OUT_DIR}"

# Same CI-sized sweep as the shard/resume smokes: six points, heavy
# enough that the SIGKILL lands mid-flight.
SWEEP=(defense_matrix_perf --jobs 2 --quiet --no-table
       --set mitigation=none,para,tprac
       --set entry=h_rand_heavy,m_blend
       --set warmup=20000 --set measure=200000)
CKPT="${OUT_DIR}/ckpt"
DEAD_JOURNAL="${CKPT}/defense_matrix_perf.worker-dead.jsonl"
CLAIMS="${CKPT}/defense_matrix_perf.claims"
HEARTBEATS="${CKPT}/defense_matrix_perf.heartbeats"

echo "==> untraced reference run"
"${PRACBENCH}" run "${SWEEP[@]}" --out "${OUT_DIR}/reference.json"

echo "==> traced run (--trace-out), must not perturb the result"
"${PRACBENCH}" run "${SWEEP[@]}" \
    --trace-out "${OUT_DIR}/trace.json" --out "${OUT_DIR}/traced.json"

python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/reference.json" "${OUT_DIR}/traced.json"

echo "==> validating the Chrome trace"
python3 - "${OUT_DIR}/trace.json" <<'EOF'
import json
import sys

document = json.load(open(sys.argv[1]))
events = document["traceEvents"]
spans = [e for e in events if e["ph"] == "X"]
metas = [e for e in events if e["ph"] == "M"]
points = [e for e in spans if e["cat"] == "point"]
phases = [e for e in spans if e["cat"] == "phase"]

failures = []
if len(points) != 6:
    failures.append(f"expected 6 point spans, got {len(points)}")
if not phases:
    failures.append("no phase spans (sim / journal-flush)")
if not any(m["name"] == "process_name" for m in metas):
    failures.append("missing process_name metadata event")
if not any(m["name"] == "thread_name" for m in metas):
    failures.append("missing thread_name metadata events")
for span in spans:
    if span["dur"] < 0:
        failures.append(f"negative duration on span {span['name']}")
for failure in failures:
    print(f"telemetry_smoke: FAIL: {failure}")
print(f"telemetry_smoke: trace OK "
      f"({len(events)} events, {len(points)} point spans)")
sys.exit(1 if failures else 0)
EOF

echo "==> steal worker 'dead', SIGKILLed mid-flight"
"${PRACBENCH}" run "${SWEEP[@]}" --checkpoint "${CKPT}" \
    --steal --worker-id dead --claim-ttl 600 \
    --heartbeat-seconds 0.1 &
VICTIM=$!
# Kill once the dead worker's journal holds a completed point
# (header + 1 record) so status has real progress to report.
for _ in $(seq 1 600); do
    if [[ -f "${DEAD_JOURNAL}" ]] &&
       [[ "$(wc -l < "${DEAD_JOURNAL}")" -ge 2 ]]; then
        break
    fi
    if ! kill -0 "${VICTIM}" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -KILL "${VICTIM}" 2>/dev/null; then
    echo "==> SIGKILLed pid ${VICTIM}"
else
    echo "warning: dead worker finished before the kill landed" >&2
fi
wait "${VICTIM}" 2>/dev/null || true

if [[ ! -f "${HEARTBEATS}/dead.json" ]]; then
    echo "error: the dead worker never wrote a heartbeat" >&2
    exit 1
fi

# Age the corpse's heartbeat and claims past the TTL: a SIGKILLed
# process leaves no tombstone, so staleness is purely mtime age.
find "${HEARTBEATS}" "${CLAIMS}" -type f \
    -exec touch -d '2 hours ago' {} + 2>/dev/null || true

echo "==> status mid-flight: the dead worker must read as STALE"
"${PRACBENCH}" status "${CKPT}" --ttl 60 \
    | tee "${OUT_DIR}/status_midflight.txt"
grep -q 'STALE' "${OUT_DIR}/status_midflight.txt"

echo "==> steal worker 'live' finishes the sweep"
"${PRACBENCH}" run "${SWEEP[@]}" --checkpoint "${CKPT}" \
    --steal --worker-id live --claim-ttl 60 \
    --trace-out "${OUT_DIR}/trace_steal.json" \
    --out "${OUT_DIR}/live.json"

python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/reference.json" "${OUT_DIR}/live.json"
python3 -m json.tool "${OUT_DIR}/trace_steal.json" > /dev/null

echo "==> status after the drain: fleet complete"
"${PRACBENCH}" status "${CKPT}" --ttl 60 \
    | tee "${OUT_DIR}/status_done.txt"
grep -q '6 done / 6 total' "${OUT_DIR}/status_done.txt"
grep -Eq 'eta +complete' "${OUT_DIR}/status_done.txt"
echo "telemetry smoke passed"
