#!/usr/bin/env bash
# Attacker-search smoke: the `pracbench search` determinism contract
# end to end.  A reference search, a SIGKILLed-and-resumed search
# (byte-identical output -- SearchResult JSON carries no wall-clock
# provenance, so plain cmp), a second defense, and the registry CLI
# surface: `pracbench list` names the attackers, `--set attacker=`
# sub-keys reach a sweep, and typos die with a "did you mean" hint.
#
# Usage: scripts/search_smoke.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    results + checkpoint location (default: results/search_smoke)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results/search_smoke}"
PRACBENCH="${BUILD_DIR}/pracbench"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first" >&2
    exit 1
fi

rm -rf "${OUT_DIR}"
mkdir -p "${OUT_DIR}"

SEARCH=(search defense_matrix_adaptive --target-defense graphene
        --budget 4 --quiet)
JOURNAL="${OUT_DIR}/ckpt/search.graphene.r1.jsonl"

echo "==> reference (uninterrupted) search"
"${PRACBENCH}" "${SEARCH[@]}" --out "${OUT_DIR}/reference.json"

echo "==> checkpointed search, to be SIGKILLed mid-flight"
"${PRACBENCH}" "${SEARCH[@]}" --checkpoint "${OUT_DIR}/ckpt" \
    --out "${OUT_DIR}/resumed.json" &
VICTIM=$!

# Kill once the round-1 journal holds at least one completed
# candidate (header + 1 record) while the search is still running.
for _ in $(seq 1 600); do
    if [[ -f "${JOURNAL}" ]] &&
       [[ "$(wc -l < "${JOURNAL}")" -ge 2 ]]; then
        break
    fi
    if ! kill -0 "${VICTIM}" 2>/dev/null; then
        break
    fi
    sleep 0.1
done

records() { [[ -f "${JOURNAL}" ]] && wc -l < "${JOURNAL}" || echo 0; }

if kill -KILL "${VICTIM}" 2>/dev/null; then
    echo "==> SIGKILLed pid ${VICTIM} after $(records) journal records"
else
    echo "warning: search finished before the kill landed" >&2
fi
wait "${VICTIM}" 2>/dev/null || true

if [[ "$(records)" -lt 1 ]]; then
    echo "error: the checkpointed search never wrote its journal" >&2
    exit 1
fi
if [[ -f "${OUT_DIR}/resumed.json" ]]; then
    echo "warning: killed search had already emitted its JSON" >&2
    rm -f "${OUT_DIR}/resumed.json"
fi

echo "==> resuming from $(records) journal records"
"${PRACBENCH}" "${SEARCH[@]}" --checkpoint "${OUT_DIR}/ckpt" --resume \
    --out "${OUT_DIR}/resumed.json"

echo "==> resumed output must be byte-identical to the reference"
cmp "${OUT_DIR}/reference.json" "${OUT_DIR}/resumed.json"

echo "==> second defense: pb-rfm, wider jobs"
"${PRACBENCH}" search defense_matrix_adaptive --target-defense pb-rfm \
    --budget 3 --jobs 4 --quiet --out "${OUT_DIR}/pb-rfm.json"
python3 - "${OUT_DIR}/pb-rfm.json" <<'EOF'
import json, sys
result = json.load(open(sys.argv[1]))
best, obl = result["best"], result["oblivious"]
assert best["max_counter"] >= obl["max_counter"], (best, obl)
print(f"    best {best['attacker']} max_counter={best['max_counter']} "
      f">= oblivious {obl['max_counter']}")
EOF

echo "==> pracbench list names the registered attackers"
LIST="$("${PRACBENCH}" list)"
for name in hammer feinting graphene-thrash para-retry pb-parallel; do
    if ! grep -q "^${name} " <<<"${LIST}"; then
        echo "error: 'pracbench list' does not name attacker ${name}" >&2
        exit 1
    fi
done

echo "==> attacker registry reaches a sweep via --set sub-keys"
"${PRACBENCH}" run defense_matrix_security --smoke --quiet --no-table \
    --set attack=para-retry --set attacker.aggressors=4

echo "==> unknown attacker dies with exit 2 and a hint"
set +e
HINT="$("${PRACBENCH}" search defense_matrix_adaptive \
    --target-defense graphene --attacker para-rety 2>&1)"
STATUS=$?
set -e
if [[ "${STATUS}" -ne 2 ]] ||
   ! grep -q "did you mean 'para-retry'" <<<"${HINT}"; then
    echo "error: typo'd attacker did not produce the hint (exit" \
         "${STATUS}): ${HINT}" >&2
    exit 1
fi

echo "search smoke passed"
