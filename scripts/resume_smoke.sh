#!/usr/bin/env bash
# Kill-and-resume smoke: start a multi-point sweep with --checkpoint,
# SIGKILL it once the journal shows real progress, resume it, and
# diff the final JSON against an uninterrupted reference run
# (stripping only wall_seconds and the provenance timestamp --
# scripts/diff_sweep_json.py).
#
# Usage: scripts/resume_smoke.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  where pracbench lives (default: build)
#   OUT_DIR    results + checkpoint location (default: results/resume_smoke)

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results/resume_smoke}"
PRACBENCH="${BUILD_DIR}/pracbench"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

if [[ ! -x "${PRACBENCH}" ]]; then
    echo "error: ${PRACBENCH} not found; build first" >&2
    exit 1
fi

rm -rf "${OUT_DIR}"
mkdir -p "${OUT_DIR}"

# Six points (3 defenses x 2 workloads), each heavy enough that the
# kill lands mid-sweep but the whole exercise stays CI-sized.
SWEEP=(--scenario defense_matrix_perf --jobs 2 --quiet --no-table
       --set mitigation=none,para,tprac
       --set entry=h_rand_heavy,m_blend
       --set warmup=20000 --set measure=200000)
JOURNAL="${OUT_DIR}/ckpt/defense_matrix_perf.jsonl"

echo "==> reference (uninterrupted) run"
"${PRACBENCH}" "${SWEEP[@]}" --out "${OUT_DIR}/reference.json"

echo "==> checkpointed run, to be SIGKILLed mid-flight"
"${PRACBENCH}" "${SWEEP[@]}" --checkpoint "${OUT_DIR}/ckpt" \
    --out "${OUT_DIR}/resumed.json" &
VICTIM=$!

# Kill as soon as the journal holds at least one completed point
# (header + 1 record) while the sweep is still mid-flight.
for _ in $(seq 1 600); do
    if [[ -f "${JOURNAL}" ]] &&
       [[ "$(wc -l < "${JOURNAL}")" -ge 2 ]]; then
        break
    fi
    if ! kill -0 "${VICTIM}" 2>/dev/null; then
        break
    fi
    sleep 0.1
done

records() { [[ -f "${JOURNAL}" ]] && wc -l < "${JOURNAL}" || echo 0; }

if kill -KILL "${VICTIM}" 2>/dev/null; then
    echo "==> SIGKILLed pid ${VICTIM} after $(records) journal records"
else
    # The sweep outran the poll loop; the resume below still has to
    # prove it recomputes nothing and emits identical bytes.
    echo "warning: sweep finished before the kill landed" >&2
fi
wait "${VICTIM}" 2>/dev/null || true

if [[ "$(records)" -lt 1 ]]; then
    echo "error: the checkpointed sweep never wrote its journal" >&2
    exit 1
fi
if [[ -f "${OUT_DIR}/resumed.json" ]]; then
    # Only possible when the sweep finished before the kill landed.
    echo "warning: killed run had already emitted its JSON" >&2
    rm -f "${OUT_DIR}/resumed.json"
fi

echo "==> resuming from $(records) journal records"
"${PRACBENCH}" "${SWEEP[@]}" --checkpoint "${OUT_DIR}/ckpt" --resume \
    --out "${OUT_DIR}/resumed.json"

echo "==> diffing resumed output against the reference"
python3 "${SCRIPT_DIR}/diff_sweep_json.py" \
    --ignore wall_seconds --ignore generated_at \
    "${OUT_DIR}/reference.json" "${OUT_DIR}/resumed.json"
echo "resume smoke passed"
