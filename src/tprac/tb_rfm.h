/**
 * @file
 * Timing-Based RFM scheduler -- the heart of the TPRAC defense.
 *
 * TB-RFMs are issued at a fixed wall-clock period (TB-Window),
 * completely independent of memory activity, which severs the link
 * between row activations and observable RFM latency spikes.  The
 * scheduler owns nothing but a deadline register (the paper's 24-bit
 * "RFM Interval Register") plus the optional TREF co-design: when a
 * full Targeted-Refresh round already mitigated every bank during the
 * current window, the scheduled TB-RFM is skipped without loss of
 * security (Section 4.3).
 */

#ifndef PRACLEAK_TPRAC_TB_RFM_H
#define PRACLEAK_TPRAC_TB_RFM_H

#include <cstdint>

#include "common/types.h"
#include "dram/dram_spec.h"
#include "prac/prac_engine.h"
#include "tprac/analysis.h"

namespace pracleak {

/** Static configuration of the TB-RFM mechanism. */
struct TbRfmConfig
{
    /**
     * Period between TB-RFMs in cycles; 0 disables the mechanism.
     * Multi-channel systems run one scheduler per channel with the
     * same deadlines: firing in lockstep overlaps the per-channel
     * stalls, which measures strictly better than staggering them
     * (interleaved cores stall on *any* blocked channel, so N
     * staggered stalls per window cost more than one joint stall).
     */
    Cycle windowCycles = 0;

    /** Allow TREF rounds to substitute for scheduled TB-RFMs. */
    bool trefCoDesign = false;

    /**
     * Section-7.2 extension (TPRAC-PB): issue per-bank RFMs on a
     * rotation instead of channel-stalling RFMabs.  Every bank is
     * still mitigated once per windowCycles, so the security analysis
     * is unchanged, but each event blocks only one bank for tRFMpb.
     */
    bool perBank = false;

    /**
     * Derive the window for a given Back-Off threshold from the
     * Feinting analysis (largest window with TMAX < nbo).
     */
    static TbRfmConfig forNbo(std::uint32_t nbo, bool counter_reset,
                              const DramSpec &spec,
                              bool tref_co_design = false);
};

/** Deadline tracker polled by the memory controller every cycle. */
class TbRfmScheduler
{
  public:
    TbRfmScheduler(const TbRfmConfig &config, PracEngine *engine);

    bool enabled() const { return config_.windowCycles != 0; }

    /** Whether a TB-RFM is due at @p now. */
    bool due(Cycle now) const;

    /**
     * Attempt to satisfy a due TB-RFM with banked TREF credit.
     * Returns true (and advances the deadline) on success.
     */
    bool trySkipWithTref(Cycle now);

    /** A TB-RFM was issued at @p now; advance the deadline. */
    void onRfmIssued(Cycle now);

    Cycle nextDeadline() const { return nextAt_; }
    std::uint64_t issued() const { return issued_; }
    std::uint64_t skipped() const { return skipped_; }

  private:
    void advance(Cycle now);

    TbRfmConfig config_;
    PracEngine *engine_;
    Cycle nextAt_;
    std::uint64_t issued_ = 0;
    std::uint64_t skipped_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_TPRAC_TB_RFM_H
