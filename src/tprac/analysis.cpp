#include "tprac/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/types.h"

namespace pracleak {

FeintingParams
FeintingParams::fromSpec(const DramSpec &spec)
{
    FeintingParams p;
    p.trcNs = cyclesToNs(spec.timing.tRC);
    p.trefiNs = cyclesToNs(spec.timing.tREFI);
    p.trefwNs = cyclesToNs(spec.timing.tREFW);
    p.trfcNs = cyclesToNs(spec.timing.tRFC);
    p.trfmabNs = cyclesToNs(spec.timing.tRFMab);
    p.rowsPerBank = spec.org.rowsPerBank;
    return p;
}

std::uint64_t
actsPerWindow(double window_ns, const FeintingParams &p)
{
    const double usable = window_ns - p.trfmabNs;
    if (usable <= 0)
        return 0;
    return static_cast<std::uint64_t>(usable / p.trcNs);
}

std::uint64_t
attackRounds(std::uint64_t r1, std::uint64_t acts_per_window)
{
    if (r1 == 0)
        return 0;
    if (acts_per_window == 0)
        return 1; // no mitigations ever happen; one "round" suffices

    std::uint64_t rounds = 0;
    std::uint64_t cumulative = 0;
    std::uint64_t remaining = r1;
    while (remaining > 1) {
        ++rounds;
        cumulative += remaining;
        const std::uint64_t mitigated = cumulative / acts_per_window;
        remaining = (r1 > mitigated) ? r1 - mitigated : 1;
    }
    return rounds + 1; // final round with only the target left
}

std::uint64_t
targetActivations(std::uint64_t r1, std::uint64_t acts_per_window)
{
    const std::uint64_t rounds = attackRounds(r1, acts_per_window);
    if (rounds == 0)
        return 0;
    // One ACT per round while decoys survive; the whole final window
    // goes to the target (Eq. 4).
    return (rounds - 1) + acts_per_window;
}

std::uint64_t
maxActsPerTrefw(double window_ns, const FeintingParams &p)
{
    const double num_refs = p.trefwNs / p.trefiNs;
    const double num_rfms = window_ns > 0 ? p.trefwNs / window_ns : 0;
    const double usable =
        p.trefwNs - num_refs * p.trfcNs - num_rfms * p.trfmabNs;
    if (usable <= 0)
        return 0;
    return static_cast<std::uint64_t>(usable / p.trcNs);
}

std::uint64_t
tmaxWithReset(double window_ns, const FeintingParams &p)
{
    const std::uint64_t act_w = actsPerWindow(window_ns, p);
    if (act_w == 0)
        return 0;
    // Eq. 5: the optimal pool equals the number of mitigations that
    // can possibly occur before the counters reset.
    const std::uint64_t opt_r1 =
        std::min<std::uint64_t>(maxActsPerTrefw(window_ns, p) / act_w,
                                p.rowsPerBank);
    return targetActivations(opt_r1, act_w);
}

std::uint64_t
tmaxNoReset(double window_ns, const FeintingParams &p)
{
    const std::uint64_t act_w = actsPerWindow(window_ns, p);
    if (act_w == 0)
        return 0;

    // TACT is monotonically non-decreasing in R1 (a bigger pool never
    // hurts: the adversary can ignore extra rows), so the bound is at
    // the full row count; we still sweep a coarse grid and take the
    // max as a guard against non-monotonic floor effects.
    std::uint64_t best = 0;
    for (std::uint64_t r1 = 1; r1 <= p.rowsPerBank; r1 = r1 * 2) {
        best = std::max(best, targetActivations(r1, act_w));
    }
    best = std::max(best, targetActivations(p.rowsPerBank, act_w));
    return best;
}

std::uint64_t
tmax(double window_ns, bool counter_reset, const FeintingParams &p)
{
    return counter_reset ? tmaxWithReset(window_ns, p)
                         : tmaxNoReset(window_ns, p);
}

double
maxSafeWindowNs(std::uint32_t nbo, bool counter_reset,
                const FeintingParams &p)
{
    const double step = p.trefiNs / 100.0;
    double best = 0.0;
    // TMAX is monotone in the window, so binary search would do, but a
    // linear scan over [step, 8 tREFI] is trivially cheap and immune
    // to floor-induced plateaus.
    for (double w = step; w <= 8.0 * p.trefiNs; w += step) {
        if (tmax(w, counter_reset, p) < nbo)
            best = w;
        else
            break;
    }
    return best;
}

std::uint32_t
maxSafeBat(std::uint32_t nbo, bool counter_reset, const FeintingParams &p)
{
    // A BAT of b yields one RFM per b activations to the hot bank;
    // the equivalent mitigation cadence is a window of b * tRC plus
    // the RFM blocking time that actsPerWindow() subtracts back out.
    std::uint32_t best = 0;
    for (std::uint32_t bat = 1; bat <= nbo; ++bat) {
        const double w = bat * p.trcNs + p.trfmabNs;
        if (tmax(w, counter_reset, p) < nbo)
            best = bat;
        else
            break;
    }
    return best;
}

} // namespace pracleak
