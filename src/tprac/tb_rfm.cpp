#include "tprac/tb_rfm.h"

#include "common/log.h"

namespace pracleak {

TbRfmConfig
TbRfmConfig::forNbo(std::uint32_t nbo, bool counter_reset,
                    const DramSpec &spec, bool tref_co_design)
{
    const FeintingParams p = FeintingParams::fromSpec(spec);
    const double window_ns = maxSafeWindowNs(nbo, counter_reset, p);
    if (window_ns <= 0.0)
        fatal("no TB-Window can protect NBO=" + std::to_string(nbo));

    TbRfmConfig config;
    config.windowCycles = nsToCycles(window_ns);
    config.trefCoDesign = tref_co_design;
    return config;
}

TbRfmScheduler::TbRfmScheduler(const TbRfmConfig &config,
                               PracEngine *engine)
    : config_(config), engine_(engine),
      nextAt_(config.windowCycles ? config.windowCycles : kNeverCycle)
{
}

bool
TbRfmScheduler::due(Cycle now) const
{
    return enabled() && now >= nextAt_;
}

void
TbRfmScheduler::advance(Cycle now)
{
    // Deadlines are anchored to the schedule, not to the issue time,
    // so service jitter cannot accumulate into drift; if servicing
    // fell behind by more than a full window, realign from now.
    nextAt_ += config_.windowCycles;
    if (nextAt_ <= now)
        nextAt_ = now + config_.windowCycles;
}

bool
TbRfmScheduler::trySkipWithTref(Cycle now)
{
    if (!config_.trefCoDesign || !engine_)
        return false;
    // Skip only when every rank received a TREF mitigation within the
    // current window: each bank then already got its queue mitigation
    // for this interval and the Feinting bound still holds.
    const Cycle oldest = engine_->oldestRecentTref();
    if (oldest == kNeverCycle ||
        oldest + config_.windowCycles <= now)
        return false;
    engine_->markTrefBaseline();
    ++skipped_;
    advance(now);
    return true;
}

void
TbRfmScheduler::onRfmIssued(Cycle now)
{
    ++issued_;
    if (engine_)
        engine_->markTrefBaseline();
    advance(now);
}

} // namespace pracleak
