/**
 * @file
 * Analytic worst-case security model for TPRAC (paper Section 4.2).
 *
 * Implements the Feinting/Wave-attack analysis of Equations (1)-(5):
 * given a TB-RFM interval (TB-Window), compute the maximum number of
 * activations an optimal adversary can land on a single target row
 * (TMAX).  TPRAC is secure iff TMAX < NBO, so the inverse problem --
 * the largest safe TB-Window for a given NBO -- configures the
 * defense, and the same machinery derives the Bank Activation
 * Threshold (BAT) for the ABO+ACB-RFM baseline.
 *
 * Refinement over the paper's closed form: we subtract the channel
 * time consumed by the TB-RFM itself (tRFMab) from each window, and
 * both refresh and RFM blocking time from the per-tREFW activation
 * budget, since the adversary cannot activate while the channel is
 * blocked.
 */

#ifndef PRACLEAK_TPRAC_ANALYSIS_H
#define PRACLEAK_TPRAC_ANALYSIS_H

#include <cstdint>

#include "dram/dram_spec.h"

namespace pracleak {

/** Inputs to the Feinting-attack analysis. */
struct FeintingParams
{
    double trcNs = 52.0;        //!< row-cycle time
    double trefiNs = 3900.0;    //!< refresh interval
    double trefwNs = 32.0e6;    //!< refresh window (counter-reset period)
    double trfcNs = 410.0;      //!< refresh blocking time
    double trfmabNs = 350.0;    //!< RFM blocking time
    std::uint64_t rowsPerBank = 128 * 1024;

    /** Populate from a DramSpec. */
    static FeintingParams fromSpec(const DramSpec &spec);
};

/** ACTs an adversary fits in one TB-Window (Eq. 2, minus tRFMab). */
std::uint64_t actsPerWindow(double window_ns, const FeintingParams &p);

/**
 * Number of Feinting rounds for an initial pool of @p r1 rows when
 * @p acts_per_window activations separate consecutive TB-RFMs (Eq. 3).
 */
std::uint64_t attackRounds(std::uint64_t r1,
                           std::uint64_t acts_per_window);

/** Target-row activations for pool size @p r1 (Eq. 4). */
std::uint64_t targetActivations(std::uint64_t r1,
                                std::uint64_t acts_per_window);

/**
 * Activation budget inside one tREFW after refresh and TB-RFM blocking
 * time is removed (the ~550K "MAXACT" of the paper).
 */
std::uint64_t maxActsPerTrefw(double window_ns, const FeintingParams &p);

/**
 * TMAX with per-tREFW counter reset: the pool is bounded by the number
 * of mitigations that fit in one window (Eq. 5).
 */
std::uint64_t tmaxWithReset(double window_ns, const FeintingParams &p);

/**
 * TMAX without counter reset: sweep the initial pool size up to the
 * rows-per-bank bound and take the worst case.
 */
std::uint64_t tmaxNoReset(double window_ns, const FeintingParams &p);

/** Dispatch on reset policy. */
std::uint64_t tmax(double window_ns, bool counter_reset,
                   const FeintingParams &p);

/**
 * Largest TB-Window (ns) such that TMAX stays strictly below @p nbo.
 * Searched at 0.01-tREFI granularity.  Returns 0 when even the
 * smallest window cannot protect @p nbo.
 */
double maxSafeWindowNs(std::uint32_t nbo, bool counter_reset,
                       const FeintingParams &p);

/**
 * Largest Bank Activation Threshold for the ABO+ACB-RFM baseline such
 * that the worst-case single-bank attacker never reaches @p nbo.  The
 * activity-driven RFM cadence of BAT activations is equivalent to a
 * TB-Window of BAT * tRC.
 */
std::uint32_t maxSafeBat(std::uint32_t nbo, bool counter_reset,
                         const FeintingParams &p);

} // namespace pracleak

#endif // PRACLEAK_TPRAC_ANALYSIS_H
