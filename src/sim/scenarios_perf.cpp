/**
 * @file
 * Performance-evaluation scenarios: Figures 10-14 plus Tables 4 and 5.
 *
 * Each grid point is one (workload entry x design) pair; the runner
 * fans points across the thread pool and the NoMitigation baseline
 * leg is memoized (sim/design.h), so comparing N designs costs one
 * baseline simulation per workload, not N.
 */

#include "sim/scenario.h"

#include <array>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "sim/design.h"
#include "sim/scenario_util.h"

namespace pracleak::sim {

namespace {

/**
 * Decode a design-axis label into a DesignConfig.  Labels are the
 * paper's: "abo-only", "abo+acb-rfm", "tprac", optionally suffixed
 * with "+tref/N" (TREF co-design) or "-noreset".
 */
DesignConfig
designFromLabel(std::string label, std::uint32_t nrh,
                std::uint32_t nmit)
{
    DesignConfig design;
    design.label = label;
    design.nbo = nrh;
    design.nmit = nmit;

    const auto noreset = label.find("-noreset");
    if (noreset != std::string::npos) {
        design.counterReset = false;
        label.erase(noreset, 8);
    }
    const auto tref = label.find("+tref/");
    if (tref != std::string::npos) {
        design.trefPeriodRefs = static_cast<std::uint32_t>(
            std::strtoul(label.c_str() + tref + 6, nullptr, 10));
        label.erase(tref);
    }

    if (label == "abo-only")
        design.mode = MitigationMode::AboOnly;
    else if (label == "abo+acb-rfm")
        design.mode = MitigationMode::AboAcb;
    else if (label == "tprac" || label == "tprac-pb")
        design.mode = MitigationMode::Tprac;
    else if (label == "baseline")
        design.mode = MitigationMode::NoMitigation;
    else
        throw std::invalid_argument("unknown design label '" + label +
                                    "'");
    design.perBankRfm = label == "tprac-pb";
    return design;
}

RunBudget
budgetFrom(const ParamSet &params)
{
    RunBudget budget;
    if (params.has("warmup"))
        budget.warmup =
            static_cast<std::uint64_t>(params.getInt("warmup"));
    if (params.has("measure"))
        budget.measure =
            static_cast<std::uint64_t>(params.getInt("measure"));
    return budget;
}

/** One (entry, design) comparison against the memoized baseline. */
ResultRow
perfRow(const std::string &entryName, const DesignConfig &design,
        const RunBudget &budget)
{
    const SuiteEntry &entry = findSuiteEntry(entryName);
    const PairResult pair = runNormalizedPair(entry, design, budget);

    ResultRow row = JsonValue::object();
    row.set("class", intensityName(entry.intensity));
    row.set("normalized", normalizedPerf(pair.design, pair.baseline));
    row.set("ipc_sum", pair.design.ipcSum());
    row.set("tb_rfms", pair.design.tbRfms);
    row.set("tb_rfms_skipped", pair.design.tbRfmsSkipped);
    row.set("abo_rfms", pair.design.aboRfms);
    row.set("acb_rfms", pair.design.acbRfms);
    row.set("alerts", pair.design.alerts);
    return row;
}

/**
 * Group @p rows by @p keys (first-seen order) and emit one summary
 * row per group: the keys, the mean of @p field, and the group size.
 */
std::vector<ResultRow>
meanBy(const std::vector<ResultRow> &rows,
       const std::vector<std::string> &keys,
       const std::string &field = "normalized")
{
    std::vector<std::string> order;
    std::map<std::string, std::pair<double, std::int64_t>> groups;
    std::map<std::string, ResultRow> labels;
    for (const ResultRow &row : rows) {
        const JsonValue *value = row.get(field);
        if (!value)
            continue;
        std::string groupKey;
        ResultRow label = JsonValue::object();
        for (const auto &key : keys) {
            const JsonValue *part = row.get(key);
            const std::string text = part ? part->asString() : "";
            groupKey += text + '\x1f';
            label.set(key, part ? *part : JsonValue());
        }
        if (groups.find(groupKey) == groups.end()) {
            order.push_back(groupKey);
            labels.emplace(groupKey, std::move(label));
        }
        auto &bucket = groups[groupKey];
        bucket.first += value->asDouble();
        bucket.second += 1;
    }

    std::vector<ResultRow> out;
    for (const auto &groupKey : order) {
        const auto &bucket = groups[groupKey];
        ResultRow row = labels[groupKey];
        row.set("mean_" + field,
                bucket.first / static_cast<double>(bucket.second));
        row.set("count", bucket.second);
        out.push_back(std::move(row));
    }
    return out;
}

/** Subset of @p rows whose @p key stringifies to @p value. */
std::vector<ResultRow>
filterBy(const std::vector<ResultRow> &rows, const std::string &key,
         const std::string &value)
{
    std::vector<ResultRow> out;
    for (const ResultRow &row : rows) {
        const JsonValue *cell = row.get(key);
        if (cell && cell->asString() == value)
            out.push_back(row);
    }
    return out;
}

// --- Figure 10 -----------------------------------------------------

Scenario
fig10Performance()
{
    Scenario scenario;
    scenario.name = "fig10_performance";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"perf"};
    scenario.title = "Figure 10: normalized performance at NRH=1024";
    scenario.notes = "paper: tprac mean 0.966 (worst 0.917), abo+acb "
                     "0.993, abo-only ~1.0; TPRAC must stay "
                     "Alert-free";
    scenario.grid
        .axis("design", {"abo-only", "abo+acb-rfm", "tprac"})
        .axis("entry", toValues(suiteEntryNames()))
        .constant("nrh", 1024)
        .constant("warmup", 50'000)
        .constant("measure", 250'000);

    scenario.runPoint = [](const ParamSet &params) {
        const DesignConfig design = designFromLabel(
            params.getString("design"),
            static_cast<std::uint32_t>(params.getInt("nrh")), 1);
        return std::vector<ResultRow>{perfRow(
            params.getString("entry"), design, budgetFrom(params))};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::vector<ResultRow> out =
            meanBy(filterBy(rows, "class", "high"),
                   {"design"});
        for (ResultRow &row : out)
            row.set("subset", "high");
        for (ResultRow row : meanBy(rows, {"design"})) {
            row.set("subset", "all");
            out.push_back(std::move(row));
        }
        std::int64_t tpracRfms = 0;
        std::int64_t tpracAlerts = 0;
        for (const ResultRow &row : filterBy(rows, "design", "tprac")) {
            tpracRfms += row.get("tb_rfms")->asInt();
            tpracAlerts += row.get("alerts")->asInt();
        }
        ResultRow security = JsonValue::object();
        security.set("design", "tprac");
        security.set("subset", "security");
        security.set("tb_rfms", tpracRfms);
        security.set("alerts_must_be_zero", tpracAlerts);
        out.push_back(std::move(security));
        return out;
    };
    return scenario;
}

// --- Figure 11 -----------------------------------------------------

Scenario
fig11PracLevels()
{
    Scenario scenario;
    scenario.name = "fig11_prac_levels";
    scenario.tags = {"perf"};
    scenario.title = "Figure 11: sensitivity to the PRAC level "
                     "(NRH=1024, high-RBMPKI subset)";
    scenario.notes = "paper: flat across levels; tprac ~0.966, "
                     "abo+acb ~0.993, abo-only ~1.0";
    scenario.grid
        .axis("design", {"abo-only", "abo+acb-rfm", "tprac"})
        .axis("nmit", {1, 2, 4})
        .axis("entry", toValues(suiteEntryNames(MemIntensity::High)))
        .constant("nrh", 1024)
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        const DesignConfig design = designFromLabel(
            params.getString("design"),
            static_cast<std::uint32_t>(params.getInt("nrh")),
            static_cast<std::uint32_t>(params.getInt("nmit")));
        return std::vector<ResultRow>{perfRow(
            params.getString("entry"), design, budgetFrom(params))};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        return meanBy(rows, {"design", "nmit"});
    };
    return scenario;
}

// --- Figure 12 -----------------------------------------------------

Scenario
fig12TrefSensitivity()
{
    Scenario scenario;
    scenario.name = "fig12_tref_sensitivity";
    scenario.tags = {"perf"};
    scenario.title = "Figure 12: TPRAC vs Targeted-Refresh rate "
                     "(NRH=1024)";
    scenario.notes = "paper: 0.966 -> 0.976 -> 0.980 -> 0.986 -> ~1.0 "
                     "as TREFs replace TB-RFMs";
    scenario.grid.axis("tref_period", {0, 4, 3, 2, 1})
        .axis("entry", toValues(suiteEntryNames()))
        .constant("nrh", 1024)
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        DesignConfig design = designFromLabel(
            "tprac",
            static_cast<std::uint32_t>(params.getInt("nrh")), 1);
        design.trefPeriodRefs =
            static_cast<std::uint32_t>(params.getInt("tref_period"));
        return std::vector<ResultRow>{perfRow(
            params.getString("entry"), design, budgetFrom(params))};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::vector<ResultRow> out;
        for (const char *subset : {"high", "medium", "low"}) {
            for (ResultRow row :
                 meanBy(filterBy(rows, "class", subset),
                        {"tref_period"})) {
                row.set("subset", subset);
                out.push_back(std::move(row));
            }
        }
        for (ResultRow row : meanBy(rows, {"tref_period"})) {
            row.set("subset", "all");
            out.push_back(std::move(row));
        }
        std::map<std::int64_t, std::int64_t> skips;
        for (const ResultRow &row : rows)
            skips[row.get("tref_period")->asInt()] +=
                row.get("tb_rfms_skipped")->asInt();
        for (ResultRow &row : out)
            if (row.get("subset")->asString() == "all")
                row.set("tb_rfms_skipped",
                        skips[row.get("tref_period")->asInt()]);
        return out;
    };
    return scenario;
}

// --- Figure 13 -----------------------------------------------------

Scenario
fig13NrhSweep()
{
    Scenario scenario;
    scenario.name = "fig13_nrh_sweep";
    scenario.tags = {"perf"};
    scenario.title = "Figure 13: normalized performance vs NRH "
                     "(high+medium subset)";
    scenario.notes = "paper (all-suite): tprac 0.774/0.859/0.935/"
                     "0.966/0.984/0.994 at NRH 128..4096; abo+acb "
                     "0.893..0.993; abo-only ~1";
    scenario.grid
        .axis("design", {"abo-only", "abo+acb-rfm", "tprac",
                         "tprac+tref/4", "tprac+tref/1"})
        .axis("nrh", {128, 256, 512, 1024, 2048, 4096})
        .axis("entry", toValues(memoryIntensiveEntryNames()))
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        const DesignConfig design = designFromLabel(
            params.getString("design"),
            static_cast<std::uint32_t>(params.getInt("nrh")), 1);
        return std::vector<ResultRow>{perfRow(
            params.getString("entry"), design, budgetFrom(params))};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        return meanBy(rows, {"design", "nrh"});
    };
    return scenario;
}

// --- Figure 14 -----------------------------------------------------

Scenario
fig14CounterReset()
{
    Scenario scenario;
    scenario.name = "fig14_counter_reset";
    scenario.tags = {"perf"};
    scenario.title = "Figure 14: TPRAC counter-reset sensitivity "
                     "(high+medium subset)";
    scenario.notes = "paper: reset vs no-reset differs <1% at "
                     "NRH>=1024, ~3% at NRH=128";
    scenario.grid.axis("reset", {true, false})
        .axis("tref_period", {0, 1})
        .axis("nrh", {128, 256, 512, 1024, 4096})
        .axis("entry", toValues(memoryIntensiveEntryNames()))
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        DesignConfig design = designFromLabel(
            "tprac",
            static_cast<std::uint32_t>(params.getInt("nrh")), 1);
        design.counterReset = params.getBool("reset");
        design.trefPeriodRefs =
            static_cast<std::uint32_t>(params.getInt("tref_period"));
        return std::vector<ResultRow>{perfRow(
            params.getString("entry"), design, budgetFrom(params))};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::vector<ResultRow> out =
            meanBy(rows, {"reset", "tref_period", "nrh"});
        const FeintingParams fp =
            FeintingParams::fromSpec(DramSpec::ddr5_8000b());
        for (ResultRow &row : out) {
            const auto nrh = static_cast<std::uint32_t>(
                row.get("nrh")->asInt());
            const bool reset = row.get("reset")->asBool();
            row.set("tb_window_trefi",
                    maxSafeWindowNs(nrh, reset, fp) / fp.trefiNs);
        }
        return out;
    };
    return scenario;
}

// --- Table 4 -------------------------------------------------------

Scenario
table4Rbmpki()
{
    Scenario scenario;
    scenario.name = "table4_rbmpki";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"perf"};
    scenario.title = "Table 4: RBMPKI categorization of the workload "
                     "suite";
    scenario.notes = "bands: High >= 10, Medium in [1, 10), Low < 1";
    scenario.grid.axis("entry", toValues(suiteEntryNames()))
        .constant("warmup", 100'000) // let cache footprints warm
        .constant("measure", 200'000);

    scenario.runPoint = [](const ParamSet &params) {
        const SuiteEntry &entry =
            findSuiteEntry(params.getString("entry"));
        const DesignConfig baseline = designFromLabel("baseline", 1024, 1);
        const RunResult result =
            runOne(entry, baseline, budgetFrom(params));

        const double rbmpki = result.rbmpki();
        bool inBand = false;
        switch (entry.intensity) {
          case MemIntensity::High: inBand = rbmpki >= 10.0; break;
          case MemIntensity::Medium:
            inBand = rbmpki >= 1.0 && rbmpki < 10.0;
            break;
          case MemIntensity::Low: inBand = rbmpki < 1.0; break;
        }

        ResultRow row = JsonValue::object();
        row.set("class", intensityName(entry.intensity));
        row.set("rbmpki", rbmpki);
        row.set("ipc_sum", result.ipcSum());
        row.set("in_band", inBand);
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::int64_t inBand = 0;
        for (const ResultRow &row : rows)
            inBand += row.get("in_band")->asBool() ? 1 : 0;
        ResultRow row = JsonValue::object();
        row.set("in_band", inBand);
        row.set("total", static_cast<std::int64_t>(rows.size()));
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

// --- Table 5 -------------------------------------------------------

Scenario
table5Energy()
{
    Scenario scenario;
    scenario.name = "table5_energy";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"perf", "energy"};
    scenario.title = "Table 5: TPRAC energy overhead (high+medium "
                     "subset)";
    scenario.notes = "paper: 44.3 / 26.1 / 10.4 / 7.4 / 2.6 / 1.0 % "
                     "total at NRH 128..4096, mitigation share rising "
                     "as NRH falls";
    scenario.grid.axis("nrh", {128, 256, 512, 1024, 2048, 4096})
        .axis("entry", toValues(memoryIntensiveEntryNames()))
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        const DesignConfig tprac = designFromLabel(
            "tprac",
            static_cast<std::uint32_t>(params.getInt("nrh")), 1);
        const SuiteEntry &entry =
            findSuiteEntry(params.getString("entry"));
        const PairResult pair =
            runNormalizedPair(entry, tprac, budgetFrom(params));

        ResultRow row = JsonValue::object();
        row.set("base_total_nj", pair.baseline.energy.totalNj());
        row.set("tprac_total_nj", pair.design.energy.totalNj());
        row.set("tprac_mitigation_nj",
                pair.design.energy.mitigationNj);
        row.set("normalized",
                normalizedPerf(pair.design, pair.baseline));
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::vector<std::int64_t> order;
        std::map<std::int64_t, std::array<double, 3>> byNrh;
        for (const ResultRow &row : rows) {
            const std::int64_t nrh = row.get("nrh")->asInt();
            if (byNrh.find(nrh) == byNrh.end())
                order.push_back(nrh);
            auto &sums = byNrh[nrh];
            sums[0] += row.get("base_total_nj")->asDouble();
            sums[1] += row.get("tprac_total_nj")->asDouble();
            sums[2] += row.get("tprac_mitigation_nj")->asDouble();
        }
        std::vector<ResultRow> out;
        for (const std::int64_t nrh : order) {
            const auto &sums = byNrh[nrh];
            const double total =
                100.0 * (sums[1] - sums[0]) / sums[0];
            const double mitigation = 100.0 * sums[2] / sums[0];
            ResultRow row = JsonValue::object();
            row.set("nrh", nrh);
            row.set("mitigation_pct", mitigation);
            row.set("non_mitigation_pct", total - mitigation);
            row.set("total_pct", total);
            out.push_back(std::move(row));
        }
        return out;
    };
    return scenario;
}

} // namespace

void
registerPerfScenarios(ScenarioRegistry &registry)
{
    registry.add(fig10Performance());
    registry.add(fig11PracLevels());
    registry.add(fig12TrefSensitivity());
    registry.add(fig13NrhSweep());
    registry.add(fig14CounterReset());
    registry.add(table4Rbmpki());
    registry.add(table5Energy());
}

} // namespace pracleak::sim
