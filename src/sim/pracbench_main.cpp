/**
 * @file
 * `pracbench` -- the unified scenario runner CLI, organized as
 * subcommands:
 *
 *   pracbench list
 *   pracbench run fig10_performance --jobs 4 --out results/fig10.json
 *   pracbench run all --out results/ --csv results/
 *   pracbench run fig13_nrh_sweep --set nrh=512,1024 --set measure=50000
 *   pracbench run defense_matrix_perf --checkpoint ckpt/ --resume
 *   pracbench run defense_matrix_perf --checkpoint ckpt/ --shard 0/4
 *   pracbench run defense_matrix_perf --checkpoint ckpt/ --steal \
 *       --worker-id host1
 *   pracbench merge ckpt/ --out results/defense_matrix_perf.json
 *   pracbench record traces/ --workload h_rand_heavy
 *   pracbench replay traces/h_rand_heavy.trc --set mitigation=none,tprac
 *
 * The pre-subcommand flat flags (--list, --scenario, --record-trace,
 * --replay) still work as deprecated aliases: a leading flag is
 * translated to the matching subcommand, with a one-line note on
 * stderr.  Unknown flags and subcommands are hard errors with a
 * "did you mean" hint -- a typo'd axis or mode must never silently
 * burn a fleet-sized sweep.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "attack/adversaries.h"
#include "common/log.h"
#include "mitigation/registry.h"
#include "sim/analyze_support.h"
#include "sim/checkpoint.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/search.h"
#include "sim/suggest.h"
#include "sim/trace_support.h"
#include "telemetry/fleet_status.h"

using namespace pracleak::sim;

namespace {

void
printUsage()
{
    std::printf(
        "usage: pracbench COMMAND [options]\n"
        "\n"
        "commands:\n"
        "  run NAME...            run scenarios ('all' runs every "
        "one)\n"
        "  list                   list registered scenarios, "
        "defenses, and attackers\n"
        "  search SCENARIO        successive-halving attacker-knob "
        "search against one\n"
        "                         defense; SCENARIO supplies the "
        "evaluation universe\n"
        "                         (its spec/nbo/window_ms constants), "
        "e.g.\n"
        "                         defense_matrix_adaptive\n"
        "  merge DIR|FILE...      fuse shard/worker checkpoint "
        "journals into the\n"
        "                         result an uninterrupted single-host "
        "run would emit\n"
        "  record DIR             record memory-request traces into "
        "DIR/<name>.trc\n"
        "  replay FILE            replay a recorded trace against "
        "fresh defenses\n"
        "  analyze SERIES...      offline leakage analysis over "
        "--series-out files:\n"
        "                         burst detection and ON/OFF "
        "distinguishability of\n"
        "                         the bus-visible mitigation "
        "traffic, per defense\n"
        "  status DIR             live fleet status for a --steal "
        "checkpoint dir:\n"
        "                         points done/claimed/stale/"
        "remaining, per-worker\n"
        "                         throughput from heartbeats, ETA\n"
        "  help                   this message\n"
        "\n"
        "run options:\n"
        "  --jobs N               worker threads (default: hardware "
        "concurrency)\n"
        "  --out PATH             write JSON results; a .json path "
        "for a single\n"
        "                         scenario, else a directory "
        "(NAME.json per scenario)\n"
        "  --csv PATH             same for CSV output\n"
        "  --set AXIS=V1[,V2...]  override a grid axis (repeatable; "
        "unknown axes error)\n"
        "  --try-set AXIS=V1[,..] like --set, but skipped when the "
        "scenario has no such axis\n"
        "  --checkpoint DIR       journal each completed sweep point "
        "under DIR as\n"
        "                         workers finish (overwrites an "
        "existing journal\n"
        "                         unless --resume is given)\n"
        "  --resume               with --checkpoint: skip points "
        "already journaled by\n"
        "                         an earlier (killed) run and merge "
        "their rows back in\n"
        "  --shard I/N            run only the grid points shard I "
        "of N owns\n"
        "                         (0-based, round-robin); journals "
        "to\n"
        "                         DIR/<scenario>.shard-I-of-N.jsonl "
        "for `merge`\n"
        "  --steal                work-stealing worker over a shared "
        "--checkpoint DIR:\n"
        "                         claim points via atomic claim "
        "files, re-run a\n"
        "                         crashed worker's claims after "
        "--claim-ttl\n"
        "  --worker-id ID         unique filename-safe id for "
        "--steal (default:\n"
        "                         <hostname>-<pid>)\n"
        "  --claim-ttl SECONDS    steal claims older than this "
        "(default: 300)\n"
        "  --heartbeat-seconds S  steal-worker heartbeat cadence "
        "(default: 5)\n"
        "  --smoke                one-point sweep with a tiny "
        "budget (CI smoke)\n"
        "  --quiet                suppress per-point progress lines\n"
        "  --no-table             skip the text tables on stdout\n"
        "  --trace-out PATH       write a Chrome trace-event JSON "
        "of the sweep\n"
        "                         (Perfetto-loadable: one lane per "
        "worker, a span\n"
        "                         per point; single scenario only)\n"
        "  --series-out PATH      write the windowed command-bus "
        "time series of\n"
        "                         every simulation the sweep runs "
        "(JSONL, or CSV\n"
        "                         when PATH ends in .csv; single "
        "scenario only);\n"
        "                         with --trace-out, ACT/RFM counter "
        "lanes are\n"
        "                         merged into the trace\n"
        "  --log-level LEVEL      quiet|warn|info|debug or 0-9 "
        "(default: warn)\n"
        "\n"
        "search options:\n"
        "  --target-defense D     defense under attack (required; "
        "see `pracbench list`)\n"
        "  --attacker NAME        attacker whose knobs are walked "
        "(default: the\n"
        "                         defense-matched adversary)\n"
        "  --budget N             candidate configurations, "
        "including the oblivious\n"
        "                         baseline (default: the scenario's "
        "'budget' constant)\n"
        "  --rounds N             successive-halving rounds; the "
        "last runs the full\n"
        "                         window (default: the scenario's "
        "'rounds' constant)\n"
        "  --seed S               candidate-sampling seed\n"
        "  --set attacker.K=V     pin knob K (aggressors, pool_size, "
        "burst_spacing,\n"
        "                         phase) instead of sampling it; "
        "--set attacker=NAME\n"
        "                         is an alias for --attacker\n"
        "  --out FILE.json        write the search result JSON "
        "(default: stdout)\n"
        "  --jobs/--checkpoint/--resume/--quiet  as for run; the "
        "result is\n"
        "                         byte-identical at any jobs width "
        "and across a\n"
        "                         kill + --resume cycle\n"
        "\n"
        "merge options:\n"
        "  --scenario NAME        merge only NAME's journals from "
        "the given DIRs\n"
        "  --jobs N               value stamped into the output's "
        "'jobs' field so it\n"
        "                         byte-matches a single-host run "
        "(default: hardware\n"
        "                         concurrency, like run)\n"
        "  --out/--csv/--no-table as for run\n"
        "\n"
        "record options: --workload NAME (repeatable), --set/--try-"
        "set, --quiet,\n"
        "                --trace-out PATH, --series-out PATH\n"
        "replay options: --set mitigation=A,B, --verify, --out "
        "FILE.json,\n"
        "                --no-table, --quiet, --trace-out PATH, "
        "--series-out PATH\n"
        "\n"
        "analyze options:\n"
        "  --defense-matrix       also print/emit the per-defense "
        "worst-case\n"
        "                         summary (the defense_matrix_"
        "leakage verdicts)\n"
        "  --out FILE.json        write verdicts (and summary) as "
        "JSON\n"
        "  --no-table             skip the text tables on stdout\n"
        "\n"
        "status options:\n"
        "  --scenario NAME        show only NAME (default: every "
        "scenario with\n"
        "                         fleet state under DIR)\n"
        "  --ttl SECONDS          a claim or heartbeat older than "
        "this is stale\n"
        "                         (default: 60; use the fleet's "
        "--claim-ttl to match\n"
        "                         the workers' own stealing "
        "judgement)\n"
        "\n"
        "The old flat flags (--list, --scenario NAME, --record-trace "
        "DIR,\n"
        "--replay FILE) keep working as deprecated aliases for the "
        "commands\n"
        "above.\n");
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::vector<JsonValue>
parseValueList(const std::string &text)
{
    std::vector<JsonValue> values;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string piece =
            text.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!piece.empty())
            values.push_back(parseScalar(piece));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return values;
}

std::string
outputPath(const std::string &base, const std::string &scenario,
           const char *extension, bool single)
{
    if (single && endsWith(base, extension))
        return base;
    std::string dir = base;
    if (!dir.empty() && dir.back() != '/')
        dir += '/';
    return dir + scenario + extension;
}

/**
 * Create the directory every emission under @p base will land in,
 * *before* any sweep runs: a long sweep must not die at emission
 * time on a missing or unwritable output location.
 */
bool
prepareOutputDir(const std::string &base, const char *extension,
                 bool single)
{
    if (base.empty())
        return true;
    std::filesystem::path dir(base);
    if (single && endsWith(base, extension))
        dir = dir.parent_path();
    if (dir.empty())
        return true;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec || !std::filesystem::is_directory(dir)) {
        std::fprintf(stderr,
                     "pracbench: cannot create output directory "
                     "%s%s%s\n",
                     dir.string().c_str(), ec ? ": " : "",
                     ec ? ec.message().c_str() : "");
        return false;
    }
    return true;
}

/** "unknown X 'word' (did you mean 'hint'?)" on stderr; exits 2. */
[[noreturn]] void
rejectUnknown(const std::string &what, const std::string &word,
              const std::vector<std::string> &candidates)
{
    const std::string hint = closestTo(word, candidates);
    std::fprintf(stderr, "pracbench: unknown %s '%s'%s%s%s\n",
                 what.c_str(), word.c_str(),
                 hint.empty() ? "" : " (did you mean '",
                 hint.c_str(), hint.empty() ? "" : "'?)");
    std::fprintf(stderr, "pracbench: see `pracbench help`\n");
    std::exit(2);
}

/** Sweep flags shared by `run` (and partly by record/replay). */
struct RunCli
{
    std::vector<std::string> names;
    RunOptions options;
    std::string outJson;
    std::string outCsv;
    std::string checkpointDir;
    std::vector<std::string> workloads;
    bool verify = false;
    bool table = true;
    bool smoke = false;
};

/** Tiny budgets for every knob a scenario might sweep (--smoke). */
void
applySmokeBudgets(RunOptions &options)
{
    options.firstPointOnly = true;
    // Applied after the whole command line is parsed so an explicit
    // --set/--try-set for the same axis always wins, wherever it
    // appears relative to --smoke.
    const std::pair<const char *, JsonValue> tiny[] = {
        {"warmup", std::int64_t{2'000}},
        {"measure", std::int64_t{5'000}},
        {"window_ms", 0.2},
        {"encryptions", std::int64_t{60}},
        {"repeats", std::int64_t{1}},
        {"bits", std::int64_t{4}},
        {"symbols", std::int64_t{2}},
        {"message_bits", std::int64_t{4}},
    };
    for (const auto &[axis, value] : tiny)
        if (options.overrides.find(axis) ==
                options.overrides.end() &&
            options.softOverrides.find(axis) ==
                options.softOverrides.end())
            options.softOverrides[axis] = {value};
}

/** Parse "I/N" (0-based, I < N); exits 2 with a message when bad. */
ShardSpec
parseShardSpec(const std::string &spec)
{
    const std::size_t slash = spec.find('/');
    bool ok = slash != std::string::npos && slash > 0 &&
              slash + 1 < spec.size();
    unsigned long index = 0;
    unsigned long count = 0;
    if (ok) {
        char *end = nullptr;
        index = std::strtoul(spec.c_str(), &end, 10);
        ok = end == spec.c_str() + slash;
        count = std::strtoul(spec.c_str() + slash + 1, &end, 10);
        ok = ok && end == spec.c_str() + spec.size();
    }
    if (!ok || count == 0 || index >= count) {
        std::fprintf(stderr,
                     "pracbench: --shard expects I/N with 0 <= I < "
                     "N (e.g. --shard 0/4), got '%s'\n",
                     spec.c_str());
        std::exit(2);
    }
    ShardSpec shard;
    shard.index = static_cast<unsigned>(index);
    shard.count = static_cast<unsigned>(count);
    return shard;
}

/** <hostname>-<pid>, restricted to filename-safe characters. */
std::string
defaultWorkerId()
{
    char host[256] = "host";
    if (::gethostname(host, sizeof(host) - 1) != 0)
        std::strcpy(host, "host");
    host[sizeof(host) - 1] = '\0';
    std::string id(host);
    for (char &c : id)
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '-' && c != '_' && c != '.')
            c = '_';
    return id + "-" + std::to_string(::getpid());
}

/** Fetch the value after a flag; exits 2 when it is missing. */
std::string
nextValue(const std::vector<std::string> &args, std::size_t &i,
          const std::string &flag)
{
    if (i + 1 >= args.size()) {
        std::fprintf(stderr, "pracbench: %s needs a value\n",
                     flag.c_str());
        std::exit(2);
    }
    return args[++i];
}

/**
 * Parse the sweep flags every data-producing command shares.
 * Returns false when @p arg is not one of them (positional or a
 * command-specific flag).
 */
bool
parseCommonFlag(RunCli &cli, const std::vector<std::string> &args,
                std::size_t &i)
{
    const std::string &arg = args[i];
    if (arg == "--scenario" || arg == "-s") {
        cli.names.push_back(nextValue(args, i, arg));
    } else if (arg == "--jobs" || arg == "-j") {
        cli.options.jobs = static_cast<unsigned>(
            std::strtoul(nextValue(args, i, arg).c_str(), nullptr,
                         10));
    } else if (arg == "--out" || arg == "-o") {
        cli.outJson = nextValue(args, i, arg);
    } else if (arg == "--csv") {
        cli.outCsv = nextValue(args, i, arg);
    } else if (arg == "--set" || arg == "--try-set") {
        const std::string spec = nextValue(args, i, arg);
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0) {
            std::fprintf(stderr,
                         "pracbench: %s expects AXIS=V1[,V2]\n",
                         arg.c_str());
            std::exit(2);
        }
        auto &target = arg == "--set" ? cli.options.overrides
                                      : cli.options.softOverrides;
        target[spec.substr(0, eq)] =
            parseValueList(spec.substr(eq + 1));
    } else if (arg == "--smoke") {
        cli.smoke = true;
    } else if (arg == "--quiet" || arg == "-q") {
        cli.options.progress = false;
    } else if (arg == "--no-table") {
        cli.table = false;
    } else if (arg == "--trace-out") {
        cli.options.telemetry.traceOut = nextValue(args, i, arg);
    } else if (arg == "--series-out") {
        cli.options.telemetry.seriesOut = nextValue(args, i, arg);
    } else if (arg == "--log-level") {
        const std::string value = nextValue(args, i, arg);
        const int level = pracleak::parseLogLevel(value);
        if (level < 0) {
            std::fprintf(stderr,
                         "pracbench: --log-level expects "
                         "quiet|warn|info|debug or 0-9, got '%s'\n",
                         value.c_str());
            std::exit(2);
        }
        pracleak::setLogLevel(level);
    } else {
        return false;
    }
    return true;
}

int
commandList(const std::vector<std::string> &args)
{
    for (std::size_t i = 0; i < args.size(); ++i)
        if (args[i] == "--help" || args[i] == "-h") {
            printUsage();
            return 0;
        } else {
            rejectUnknown("option for `list`", args[i],
                          {"--help"});
        }
    const ScenarioRegistry &registry = ScenarioRegistry::instance();
    std::printf("%-28s %7s  %s\n", "scenario", "points", "tags");
    for (const Scenario *scenario : registry.all()) {
        std::string tags;
        for (const std::string &tag : scenario->tags)
            tags += (tags.empty() ? "" : ", ") + tag;
        std::printf("%-28s %7zu  %s\n", scenario->name.c_str(),
                    scenario->grid.size(), tags.c_str());
        std::printf("    %s\n", scenario->title.c_str());
    }

    std::printf("\n%-28s %s\n", "mitigation", "description");
    for (const pracleak::MitigationInfo &info :
         pracleak::mitigationCatalog())
        std::printf("%-28s %s\n", info.name, info.description);

    std::printf("\n%-28s %-10s %s\n", "attacker", "tuned-for",
                "description");
    for (const pracleak::AttackerInfo &info :
         pracleak::attackerCatalog())
        std::printf("%-28s %-10s %s\n", info.name,
                    info.targetDefense[0] ? info.targetDefense : "-",
                    info.description);
    return 0;
}

int
commandRun(const std::vector<std::string> &args)
{
    RunCli cli;
    bool stealWorkerGiven = false;
    static const std::vector<std::string> known = {
        "--scenario", "--jobs",       "--out",
        "--csv",      "--set",        "--try-set",
        "--smoke",    "--quiet",      "--no-table",
        "--checkpoint", "--resume",   "--shard",
        "--steal",    "--worker-id",  "--claim-ttl",
        "--heartbeat-seconds", "--trace-out", "--series-out",
        "--log-level", "--help"};
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (parseCommonFlag(cli, args, i))
            continue;
        if (arg == "--checkpoint") {
            cli.checkpointDir = nextValue(args, i, arg);
        } else if (arg == "--resume") {
            cli.options.checkpoint.resume = true;
        } else if (arg == "--shard") {
            cli.options.shard =
                parseShardSpec(nextValue(args, i, arg));
        } else if (arg == "--steal") {
            cli.options.steal.enabled = true;
        } else if (arg == "--worker-id") {
            cli.options.steal.workerId = nextValue(args, i, arg);
            stealWorkerGiven = true;
        } else if (arg == "--claim-ttl") {
            cli.options.steal.claimTtlSeconds =
                std::strtod(nextValue(args, i, arg).c_str(),
                            nullptr);
        } else if (arg == "--heartbeat-seconds") {
            cli.options.telemetry.heartbeatSeconds =
                std::strtod(nextValue(args, i, arg).c_str(),
                            nullptr);
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            rejectUnknown("option for `run`", arg, known);
        } else {
            cli.names.push_back(arg);
        }
    }

    if (cli.smoke)
        applySmokeBudgets(cli.options);
    if (cli.options.checkpoint.resume && cli.checkpointDir.empty()) {
        std::fprintf(stderr,
                     "pracbench: --resume requires --checkpoint\n");
        return 2;
    }
    if ((stealWorkerGiven ||
         cli.options.steal.claimTtlSeconds != 300.0) &&
        !cli.options.steal.enabled) {
        std::fprintf(stderr,
                     "pracbench: --worker-id/--claim-ttl require "
                     "--steal\n");
        return 2;
    }
    if (cli.options.steal.enabled &&
        cli.options.steal.workerId.empty())
        cli.options.steal.workerId = defaultWorkerId();
    cli.options.checkpoint.directory = cli.checkpointDir;

    const ScenarioRegistry &registry = ScenarioRegistry::instance();
    if (cli.names.empty()) {
        std::fprintf(stderr,
                     "pracbench: run needs at least one scenario "
                     "name (or 'all'); try `pracbench list`\n");
        return 2;
    }
    if (cli.names.size() == 1 && cli.names[0] == "all") {
        cli.names.clear();
        for (const Scenario *scenario : registry.all())
            cli.names.push_back(scenario->name);
    }
    // Validate every name before running anything: a typo in the
    // third of five scenarios must not surface hours into the first.
    std::vector<std::string> knownNames;
    for (const Scenario *scenario : registry.all())
        knownNames.push_back(scenario->name);
    for (const std::string &name : cli.names)
        if (!registry.find(name))
            rejectUnknown("scenario", name, knownNames);

    const bool single = cli.names.size() == 1;
    if (!single && (endsWith(cli.outJson, ".json") ||
                    endsWith(cli.outCsv, ".csv"))) {
        std::fprintf(stderr,
                     "pracbench: multiple scenarios need a directory "
                     "for --out/--csv, not a file path\n");
        return 2;
    }
    if (!single && !cli.options.telemetry.traceOut.empty()) {
        std::fprintf(stderr,
                     "pracbench: --trace-out records one sweep per "
                     "file; run the scenarios separately\n");
        return 2;
    }
    if (!single && !cli.options.telemetry.seriesOut.empty()) {
        std::fprintf(stderr,
                     "pracbench: --series-out records one sweep per "
                     "file; run the scenarios separately\n");
        return 2;
    }
    // Fail fast on bad output locations: create them now rather
    // than discovering a missing/unwritable directory at emission
    // time, after a long sweep.
    if (!prepareOutputDir(cli.outJson, ".json", single) ||
        !prepareOutputDir(cli.outCsv, ".csv", single) ||
        !prepareOutputDir(cli.checkpointDir, ".jsonl",
                          /*single=*/false))
        return 2;

    for (const std::string &name : cli.names) {
        try {
            const SweepResult result =
                runScenarioByName(name, cli.options);
            if (cli.table)
                printTables(result);
            // Finalize via temp + atomic rename: a crash during
            // emission must never leave a torn artifact that a
            // later --resume (or a results consumer) trusts.
            if (!cli.outJson.empty()) {
                const std::string path = outputPath(
                    cli.outJson, name, ".json", single);
                if (!writeFileAtomic(path,
                                     result.toJson().dump(2) + "\n"))
                    return 1;
                std::fprintf(stderr, "pracbench: wrote %s\n",
                             path.c_str());
            }
            if (!cli.outCsv.empty()) {
                const std::string path =
                    outputPath(cli.outCsv, name, ".csv", single);
                if (!writeFileAtomic(path, result.toCsv()))
                    return 1;
                std::fprintf(stderr, "pracbench: wrote %s\n",
                             path.c_str());
            }
        } catch (const std::exception &error) {
            std::fprintf(stderr, "pracbench: %s\n", error.what());
            return 2;
        }
    }
    return 0;
}

/**
 * `pracbench search SCENARIO --target-defense D [--budget N ...]`:
 * run the successive-halving attacker search (sim/search.h).  The
 * named scenario supplies the evaluation universe -- its single-value
 * spec/nbo/window_ms (and budget/rounds/seed/attacker) constants seed
 * the defaults; explicit flags override them.
 */
int
commandSearch(const std::vector<std::string> &args)
{
    std::string scenarioName;
    std::string targetDefense;
    std::string attackerFlag;
    std::string checkpointDir;
    std::string outJson;
    pracleak::AttackerConfig base;
    long budget = -1;
    long rounds = -1;
    long long seedValue = -1;
    int jobs = -1;
    bool resume = false;
    bool quiet = false;
    static const std::vector<std::string> known = {
        "--target-defense", "--attacker", "--budget",
        "--rounds",         "--seed",     "--jobs",
        "--checkpoint",     "--resume",   "--out",
        "--set",            "--quiet",    "--help"};
    static const std::vector<std::string> knownSetKeys = {
        "attacker", "attacker.aggressors", "attacker.pool_size",
        "attacker.burst_spacing", "attacker.phase"};
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--target-defense") {
            targetDefense = nextValue(args, i, arg);
        } else if (arg == "--attacker") {
            attackerFlag = nextValue(args, i, arg);
        } else if (arg == "--budget") {
            budget = std::strtol(nextValue(args, i, arg).c_str(),
                                 nullptr, 10);
        } else if (arg == "--rounds") {
            rounds = std::strtol(nextValue(args, i, arg).c_str(),
                                 nullptr, 10);
        } else if (arg == "--seed") {
            seedValue = std::strtoll(
                nextValue(args, i, arg).c_str(), nullptr, 0);
        } else if (arg == "--jobs" || arg == "-j") {
            jobs = static_cast<int>(std::strtol(
                nextValue(args, i, arg).c_str(), nullptr, 10));
        } else if (arg == "--checkpoint") {
            checkpointDir = nextValue(args, i, arg);
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--out" || arg == "-o") {
            outJson = nextValue(args, i, arg);
        } else if (arg == "--quiet" || arg == "-q") {
            quiet = true;
        } else if (arg == "--set") {
            const std::string spec = nextValue(args, i, arg);
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr,
                             "pracbench: --set expects KEY=VALUE\n");
                return 2;
            }
            const std::string key = spec.substr(0, eq);
            const std::string value = spec.substr(eq + 1);
            if (key == "attacker") {
                attackerFlag = value;
            } else if (key == "attacker.aggressors" ||
                       key == "attacker.pool_size" ||
                       key == "attacker.burst_spacing" ||
                       key == "attacker.phase") {
                const auto parsed = static_cast<std::uint32_t>(
                    std::strtoul(value.c_str(), nullptr, 10));
                if (key == "attacker.aggressors")
                    base.aggressors = parsed;
                else if (key == "attacker.pool_size")
                    base.poolSize = parsed;
                else if (key == "attacker.burst_spacing")
                    base.burstSpacing = parsed;
                else
                    base.phase = parsed;
            } else {
                rejectUnknown("search --set key", key, knownSetKeys);
            }
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            rejectUnknown("option for `search`", arg, known);
        } else if (scenarioName.empty()) {
            scenarioName = arg;
        } else {
            std::fprintf(stderr,
                         "pracbench: search takes exactly one "
                         "scenario name\n");
            return 2;
        }
    }

    if (scenarioName.empty()) {
        std::fprintf(stderr,
                     "pracbench: search needs a scenario name "
                     "(e.g. defense_matrix_adaptive); try "
                     "`pracbench list`\n");
        return 2;
    }
    const ScenarioRegistry &registry = ScenarioRegistry::instance();
    const Scenario *scenario = registry.find(scenarioName);
    if (!scenario) {
        std::vector<std::string> knownNames;
        for (const Scenario *entry : registry.all())
            knownNames.push_back(entry->name);
        rejectUnknown("scenario", scenarioName, knownNames);
    }
    if (targetDefense.empty()) {
        std::fprintf(stderr,
                     "pracbench: search requires --target-defense "
                     "(see `pracbench list`)\n");
        return 2;
    }
    if (!pracleak::findMitigation(targetDefense))
        rejectUnknown("defense", targetDefense,
                      pracleak::mitigationNames());
    if (!attackerFlag.empty() && attackerFlag != "auto" &&
        !pracleak::findAttacker(attackerFlag))
        rejectUnknown("attacker", attackerFlag,
                      pracleak::attackerNames());
    if (resume && checkpointDir.empty()) {
        std::fprintf(stderr,
                     "pracbench: --resume requires --checkpoint\n");
        return 2;
    }
    if (!outJson.empty() && !endsWith(outJson, ".json")) {
        std::fprintf(stderr,
                     "pracbench: search --out must be a .json file "
                     "path\n");
        return 2;
    }
    if (!prepareOutputDir(outJson, ".json", /*single=*/true) ||
        !prepareOutputDir(checkpointDir, ".jsonl",
                          /*single=*/false))
        return 2;

    SearchOptions options;
    options.targetDefense = targetDefense;
    options.base = base;
    options.checkpointDir = checkpointDir;
    options.resume = resume;
    // Scenario constants seed the defaults...
    const auto singleValue =
        [&scenario](const char *name) -> const JsonValue * {
        const ParamAxis *axis = scenario->grid.findAxis(name);
        return axis && axis->values.size() == 1 ? &axis->values[0]
                                                : nullptr;
    };
    if (const JsonValue *value = singleValue("spec"))
        options.specName = value->asString();
    if (const JsonValue *value = singleValue("nbo"))
        options.nbo =
            static_cast<std::uint32_t>(value->asInt());
    if (const JsonValue *value = singleValue("window_ms"))
        options.windowMs = value->asDouble();
    if (const JsonValue *value = singleValue("budget"))
        options.budget =
            static_cast<std::uint32_t>(value->asInt());
    if (const JsonValue *value = singleValue("rounds"))
        options.rounds =
            static_cast<std::uint32_t>(value->asInt());
    if (const JsonValue *value = singleValue("seed"))
        options.seed =
            static_cast<std::uint64_t>(value->asInt());
    if (const JsonValue *value = singleValue("attacker"))
        if (value->asString() != "auto")
            options.attacker = value->asString();
    // ... and explicit flags override them.
    if (!attackerFlag.empty())
        options.attacker =
            attackerFlag == "auto" ? "" : attackerFlag;
    if (budget >= 0)
        options.budget = static_cast<std::uint32_t>(budget);
    if (rounds >= 0)
        options.rounds = static_cast<std::uint32_t>(rounds);
    if (seedValue >= 0)
        options.seed = static_cast<std::uint64_t>(seedValue);
    if (jobs >= 0)
        options.jobs = jobs;

    try {
        const SearchResult result = runAttackerSearch(options);
        const std::string text = result.toJson().dump(2) + "\n";
        if (outJson.empty()) {
            std::fputs(text.c_str(), stdout);
        } else {
            if (!writeFileAtomic(outJson, text))
                return 1;
            std::fprintf(stderr, "pracbench: wrote %s\n",
                         outJson.c_str());
        }
        if (!quiet)
            std::fprintf(
                stderr,
                "pracbench: search vs %s: best %s max_counter=%u "
                "(oblivious %u, contract %u)\n",
                options.targetDefense.c_str(),
                result.best.config.attacker.c_str(),
                static_cast<unsigned>(result.best.maxCounter),
                static_cast<unsigned>(result.oblivious.maxCounter),
                static_cast<unsigned>(result.contract));
    } catch (const std::exception &error) {
        std::fprintf(stderr, "pracbench: %s\n", error.what());
        return 2;
    }
    return 0;
}

int
commandMerge(const std::vector<std::string> &args)
{
    std::vector<std::string> sources;
    std::string scenarioFilter;
    std::string outJson;
    std::string outCsv;
    unsigned jobs = 0;
    bool table = true;
    static const std::vector<std::string> known = {
        "--scenario", "--jobs", "--out", "--csv", "--no-table",
        "--help"};
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--scenario" || arg == "-s") {
            scenarioFilter = nextValue(args, i, arg);
        } else if (arg == "--jobs" || arg == "-j") {
            jobs = static_cast<unsigned>(std::strtoul(
                nextValue(args, i, arg).c_str(), nullptr, 10));
        } else if (arg == "--out" || arg == "-o") {
            outJson = nextValue(args, i, arg);
        } else if (arg == "--csv") {
            outCsv = nextValue(args, i, arg);
        } else if (arg == "--no-table") {
            table = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            rejectUnknown("option for `merge`", arg, known);
        } else {
            sources.push_back(arg);
        }
    }
    if (sources.empty()) {
        std::fprintf(stderr,
                     "pracbench: merge needs checkpoint "
                     "directories and/or journal files\n");
        return 2;
    }

    try {
        std::vector<std::string> paths;
        for (const std::string &source : sources) {
            std::error_code ec;
            if (std::filesystem::is_directory(source, ec)) {
                for (std::string &path :
                     journalFilesFor(source, scenarioFilter))
                    paths.push_back(std::move(path));
            } else {
                // An explicit file bypasses the scenario filter:
                // naming it IS the filter.
                paths.push_back(source);
            }
        }
        if (paths.empty()) {
            std::fprintf(stderr,
                         "pracbench: no%s%s journals found under "
                         "the given directories\n",
                         scenarioFilter.empty() ? "" : " ",
                         scenarioFilter.c_str());
            return 2;
        }

        // Stamp the same 'jobs' the equivalent single-host run
        // would record (0 resolves exactly like ThreadPool does),
        // so the merged JSON can byte-match it.
        if (jobs == 0)
            jobs =
                std::max(2u, std::thread::hardware_concurrency());
        const SweepResult result = mergeSweepFromJournals(paths, jobs);
        if (table)
            printTables(result);
        if (!prepareOutputDir(outJson, ".json", /*single=*/true) ||
            !prepareOutputDir(outCsv, ".csv", /*single=*/true))
            return 2;
        if (!outJson.empty()) {
            const std::string path = outputPath(
                outJson, result.scenario, ".json", /*single=*/true);
            if (!writeFileAtomic(path,
                                 result.toJson().dump(2) + "\n"))
                return 1;
            std::fprintf(stderr, "pracbench: wrote %s\n",
                         path.c_str());
        }
        if (!outCsv.empty()) {
            const std::string path = outputPath(
                outCsv, result.scenario, ".csv", /*single=*/true);
            if (!writeFileAtomic(path, result.toCsv()))
                return 1;
            std::fprintf(stderr, "pracbench: wrote %s\n",
                         path.c_str());
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "pracbench: %s\n", error.what());
        return 2;
    }
    return 0;
}

int
commandRecord(const std::vector<std::string> &args)
{
    RunCli cli;
    std::vector<std::string> dirs;
    static const std::vector<std::string> known = {
        "--workload",  "--set",        "--try-set",
        "--smoke",     "--quiet",      "--trace-out",
        "--series-out", "--log-level", "--help"};
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--workload" || arg == "-w") {
            cli.workloads.push_back(nextValue(args, i, arg));
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (parseCommonFlag(cli, args, i)) {
            // --out/--csv/--scenario/--jobs parse but make no sense
            // here; reject below for a precise message.
        } else if (!arg.empty() && arg[0] == '-') {
            rejectUnknown("option for `record`", arg, known);
        } else {
            dirs.push_back(arg);
        }
    }
    if (dirs.size() != 1) {
        std::fprintf(stderr,
                     "pracbench: record needs exactly one trace "
                     "directory\n");
        return 2;
    }
    if (!cli.outJson.empty() || !cli.outCsv.empty() ||
        !cli.names.empty()) {
        std::fprintf(stderr,
                     "pracbench: record writes DIR/<workload>.trc; "
                     "--out/--csv/--scenario do not apply\n");
        return 2;
    }
    if (cli.smoke)
        applySmokeBudgets(cli.options);

    RecordCliOptions record;
    record.dir = dirs[0];
    record.workloads = cli.workloads;
    record.progress = cli.options.progress;
    record.traceOut = cli.options.telemetry.traceOut;
    record.seriesOut = cli.options.telemetry.seriesOut;
    // Soft overrides (--try-set, --smoke shrink) apply only where
    // record mode has such a knob; hard --set errors on unknown
    // keys inside the command.
    const char *knownKeys[] = {"mitigation", "spec",    "nbo",
                               "nrh",        "warmup",  "measure",
                               "channels",   "cores"};
    for (const auto &[axis, values] : cli.options.softOverrides)
        for (const char *name : knownKeys)
            if (axis == name)
                record.settings[axis] = values;
    for (const auto &[axis, values] : cli.options.overrides)
        record.settings[axis] = values;
    return runRecordTraceCommand(record);
}

int
commandReplay(const std::vector<std::string> &args)
{
    RunCli cli;
    std::vector<std::string> files;
    static const std::vector<std::string> known = {
        "--set",       "--try-set",  "--verify", "--out",
        "--no-table",  "--quiet",    "--trace-out",
        "--series-out", "--log-level", "--help"};
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--verify") {
            cli.verify = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (parseCommonFlag(cli, args, i)) {
            // handled
        } else if (!arg.empty() && arg[0] == '-') {
            rejectUnknown("option for `replay`", arg, known);
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 1) {
        std::fprintf(stderr,
                     "pracbench: replay needs exactly one trace "
                     "file\n");
        return 2;
    }
    if (!cli.outCsv.empty() || !cli.names.empty()) {
        std::fprintf(stderr,
                     "pracbench: --csv/--scenario do not apply to "
                     "replay\n");
        return 2;
    }

    ReplayCliOptions replay;
    replay.tracePath = files[0];
    replay.verify = cli.verify;
    replay.outJson = cli.outJson;
    replay.table = cli.table;
    replay.progress = cli.options.progress;
    replay.traceOut = cli.options.telemetry.traceOut;
    replay.seriesOut = cli.options.telemetry.seriesOut;
    // Hard --set keeps its contract: anything replay cannot honour
    // is an error, not a silent no-op (the stream is fixed; only
    // the defense can vary).
    for (const auto &[axis, values] : cli.options.overrides) {
        (void)values;
        if (axis != "mitigation") {
            std::fprintf(stderr,
                         "pracbench: replay supports only --set "
                         "mitigation=... (the recorded stream pins "
                         "every other knob)\n");
            return 2;
        }
    }
    for (const auto *set :
         {&cli.options.overrides, &cli.options.softOverrides}) {
        const auto it = set->find("mitigation");
        if (it == set->end() || !replay.mitigations.empty())
            continue;
        for (const JsonValue &value : it->second)
            replay.mitigations.push_back(value.asString());
    }
    // Replay writes outJson verbatim as one file; a directory form
    // would only fail at emission time, after the sweep.
    if (!replay.outJson.empty() &&
        !endsWith(replay.outJson, ".json")) {
        std::fprintf(stderr,
                     "pracbench: replay --out must be a .json file "
                     "path\n");
        return 2;
    }
    if (!prepareOutputDir(replay.outJson, ".json", /*single=*/true))
        return 2;
    return runReplayCommand(replay);
}

int
commandAnalyze(const std::vector<std::string> &args)
{
    AnalyzeCliOptions options;
    static const std::vector<std::string> known = {
        "--defense-matrix", "--out", "--no-table", "--help"};
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--defense-matrix") {
            options.defenseMatrix = true;
        } else if (arg == "--out" || arg == "-o") {
            options.outJson = nextValue(args, i, arg);
        } else if (arg == "--no-table") {
            options.table = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            rejectUnknown("option for `analyze`", arg, known);
        } else {
            options.paths.push_back(arg);
        }
    }
    if (options.paths.empty()) {
        std::fprintf(stderr,
                     "pracbench: analyze needs at least one "
                     "--series-out file\n");
        return 2;
    }
    if (!options.outJson.empty() &&
        !endsWith(options.outJson, ".json")) {
        std::fprintf(stderr,
                     "pracbench: analyze --out must be a .json "
                     "file path\n");
        return 2;
    }
    if (!prepareOutputDir(options.outJson, ".json", /*single=*/true))
        return 2;
    return runAnalyzeCommand(options);
}

int
commandStatus(const std::vector<std::string> &args)
{
    std::string dir;
    std::string scenarioFilter;
    double ttl = 60.0;
    static const std::vector<std::string> known = {
        "--scenario", "--ttl", "--help"};
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--scenario" || arg == "-s") {
            scenarioFilter = nextValue(args, i, arg);
        } else if (arg == "--ttl") {
            ttl = std::strtod(nextValue(args, i, arg).c_str(),
                              nullptr);
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            rejectUnknown("option for `status`", arg, known);
        } else if (dir.empty()) {
            dir = arg;
        } else {
            std::fprintf(stderr,
                         "pracbench: status takes exactly one "
                         "checkpoint directory\n");
            return 2;
        }
    }
    if (dir.empty()) {
        std::fprintf(stderr,
                     "pracbench: status needs the fleet's "
                     "--checkpoint directory\n");
        return 2;
    }

    try {
        std::vector<std::string> scenarios;
        if (!scenarioFilter.empty())
            scenarios.push_back(scenarioFilter);
        else
            scenarios = pracleak::telemetry::fleetScenarios(dir);
        if (scenarios.empty()) {
            std::fprintf(stderr,
                         "pracbench: no fleet state (journals, "
                         "claims, heartbeats) under %s\n",
                         dir.c_str());
            return 2;
        }
        for (const std::string &scenario : scenarios) {
            const pracleak::telemetry::FleetStatus status =
                pracleak::telemetry::collectFleetStatus(dir, scenario,
                                                        ttl);
            std::fputs(
                pracleak::telemetry::renderFleetStatus(status)
                    .c_str(),
                stdout);
        }
    } catch (const std::exception &error) {
        std::fprintf(stderr, "pracbench: %s\n", error.what());
        return 2;
    }
    return 0;
}

/**
 * Map a pre-subcommand flat command line onto a subcommand.  The
 * mode flag (--list/--record-trace/--replay, default run) is
 * removed from @p args; everything else parses unchanged because
 * the subcommands kept every flat flag as an alias.
 */
std::string
translateLegacy(std::vector<std::string> &args)
{
    std::string command = "run";
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--help" || arg == "-h")
            return "help";
        if (arg == "--list") {
            args.erase(args.begin() +
                       static_cast<std::ptrdiff_t>(i));
            command = "list";
            break;
        }
        if (arg == "--record-trace") {
            // Keep the DIR value: it becomes record's positional.
            args.erase(args.begin() +
                       static_cast<std::ptrdiff_t>(i));
            command = "record";
            break;
        }
        if (arg == "--replay") {
            args.erase(args.begin() +
                       static_cast<std::ptrdiff_t>(i));
            command = "replay";
            break;
        }
    }
    std::fprintf(stderr,
                 "pracbench: note: flat flags are deprecated; use "
                 "`pracbench %s ...` (see `pracbench help`)\n",
                 command.c_str());
    return command;
}

} // namespace

int
main(int argc, char **argv)
{
    registerBuiltinScenarios();

    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        printUsage();
        return 2;
    }

    std::string command;
    if (args[0][0] != '-') {
        command = args[0];
        args.erase(args.begin());
    } else {
        command = translateLegacy(args);
    }

    if (command == "help") {
        printUsage();
        return 0;
    }
    if (command == "list")
        return commandList(args);
    if (command == "run")
        return commandRun(args);
    if (command == "search")
        return commandSearch(args);
    if (command == "merge")
        return commandMerge(args);
    if (command == "record")
        return commandRecord(args);
    if (command == "replay")
        return commandReplay(args);
    if (command == "analyze")
        return commandAnalyze(args);
    if (command == "status")
        return commandStatus(args);
    rejectUnknown("command", command,
                  {"run", "list", "search", "merge", "record",
                   "replay", "analyze", "status", "help"});
}
