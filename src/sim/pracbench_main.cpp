/**
 * @file
 * `pracbench` -- the unified scenario runner CLI.
 *
 *   pracbench --list
 *   pracbench --scenario fig10_performance --jobs 4 --out results/fig10.json
 *   pracbench --scenario all --out results/ --csv results/
 *   pracbench --scenario fig13_nrh_sweep --set nrh=512,1024 --set measure=50000
 *   pracbench --scenario defense_matrix_perf --checkpoint ckpt/ --resume
 *   pracbench --record-trace traces/ --workload h_rand_heavy
 *   pracbench --replay traces/h_rand_heavy.trc --set mitigation=none,tprac
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/trace_support.h"

using namespace pracleak::sim;

namespace {

void
printUsage()
{
    std::printf(
        "usage: pracbench [options]\n"
        "\n"
        "  --list                 list registered scenarios and exit\n"
        "  --scenario NAME        run a scenario (repeatable; 'all' "
        "runs every one)\n"
        "  --jobs N               worker threads (default: hardware "
        "concurrency)\n"
        "  --out PATH             write JSON results; a .json path "
        "for a single\n"
        "                         scenario, else a directory "
        "(NAME.json per scenario)\n"
        "  --csv PATH             same for CSV output\n"
        "  --checkpoint DIR       journal each completed sweep point "
        "to\n"
        "                         DIR/<scenario>.jsonl as workers "
        "finish (overwrites\n"
        "                         an existing journal unless "
        "--resume is given)\n"
        "  --resume               with --checkpoint: skip points "
        "already journaled by\n"
        "                         an earlier (killed) run and merge "
        "their rows back in;\n"
        "                         refuses journals from a different "
        "scenario, grid, or\n"
        "                         git revision\n"
        "  --set AXIS=V1[,V2...]  override a grid axis (repeatable; "
        "unknown axes error)\n"
        "  --try-set AXIS=V1[,..] like --set, but skipped when the "
        "scenario has no such axis\n"
        "  --record-trace DIR     record the memory-request stream "
        "of each --workload\n"
        "                         (default: the whole Table-4 suite) "
        "into DIR/<name>.trc;\n"
        "                         knobs via --set mitigation=/spec=/"
        "nbo=/warmup=/measure=/\n"
        "                         channels=/cores=\n"
        "  --workload NAME        suite entry to record "
        "(repeatable; with --record-trace)\n"
        "  --replay FILE          replay a recorded trace against "
        "fresh controller +\n"
        "                         mitigation stacks; defenses via "
        "--set mitigation=A,B\n"
        "                         (default: the recorded defense)\n"
        "  --verify               with --replay: exit non-zero "
        "unless the same-defense\n"
        "                         replay reproduces the recorded "
        "stats bit-identically\n"
        "  --smoke                one-point sweep with a tiny budget: "
        "truncate every\n"
        "                         axis to its first value and shrink "
        "instruction/\n"
        "                         window knobs (CI smoke tests)\n"
        "  --quiet                suppress per-point progress lines\n"
        "  --no-table             skip the text tables on stdout\n"
        "  --help                 this message\n");
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

std::vector<JsonValue>
parseValueList(const std::string &text)
{
    std::vector<JsonValue> values;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::string piece =
            text.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!piece.empty())
            values.push_back(parseScalar(piece));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return values;
}

std::string
outputPath(const std::string &base, const std::string &scenario,
           const char *extension, bool single)
{
    if (single && endsWith(base, extension))
        return base;
    std::string dir = base;
    if (!dir.empty() && dir.back() != '/')
        dir += '/';
    return dir + scenario + extension;
}

/**
 * Create the directory every emission under @p base will land in,
 * *before* any sweep runs: a long sweep must not die at emission
 * time on a missing or unwritable output location.
 */
bool
prepareOutputDir(const std::string &base, const char *extension,
                 bool single)
{
    if (base.empty())
        return true;
    std::filesystem::path dir(base);
    if (single && endsWith(base, extension))
        dir = dir.parent_path();
    if (dir.empty())
        return true;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec || !std::filesystem::is_directory(dir)) {
        std::fprintf(stderr,
                     "pracbench: cannot create output directory "
                     "%s%s%s\n",
                     dir.string().c_str(), ec ? ": " : "",
                     ec ? ec.message().c_str() : "");
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    registerBuiltinScenarios();

    std::vector<std::string> names;
    SweepOptions options;
    std::string outJson;
    std::string outCsv;
    std::string checkpointDir;
    bool resume = false;
    std::string recordDir;
    std::string replayPath;
    std::vector<std::string> workloads;
    bool verify = false;
    bool list = false;
    bool table = true;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "pracbench: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            list = true;
        } else if (arg == "--scenario" || arg == "-s") {
            names.push_back(next("--scenario"));
        } else if (arg == "--jobs" || arg == "-j") {
            options.jobs = static_cast<unsigned>(
                std::strtoul(next("--jobs").c_str(), nullptr, 10));
        } else if (arg == "--out" || arg == "-o") {
            outJson = next("--out");
        } else if (arg == "--csv") {
            outCsv = next("--csv");
        } else if (arg == "--checkpoint") {
            checkpointDir = next("--checkpoint");
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--set" || arg == "--try-set") {
            const std::string spec = next(arg.c_str());
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr,
                             "pracbench: %s expects AXIS=V1[,V2]\n",
                             arg.c_str());
                return 2;
            }
            auto &target = arg == "--set" ? options.overrides
                                          : options.softOverrides;
            target[spec.substr(0, eq)] =
                parseValueList(spec.substr(eq + 1));
        } else if (arg == "--record-trace") {
            recordDir = next("--record-trace");
        } else if (arg == "--workload" || arg == "-w") {
            workloads.push_back(next("--workload"));
        } else if (arg == "--replay") {
            replayPath = next("--replay");
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--quiet" || arg == "-q") {
            options.progress = false;
        } else if (arg == "--no-table") {
            table = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        } else {
            std::fprintf(stderr, "pracbench: unknown option '%s'\n",
                         arg.c_str());
            printUsage();
            return 2;
        }
    }

    if (smoke) {
        options.firstPointOnly = true;
        // Tiny budgets for every knob a scenario might sweep.
        // Applied after the whole command line is parsed so an
        // explicit --set/--try-set for the same axis always wins,
        // wherever it appears relative to --smoke.
        const std::pair<const char *, JsonValue> tiny[] = {
            {"warmup", std::int64_t{2'000}},
            {"measure", std::int64_t{5'000}},
            {"window_ms", 0.2},
            {"encryptions", std::int64_t{60}},
            {"repeats", std::int64_t{1}},
            {"bits", std::int64_t{4}},
            {"symbols", std::int64_t{2}},
            {"message_bits", std::int64_t{4}},
        };
        for (const auto &[axis, value] : tiny)
            if (options.overrides.find(axis) ==
                    options.overrides.end() &&
                options.softOverrides.find(axis) ==
                    options.softOverrides.end())
                options.softOverrides[axis] = {value};
    }

    if (!recordDir.empty() && !replayPath.empty()) {
        std::fprintf(stderr,
                     "pracbench: --record-trace and --replay are "
                     "mutually exclusive\n");
        return 2;
    }
    if ((!recordDir.empty() || !replayPath.empty()) &&
        !names.empty()) {
        std::fprintf(stderr,
                     "pracbench: --record-trace/--replay do not "
                     "combine with --scenario\n");
        return 2;
    }
    if (!workloads.empty() && recordDir.empty()) {
        std::fprintf(stderr,
                     "pracbench: --workload requires "
                     "--record-trace\n");
        return 2;
    }
    if (verify && replayPath.empty()) {
        std::fprintf(stderr,
                     "pracbench: --verify requires --replay\n");
        return 2;
    }
    if (resume && checkpointDir.empty()) {
        std::fprintf(stderr,
                     "pracbench: --resume requires --checkpoint\n");
        return 2;
    }
    if (!checkpointDir.empty() &&
        (!recordDir.empty() || !replayPath.empty())) {
        std::fprintf(stderr,
                     "pracbench: --checkpoint applies to scenario "
                     "sweeps, not --record-trace/--replay\n");
        return 2;
    }

    if (!recordDir.empty() || !replayPath.empty()) {
        // Trace modes write .trc files / their own JSON; a scenario
        // CSV destination would be silently dropped -- reject it.
        if (!outCsv.empty()) {
            std::fprintf(stderr,
                         "pracbench: --csv does not apply to "
                         "--record-trace/--replay\n");
            return 2;
        }
    }

    if (!recordDir.empty()) {
        if (!outJson.empty()) {
            std::fprintf(stderr,
                         "pracbench: --record-trace writes "
                         "DIR/<workload>.trc; --out does not "
                         "apply\n");
            return 2;
        }
        RecordCliOptions record;
        record.dir = recordDir;
        record.workloads = workloads;
        record.progress = options.progress;
        // Soft overrides (--try-set, --smoke shrink) apply only
        // where record mode has such a knob; hard --set errors on
        // unknown keys inside the command.
        const char *known[] = {"mitigation", "spec",     "nbo",
                               "nrh",        "warmup",   "measure",
                               "channels",   "cores"};
        for (const auto &[axis, values] : options.softOverrides)
            for (const char *name : known)
                if (axis == name)
                    record.settings[axis] = values;
        for (const auto &[axis, values] : options.overrides)
            record.settings[axis] = values;
        return runRecordTraceCommand(record);
    }

    if (!replayPath.empty()) {
        ReplayCliOptions replay;
        replay.tracePath = replayPath;
        replay.verify = verify;
        replay.outJson = outJson;
        replay.table = table;
        replay.progress = options.progress;
        // Hard --set keeps its contract: anything replay cannot
        // honour is an error, not a silent no-op (the stream is
        // fixed; only the defense can vary).
        for (const auto &[axis, values] : options.overrides) {
            (void)values;
            if (axis != "mitigation") {
                std::fprintf(stderr,
                             "pracbench: --replay supports only "
                             "--set mitigation=... (the recorded "
                             "stream pins every other knob)\n");
                return 2;
            }
        }
        for (const auto *set :
             {&options.overrides, &options.softOverrides}) {
            const auto it = set->find("mitigation");
            if (it == set->end() || !replay.mitigations.empty())
                continue;
            for (const JsonValue &value : it->second)
                replay.mitigations.push_back(value.asString());
        }
        // Replay writes outJson verbatim as one file; a directory
        // form would only fail at emission time, after the sweep.
        if (!outJson.empty() && !endsWith(outJson, ".json")) {
            std::fprintf(stderr,
                         "pracbench: --replay --out must be a .json "
                         "file path\n");
            return 2;
        }
        if (!prepareOutputDir(outJson, ".json", /*single=*/true))
            return 2;
        return runReplayCommand(replay);
    }

    const ScenarioRegistry &registry = ScenarioRegistry::instance();

    if (list) {
        std::printf("%-28s %7s  %s\n", "scenario", "points", "tags");
        for (const Scenario *scenario : registry.all()) {
            std::string tags;
            for (const std::string &tag : scenario->tags)
                tags += (tags.empty() ? "" : ", ") + tag;
            std::printf("%-28s %7zu  %s\n", scenario->name.c_str(),
                        scenario->grid.size(), tags.c_str());
            std::printf("    %s\n", scenario->title.c_str());
        }
        return 0;
    }

    if (names.empty()) {
        printUsage();
        return 2;
    }
    if (names.size() == 1 && names[0] == "all") {
        names.clear();
        for (const Scenario *scenario : registry.all())
            names.push_back(scenario->name);
    }

    const bool single = names.size() == 1;
    if (!single && (endsWith(outJson, ".json") ||
                    endsWith(outCsv, ".csv"))) {
        std::fprintf(stderr,
                     "pracbench: multiple scenarios need a directory "
                     "for --out/--csv, not a file path\n");
        return 2;
    }
    // Fail fast on bad output locations: create them now rather
    // than discovering a missing/unwritable directory at emission
    // time, after a long sweep.  (--checkpoint DIR is always a
    // directory; the journal is DIR/<scenario>.jsonl.)
    if (!prepareOutputDir(outJson, ".json", single) ||
        !prepareOutputDir(outCsv, ".csv", single) ||
        !prepareOutputDir(checkpointDir, ".jsonl", /*single=*/false))
        return 2;
    options.resume = resume;
    for (const std::string &name : names) {
        try {
            if (!checkpointDir.empty())
                options.checkpointPath =
                    journalPath(checkpointDir, name);
            const SweepResult result =
                runScenarioByName(name, options);
            if (table)
                printTables(result);
            // Finalize via temp + atomic rename: a crash during
            // emission must never leave a torn artifact that a
            // later --resume (or a results consumer) trusts.
            if (!outJson.empty()) {
                const std::string path =
                    outputPath(outJson, name, ".json", single);
                if (!writeFileAtomic(path,
                                     result.toJson().dump(2) + "\n"))
                    return 1;
                std::fprintf(stderr, "pracbench: wrote %s\n",
                             path.c_str());
            }
            if (!outCsv.empty()) {
                const std::string path =
                    outputPath(outCsv, name, ".csv", single);
                if (!writeFileAtomic(path, result.toCsv()))
                    return 1;
                std::fprintf(stderr, "pracbench: wrote %s\n",
                             path.c_str());
            }
        } catch (const std::exception &error) {
            std::fprintf(stderr, "pracbench: %s\n", error.what());
            return 2;
        }
    }
    return 0;
}
