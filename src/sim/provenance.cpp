#include "sim/provenance.h"

#include <cstdio>
#include <ctime>
#include <fstream>

namespace pracleak::sim {

const char *
gitRevision()
{
#ifdef PRACLEAK_GIT_REV
    return PRACLEAK_GIT_REV;
#else
    return "unknown";
#endif
}

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t hash = 0xCBF2'9CE4'8422'2325ULL;
    for (const char c : bytes) {
        hash ^= static_cast<std::uint8_t>(c);
        hash *= 0x100'0000'01B3ULL;
    }
    return hash;
}

std::string
hashHex(std::uint64_t hash)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buffer;
}

std::string
fileHashHex(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    return hashHex(fnv1a64(bytes));
}

std::string
gridHashHex(const JsonValue &grid)
{
    return hashHex(fnv1a64(grid.dump()));
}

std::string
utcTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buffer;
}

JsonValue
provenanceObject(const JsonValue &grid)
{
    JsonValue provenance = JsonValue::object();
    provenance.set("git_rev", gitRevision());
    provenance.set("grid_fnv1a64", gridHashHex(grid));
    provenance.set("generated_at", utcTimestamp());
    return provenance;
}

} // namespace pracleak::sim
