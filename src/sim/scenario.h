/**
 * @file
 * The scenario registry: every reproduced paper figure/table (and
 * any future experiment) registers under a stable name with a
 * declarative parameter grid and a per-point run function.  The
 * sweep runner (sim/runner.h) fans registered grids across the
 * thread pool; the `pracbench` CLI and the thin bench binaries are
 * both clients of this registry.
 */

#ifndef PRACLEAK_SIM_SCENARIO_H
#define PRACLEAK_SIM_SCENARIO_H

#include <functional>
#include <string>
#include <vector>

#include "sim/json.h"
#include "sim/param_grid.h"

namespace pracleak::sim {

/** One emitted result row: a flat-ish JSON object of metrics. */
using ResultRow = JsonValue;

/** A registered experiment. */
struct Scenario
{
    /** Stable CLI name, e.g. "fig10_performance". */
    std::string name;

    /** Human title, e.g. "Figure 10: normalized performance ...". */
    std::string title;

    /** What the paper reports for this experiment (shown after runs). */
    std::string notes;

    /**
     * Catalog labels shown by `pracbench --list` (e.g. "attack",
     * "perf", "defense") so the 20+ scenario catalog stays
     * navigable; purely informational.
     */
    std::vector<std::string> tags;

    /** The swept parameter space. */
    ParamGrid grid;

    /**
     * Checkpoint granularity: when a sweep journals to a checkpoint
     * (RunOptions::checkpoint.directory), flush the journal to the OS
     * every N completed points.  Scenarios whose points cost seconds
     * to minutes (the defense matrices, the Table-4 perf suite, the
     * trace bake-off) set 1 -- every finished point is worth a
     * syscall -- while dense analytic grids whose points cost
     * microseconds batch flushes to keep journaling off the sweep's
     * critical path.  A torn final record is recovered on resume
     * either way; at most N-1 cheap points are re-run after a kill.
     */
    std::size_t checkpointEvery = 16;

    /**
     * Run one grid point and return its result rows.  Must be
     * thread-safe against concurrent invocations on other points.
     * Returning an empty vector skips the point (for grids whose
     * cartesian product contains invalid combinations).
     */
    std::function<std::vector<ResultRow>(const ParamSet &)> runPoint;

    /**
     * Optional: reduce all rows (point parameters merged in) to
     * summary rows -- means, counts, derived tables.
     */
    std::function<std::vector<ResultRow>(
        const std::vector<ResultRow> &)>
        summarize;
};

/** Name -> scenario lookup table. */
class ScenarioRegistry
{
  public:
    static ScenarioRegistry &instance();

    /** Register; throws std::invalid_argument on duplicate names. */
    void add(Scenario scenario);

    /** Lookup, nullptr when unknown. */
    const Scenario *find(const std::string &name) const;

    /** All scenarios sorted by name. */
    std::vector<const Scenario *> all() const;

    std::size_t size() const { return scenarios_.size(); }

  private:
    std::vector<Scenario> scenarios_;
};

/**
 * Register every built-in scenario (figs 3-14, tables 2/4/5,
 * ablations).  Idempotent; call before using the registry from a
 * main().  Explicit registration keeps the scenarios linkable from a
 * static library without self-registration object tricks.
 */
void registerBuiltinScenarios();

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_SCENARIO_H
