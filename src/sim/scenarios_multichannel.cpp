/**
 * @file
 * Multi-channel and fast-forward scenarios (extensions beyond the
 * paper's single-channel evaluation):
 *
 *  - perf_channel_sweep: throughput and mitigation overhead vs the
 *    number of interleaved channels.
 *  - sidechannel_cross_channel: the ABO side channel observed from
 *    the victim's channel vs from a different channel -- PRAC state
 *    is per-channel, so the leak does not cross the interleave.
 *  - covert_channel_parallel: aggregate covert capacity when one
 *    sender/receiver pair runs on every channel in parallel.
 *  - fastforward_benchmark: wall-clock win of idle-cycle
 *    fast-forward on low-RBMPKI pointer-chase workloads, with a
 *    built-in check that no reported statistic moves.
 */

#include "sim/scenario.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/stopwatch.h"

#include "attack/agents.h"
#include "attack/covert.h"
#include "attack/harness.h"
#include "cpu/system.h"
#include "sim/design.h"
#include "sim/scenario_util.h"
#include "workload/synthetic.h"

namespace pracleak::sim {

namespace {

// --- Channel-count performance sweep -------------------------------

Scenario
perfChannelSweep()
{
    Scenario scenario;
    scenario.name = "perf_channel_sweep";
    scenario.tags = {"perf", "multichannel"};
    scenario.title = "Channel sweep: throughput and TPRAC overhead vs "
                     "interleaved channel count";
    scenario.notes = "per-channel PRAC engines fire their TB-RFMs in "
                     "lockstep, so TPRAC overhead stays flat as "
                     "channels scale while ipc_sum rises with the "
                     "added bandwidth";
    scenario.grid.axis("channels", {1, 2, 4})
        .axis("design", {"abo-only", "tprac"})
        .axis("entry",
              toValues({"h_rand_heavy", "h_stream_wide", "m_blend"}))
        .constant("nrh", 1024)
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        DesignConfig design;
        design.label = params.getString("design");
        design.mode = params.getString("design") == "tprac"
                          ? MitigationMode::Tprac
                          : MitigationMode::AboOnly;
        design.nbo =
            static_cast<std::uint32_t>(params.getInt("nrh"));
        design.channels =
            static_cast<std::uint32_t>(params.getInt("channels"));

        RunBudget budget;
        budget.warmup =
            static_cast<std::uint64_t>(params.getInt("warmup"));
        budget.measure =
            static_cast<std::uint64_t>(params.getInt("measure"));

        const SuiteEntry &entry =
            findSuiteEntry(params.getString("entry"));
        const PairResult pair =
            runNormalizedPair(entry, design, budget);

        ResultRow row = JsonValue::object();
        row.set("normalized",
                normalizedPerf(pair.design, pair.baseline));
        row.set("ipc_sum", pair.design.ipcSum());
        row.set("measure_cycles", pair.design.measureCycles);
        row.set("tb_rfms", pair.design.tbRfms);
        row.set("alerts", pair.design.alerts);
        JsonValue per_channel = JsonValue::array();
        for (const ChannelResult &channel : pair.design.channels)
            per_channel.push(channel.energyCounts.acts);
        row.set("acts_per_channel", std::move(per_channel));
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        // Mean normalized perf per (design, channels) group found in
        // the rows (so axis overrides still summarize), plus IPC
        // scaling vs the same design at channels=1 when the sweep
        // contains those baseline points.
        struct Bucket
        {
            double norm = 0.0, ipc = 0.0, ipc1 = 0.0;
            std::int64_t count = 0, withBase = 0;
        };
        using Key = std::pair<std::string, std::int64_t>;
        std::vector<Key> order;
        std::map<Key, Bucket> groups;
        for (const ResultRow &row : rows) {
            const Key key{row.get("design")->asString(),
                          row.get("channels")->asInt()};
            if (groups.find(key) == groups.end())
                order.push_back(key);
            Bucket &bucket = groups[key];
            bucket.norm += row.get("normalized")->asDouble();
            bucket.ipc += row.get("ipc_sum")->asDouble();
            ++bucket.count;
            for (const ResultRow &base : rows) {
                if (base.get("design")->asString() == key.first &&
                    base.get("channels")->asInt() == 1 &&
                    base.get("entry")->asString() ==
                        row.get("entry")->asString()) {
                    bucket.ipc1 += base.get("ipc_sum")->asDouble();
                    ++bucket.withBase;
                    break;
                }
            }
        }
        std::vector<ResultRow> out;
        for (const Key &key : order) {
            const Bucket &bucket = groups[key];
            ResultRow row = JsonValue::object();
            row.set("design", key.first);
            row.set("channels", key.second);
            row.set("mean_normalized",
                    bucket.norm /
                        static_cast<double>(bucket.count));
            if (bucket.withBase == bucket.count && bucket.ipc1 > 0.0)
                row.set("ipc_scaling", bucket.ipc / bucket.ipc1);
            out.push_back(std::move(row));
        }
        return out;
    };
    return scenario;
}

// --- Cross-channel side channel ------------------------------------

Scenario
sidechannelCrossChannel()
{
    Scenario scenario;
    scenario.name = "sidechannel_cross_channel";
    scenario.tags = {"attack", "multichannel"};
    scenario.title = "Cross-channel isolation: ABO spikes seen from "
                     "the victim's channel vs another channel";
    scenario.notes = "PRAC counters, Alerts, and RFMs are per "
                     "channel: the same-channel probe sees every "
                     "ABO-RFM, the cross-channel probe sees none";
    scenario.grid.axis("probe", {"same-channel", "cross-channel"})
        .axis("nmit", {1, 4})
        .constant("nbo", 256)
        .constant("window_ms", 1.0);

    scenario.runPoint = [](const ParamSet &params) {
        DramSpec spec = DramSpec::ddr5_8000b();
        spec.prac.nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        spec.prac.nmit =
            static_cast<std::uint32_t>(params.getInt("nmit"));

        ControllerConfig config;
        config.mode = MitigationMode::AboOnly;
        config.prac.queue = QueueKind::Ideal;
        config.refreshEnabled = false; // isolate ABO effects

        AttackHarness harness(spec, config, 2);
        const std::uint32_t probe_channel =
            params.getString("probe") == "same-channel" ? 0 : 1;

        // The victim hammers on channel 0; the probe reads its own
        // private row on probe_channel.
        DramAddress probe_row{0, 0, 0, 3, 0};
        probe_row.channel = probe_channel;
        ProbeAgent probe(
            harness.mem(probe_channel).mapper().compose(probe_row));

        const DramAddress target{0, 4, 2, 0x100, 0};
        std::vector<DramAddress> decoys;
        for (std::uint32_t i = 0; i < 4; ++i)
            decoys.push_back(DramAddress{0, 4, 2, 0x200 + i, 0});
        HammerAgent victim(harness.mem(0).mapper(), target, decoys);

        harness.add(&probe, probe_channel);
        harness.add(&victim, 0);

        const Cycle end =
            nsToCycles(params.getDouble("window_ms") * 1.0e6);
        while (harness.now() < end) {
            if (victim.done())
                victim.startHammer(spec.prac.nbo +
                                   spec.prac.aboAct + 4);
            harness.step();
        }

        std::uint64_t spikes = 0;
        for (const auto &sample : probe.samples())
            spikes += sample.latency >= ProbeAgent::spikeThreshold();

        ResultRow row = JsonValue::object();
        row.set("spikes", spikes);
        row.set("probe_reads", probe.completed());
        row.set("victim_channel_alerts",
                harness.mem(0).prac().alerts());
        row.set("probe_channel_alerts",
                harness.mem(probe_channel).prac().alerts());
        row.set("leak_visible",
                spikes > 0 && harness.mem(0).prac().alerts() > 0);
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::vector<ResultRow> out;
        for (const char *probe : {"same-channel", "cross-channel"}) {
            std::uint64_t spikes = 0;
            std::int64_t leaks = 0, count = 0;
            for (const ResultRow &row : rows) {
                if (row.get("probe")->asString() != probe)
                    continue;
                spikes += static_cast<std::uint64_t>(
                    row.get("spikes")->asInt());
                leaks += row.get("leak_visible")->asBool() ? 1 : 0;
                ++count;
            }
            ResultRow row = JsonValue::object();
            row.set("probe", probe);
            row.set("total_spikes",
                    static_cast<std::int64_t>(spikes));
            row.set("leaking_points", leaks);
            row.set("points", count);
            out.push_back(std::move(row));
        }
        return out;
    };
    return scenario;
}

// --- Channel-parallel covert capacity ------------------------------

Scenario
covertChannelParallel()
{
    Scenario scenario;
    scenario.name = "covert_channel_parallel";
    scenario.tags = {"covert", "multichannel"};
    scenario.title = "Covert capacity table: one activity-channel "
                     "pair per memory channel, in parallel";
    scenario.notes = "all pairs run concurrently on one multi-channel "
                     "harness: per-channel PRAC state keeps them "
                     "isolated, so capacity scales linearly -- a "
                     "cross-channel Alert/RFM leak would show up "
                     "here as decode errors";
    scenario.grid.axis("channels", {1, 2, 4})
        .constant("nbo", 256)
        .constant("bits", 24);

    scenario.runPoint = [](const ParamSet &params) {
        const auto channels =
            static_cast<std::uint32_t>(params.getInt("channels"));
        const auto nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        const auto bits =
            static_cast<std::size_t>(params.getInt("bits"));

        // One sender/receiver pair per channel, each with its own
        // message, stepped concurrently on one harness.
        CovertParams config;
        config.nbo = nbo;
        std::vector<std::vector<bool>> messages;
        for (std::uint32_t c = 0; c < channels; ++c)
            messages.push_back(randomBits(bits, 1000 + 17 * c));
        const std::vector<CovertResult> per_channel =
            runActivityCovertParallel(config, messages);

        double rate_sum = 0.0;
        double period_sum = 0.0;
        std::size_t errors = 0, symbols = 0;
        for (const CovertResult &result : per_channel) {
            rate_sum += result.bitrateKbps();
            period_sum += result.periodUs();
            errors += result.symbolErrors;
            symbols += result.symbolsSent;
        }

        ResultRow row = JsonValue::object();
        row.set("aggregate_kbps", rate_sum);
        row.set("mean_period_us",
                period_sum / static_cast<double>(channels));
        row.set("error_pct",
                symbols ? 100.0 * static_cast<double>(errors) /
                              static_cast<double>(symbols)
                        : 0.0);
        row.set("symbols_sent",
                static_cast<std::int64_t>(symbols));
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

// --- Fast-forward wall-clock benchmark -----------------------------

WorkloadParams
chaseWorkload(const std::string &name)
{
    // Low-RBMPKI by construction: the chase footprint stays cache
    // resident, so stalls come from cache latency, not DRAM misses.
    WorkloadParams params =
        pointerChaseParams(name == "chase_l2" ? 4096 : 12288);
    params.name = name;
    return params;
}

Scenario
fastforwardBenchmark()
{
    Scenario scenario;
    scenario.name = "fastforward_benchmark";
    scenario.tags = {"perf"};
    scenario.title = "Idle-cycle fast-forward: wall-clock speedup on "
                     "low-RBMPKI pointer chases (results identical)";
    scenario.notes = "run with --jobs 1 for clean wall-clock "
                     "numbers; 'identical' must always be true -- "
                     "fast-forward may never change a statistic";
    scenario.grid
        .axis("workload", {"chase_l2", "chase_llc"})
        .axis("cores", {1, 2})
        .constant("warmup", 200'000)
        .constant("measure", 12'000'000);

    scenario.runPoint = [](const ParamSet &params) {
        const auto cores =
            static_cast<std::uint32_t>(params.getInt("cores"));
        RunBudget budget;
        budget.warmup =
            static_cast<std::uint64_t>(params.getInt("warmup"));
        budget.measure =
            static_cast<std::uint64_t>(params.getInt("measure"));
        const WorkloadParams workload =
            chaseWorkload(params.getString("workload"));

        DesignConfig design;
        design.label = "tprac";
        design.mode = MitigationMode::Tprac;

        double wall[2] = {0.0, 0.0};
        RunResult results[2];
        for (int ff = 0; ff < 2; ++ff) {
            design.fastForward = ff == 1;
            std::vector<std::unique_ptr<WorkloadSource>> sources;
            for (std::uint32_t i = 0; i < cores; ++i)
                sources.push_back(makeWorkload(workload, i));
            System system(makeSystemConfig(design, budget),
                          std::move(sources));
            const telemetry::Stopwatch clock;
            results[ff] = system.run();
            wall[ff] = clock.seconds();
        }

        const RunResult &off = results[0];
        const RunResult &on = results[1];
        const bool identical =
            off.measureCycles == on.measureCycles &&
            off.rowMisses == on.rowMisses &&
            off.tbRfms == on.tbRfms && off.alerts == on.alerts &&
            off.aboRfms == on.aboRfms &&
            off.energyCounts.acts == on.energyCounts.acts &&
            off.energyCounts.reads == on.energyCounts.reads &&
            off.ipcSum() == on.ipcSum();

        ResultRow row = JsonValue::object();
        row.set("rbmpki", on.rbmpki());
        row.set("wall_off_s", wall[0]);
        row.set("wall_on_s", wall[1]);
        row.set("speedup", wall[0] / wall[1]);
        row.set("cycles_skipped", on.ffCyclesSkipped);
        // Skipped cycles still advance the clock, so they are a
        // subset of the measure window.
        row.set("skip_fraction",
                static_cast<double>(on.ffCyclesSkipped) /
                    static_cast<double>(on.measureCycles));
        row.set("identical", identical);
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        double off = 0.0, on = 0.0;
        std::int64_t broken = 0;
        for (const ResultRow &row : rows) {
            off += row.get("wall_off_s")->asDouble();
            on += row.get("wall_on_s")->asDouble();
            broken += row.get("identical")->asBool() ? 0 : 1;
        }
        ResultRow row = JsonValue::object();
        row.set("sweep_wall_off_s", off);
        row.set("sweep_wall_on_s", on);
        row.set("sweep_speedup", off / on);
        row.set("non_identical_points", broken);
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

} // namespace

void
registerMultichannelScenarios(ScenarioRegistry &registry)
{
    registry.add(perfChannelSweep());
    registry.add(sidechannelCrossChannel());
    registry.add(covertChannelParallel());
    registry.add(fastforwardBenchmark());
}

} // namespace pracleak::sim
