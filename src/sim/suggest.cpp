#include "sim/suggest.h"

#include <algorithm>

namespace pracleak::sim {

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t previous = row[j];
            row[j] = std::min(
                {row[j] + 1, row[j - 1] + 1,
                 diagonal + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diagonal = previous;
        }
    }
    return row[b.size()];
}

std::string
closestTo(const std::string &word,
          const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t bestDistance = word.size();
    for (const std::string &candidate : candidates) {
        const std::size_t distance = editDistance(word, candidate);
        if (distance < bestDistance) {
            bestDistance = distance;
            best = candidate;
        }
    }
    if (bestDistance > std::max<std::size_t>(2, word.size() / 3))
        return "";
    return best;
}

} // namespace pracleak::sim
