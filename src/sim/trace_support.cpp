#include "sim/trace_support.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "mitigation/registry.h"
#include "sim/provenance.h"
#include "sim/runner.h"
#include "telemetry/stopwatch.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "trace/recorder.h"

namespace pracleak::sim {

namespace {

/** Arms the series sink when @p path is non-empty; disarms on every
 *  exit path so a thrown replay cannot leave the sink dangling. */
struct SeriesScope
{
    explicit SeriesScope(std::string path) : path_(std::move(path))
    {
        if (!path_.empty())
            telemetry::SeriesCapture::arm();
    }
    ~SeriesScope()
    {
        if (!path_.empty())
            telemetry::SeriesCapture::disarm();
    }

    /** writeAll to the scope's path; true when disabled. */
    bool
    write() const
    {
        if (path_.empty())
            return true;
        if (!telemetry::SeriesCapture::writeAll(path_))
            return false;
        std::fprintf(stderr, "pracbench: wrote %s\n", path_.c_str());
        return true;
    }

  private:
    std::string path_;
};

} // namespace

RecordedRun
recordSuiteRun(const SuiteEntry &entry, const DesignConfig &design,
               const RunBudget &budget, std::uint32_t cores)
{
    const SystemConfig config = makeSystemConfig(design, budget);
    System system(config, instantiate(entry, cores));

    const std::string spec_name =
        design.spec.empty() ? "ddr5-8000b" : design.spec;
    trace::TraceRecorder recorder(
        entry.params.name, spec_name, config.spec,
        system.channel(0).config(),
        static_cast<std::uint32_t>(system.channelCount()));
    recorder.attach(system);

    RecordedRun recorded;
    recorded.run = system.run();
    recorder.finish(system);
    recorded.trace = recorder.takeData();
    return recorded;
}

ResultRow
replayRow(const trace::ReplayResult &result)
{
    const trace::TraceChannelStats total = result.total();
    ResultRow row = JsonValue::object();
    row.set("mitigation", result.mitigation);
    row.set("end_cycle", result.endCycle);
    row.set("requests", result.replayedRequests);
    row.set("fully_drained", result.fullyDrained);
    row.set("acts", total.acts);
    row.set("refreshes", total.refreshes);
    row.set("abo_rfms",
            total.rfms[static_cast<std::size_t>(RfmReason::Abo)]);
    row.set("acb_rfms",
            total.rfms[static_cast<std::size_t>(RfmReason::Acb)]);
    row.set("tb_rfms",
            total.rfms[static_cast<std::size_t>(
                RfmReason::TimingBased)]);
    row.set("random_rfms",
            total.rfms[static_cast<std::size_t>(RfmReason::Random)]);
    row.set("graphene_rfms",
            total.rfms[static_cast<std::size_t>(
                RfmReason::Graphene)]);
    row.set("pb_rfms",
            total.rfms[static_cast<std::size_t>(
                RfmReason::PerBank)]);
    row.set("alerts", total.alerts);
    row.set("mitigation_events", total.mitigationEvents);
    row.set("mitigated_rows", total.mitigatedRows);
    row.set("max_counter", total.maxCounterSeen);
    return row;
}

ResultRow
recordedStatsRow(const trace::TraceData &trace)
{
    trace::ReplayResult as_recorded;
    as_recorded.mitigation = trace.header.mitigation;
    as_recorded.endCycle = trace.header.endCycle;
    for (const trace::ChannelTrace &channel : trace.channels) {
        as_recorded.channels.push_back(channel.stats);
        as_recorded.replayedRequests += channel.stats.requests;
    }
    return replayRow(as_recorded);
}

int
runRecordTraceCommand(const RecordCliOptions &options)
{
    try {
        RunBudget budget;
        budget.warmup = 20'000;
        budget.measure = 100'000;
        DesignConfig design;
        design.mitigation = "none";
        std::uint32_t cores = 4;

        for (const auto &[name, values] : options.settings) {
            if (values.size() != 1)
                throw std::invalid_argument(
                    "--set " + name +
                    " takes exactly one value in record mode");
            const JsonValue &value = values.front();
            if (name == "mitigation")
                design.mitigation = value.asString();
            else if (name == "spec")
                design.spec = value.asString();
            else if (name == "nbo" || name == "nrh")
                design.nbo =
                    static_cast<std::uint32_t>(value.asInt());
            else if (name == "warmup")
                budget.warmup =
                    static_cast<std::uint64_t>(value.asInt());
            else if (name == "measure")
                budget.measure =
                    static_cast<std::uint64_t>(value.asInt());
            else if (name == "channels")
                design.channels =
                    static_cast<std::uint32_t>(value.asInt());
            else if (name == "cores")
                cores = static_cast<std::uint32_t>(value.asInt());
            else
                throw std::invalid_argument(
                    "unknown record setting '" + name +
                    "' (have: mitigation, spec, nbo/nrh, warmup, "
                    "measure, channels, cores)");
        }
        if (!findMitigation(design.mitigation))
            throw std::invalid_argument("unknown mitigation '" +
                                        design.mitigation + "'");
        design.label = design.mitigation;

        std::vector<std::string> workloads = options.workloads;
        if (workloads.empty())
            workloads = suiteEntryNames();

        std::error_code ec;
        std::filesystem::create_directories(options.dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "pracbench: cannot create trace dir %s: "
                         "%s\n",
                         options.dir.c_str(),
                         ec.message().c_str());
            return 1;
        }

        std::unique_ptr<telemetry::TraceSession> session;
        if (!options.traceOut.empty())
            session = std::make_unique<telemetry::TraceSession>(
                options.traceOut);
        const SeriesScope series(options.seriesOut);

        for (const std::string &workload : workloads) {
            const SuiteEntry &entry = findSuiteEntry(workload);
            telemetry::SeriesCapture::setLabel(workload);
            telemetry::TraceSpan span(session.get(), workload,
                                      "record", -1);
            const RecordedRun recorded =
                recordSuiteRun(entry, design, budget, cores);
            span.end();
            const std::string path =
                (std::filesystem::path(options.dir) /
                 (workload + ".trc"))
                    .string();
            const std::string image =
                trace::serializeTrace(recorded.trace);
            if (!writeFileAtomic(path, image))
                return 1;
            if (options.progress) {
                std::uint64_t requests = 0;
                for (const trace::ChannelTrace &channel :
                     recorded.trace.channels)
                    requests += channel.records.size();
                std::fprintf(
                    stderr,
                    "pracbench: recorded %s (%llu requests, "
                    "%zu bytes, end cycle %llu, fnv1a %s)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(requests),
                    image.size(),
                    static_cast<unsigned long long>(
                        recorded.trace.header.endCycle),
                    hashHex(fnv1a64(image)).c_str());
            }
        }
        if (!series.write())
            return 1;
        if (session)
            session->write();
        return 0;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "pracbench: %s\n", error.what());
        return 2;
    }
}

int
runReplayCommand(const ReplayCliOptions &options)
{
    try {
        const trace::TraceReader reader(options.tracePath);
        const trace::TraceData &trace = reader.data();

        std::vector<std::string> defenses = options.mitigations;
        if (defenses.empty())
            defenses = {trace.header.mitigation};
        // --verify is a statement about the *recorded* defense; make
        // sure that leg actually runs even when the user's defense
        // list omits it, instead of passing vacuously.
        if (options.verify &&
            std::find(defenses.begin(), defenses.end(),
                      trace.header.mitigation) == defenses.end())
            defenses.push_back(trace.header.mitigation);
        // Validate the whole list before the first (possibly long)
        // replay: an unknown key must not kill the sweep midway.
        for (const std::string &defense : defenses)
            if (!findMitigation(defense))
                throw std::invalid_argument(
                    "unknown mitigation '" + defense + "'");

        SweepResult result;
        result.scenario = "trace_replay";
        result.title = "Replay of " + options.tracePath +
                       " (workload " + trace.header.workload +
                       ", recorded under " +
                       trace.header.mitigation + ")";
        result.jobs = 1;
        result.points = defenses.size();

        std::unique_ptr<telemetry::TraceSession> session;
        if (!options.traceOut.empty())
            session = std::make_unique<telemetry::TraceSession>(
                options.traceOut);
        const SeriesScope series(options.seriesOut);

        bool verified = true;
        const telemetry::Stopwatch clock;
        for (const std::string &defense : defenses) {
            trace::ReplayOptions replay_options;
            replay_options.mitigation = defense;
            telemetry::SeriesCapture::setLabel(
                trace.header.workload + "/" + defense);
            telemetry::TraceSpan span(session.get(), defense,
                                      "replay", -1);
            const trace::ReplayResult replay =
                trace::replayTrace(trace, replay_options);
            span.end();

            ResultRow row = replayRow(replay);
            if (defense == trace.header.mitigation) {
                const bool identical =
                    replay.matchesRecorded(trace);
                row.set("bit_identical", identical);
                verified = verified && identical;
            }
            result.rows.push_back(std::move(row));
            if (options.progress)
                std::fprintf(stderr, "pracbench: replayed %s\n",
                             defense.c_str());
        }
        result.wallSeconds = clock.seconds();
        if (!series.write())
            return 1;
        if (session)
            session->write();

        ResultRow recorded = recordedStatsRow(trace);
        recorded.set("mitigation",
                     trace.header.mitigation + " (recorded)");
        result.summary.push_back(std::move(recorded));

        if (options.table)
            printTables(result);
        if (!options.outJson.empty()) {
            JsonValue root = result.toJson();
            root.set("trace", options.tracePath);
            root.set("trace_fnv1a64",
                     fileHashHex(options.tracePath));
            root.set("workload", trace.header.workload);
            root.set("recorded_mitigation",
                     trace.header.mitigation);
            root.set("spec", trace.header.spec);
            if (!writeFileAtomic(options.outJson,
                                 root.dump(2) + "\n"))
                return 1;
            std::fprintf(stderr, "pracbench: wrote %s\n",
                         options.outJson.c_str());
        }

        if (options.verify && !verified) {
            std::fprintf(stderr,
                         "pracbench: FAIL: same-defense replay did "
                         "not reproduce the recorded stats\n");
            return 1;
        }
        if (options.verify)
            std::fprintf(stderr,
                         "pracbench: same-defense replay is "
                         "bit-identical to the recording\n");
        return 0;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "pracbench: %s\n", error.what());
        return 2;
    }
}

} // namespace pracleak::sim
