/**
 * @file
 * Result provenance: every JSON file the sweep runner emits is
 * stamped with the building git revision and a hash of the effective
 * parameter grid, and replay-derived rows carry the source trace's
 * content hash -- so a stray file in results/ can always be traced
 * back to the code, the sweep, and (when replaying) the exact
 * recorded stream that produced it.
 */

#ifndef PRACLEAK_SIM_PROVENANCE_H
#define PRACLEAK_SIM_PROVENANCE_H

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/json.h"

namespace pracleak::sim {

/**
 * Git revision baked in at configure time (PRACLEAK_GIT_REV, from
 * `git describe --always --dirty`); "unknown" when building outside
 * a git checkout.  The `-dirty` suffix flags results produced from
 * an uncommitted tree.  Caveat: the value refreshes on CMake
 * *configure*, not on every build -- commit-then-rebuild without
 * reconfiguring keeps the previous stamp.
 */
const char *gitRevision();

/** FNV-1a 64-bit over @p bytes (stable, dependency-free). */
std::uint64_t fnv1a64(std::string_view bytes);

/** @p hash as a fixed-width lowercase hex string. */
std::string hashHex(std::uint64_t hash);

/**
 * Hash of a file's contents ("" when unreadable -- provenance must
 * never fail an emission).
 */
std::string fileHashHex(const std::string &path);

/**
 * Hash of an effective parameter grid (FNV-1a over its compact
 * dump), as stamped into provenance objects and checkpoint-journal
 * headers: the identity a resume is validated against.
 */
std::string gridHashHex(const JsonValue &grid);

/** Current UTC wall-clock time as "YYYY-MM-DDTHH:MM:SSZ". */
std::string utcTimestamp();

/**
 * The provenance object stamped into SweepResult::toJson():
 * {"git_rev", "grid_fnv1a64", "generated_at"} computed over the
 * effective grid.  generated_at is the only non-deterministic field
 * an emission carries besides wall_seconds; equivalence checks
 * (golden resume tests, the CI resume-smoke diff) strip exactly
 * those two.
 */
JsonValue provenanceObject(const JsonValue &grid);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_PROVENANCE_H
