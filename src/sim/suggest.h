/**
 * @file
 * "Did you mean ...?" typo hints shared by every name-keyed surface.
 *
 * The CLI (subcommands, flags, scenario names), the parameter grid
 * (`--set` axis names), and the attacker/defense registries all
 * reject unknown strings; a single Levenshtein helper keeps the hint
 * behaviour identical everywhere instead of three private copies
 * drifting apart.
 */

#ifndef PRACLEAK_SIM_SUGGEST_H
#define PRACLEAK_SIM_SUGGEST_H

#include <cstddef>
#include <string>
#include <vector>

namespace pracleak::sim {

/** Classic dynamic-programming edit distance (for typo hints). */
std::size_t editDistance(const std::string &a, const std::string &b);

/**
 * The closest candidate when plausibly a typo of @p word, else "".
 * A hint further than ~a third of the word away confuses more than
 * it helps.
 */
std::string closestTo(const std::string &word,
                      const std::vector<std::string> &candidates);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_SUGGEST_H
