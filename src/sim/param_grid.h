/**
 * @file
 * Declarative parameter grids for scenarios.
 *
 * A scenario declares named axes (each a list of scalar values); the
 * sweep runner enumerates the cartesian product and hands each point
 * to the scenario as a ParamSet.  Axes can be overridden from the
 * CLI (`--set axis=v1,v2`) without touching scenario code, which is
 * how quick runs, single-point repros, and extended sweeps are all
 * expressed.
 */

#ifndef PRACLEAK_SIM_PARAM_GRID_H
#define PRACLEAK_SIM_PARAM_GRID_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/json.h"

namespace pracleak::sim {

/** One axis of the grid: a name plus its swept values. */
struct ParamAxis
{
    std::string name;
    std::vector<JsonValue> values;
};

/** One concrete grid point: axis name -> chosen value. */
class ParamSet
{
  public:
    void add(const std::string &name, JsonValue value);

    bool has(const std::string &name) const;
    /** Lookup; throws std::out_of_range when the axis is missing. */
    const JsonValue &at(const std::string &name) const;

    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;
    std::string getString(const std::string &name) const;

    /** "design=tprac nrh=1024" -- for progress lines and labels. */
    std::string label() const;

    /** The point as a JSON object, axis order preserved. */
    JsonValue toJson() const;

    const std::vector<std::pair<std::string, JsonValue>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<std::string, JsonValue>> entries_;
};

/** The declared sweep space of a scenario. */
class ParamGrid
{
  public:
    /** Add an axis; returns *this for chaining. */
    ParamGrid &axis(std::string name, std::vector<JsonValue> values);

    /** Convenience single-value axis (a fixed, overridable knob). */
    ParamGrid &constant(std::string name, JsonValue value);

    /** Number of points in the cartesian product (1 when empty). */
    std::size_t size() const;

    /** Materialize point @p index (row-major over declared axes). */
    ParamSet point(std::size_t index) const;

    const std::vector<ParamAxis> &axes() const { return axes_; }
    const ParamAxis *findAxis(const std::string &name) const;

    /**
     * Replace the values of an existing axis; throws
     * std::invalid_argument when no such axis is declared (catches
     * CLI typos instead of silently sweeping the wrong thing).
     */
    void overrideAxis(const std::string &name,
                      std::vector<JsonValue> values);

    /** Axis names and values as a JSON object. */
    JsonValue toJson() const;

  private:
    std::vector<ParamAxis> axes_;
};

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_PARAM_GRID_H
