#include "sim/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pracleak::sim {

JsonValue
JsonValue::array()
{
    JsonValue value;
    value.kind_ = Kind::Array;
    return value;
}

JsonValue
JsonValue::object()
{
    JsonValue value;
    value.kind_ = Kind::Object;
    return value;
}

bool
JsonValue::asBool() const
{
    switch (kind_) {
      case Kind::Bool: return bool_;
      case Kind::Int: return int_ != 0;
      case Kind::Double: return double_ != 0.0;
      case Kind::String: return string_ == "true" || string_ == "1";
      default: return false;
    }
}

std::int64_t
JsonValue::asInt() const
{
    switch (kind_) {
      case Kind::Bool: return bool_ ? 1 : 0;
      case Kind::Int: return int_;
      case Kind::Double: return static_cast<std::int64_t>(double_);
      case Kind::String: return std::strtoll(string_.c_str(), nullptr, 10);
      default: return 0;
    }
}

double
JsonValue::asDouble() const
{
    switch (kind_) {
      case Kind::Bool: return bool_ ? 1.0 : 0.0;
      case Kind::Int: return static_cast<double>(int_);
      case Kind::Double: return double_;
      case Kind::String: return std::strtod(string_.c_str(), nullptr);
      default: return 0.0;
    }
}

std::string
JsonValue::asString() const
{
    if (kind_ == Kind::String)
        return string_;
    if (kind_ == Kind::Array || kind_ == Kind::Object)
        return dump();
    std::string out;
    dumpTo(out, 0, 0);
    return out;
}

JsonValue &
JsonValue::push(JsonValue element)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        throw std::logic_error("JsonValue::push on non-array");
    items_.push_back(std::move(element));
    return *this;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        throw std::logic_error("JsonValue::set on non-object");
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

bool
JsonValue::scalarEquals(const JsonValue &other) const
{
    if (isNumber() && other.isNumber())
        return asDouble() == other.asDouble();
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::String: return string_ == other.string_;
      default: return false;
    }
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent > 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

std::string
formatDouble(double value, bool exact)
{
    if (std::isnan(value))
        return "null";
    if (std::isinf(value))
        return value > 0 ? "1e999" : "-1e999";
    char buf[32];
    // 17 significant digits round-trip any IEEE double exactly; 10
    // keep the display files readable.
    std::snprintf(buf, sizeof buf, exact ? "%.17g" : "%.10g", value);
    std::string out = buf;
    // %.17g renders integral doubles up to ~1e17 with no '.' or
    // exponent; mark them so a parse restores a Double, not an Int
    // (whose re-dump would differ byte-wise from the original).
    if (exact && out.find_first_of(".e") == std::string::npos)
        out += ".0";
    return out;
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth,
                  bool exactDoubles) const
{
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Int: out += std::to_string(int_); break;
      case Kind::Double:
        out += formatDouble(double_, exactDoubles);
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(string_);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1, exactDoubles);
        }
        if (!items_.empty())
            appendIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendIndent(out, indent, depth + 1);
            out += '"';
            out += jsonEscape(members_[i].first);
            out += "\": ";
            members_[i].second.dumpTo(out, indent, depth + 1,
                                      exactDoubles);
        }
        if (!members_.empty())
            appendIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

std::string
JsonValue::dumpRoundTrip() const
{
    std::string out;
    dumpTo(out, 0, 0, /*exactDoubles=*/true);
    return out;
}

namespace {

/** Recursive-descent parser behind parseJson(). */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    bool parseDocument(JsonValue &out)
    {
        skipWhitespace();
        if (!parseValue(out, 0))
            return false;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing bytes after document");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    bool fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    bool consume(std::string_view literal)
    {
        if (text_.compare(pos_, literal.size(), literal) != 0)
            return fail("invalid literal");
        pos_ += literal.size();
        return true;
    }

    bool parseValue(JsonValue &out, int depth)
    {
        // Journal rows nest a handful of levels; 64 is a corruption
        // guard, not a real limit.
        if (depth > 64)
            return fail("nesting too deep");
        if (atEnd())
            return fail("unexpected end of document");
        switch (text_[pos_]) {
          case '{': return parseObject(out, depth);
          case '[': return parseArray(out, depth);
          case '"': {
            std::string text;
            if (!parseString(text))
                return false;
            out = JsonValue(std::move(text));
            return true;
          }
          case 't':
            out = JsonValue(true);
            return consume("true");
          case 'f':
            out = JsonValue(false);
            return consume("false");
          case 'n':
            out = JsonValue();
            return consume("null");
          default: return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out, int depth)
    {
        out = JsonValue::object();
        ++pos_; // '{'
        skipWhitespace();
        if (!atEnd() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            if (atEnd() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (atEnd() || text_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            skipWhitespace();
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.set(key, std::move(value));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool parseArray(JsonValue &out, int depth)
    {
        out = JsonValue::array();
        ++pos_; // '['
        skipWhitespace();
        if (!atEnd() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            JsonValue element;
            if (!parseValue(element, depth + 1))
                return false;
            out.push(std::move(element));
            skipWhitespace();
            if (atEnd())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseHex4(unsigned &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        pos_ += 4;
        return true;
    }

    void appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x1'0000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(code))
                    return false;
                if (code >= 0xD800 && code < 0xDC00 &&
                    pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                    text_[pos_ + 1] == 'u') {
                    pos_ += 2;
                    unsigned low = 0;
                    if (!parseHex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF)
                        return fail("bad low surrogate");
                    code = 0x1'0000 + ((code - 0xD800) << 10) +
                           (low - 0xDC00);
                }
                appendUtf8(out, code);
                break;
              }
              default: return fail("unknown escape");
            }
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        bool isDouble = false;
        if (!atEnd() && text_[pos_] == '-')
            ++pos_;
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isDouble = true;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (token.empty() || token == "-") {
            pos_ = start;
            return fail("invalid number");
        }
        char *end = nullptr;
        // "-0" must stay a double: strtoll would fold it to integer
        // zero and lose the sign a re-dump needs.
        if (!isDouble && token != "-0") {
            errno = 0;
            const long long parsed =
                std::strtoll(token.c_str(), &end, 10);
            if (end == token.c_str() + token.size() && errno == 0) {
                out = JsonValue(static_cast<std::int64_t>(parsed));
                return true;
            }
            // int64 overflow (or trailing junk): retry as double.
        }
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            pos_ = start;
            return fail("invalid number");
        }
        out = JsonValue(parsed);
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

JsonValue
parseJson(std::string_view text, std::string *error)
{
    JsonParser parser(text);
    JsonValue value;
    if (!parser.parseDocument(value)) {
        if (error)
            *error = parser.error();
        return JsonValue();
    }
    if (error)
        error->clear();
    return value;
}

JsonValue
parseScalar(const std::string &text)
{
    if (text == "true")
        return JsonValue(true);
    if (text == "false")
        return JsonValue(false);
    if (text == "null")
        return JsonValue();
    if (!text.empty()) {
        char *end = nullptr;
        const long long asInt = std::strtoll(text.c_str(), &end, 10);
        if (end && *end == '\0')
            return JsonValue(static_cast<std::int64_t>(asInt));
        const double asDouble = std::strtod(text.c_str(), &end);
        if (end && *end == '\0')
            return JsonValue(asDouble);
    }
    return JsonValue(text);
}

} // namespace pracleak::sim
