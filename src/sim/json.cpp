#include "sim/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pracleak::sim {

JsonValue
JsonValue::array()
{
    JsonValue value;
    value.kind_ = Kind::Array;
    return value;
}

JsonValue
JsonValue::object()
{
    JsonValue value;
    value.kind_ = Kind::Object;
    return value;
}

bool
JsonValue::asBool() const
{
    switch (kind_) {
      case Kind::Bool: return bool_;
      case Kind::Int: return int_ != 0;
      case Kind::Double: return double_ != 0.0;
      case Kind::String: return string_ == "true" || string_ == "1";
      default: return false;
    }
}

std::int64_t
JsonValue::asInt() const
{
    switch (kind_) {
      case Kind::Bool: return bool_ ? 1 : 0;
      case Kind::Int: return int_;
      case Kind::Double: return static_cast<std::int64_t>(double_);
      case Kind::String: return std::strtoll(string_.c_str(), nullptr, 10);
      default: return 0;
    }
}

double
JsonValue::asDouble() const
{
    switch (kind_) {
      case Kind::Bool: return bool_ ? 1.0 : 0.0;
      case Kind::Int: return static_cast<double>(int_);
      case Kind::Double: return double_;
      case Kind::String: return std::strtod(string_.c_str(), nullptr);
      default: return 0.0;
    }
}

std::string
JsonValue::asString() const
{
    if (kind_ == Kind::String)
        return string_;
    if (kind_ == Kind::Array || kind_ == Kind::Object)
        return dump();
    std::string out;
    dumpTo(out, 0, 0);
    return out;
}

JsonValue &
JsonValue::push(JsonValue element)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        throw std::logic_error("JsonValue::push on non-array");
    items_.push_back(std::move(element));
    return *this;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        throw std::logic_error("JsonValue::set on non-object");
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    for (const auto &member : members_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

bool
JsonValue::scalarEquals(const JsonValue &other) const
{
    if (isNumber() && other.isNumber())
        return asDouble() == other.asDouble();
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null: return true;
      case Kind::Bool: return bool_ == other.bool_;
      case Kind::String: return string_ == other.string_;
      default: return false;
    }
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

void
appendIndent(std::string &out, int indent, int depth)
{
    if (indent > 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * depth, ' ');
    }
}

std::string
formatDouble(double value)
{
    if (std::isnan(value))
        return "null";
    if (std::isinf(value))
        return value > 0 ? "1e999" : "-1e999";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    return buf;
}

} // namespace

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null: out += "null"; break;
      case Kind::Bool: out += bool_ ? "true" : "false"; break;
      case Kind::Int: out += std::to_string(int_); break;
      case Kind::Double: out += formatDouble(double_); break;
      case Kind::String:
        out += '"';
        out += jsonEscape(string_);
        out += '"';
        break;
      case Kind::Array: {
        out += '[';
        for (std::size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendIndent(out, indent, depth + 1);
            items_[i].dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            appendIndent(out, indent, depth);
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += indent > 0 ? "," : ", ";
            appendIndent(out, indent, depth + 1);
            out += '"';
            out += jsonEscape(members_[i].first);
            out += "\": ";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!members_.empty())
            appendIndent(out, indent, depth);
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

JsonValue
parseScalar(const std::string &text)
{
    if (text == "true")
        return JsonValue(true);
    if (text == "false")
        return JsonValue(false);
    if (text == "null")
        return JsonValue();
    if (!text.empty()) {
        char *end = nullptr;
        const long long asInt = std::strtoll(text.c_str(), &end, 10);
        if (end && *end == '\0')
            return JsonValue(static_cast<std::int64_t>(asInt));
        const double asDouble = std::strtod(text.c_str(), &end);
        if (end && *end == '\0')
            return JsonValue(asDouble);
    }
    return JsonValue(text);
}

} // namespace pracleak::sim
