/**
 * @file
 * Automated attacker search: successive halving over the knob space
 * of a defense-aware adversary (attack/adversaries.h), driven
 * through the checkpointed scenario runner so a search inherits the
 * sweep fleet's guarantees -- byte-identical output at any `--jobs`
 * width and across a kill/`--resume` cycle.
 *
 * The candidate set always contains the defense-oblivious "hammer"
 * baseline as candidate 0, and candidate 0 is never eliminated: the
 * final round therefore evaluates the oblivious stressor at the full
 * window alongside the surviving tuned candidates, so the reported
 * best-known attack is >= the oblivious attack by construction --
 * the property defense_matrix_adaptive's table is built on.
 *
 * Exposed through `pracbench search SCENARIO --target-defense D
 * --budget N` and consumed inline by the defense_matrix_adaptive
 * scenario.
 */

#ifndef PRACLEAK_SIM_SEARCH_H
#define PRACLEAK_SIM_SEARCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "attack/adversaries.h"
#include "sim/json.h"
#include "sim/scenario.h"

namespace pracleak::sim {

/** One attacker-knob tuning run against a single defense. */
struct SearchOptions
{
    /** Defense under attack (mitigation-registry key). */
    std::string targetDefense;

    /**
     * Attacker whose knobs are walked; "" picks the defense-matched
     * adversary via attackerForDefense().
     */
    std::string attacker;

    /**
     * Base knob values.  Non-zero knobs are pinned (excluded from
     * sampling) -- the CLI's `attacker.<knob>=` sub-keys land here.
     */
    AttackerConfig base;

    /** Candidate configurations sampled (including the baseline). */
    std::uint32_t budget = 8;

    /** Successive-halving rounds; the last runs the full window. */
    std::uint32_t rounds = 2;

    /** Candidate-sampling seed (deriveRngStream per candidate id). */
    std::uint64_t seed = 0x5EA2C4ULL;

    /** Evaluation universe (the security matrix's scaled world). */
    std::string specName = "ddr5-8000b";
    std::uint32_t nbo = 512;
    double windowMs = 4.0;

    /** Inner-sweep width (rows stay in grid order at any width). */
    int jobs = 1;

    /** Journal directory for kill/resume; "" = in-memory only. */
    std::string checkpointDir;
    bool resume = false;

    /**
     * Journal namespace, distinguishing searches sharing a
     * checkpoint directory (round journals are named
     * "<tag>.<defense>.r<k>.jsonl").
     */
    std::string journalTag = "search";
};

/** One evaluated candidate in one round. */
struct SearchCandidate
{
    std::uint32_t id = 0;
    AttackerConfig config;
    std::uint32_t maxCounter = 0;
    bool secure = true;
};

/** One successive-halving round. */
struct SearchRound
{
    std::uint32_t round = 0;
    double windowMs = 0.0;
    std::vector<SearchCandidate> candidates; //!< id order
};

/** Full search outcome. */
struct SearchResult
{
    std::string targetDefense;
    std::string attacker;
    std::uint64_t seed = 0;
    std::uint32_t budget = 0;
    std::uint32_t contract = 0;     //!< NBO + ABOACT allowance
    std::vector<SearchRound> rounds;
    SearchCandidate best;           //!< final round, highest metric
    SearchCandidate oblivious;      //!< candidate 0 at full window

    /**
     * Deterministic JSON: no wall-clock or provenance timestamps, so
     * two runs of the same search are byte-identical regardless of
     * jobs width or interruption history.
     */
    JsonValue toJson() const;
};

/**
 * Evaluate one attacker configuration against @p defense in the
 * scaled (2 ms tREFW) security-matrix universe: returns the
 * defense_matrix_security-style result row (max_counter, contract,
 * secure, RFM telemetry, attacker provenance).
 */
ResultRow evaluateAttacker(const std::string &defense,
                           const AttackerConfig &config,
                           const std::string &spec_name,
                           std::uint32_t nbo, double window_ms);

/**
 * Run the search.  Fully deterministic from SearchOptions: candidate
 * knobs are sampled from counter-derived RNG streams, rounds execute
 * through runScenario (checkpointed when checkpointDir is set), and
 * survivors are ranked by (max_counter desc, id asc).
 */
SearchResult runAttackerSearch(const SearchOptions &options);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_SEARCH_H
