/**
 * @file
 * Shared fixed-size thread pool for fan-out across independent
 * simulations.
 *
 * Generalizes the ad-hoc batched std::async executor the benches
 * used to carry: work is a FIFO of type-erased tasks, and blocking
 * collectors *help drain the queue* while they wait (tryRunOne), so
 * nested fan-out -- a pooled scenario point that itself calls
 * runParallel -- cannot deadlock the pool.
 */

#ifndef PRACLEAK_SIM_THREAD_POOL_H
#define PRACLEAK_SIM_THREAD_POOL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pracleak::sim {

class ThreadPool
{
  public:
    /** @p threads == 0 picks hardware_concurrency (min 2). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Process-wide pool sized to the hardware. */
    static ThreadPool &shared();

    /**
     * Lane index of the calling thread: 0..threads-1 on a pool
     * worker, -1 elsewhere (the main thread, including when it helps
     * drain the queue from a blocking collector).  Telemetry uses
     * this to assign trace spans to per-worker lanes; it is stable
     * for the lifetime of the thread.
     */
    static int currentLane();

    unsigned threadCount() const { return threadCount_; }

    /** Enqueue fire-and-forget work. */
    void submit(std::function<void()> task);

    /**
     * Run one queued task on the calling thread if any is pending.
     * Returns false when the queue was empty.
     */
    bool tryRunOne();

    /**
     * Run every job and return the results in order.  The calling
     * thread participates, so this is safe to invoke from inside a
     * pool task.  The first exception thrown by a job is rethrown
     * after all jobs finish.
     */
    template <typename T>
    std::vector<T> map(std::vector<std::function<T()>> jobs)
    {
        // vector<bool> packs bits; concurrent slot writes would race.
        static_assert(!std::is_same_v<T, bool>,
                      "map<bool> would race on the packed vector");
        std::vector<T> results(jobs.size());
        std::atomic<std::size_t> done{0};
        std::exception_ptr error;
        std::mutex errorMutex;

        for (std::size_t i = 0; i < jobs.size(); ++i) {
            submit([&, i] {
                try {
                    results[i] = jobs[i]();
                } catch (...) {
                    const std::lock_guard<std::mutex> lock(errorMutex);
                    if (!error)
                        error = std::current_exception();
                }
                done.fetch_add(1, std::memory_order_release);
                finishedCv_.notify_all();
            });
        }

        waitForCount(done, jobs.size());
        if (error)
            std::rethrow_exception(error);
        return results;
    }

    /** map() for void jobs. */
    void run(std::vector<std::function<void()>> jobs);

  private:
    void workerLoop();
    void waitForCount(const std::atomic<std::size_t> &done,
                      std::size_t target);

    unsigned threadCount_ = 0;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable finishedCv_;
    std::mutex finishedMutex_;
    bool stopping_ = false;
};

/**
 * Back-compat shim for the old bench helper: run a batch of
 * independent jobs on @p pool (the shared pool by default).
 */
template <typename T>
std::vector<T>
runParallel(std::vector<std::function<T()>> jobs,
            ThreadPool *pool = nullptr)
{
    ThreadPool &target = pool ? *pool : ThreadPool::shared();
    return target.map(std::move(jobs));
}

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_THREAD_POOL_H
