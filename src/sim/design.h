/**
 * @file
 * Evaluated-design configuration and run helpers shared by every
 * performance scenario (Figs. 10-14, Tables 4-5, ablations).
 *
 * Moved out of bench/perf_common.h so the scenario runner, the bench
 * binaries, and the examples all build the same SystemConfig for a
 * given (design, budget) pair.  Baseline runs are memoized: a sweep
 * that compares N designs against the NoMitigation baseline on the
 * same workload performs one baseline simulation, not N.
 */

#ifndef PRACLEAK_SIM_DESIGN_H
#define PRACLEAK_SIM_DESIGN_H

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cpu/system.h"
#include "sim/thread_pool.h"
#include "tprac/analysis.h"
#include "tprac/tb_rfm.h"
#include "workload/suite.h"

namespace pracleak::sim {

/** Design variants evaluated in the paper's performance section. */
struct DesignConfig
{
    std::string label;
    MitigationMode mode = MitigationMode::NoMitigation;

    /**
     * String-keyed defense (mitigation/registry.h).  When non-empty
     * it overrides `mode` and the registry derives the defense's
     * parameters (BAT, TB-Window, RAAIMT, Graphene threshold, PARA
     * probability) from nbo via configureDefense.
     */
    std::string mitigation;

    /**
     * DRAM spec registry name (dram/dram_spec.h: "ddr5-8000b",
     * "ddr5-4800-1r", ...).  Empty keeps the paper's DDR5-8000B
     * configuration; scenarios expose it as a `spec` grid axis.
     */
    std::string spec;

    std::uint32_t nbo = 1024;       //!< NBO = NRH proxy (see DESIGN.md)
    std::uint32_t nmit = 1;         //!< PRAC level
    std::uint32_t trefPeriodRefs = 0;   //!< 0 = no TREF
    bool counterReset = true;
    bool perBankRfm = false;        //!< TPRAC-PB (Section 7.2)

    /** Random-RFM injection rate (Obfuscation mode); <0 = default. */
    double randomRfmPerTrefi = -1.0;

    /** Interleaved memory channels (power of two). */
    std::uint32_t channels = 1;

    /** Ranks per channel; 0 keeps the spec default (4). */
    std::uint32_t ranks = 0;

    /** Channel-interleave granularity in bytes (power of two). */
    std::uint32_t channelInterleaveBytes = 256;

    /** Idle-cycle fast-forward (wall-clock only; results identical). */
    bool fastForward = true;
};

namespace detail {

/** Implicitly convertible to any field type: probes aggregate arity. */
struct AnyDesignField
{
    template <class T> operator T() const;
};

template <std::size_t> using FieldProbe = AnyDesignField;

template <class T, class... Args>
auto braceTest(int)
    -> decltype(T{std::declval<Args>()...}, std::true_type{});
template <class, class...> auto braceTest(...) -> std::false_type;

template <class T, std::size_t... I>
constexpr bool
acceptsFieldsImpl(std::index_sequence<I...>)
{
    return decltype(braceTest<T, FieldProbe<I>...>(0))::value;
}

/** Whether aggregate @p T brace-initializes from exactly N values. */
template <class T, std::size_t N>
inline constexpr bool acceptsFields =
    acceptsFieldsImpl<T>(std::make_index_sequence<N>{});

} // namespace detail

/**
 * Field-count tripwire.  DesignConfig is consumed positionally in
 * several places that the compiler cannot check for completeness --
 * makeSystemConfig() translates every field, and baselineKey()
 * (design.cpp) must enumerate every baseline-visible knob or the
 * memoization cache silently serves stale baselines.  Keeping the
 * struct an aggregate makes designated initializers the construction
 * idiom (`DesignConfig{.label = "x", .channels = 2}`), and the
 * asserts below fail the build the moment a field is added or
 * removed, pointing at the audit list instead of letting a bench go
 * quietly wrong.  Update the count here only after updating
 * makeSystemConfig() and baselineKey().
 */
inline constexpr std::size_t kDesignConfigFieldCount = 14;

static_assert(std::is_aggregate_v<DesignConfig>,
              "DesignConfig must stay an aggregate: benches and "
              "scenarios rely on designated initializers, and the "
              "field-count tripwire probes brace-initialization");
static_assert(
    detail::acceptsFields<DesignConfig, kDesignConfigFieldCount> &&
        !detail::acceptsFields<DesignConfig,
                               kDesignConfigFieldCount + 1>,
    "DesignConfig gained or lost a field: audit makeSystemConfig() "
    "and baselineKey() (design.cpp) -- a baseline-visible knob "
    "missing from the memoization key serves stale baselines -- "
    "then update kDesignConfigFieldCount");

/** Instruction budgets for bench runs (scaled-down from the paper). */
struct RunBudget
{
    std::uint64_t warmup = 50'000;
    std::uint64_t measure = 250'000;
};

/** Build the full-system configuration for one design point. */
SystemConfig makeSystemConfig(const DesignConfig &design,
                              const RunBudget &budget);

/** One (workload, design) run. */
RunResult runOne(const SuiteEntry &entry, const DesignConfig &design,
                 const RunBudget &budget, std::uint32_t cores = 4);

/**
 * Run @p design and its NoMitigation baseline on @p entry.  The
 * baseline leg is served from a process-wide memoization cache keyed
 * on every baseline-visible knob, so design sweeps over the same
 * workload pay for it once.
 */
struct PairResult
{
    RunResult baseline;
    RunResult design;
};

PairResult runNormalizedPair(const SuiteEntry &entry,
                             const DesignConfig &design,
                             const RunBudget &budget,
                             std::uint32_t cores = 4);

/** Drop all memoized baseline runs (tests / measurement hygiene). */
void clearBaselineCache();

/** Per-entry normalized performance (weighted speedup). */
struct EntryPerf
{
    std::string name;
    MemIntensity intensity = MemIntensity::Low;
    double normalized = 0.0;
    RunResult result;
};

/**
 * Run every suite entry under @p design and the matching baseline in
 * parallel on @p pool (shared pool by default), returning per-entry
 * normalized performance.
 */
std::vector<EntryPerf>
runSuiteNormalized(const std::vector<SuiteEntry> &entries,
                   const DesignConfig &design, const RunBudget &budget,
                   ThreadPool *pool = nullptr);

/** Arithmetic mean of normalized performance. */
double meanNormalized(const std::vector<EntryPerf> &perfs);

/**
 * Find a suite entry by workload name in the standard suite; throws
 * std::invalid_argument for unknown names (lists the valid ones).
 */
const SuiteEntry &findSuiteEntry(const std::string &name);

/** Names of the standard-suite entries, optionally filtered. */
std::vector<std::string> suiteEntryNames();
std::vector<std::string> suiteEntryNames(MemIntensity intensity);

/** High + Medium entry names (the paper's sensitivity subset). */
std::vector<std::string> memoryIntensiveEntryNames();

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_DESIGN_H
