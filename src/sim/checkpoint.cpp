#include "sim/checkpoint.h"

#include "sim/provenance.h"
#include "sim/runner.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <stdexcept>
#include <unistd.h>

namespace pracleak::sim {

namespace {

[[noreturn]] void
refuse(const std::string &path, const std::string &why)
{
    throw std::runtime_error("checkpoint journal " + path + ": " +
                             why);
}

/** Any NaN double anywhere in @p value? */
bool
containsNaN(const JsonValue &value)
{
    switch (value.kind()) {
      case JsonValue::Kind::Double:
        return std::isnan(value.asDouble());
      case JsonValue::Kind::Array:
        for (const JsonValue &item : value.items())
            if (containsNaN(item))
                return true;
        return false;
      case JsonValue::Kind::Object:
        for (const auto &[name, member] : value.members()) {
            (void)name;
            if (containsNaN(member))
                return true;
        }
        return false;
      default: return false;
    }
}

/** Render one point as a single newline-terminated JSONL record. */
std::string
pointLine(std::size_t index, const std::vector<ResultRow> &rows,
          double wallSeconds)
{
    JsonValue record = JsonValue::object();
    record.set("kind", "point");
    record.set("index", static_cast<std::int64_t>(index));
    JsonValue rowArray = JsonValue::array();
    for (const ResultRow &row : rows)
        rowArray.push(row);
    record.set("rows", std::move(rowArray));
    // Record-level telemetry only: loaders read kind/index/rows, so
    // wall clock never reaches result rows (which must stay
    // byte-identical across job counts, resume, and steal merges).
    if (wallSeconds >= 0.0)
        record.set("wall_seconds", wallSeconds);
    // Round-trip doubles exactly: a resumed row must be bit-identical
    // to the freshly computed one or summaries recomputed from the
    // merged rows (and the final JSON itself) could drift.
    return record.dumpRoundTrip() + '\n';
}

bool
validWorkerId(const std::string &worker)
{
    if (worker.empty())
        return false;
    for (const char c : worker)
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '-' && c != '_' && c != '.')
            return false;
    return true;
}

/** One fully parsed journal: header identity + point records. */
struct RawJournal
{
    bool hasHeader = false;
    std::string scenario;
    std::string gitRev;
    std::string gridHash;
    JsonValue grid;
    std::size_t points = 0;
    ShardSpec shard;
    std::string worker;
    std::map<std::size_t, std::vector<ResultRow>> rowsByPoint;
    std::size_t validBytes = 0;
    bool droppedTornTail = false;
};

/**
 * Interpret a header record's identity fields.  Structural problems
 * (missing/mistyped fields, unreadable format version) are hard
 * errors here; comparing those fields against an expected sweep is
 * the caller's business.
 */
void
extractHeader(const std::string &path, const JsonValue &record,
              RawJournal &out)
{
    const JsonValue *kind = record.get("kind");
    if (!kind || kind->asString() != "header")
        refuse(path, "first record is not a header");

    const JsonValue *version = record.get("version");
    if (!version || version->asInt() != kJournalVersion)
        refuse(path,
               "format version " +
                   (version ? version->asString() : "missing") +
                   " (this build reads version " +
                   std::to_string(kJournalVersion) +
                   "); journals are working state, not archives -- "
                   "re-run the sweep fresh");

    const JsonValue *name = record.get("scenario");
    const JsonValue *rev = record.get("git_rev");
    const JsonValue *hash = record.get("grid_fnv1a64");
    const JsonValue *count = record.get("points");
    if (!name || !rev || !hash || !count || count->asInt() < 0)
        refuse(path, "header is missing identity fields");
    out.scenario = name->asString();
    out.gitRev = rev->asString();
    out.gridHash = hash->asString();
    out.points = static_cast<std::size_t>(count->asInt());
    if (const JsonValue *grid = record.get("grid"))
        out.grid = *grid;

    if (const JsonValue *shard = record.get("shard")) {
        const JsonValue *index = shard->get("index");
        const JsonValue *total = shard->get("count");
        if (!index || !total || index->asInt() < 0 ||
            total->asInt() <= index->asInt())
            refuse(path, "header has a malformed shard spec");
        out.shard.index = static_cast<unsigned>(index->asInt());
        out.shard.count = static_cast<unsigned>(total->asInt());
    }
    if (const JsonValue *worker = record.get("worker"))
        out.worker = worker->asString();
}

/**
 * Parse @p text structurally.  Torn final records are dropped; a
 * complete line that fails any check is corruption and throws.  An
 * empty file or one holding only a torn header yields
 * hasHeader == false.
 */
RawJournal
parseJournal(const std::string &path, const std::string &text)
{
    RawJournal raw;
    std::size_t pos = 0;
    std::size_t lineNo = 0;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos) {
            // Unterminated tail: the write that was in flight when
            // the sweep died.  Records are written newline-last in
            // one stream operation, so only a tail can be torn --
            // drop it and re-run that point.
            raw.droppedTornTail = true;
            break;
        }
        ++lineNo;
        const std::string_view line(text.data() + pos,
                                    newline - pos);
        std::string error;
        const JsonValue record = parseJson(line, &error);
        if (!error.empty())
            refuse(path, "record " + std::to_string(lineNo) +
                             " is unparseable (" + error +
                             ") -- the journal is corrupt, not "
                             "merely truncated; delete it to start "
                             "fresh");
        if (lineNo == 1) {
            extractHeader(path, record, raw);
            raw.hasHeader = true;
        } else {
            const JsonValue *kind = record.get("kind");
            if (!kind || kind->asString() != "point")
                refuse(path, "record " + std::to_string(lineNo) +
                                 " is not a point record");
            const JsonValue *index = record.get("index");
            const JsonValue *rows = record.get("rows");
            if (!index || !rows ||
                rows->kind() != JsonValue::Kind::Array)
                refuse(path, "record " + std::to_string(lineNo) +
                                 " is missing index/rows");
            const std::int64_t i = index->asInt();
            if (i < 0 ||
                i >= static_cast<std::int64_t>(raw.points))
                refuse(path, "record " + std::to_string(lineNo) +
                                 " has point index " +
                                 std::to_string(i) +
                                 " outside the grid");
            if (!shardOwns(static_cast<std::size_t>(i), raw.shard))
                refuse(path, "record " + std::to_string(lineNo) +
                                 " has point index " +
                                 std::to_string(i) +
                                 " outside shard " +
                                 raw.shard.label() +
                                 " -- ownership must be disjoint");
            // Duplicate indices are legal (a resume can re-run a
            // point whose record was torn away): last wins.
            raw.rowsByPoint[static_cast<std::size_t>(i)] =
                rows->items();
        }
        pos = newline + 1;
        raw.validBytes = pos;
    }
    return raw;
}

/** The rows of one point in canonical bytes (conflict detection). */
std::string
serializeRows(const std::vector<ResultRow> &rows)
{
    JsonValue array = JsonValue::array();
    for (const ResultRow &row : rows)
        array.push(row);
    return array.dumpRoundTrip();
}

/**
 * Create @p path with O_CREAT|O_EXCL: exactly one concurrent caller
 * wins.  False when the file already exists; throws on any other
 * failure (a vanished claims directory must surface, not spin).
 */
bool
tryCreateExclusive(const std::string &path,
                   const std::string &contents)
{
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return false;
        throw std::runtime_error("claims: cannot create " + path +
                                 ": " + std::strerror(errno));
    }
    // The content (owner + timestamp) is diagnostic only; claim
    // semantics live in the file's existence and mtime.
    const ssize_t written =
        ::write(fd, contents.data(), contents.size());
    (void)written;
    ::close(fd);
    return true;
}

} // namespace

std::string
ShardSpec::label() const
{
    if (!active())
        return "";
    return std::to_string(index) + "/" + std::to_string(count);
}

bool
shardOwns(std::size_t point, const ShardSpec &shard)
{
    // Round-robin, not contiguous blocks: sweeps often order axes so
    // expensive values cluster, and i mod N spreads any such run of
    // heavy points across all shards.
    return !shard.active() || point % shard.count == shard.index;
}

std::string
journalPath(const std::string &directory, const std::string &scenario)
{
    std::string path = directory;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + scenario + ".jsonl";
}

std::string
shardJournalPath(const std::string &directory,
                 const std::string &scenario, const ShardSpec &shard)
{
    std::string path = directory;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + scenario + ".shard-" + std::to_string(shard.index) +
           "-of-" + std::to_string(shard.count) + ".jsonl";
}

std::string
workerJournalPath(const std::string &directory,
                  const std::string &scenario,
                  const std::string &worker)
{
    if (!validWorkerId(worker))
        throw std::invalid_argument(
            "worker id '" + worker +
            "' is not filename-safe (use alphanumerics, '-', '_', "
            "'.')");
    std::string path = directory;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + scenario + ".worker-" + worker + ".jsonl";
}

JsonValue
journalHeader(const std::string &scenario, const JsonValue &grid,
              std::size_t points, const ShardSpec &shard,
              const std::string &worker)
{
    JsonValue header = JsonValue::object();
    header.set("kind", "header");
    header.set("version", kJournalVersion);
    header.set("scenario", scenario);
    header.set("points", static_cast<std::int64_t>(points));
    header.set("git_rev", gitRevision());
    header.set("grid_fnv1a64", gridHashHex(grid));
    if (shard.active()) {
        JsonValue spec = JsonValue::object();
        spec.set("index", static_cast<std::int64_t>(shard.index));
        spec.set("count", static_cast<std::int64_t>(shard.count));
        header.set("shard", std::move(spec));
    }
    if (!worker.empty())
        header.set("worker", worker);
    header.set("created_at", utcTimestamp());
    // The grid itself rides along for the merge path (its hash is
    // validated against grid_fnv1a64 before it is trusted) and for
    // human inspection; resume validation trusts only the hash.
    header.set("grid", grid);
    return header;
}

CheckpointState
loadJournal(const std::string &path, const std::string &scenario,
            const JsonValue &grid, std::size_t points,
            const ShardSpec &shard, const std::string &worker)
{
    CheckpointState state;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return state; // no journal yet: fresh start

    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    RawJournal raw = parseJournal(path, text);
    if (!raw.hasHeader)
        return state; // empty file / torn header: fresh start

    if (raw.scenario != scenario)
        refuse(path, "written by scenario '" + raw.scenario +
                         "', not '" + scenario + "'");
    const std::string expectedGrid = gridHashHex(grid);
    if (raw.gridHash != expectedGrid)
        refuse(path,
               "grid hash mismatch (journal " + raw.gridHash +
                   ", effective grid " + expectedGrid +
                   ") -- the sweep's axes or overrides changed; "
                   "re-run without --resume to start fresh");
    if (raw.gitRev != gitRevision())
        refuse(path,
               "git revision mismatch (journal " + raw.gitRev +
                   ", build " + gitRevision() +
                   ") -- results from different code must not be "
                   "merged; re-run without --resume");
    if (raw.points != points)
        refuse(path, "point count mismatch");
    if (!(raw.shard == shard))
        refuse(path, "shard mismatch (journal owns " +
                         (raw.shard.active() ? raw.shard.label()
                                             : "the whole grid") +
                         ", this run owns " +
                         (shard.active() ? shard.label()
                                         : "the whole grid") +
                         ") -- per-shard journals must not cross");
    if (raw.worker != worker)
        refuse(path, "worker mismatch (journal written by '" +
                         raw.worker + "', this run is '" + worker +
                         "')");

    state.rowsByPoint = std::move(raw.rowsByPoint);
    state.hasHeader = true;
    state.validBytes = raw.validBytes;
    state.droppedTornTail = raw.droppedTornTail;
    return state;
}

JournalFile
readJournalFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        refuse(path, "cannot read");
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    RawJournal raw = parseJournal(path, text);
    if (!raw.hasHeader)
        refuse(path, "no complete header record -- nothing to merge");
    // The merge path trusts the embedded grid, so prove it still
    // matches the hash the journal itself claims to be pinned to.
    if (gridHashHex(raw.grid) != raw.gridHash)
        refuse(path, "embedded grid does not match the header's "
                     "grid hash -- the journal was modified");

    JournalFile file;
    file.path = path;
    file.scenario = std::move(raw.scenario);
    file.gitRev = std::move(raw.gitRev);
    file.gridHash = std::move(raw.gridHash);
    file.grid = std::move(raw.grid);
    file.points = raw.points;
    file.shard = raw.shard;
    file.worker = std::move(raw.worker);
    file.rowsByPoint = std::move(raw.rowsByPoint);
    file.droppedTornTail = raw.droppedTornTail;
    return file;
}

std::vector<std::string>
journalFilesFor(const std::string &directory,
                const std::string &scenario)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".jsonl")
            continue;
        // Peek at the first line only: files without a complete
        // header (a worker killed mid-header) hold no point records
        // and are skipped, not errors.
        std::ifstream in(entry.path(), std::ios::binary);
        std::string first;
        if (!in || !std::getline(in, first))
            continue;
        std::string error;
        const JsonValue header = parseJson(first, &error);
        if (!error.empty())
            continue;
        const JsonValue *kind = header.get("kind");
        const JsonValue *name = header.get("scenario");
        if (!kind || kind->asString() != "header" || !name)
            continue;
        if (!scenario.empty() && name->asString() != scenario)
            continue;
        paths.push_back(entry.path().string());
    }
    if (ec)
        throw std::runtime_error("cannot scan " + directory + ": " +
                                 ec.message());
    std::sort(paths.begin(), paths.end());
    return paths;
}

MergedJournals
mergeJournals(const std::vector<std::string> &paths)
{
    if (paths.empty())
        throw std::runtime_error("merge: no journals to merge");

    MergedJournals merged;
    std::string seedPath;
    std::string seedHash;
    std::map<std::size_t, std::string> ownerPath;
    std::map<std::size_t, std::string> serialized;
    for (const std::string &path : paths) {
        JournalFile journal = readJournalFile(path);
        if (journal.gitRev != gitRevision())
            refuse(path,
                   "git revision mismatch (journal " +
                       journal.gitRev + ", merging build " +
                       gitRevision() +
                       ") -- results from different code must not "
                       "be merged");
        if (seedPath.empty()) {
            seedPath = path;
            seedHash = journal.gridHash;
            merged.scenario = journal.scenario;
            merged.grid = journal.grid;
            merged.points = journal.points;
        } else {
            if (journal.scenario != merged.scenario)
                refuse(path,
                       "scenario '" + journal.scenario +
                           "' does not match '" + merged.scenario +
                           "' from " + seedPath +
                           " (merging a mixed directory? pass "
                           "--scenario to filter)");
            if (journal.gridHash != seedHash)
                refuse(path, "grid hash mismatch against " +
                                 seedPath +
                                 " -- these journals belong to "
                                 "different sweeps");
            if (journal.points != merged.points)
                refuse(path, "point count mismatch against " +
                                 seedPath);
        }
        for (auto &[index, rows] : journal.rowsByPoint) {
            std::string bytes = serializeRows(rows);
            const auto seen = serialized.find(index);
            if (seen == serialized.end()) {
                merged.rowsByPoint[index] = std::move(rows);
                serialized[index] = std::move(bytes);
                ownerPath[index] = path;
                continue;
            }
            // Overlap is legal (work stealing may run a point twice)
            // but only when the duplicate rows are byte-identical:
            // the runs are deterministic, so a conflict means the
            // journals do not describe the same computation.
            if (seen->second != bytes)
                refuse(path,
                       "point " + std::to_string(index) +
                           " conflicts with " + ownerPath[index] +
                           " -- overlapping ownership with "
                           "different rows; refusing to pick one");
        }
    }

    if (merged.rowsByPoint.size() != merged.points) {
        std::string missing;
        std::size_t shown = 0;
        for (std::size_t i = 0; i < merged.points && shown < 8; ++i)
            if (!merged.rowsByPoint.count(i)) {
                missing += (shown ? ", " : "") + std::to_string(i);
                ++shown;
            }
        throw std::runtime_error(
            "merge: " +
            std::to_string(merged.points -
                           merged.rowsByPoint.size()) +
            " of " + std::to_string(merged.points) +
            " points are covered by no journal (first missing: " +
            missing + ") -- is a shard's journal absent?");
    }
    return merged;
}

JournalWriter::JournalWriter(const std::string &path,
                             const JsonValue &header, bool append,
                             std::size_t truncateTo,
                             std::size_t flushEvery)
    : flushEvery_(flushEvery ? flushEvery : 1)
{
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);
    if (append) {
        // Trim any torn tail so the next record does not concatenate
        // onto a half-written line.
        std::filesystem::resize_file(target, truncateTo, ec);
        if (ec)
            throw std::runtime_error("checkpoint journal " + path +
                                     ": cannot truncate torn tail: " +
                                     ec.message());
        out_.open(target, std::ios::binary | std::ios::app);
    } else {
        out_.open(target, std::ios::binary | std::ios::trunc);
    }
    if (!out_)
        throw std::runtime_error("checkpoint journal " + path +
                                 ": cannot open for writing");
    if (!append) {
        out_ << header.dump() << '\n';
        // Make the header durable before any long compute: a sweep
        // killed during its first point must still leave a
        // resumable (if empty) journal.
        out_.flush();
    }
}

JournalWriter::~JournalWriter()
{
    flush();
}

void
JournalWriter::writePoint(std::size_t index,
                          const std::vector<ResultRow> &rows,
                          double wall_seconds)
{
    // JSON has no NaN literal: the record stores null, which resumes
    // as Null (asDouble() == 0.0), so a summary recomputed from the
    // merged rows would see different inputs than the live run did.
    bool sawNaN = false;
    for (const ResultRow &row : rows)
        sawNaN = sawNaN || containsNaN(row);
    if (sawNaN)
        std::fprintf(stderr,
                     "warning: checkpoint point %zu journals a NaN "
                     "metric as null; a summary recomputed on "
                     "--resume may differ from an uninterrupted "
                     "run\n",
                     index);

    const std::string line = pointLine(index, rows, wall_seconds);
    const std::lock_guard<std::mutex> lock(mutex_);
    out_ << line;
    if (++sinceFlush_ >= flushEvery_) {
        out_.flush();
        sinceFlush_ = 0;
    }
    warnIfFailedLocked();
}

void
JournalWriter::flush()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    out_.flush();
    sinceFlush_ = 0;
    warnIfFailedLocked();
}

void
JournalWriter::warnIfFailedLocked()
{
    // A full disk or a deleted checkpoint directory must not kill a
    // long sweep -- the journal is protection, not output -- but
    // losing that protection silently would be worse: every point
    // from here on would re-run after a kill the user thought was
    // covered.
    if (out_.good() || warnedFailed_)
        return;
    warnedFailed_ = true;
    std::fprintf(stderr,
                 "warning: checkpoint journal write failed (disk "
                 "full? directory removed?); points completed from "
                 "here on will NOT be resumable\n");
}

PointClaims::PointClaims(const std::string &directory,
                         const std::string &scenario,
                         std::string worker, double claimTtlSeconds)
    : worker_(std::move(worker)), ttlSeconds_(claimTtlSeconds)
{
    if (!validWorkerId(worker_))
        throw std::invalid_argument(
            "worker id '" + worker_ +
            "' is not filename-safe (use alphanumerics, '-', '_', "
            "'.')");
    claimsDir_ = directory;
    if (!claimsDir_.empty() && claimsDir_.back() != '/')
        claimsDir_ += '/';
    claimsDir_ += scenario + ".claims";
    std::error_code ec;
    std::filesystem::create_directories(claimsDir_, ec);
    if (ec || !std::filesystem::is_directory(claimsDir_))
        throw std::runtime_error("claims: cannot create " +
                                 claimsDir_ +
                                 (ec ? ": " + ec.message() : ""));
}

std::string
PointClaims::claimPath(std::size_t point) const
{
    return claimsDir_ + "/point-" + std::to_string(point) + ".claim";
}

std::string
PointClaims::donePath(std::size_t point) const
{
    return claimsDir_ + "/point-" + std::to_string(point) + ".done";
}

bool
PointClaims::isDone(std::size_t point) const
{
    std::error_code ec;
    return std::filesystem::exists(donePath(point), ec);
}

bool
PointClaims::tryClaim(std::size_t point, bool *stolen)
{
    if (stolen)
        *stolen = false;
    if (isDone(point))
        return false;
    const std::string path = claimPath(point);
    const std::string contents =
        worker_ + "\n" + utcTimestamp() + "\n";
    if (tryCreateExclusive(path, contents)) {
        // A racer may have finished the point between our done check
        // and the claim; don't keep ownership of finished work.
        if (isDone(point)) {
            release(point);
            return false;
        }
        return true;
    }

    // An existing claim: respect it while fresh, steal it once its
    // mtime ages past the TTL (the owner is presumed dead).
    std::error_code ec;
    const auto mtime =
        std::filesystem::last_write_time(path, ec);
    if (ec)
        return false; // vanished mid-look: the next pass decides
    const auto age =
        std::filesystem::file_time_type::clock::now() - mtime;
    const double ageSeconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            age)
            .count();
    if (ageSeconds <= ttlSeconds_)
        return false;

    // Steal: rename to a per-stealer tombstone first -- rename's
    // atomicity guarantees exactly one stealer wins the right to
    // re-claim, and a fresh claim taken meanwhile is never clobbered
    // (we only ever remove the tombstone we own).
    const std::string tombstone = path + ".stale-" + worker_;
    std::filesystem::rename(path, tombstone, ec);
    if (ec)
        return false; // lost the steal race (or the owner released)
    std::filesystem::remove(tombstone, ec);
    if (!tryCreateExclusive(path, contents))
        return false;
    if (isDone(point)) {
        release(point);
        return false;
    }
    if (stolen)
        *stolen = true;
    return true;
}

void
PointClaims::release(std::size_t point)
{
    std::error_code ec;
    std::filesystem::remove(claimPath(point), ec);
}

void
PointClaims::markDone(std::size_t point)
{
    // Published via temp + atomic rename (writeFileAtomic): other
    // workers must never observe a half-created marker.  Failure is
    // fatal -- a lost marker stalls every other worker until the
    // claim TTL, and the "all done" exit condition would never hold.
    if (!writeFileAtomic(donePath(point), worker_ + "\n"))
        throw std::runtime_error(
            "claims: cannot publish done marker for point " +
            std::to_string(point) + " under " + claimsDir_);
}

} // namespace pracleak::sim
