#include "sim/checkpoint.h"

#include "sim/provenance.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace pracleak::sim {

namespace {

[[noreturn]] void
refuse(const std::string &path, const std::string &why)
{
    throw std::runtime_error("checkpoint journal " + path + ": " +
                             why);
}

/** Any NaN double anywhere in @p value? */
bool
containsNaN(const JsonValue &value)
{
    switch (value.kind()) {
      case JsonValue::Kind::Double:
        return std::isnan(value.asDouble());
      case JsonValue::Kind::Array:
        for (const JsonValue &item : value.items())
            if (containsNaN(item))
                return true;
        return false;
      case JsonValue::Kind::Object:
        for (const auto &[name, member] : value.members()) {
            (void)name;
            if (containsNaN(member))
                return true;
        }
        return false;
      default: return false;
    }
}

/** Render one point as a single newline-terminated JSONL record. */
std::string
pointLine(std::size_t index, const std::vector<ResultRow> &rows)
{
    JsonValue record = JsonValue::object();
    record.set("kind", "point");
    record.set("index", static_cast<std::int64_t>(index));
    JsonValue rowArray = JsonValue::array();
    for (const ResultRow &row : rows)
        rowArray.push(row);
    record.set("rows", std::move(rowArray));
    // Round-trip doubles exactly: a resumed row must be bit-identical
    // to the freshly computed one or summaries recomputed from the
    // merged rows (and the final JSON itself) could drift.
    return record.dumpRoundTrip() + '\n';
}

void
validateHeader(const std::string &path, const JsonValue &record,
               const std::string &scenario, const JsonValue &grid,
               std::size_t points)
{
    const JsonValue *kind = record.get("kind");
    if (!kind || kind->asString() != "header")
        refuse(path, "first record is not a header");

    const JsonValue *version = record.get("version");
    if (!version || version->asInt() != kJournalVersion)
        refuse(path,
               "format version " +
                   (version ? version->asString() : "missing") +
                   " (this build reads version " +
                   std::to_string(kJournalVersion) +
                   "); re-run without --resume");

    const JsonValue *name = record.get("scenario");
    if (!name || name->asString() != scenario)
        refuse(path,
               "written by scenario '" +
                   (name ? name->asString() : "?") + "', not '" +
                   scenario + "'");

    const std::string expectedGrid = gridHashHex(grid);
    const JsonValue *gridHash = record.get("grid_fnv1a64");
    if (!gridHash || gridHash->asString() != expectedGrid)
        refuse(path,
               "grid hash mismatch (journal " +
                   (gridHash ? gridHash->asString() : "?") +
                   ", effective grid " + expectedGrid +
                   ") -- the sweep's axes or overrides changed; "
                   "re-run without --resume to start fresh");

    const JsonValue *rev = record.get("git_rev");
    if (!rev || rev->asString() != gitRevision())
        refuse(path,
               "git revision mismatch (journal " +
                   (rev ? rev->asString() : "?") + ", build " +
                   gitRevision() +
                   ") -- results from different code must not be "
                   "merged; re-run without --resume");

    const JsonValue *count = record.get("points");
    if (!count ||
        count->asInt() != static_cast<std::int64_t>(points))
        refuse(path, "point count mismatch");
}

} // namespace

std::string
journalPath(const std::string &directory, const std::string &scenario)
{
    std::string path = directory;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + scenario + ".jsonl";
}

JsonValue
journalHeader(const std::string &scenario, const JsonValue &grid,
              std::size_t points)
{
    JsonValue header = JsonValue::object();
    header.set("kind", "header");
    header.set("version", kJournalVersion);
    header.set("scenario", scenario);
    header.set("points", static_cast<std::int64_t>(points));
    header.set("git_rev", gitRevision());
    header.set("grid_fnv1a64", gridHashHex(grid));
    header.set("created_at", utcTimestamp());
    // The grid itself rides along for human inspection only;
    // validation trusts the hash.
    header.set("grid", grid);
    return header;
}

CheckpointState
loadJournal(const std::string &path, const std::string &scenario,
            const JsonValue &grid, std::size_t points)
{
    CheckpointState state;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return state; // no journal yet: fresh start

    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    std::size_t pos = 0;
    std::size_t lineNo = 0;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        if (newline == std::string::npos) {
            // Unterminated tail: the write that was in flight when
            // the sweep died.  Records are written newline-last in
            // one stream operation, so only a tail can be torn --
            // drop it and re-run that point.
            state.droppedTornTail = true;
            break;
        }
        ++lineNo;
        const std::string_view line(text.data() + pos,
                                    newline - pos);
        std::string error;
        const JsonValue record = parseJson(line, &error);
        if (!error.empty())
            refuse(path, "record " + std::to_string(lineNo) +
                             " is unparseable (" + error +
                             ") -- the journal is corrupt, not "
                             "merely truncated; delete it to start "
                             "fresh");
        if (lineNo == 1) {
            validateHeader(path, record, scenario, grid, points);
            state.hasHeader = true;
        } else {
            const JsonValue *kind = record.get("kind");
            if (!kind || kind->asString() != "point")
                refuse(path, "record " + std::to_string(lineNo) +
                                 " is not a point record");
            const JsonValue *index = record.get("index");
            const JsonValue *rows = record.get("rows");
            if (!index || !rows ||
                rows->kind() != JsonValue::Kind::Array)
                refuse(path, "record " + std::to_string(lineNo) +
                                 " is missing index/rows");
            const std::int64_t i = index->asInt();
            if (i < 0 || i >= static_cast<std::int64_t>(points))
                refuse(path, "record " + std::to_string(lineNo) +
                                 " has point index " +
                                 std::to_string(i) +
                                 " outside the grid");
            // Duplicate indices are legal (a resume can re-run a
            // point whose record was torn away): last wins.
            state.rowsByPoint[static_cast<std::size_t>(i)] =
                rows->items();
        }
        pos = newline + 1;
        state.validBytes = pos;
    }
    return state;
}

JournalWriter::JournalWriter(const std::string &path,
                             const JsonValue &header, bool append,
                             std::size_t truncateTo,
                             std::size_t flushEvery)
    : flushEvery_(flushEvery ? flushEvery : 1)
{
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);
    if (append) {
        // Trim any torn tail so the next record does not concatenate
        // onto a half-written line.
        std::filesystem::resize_file(target, truncateTo, ec);
        if (ec)
            throw std::runtime_error("checkpoint journal " + path +
                                     ": cannot truncate torn tail: " +
                                     ec.message());
        out_.open(target, std::ios::binary | std::ios::app);
    } else {
        out_.open(target, std::ios::binary | std::ios::trunc);
    }
    if (!out_)
        throw std::runtime_error("checkpoint journal " + path +
                                 ": cannot open for writing");
    if (!append) {
        out_ << header.dump() << '\n';
        // Make the header durable before any long compute: a sweep
        // killed during its first point must still leave a
        // resumable (if empty) journal.
        out_.flush();
    }
}

JournalWriter::~JournalWriter()
{
    flush();
}

void
JournalWriter::writePoint(std::size_t index,
                          const std::vector<ResultRow> &rows)
{
    // JSON has no NaN literal: the record stores null, which resumes
    // as Null (asDouble() == 0.0), so a summary recomputed from the
    // merged rows would see different inputs than the live run did.
    bool sawNaN = false;
    for (const ResultRow &row : rows)
        sawNaN = sawNaN || containsNaN(row);
    if (sawNaN)
        std::fprintf(stderr,
                     "warning: checkpoint point %zu journals a NaN "
                     "metric as null; a summary recomputed on "
                     "--resume may differ from an uninterrupted "
                     "run\n",
                     index);

    const std::string line = pointLine(index, rows);
    const std::lock_guard<std::mutex> lock(mutex_);
    out_ << line;
    if (++sinceFlush_ >= flushEvery_) {
        out_.flush();
        sinceFlush_ = 0;
    }
    warnIfFailedLocked();
}

void
JournalWriter::flush()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    out_.flush();
    sinceFlush_ = 0;
    warnIfFailedLocked();
}

void
JournalWriter::warnIfFailedLocked()
{
    // A full disk or a deleted checkpoint directory must not kill a
    // long sweep -- the journal is protection, not output -- but
    // losing that protection silently would be worse: every point
    // from here on would re-run after a kill the user thought was
    // covered.
    if (out_.good() || warnedFailed_)
        return;
    warnedFailed_ = true;
    std::fprintf(stderr,
                 "warning: checkpoint journal write failed (disk "
                 "full? directory removed?); points completed from "
                 "here on will NOT be resumable\n");
}

} // namespace pracleak::sim
