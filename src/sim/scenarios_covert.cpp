/**
 * @file
 * Covert-channel scenario: Table 2, transmission period and bitrate
 * of the activity-based and activation-count-based channels.
 */

#include "sim/scenario.h"

#include "attack/covert.h"
#include "common/rng.h"
#include "sim/scenario_util.h"

namespace pracleak::sim {

namespace {

std::vector<std::uint32_t>
randomSymbols(std::size_t n, std::uint32_t bound, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint32_t> symbols(n);
    for (auto &symbol : symbols)
        symbol = static_cast<std::uint32_t>(rng.range(bound));
    return symbols;
}

Scenario
table2CovertChannels()
{
    Scenario scenario;
    scenario.name = "table2_covert_channels";
    scenario.tags = {"covert"};
    scenario.title = "Table 2: covert-channel period and bitrate";
    scenario.notes = "paper: activity 24.1-91.8us / 41.4-10.9Kbps; "
                     "count 64.7-257.6us / 123.6-38.8Kbps (our count "
                     "channel trades payload bits for robustness)";
    scenario.grid.axis("channel", {"activity", "count"})
        .axis("nbo", {256, 512, 1024})
        .constant("bits", 32)      // activity-channel message length
        .constant("symbols", 24);  // count-channel message length

    scenario.runPoint = [](const ParamSet &params) {
        const auto nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        CovertParams config;
        config.nbo = nbo;

        CovertResult result;
        if (params.getString("channel") == "activity") {
            result = runActivityCovert(
                config,
                randomBits(
                    static_cast<std::size_t>(params.getInt("bits")),
                    nbo));
        } else {
            const std::uint32_t bound =
                nbo <= 256 ? nbo / 16 : nbo / 32;
            result = runCountCovert(
                config,
                randomSymbols(
                    static_cast<std::size_t>(params.getInt("symbols")),
                    bound, nbo + 1));
        }

        ResultRow row = JsonValue::object();
        row.set("period_us", result.periodUs());
        row.set("rate_kbps", result.bitrateKbps());
        row.set("error_pct", 100.0 * result.errorRate());
        row.set("symbols_sent", result.symbolsSent);
        row.set("bits_per_symbol", result.bitsPerSymbol);
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

} // namespace

void
registerCovertScenarios(ScenarioRegistry &registry)
{
    registry.add(table2CovertChannels());
}

} // namespace pracleak::sim
