#include "sim/runner.h"

#include "sim/checkpoint.h"
#include "sim/provenance.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace pracleak::sim {

namespace {

/** Merge point parameters into a row without clobbering metrics. */
ResultRow
mergeParams(const ParamSet &params, ResultRow row)
{
    ResultRow merged = JsonValue::object();
    for (const auto &[name, value] : params.entries())
        if (!row.has(name))
            merged.set(name, value);
    for (const auto &[name, value] : row.members())
        merged.set(name, value);
    return merged;
}

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
cellText(const JsonValue &value)
{
    if (value.kind() == JsonValue::Kind::Array ||
        value.kind() == JsonValue::Kind::Object)
        return value.dump();
    return value.asString();
}

/** Union of row keys in first-seen order (table + CSV column order). */
std::vector<std::string>
collectColumns(const std::vector<ResultRow> &rows)
{
    std::vector<std::string> columns;
    for (const ResultRow &row : rows)
        for (const auto &[name, value] : row.members()) {
            (void)value;
            bool known = false;
            for (const auto &column : columns)
                known = known || column == name;
            if (!known)
                columns.push_back(name);
        }
    return columns;
}

} // namespace

std::string
rowsToCsv(const std::vector<ResultRow> &rows)
{
    const std::vector<std::string> columns = collectColumns(rows);

    std::string out;
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out += ',';
        out += csvEscape(columns[i]);
    }
    out += '\n';
    for (const ResultRow &row : rows) {
        for (std::size_t i = 0; i < columns.size(); ++i) {
            if (i)
                out += ',';
            if (const JsonValue *value = row.get(columns[i]))
                out += csvEscape(cellText(*value));
        }
        out += '\n';
    }
    return out;
}

JsonValue
SweepResult::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("scenario", scenario);
    root.set("title", title);
    if (!notes.empty())
        root.set("notes", notes);
    root.set("generator", "pracbench");
    root.set("jobs", static_cast<std::int64_t>(jobs));
    root.set("points", static_cast<std::int64_t>(points));
    root.set("wall_seconds", wallSeconds);
    root.set("provenance", provenanceObject(grid));
    root.set("grid", grid);

    JsonValue rowArray = JsonValue::array();
    for (const ResultRow &row : rows)
        rowArray.push(row);
    root.set("rows", std::move(rowArray));

    JsonValue summaryArray = JsonValue::array();
    for (const ResultRow &row : summary)
        summaryArray.push(row);
    root.set("summary", std::move(summaryArray));
    return root;
}

std::string
SweepResult::toCsv() const
{
    return rowsToCsv(rows);
}

SweepResult
runScenario(const Scenario &scenario, const SweepOptions &options)
{
    ParamGrid grid = scenario.grid;
    for (const auto &[axis, values] : options.overrides)
        grid.overrideAxis(axis, values);
    for (const auto &[axis, values] : options.softOverrides)
        if (grid.findAxis(axis))
            grid.overrideAxis(axis, values);
    if (options.firstPointOnly)
        for (const ParamAxis &axis : scenario.grid.axes())
            if (const ParamAxis *effective = grid.findAxis(axis.name))
                grid.overrideAxis(axis.name, {effective->values[0]});

    ThreadPool pool(options.jobs);
    const std::size_t n = grid.size();

    SweepResult result;
    result.scenario = scenario.name;
    result.title = scenario.title;
    result.notes = scenario.notes;
    result.grid = grid.toJson();
    result.jobs = pool.threadCount();
    result.points = n;

    // Checkpointing: recover already-journaled points, then journal
    // each newly completed one as workers finish.  Both the restored
    // rows and the live ones land in a per-point slot, so the merged
    // output is ordered by grid index -- independent of --jobs, kill
    // timing, and completion order.
    CheckpointState restored;
    std::unique_ptr<JournalWriter> journal;
    if (!options.checkpointPath.empty()) {
        if (options.resume)
            restored = loadJournal(options.checkpointPath,
                                   scenario.name, result.grid, n);
        journal = std::make_unique<JournalWriter>(
            options.checkpointPath,
            journalHeader(scenario.name, result.grid, n),
            restored.hasHeader, restored.validBytes,
            scenario.checkpointEvery);
    }

    const auto start = std::chrono::steady_clock::now();
    std::atomic<std::size_t> completed{restored.rowsByPoint.size()};
    std::mutex printMutex;

    std::vector<std::vector<ResultRow>> rowsPerPoint(n);
    std::vector<std::size_t> pendingPoints;
    pendingPoints.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto it = restored.rowsByPoint.find(i);
        if (it == restored.rowsByPoint.end())
            pendingPoints.push_back(i);
        else
            rowsPerPoint[i] = std::move(it->second);
    }
    if (options.progress && !restored.rowsByPoint.empty())
        std::fprintf(stderr,
                     "[%3zu/%zu] %s resumed from checkpoint%s\n",
                     restored.rowsByPoint.size(), n,
                     scenario.name.c_str(),
                     restored.droppedTornTail
                         ? " (torn final record re-run)"
                         : "");

    std::vector<std::function<std::vector<ResultRow>()>> jobs;
    jobs.reserve(pendingPoints.size());
    for (const std::size_t i : pendingPoints) {
        jobs.push_back([&, i] {
            const ParamSet params = grid.point(i);
            std::vector<ResultRow> rows = scenario.runPoint(params);
            for (ResultRow &row : rows)
                row = mergeParams(params, std::move(row));
            // Journal before reporting done: a kill after the
            // progress line can never lose an unjournaled point.
            if (journal)
                journal->writePoint(i, rows);
            const std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (options.progress) {
                const std::lock_guard<std::mutex> lock(printMutex);
                std::fprintf(stderr, "[%3zu/%zu] %s %s\n", done, n,
                             scenario.name.c_str(),
                             params.label().c_str());
            }
            return rows;
        });
    }
    auto rowsPerJob = pool.map(std::move(jobs));
    for (std::size_t k = 0; k < pendingPoints.size(); ++k)
        rowsPerPoint[pendingPoints[k]] = std::move(rowsPerJob[k]);

    if (journal)
        journal->flush();

    for (auto &rows : rowsPerPoint)
        for (ResultRow &row : rows)
            result.rows.push_back(std::move(row));
    if (scenario.summarize)
        result.summary = scenario.summarize(result.rows);

    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return result;
}

SweepResult
runScenarioByName(const std::string &name, const SweepOptions &options)
{
    const Scenario *scenario =
        ScenarioRegistry::instance().find(name);
    if (!scenario)
        throw std::invalid_argument("unknown scenario '" + name +
                                    "' (try --list)");
    return runScenario(*scenario, options);
}

namespace {

void
printTable(const std::vector<ResultRow> &rows)
{
    if (rows.empty())
        return;
    const std::vector<std::string> columns = collectColumns(rows);

    std::vector<std::size_t> widths;
    for (const auto &column : columns)
        widths.push_back(column.size());
    std::vector<std::vector<std::string>> cells;
    for (const ResultRow &row : rows) {
        std::vector<std::string> line;
        for (std::size_t i = 0; i < columns.size(); ++i) {
            const JsonValue *value = row.get(columns[i]);
            std::string text = value ? cellText(*value) : "";
            if (text.size() > 40)
                text = text.substr(0, 37) + "...";
            widths[i] = std::max(widths[i], text.size());
            line.push_back(std::move(text));
        }
        cells.push_back(std::move(line));
    }

    for (std::size_t i = 0; i < columns.size(); ++i)
        std::printf("%s%-*s", i ? "  " : "",
                    static_cast<int>(widths[i]), columns[i].c_str());
    std::printf("\n");
    for (const auto &line : cells) {
        for (std::size_t i = 0; i < columns.size(); ++i)
            std::printf("%s%-*s", i ? "  " : "",
                        static_cast<int>(widths[i]), line[i].c_str());
        std::printf("\n");
    }
}

} // namespace

void
printTables(const SweepResult &result)
{
    std::printf("\n=== %s ===\n", result.title.c_str());
    printTable(result.rows);
    if (!result.summary.empty()) {
        std::printf("\n--- summary ---\n");
        printTable(result.summary);
    }
    if (!result.notes.empty())
        std::printf("\n(%s)\n", result.notes.c_str());
    std::printf("[%zu points, %u jobs, %.1fs]\n\n", result.points,
                result.jobs, result.wallSeconds);
}

void
runAndPrint(const std::string &name)
{
    registerBuiltinScenarios();
    SweepOptions options;
    options.progress = false;
    printTables(runScenarioByName(name, options));
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "pracbench: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << contents;
    out.close();
    return out.good();
}

bool
writeFileAtomic(const std::string &path, const std::string &contents)
{
    // The temporary lives next to the target so the rename stays on
    // one filesystem (and therefore atomic).
    const std::string temporary = path + ".tmp";
    if (!writeFile(temporary, contents))
        return false;
    std::error_code ec;
    std::filesystem::rename(temporary, path, ec);
    if (ec) {
        std::fprintf(stderr,
                     "pracbench: cannot finalize %s: %s\n",
                     path.c_str(), ec.message().c_str());
        std::filesystem::remove(temporary, ec);
        return false;
    }
    return true;
}

} // namespace pracleak::sim
