#include "sim/runner.h"

#include "common/log.h"
#include "sim/checkpoint.h"
#include "sim/provenance.h"
#include "telemetry/heartbeat.h"
#include "telemetry/stopwatch.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace pracleak::sim {

namespace {

/** Merge point parameters into a row without clobbering metrics. */
ResultRow
mergeParams(const ParamSet &params, ResultRow row)
{
    ResultRow merged = JsonValue::object();
    for (const auto &[name, value] : params.entries())
        if (!row.has(name))
            merged.set(name, value);
    for (const auto &[name, value] : row.members())
        merged.set(name, value);
    return merged;
}

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
cellText(const JsonValue &value)
{
    if (value.kind() == JsonValue::Kind::Array ||
        value.kind() == JsonValue::Kind::Object)
        return value.dump();
    return value.asString();
}

/** Union of row keys in first-seen order (table + CSV column order). */
std::vector<std::string>
collectColumns(const std::vector<ResultRow> &rows)
{
    std::vector<std::string> columns;
    for (const ResultRow &row : rows)
        for (const auto &[name, value] : row.members()) {
            (void)value;
            bool known = false;
            for (const auto &column : columns)
                known = known || column == name;
            if (!known)
                columns.push_back(name);
        }
    return columns;
}

/** Reject option combinations that cannot mean anything coherent. */
void
validateRunOptions(const RunOptions &options)
{
    if (options.shard.active() && options.steal.enabled)
        throw std::invalid_argument(
            "--shard and --steal are mutually exclusive: a static "
            "partition and dynamic claiming cannot both own the "
            "point space");
    if (options.shard.active() &&
        options.shard.index >= options.shard.count)
        throw std::invalid_argument(
            "shard index must satisfy 0 <= I < N in --shard I/N");
    if ((options.shard.active() || options.steal.enabled) &&
        options.checkpoint.directory.empty())
        throw std::invalid_argument(
            "--shard/--steal require a checkpoint directory: the "
            "journals are how the fleet's partial results meet "
            "again");
    if (options.steal.enabled && options.checkpoint.resume)
        throw std::invalid_argument(
            "--resume is implied by --steal (a worker always "
            "resumes its own journal); drop the flag");
    if (options.steal.enabled && options.steal.workerId.empty())
        throw std::invalid_argument(
            "--steal requires a worker id unique within the "
            "checkpoint directory");
}

/** The scenario's grid with all of @p options' overrides applied. */
ParamGrid
effectiveGrid(const Scenario &scenario, const RunOptions &options)
{
    ParamGrid grid = scenario.grid;
    for (const auto &[axis, values] : options.overrides)
        grid.overrideAxis(axis, values);
    for (const auto &[axis, values] : options.softOverrides)
        if (grid.findAxis(axis))
            grid.overrideAxis(axis, values);
    if (options.firstPointOnly)
        for (const ParamAxis &axis : scenario.grid.axes())
            if (const ParamAxis *effective = grid.findAxis(axis.name))
                grid.overrideAxis(axis.name, {effective->values[0]});
    return grid;
}

/**
 * Whole-grid and static-shard execution: run every owned,
 * not-yet-journaled point through the pool, journaling as workers
 * finish.  Both restored and live rows land in per-point slots, so
 * the output is ordered by grid index -- independent of --jobs,
 * kill timing, and completion order.
 */
SweepResult
runSweepLocal(const Scenario &scenario, const ParamGrid &grid,
              const RunOptions &options,
              telemetry::TraceSession *trace)
{
    ThreadPool pool(options.jobs);
    const std::size_t n = grid.size();
    const ShardSpec shard = options.shard;

    SweepResult result;
    result.scenario = scenario.name;
    result.title = scenario.title;
    result.notes = scenario.notes;
    result.grid = grid.toJson();
    result.jobs = pool.threadCount();
    result.points = n;

    std::vector<std::size_t> owned;
    owned.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        if (shardOwns(i, shard))
            owned.push_back(i);

    CheckpointState restored;
    std::unique_ptr<JournalWriter> journal;
    if (!options.checkpoint.directory.empty()) {
        const std::string path =
            shard.active()
                ? shardJournalPath(options.checkpoint.directory,
                                   scenario.name, shard)
                : journalPath(options.checkpoint.directory,
                              scenario.name);
        if (options.checkpoint.resume)
            restored = loadJournal(path, scenario.name, result.grid,
                                   n, shard);
        journal = std::make_unique<JournalWriter>(
            path,
            journalHeader(scenario.name, result.grid, n, shard),
            restored.hasHeader, restored.validBytes,
            scenario.checkpointEvery);
    }

    // Log context identifies this run among interleaved fleet output.
    std::string context = scenario.name;
    if (shard.active())
        context += " shard " + std::to_string(shard.index) + "/" +
                   std::to_string(shard.count);

    const telemetry::Stopwatch sweepClock;
    const std::size_t total = owned.size();
    std::atomic<std::size_t> completed{restored.rowsByPoint.size()};

    std::vector<std::vector<ResultRow>> rowsPerPoint(n);
    std::vector<std::size_t> pendingPoints;
    pendingPoints.reserve(total);
    for (const std::size_t i : owned) {
        const auto it = restored.rowsByPoint.find(i);
        if (it == restored.rowsByPoint.end())
            pendingPoints.push_back(i);
        else
            rowsPerPoint[i] = std::move(it->second);
    }
    if (options.progress && !restored.rowsByPoint.empty())
        progress(context,
                 std::to_string(restored.rowsByPoint.size()) + "/" +
                     std::to_string(total) +
                     " resumed from checkpoint" +
                     (restored.droppedTornTail
                          ? " (torn final record re-run)"
                          : ""));

    std::vector<std::function<std::vector<ResultRow>()>> jobs;
    jobs.reserve(pendingPoints.size());
    for (const std::size_t i : pendingPoints) {
        jobs.push_back([&, i] {
            const ParamSet params = grid.point(i);
            const int lane = ThreadPool::currentLane();
            JsonValue spanArgs;
            if (trace) {
                spanArgs = JsonValue::object();
                spanArgs.set("index", static_cast<std::int64_t>(i));
            }
            // Labels series records this point's simulations create
            // with the grid-point label (no-op when no series sink
            // is armed).
            telemetry::SeriesCapture::setLabel(params.label());
            telemetry::TraceSpan pointSpan(trace, params.label(),
                                           "point", lane,
                                           std::move(spanArgs));
            const telemetry::Stopwatch pointClock;
            const std::uint64_t simStartUs =
                trace ? trace->nowMicros() : 0;
            telemetry::TraceSpan simSpan(trace, "sim", "phase", lane);
            std::vector<ResultRow> rows = scenario.runPoint(params);
            simSpan.end();
            if (trace)
                telemetry::SeriesCapture::emitTraceCounters(
                    trace, lane, simStartUs, trace->nowMicros());
            const double wall = pointClock.seconds();
            for (ResultRow &row : rows)
                row = mergeParams(params, std::move(row));
            // Journal before reporting done: a kill after the
            // progress line can never lose an unjournaled point.
            if (journal) {
                telemetry::TraceSpan flushSpan(trace, "journal-flush",
                                               "phase", lane);
                journal->writePoint(i, rows, wall);
                flushSpan.end();
                if (trace)
                    trace->instant("checkpoint-write", "checkpoint",
                                   lane);
            }
            const std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (options.progress)
                progress(context, std::to_string(done) + "/" +
                                      std::to_string(total) + " " +
                                      params.label());
            return rows;
        });
    }
    auto rowsPerJob = pool.map(std::move(jobs));
    for (std::size_t k = 0; k < pendingPoints.size(); ++k)
        rowsPerPoint[pendingPoints[k]] = std::move(rowsPerJob[k]);

    if (journal)
        journal->flush();

    for (auto &rows : rowsPerPoint)
        for (ResultRow &row : rows)
            result.rows.push_back(std::move(row));
    if (scenario.summarize)
        result.summary = scenario.summarize(result.rows);

    result.wallSeconds = sweepClock.seconds();
    return result;
}

/**
 * Work-stealing execution over a shared checkpoint directory.  Each
 * pool thread scans the grid claiming points (sim/checkpoint.h
 * PointClaims); every completed point is journaled, flushed, then
 * published via a done marker.  When every point carries a marker,
 * the worker fuses *all* journals in the directory -- its own and
 * its peers' -- into the complete result, so any worker can emit
 * the final artifacts.
 */
SweepResult
runSweepStealing(const Scenario &scenario, const ParamGrid &grid,
                 const RunOptions &options,
                 telemetry::TraceSession *trace)
{
    ThreadPool pool(options.jobs);
    const std::size_t n = grid.size();
    const std::string &directory = options.checkpoint.directory;
    const std::string &worker = options.steal.workerId;
    const JsonValue gridJson = grid.toJson();

    const std::string path =
        workerJournalPath(directory, scenario.name, worker);
    // A restarted worker always continues its own journal: its
    // previous points are durable and must not be re-run (or worse,
    // the journal truncated and their done markers orphaned).
    const CheckpointState restored =
        loadJournal(path, scenario.name, gridJson, n, {}, worker);
    // flushEvery = 1 regardless of Scenario::checkpointEvery: the
    // done marker published after each point promises other workers
    // the journal record is durable, so it must be flushed first.
    JournalWriter journal(
        path, journalHeader(scenario.name, gridJson, n, {}, worker),
        restored.hasHeader, restored.validBytes, 1);
    PointClaims claims(directory, scenario.name, worker,
                       options.steal.claimTtlSeconds);

    // A previous incarnation may have died between flushing a record
    // and publishing its marker; (re-)publish everything the journal
    // proves durable.
    for (const auto &[index, rows] : restored.rowsByPoint) {
        (void)rows;
        claims.markDone(index);
    }
    const std::string context = scenario.name + " worker " + worker;
    if (options.progress && !restored.rowsByPoint.empty())
        progress(context,
                 "resumed " +
                     std::to_string(restored.rowsByPoint.size()) +
                     " journaled points");

    // Heartbeats are always on in steal mode: `pracbench status` is
    // how an operator tells a slow fleet from a dead one.
    const std::size_t restoredCount = restored.rowsByPoint.size();
    telemetry::HeartbeatWriter heartbeats(
        directory, scenario.name, worker,
        static_cast<std::int64_t>(n),
        options.telemetry.heartbeatSeconds);
    heartbeats.beat(static_cast<std::int64_t>(restoredCount), -1,
                    true);

    const telemetry::Stopwatch sweepClock;
    std::atomic<std::size_t> ranHere{0};

    std::vector<std::function<void()>> tasks;
    for (unsigned t = 0; t < pool.threadCount(); ++t) {
        tasks.push_back([&] {
            while (true) {
                bool allDone = true;
                bool claimedAny = false;
                for (std::size_t i = 0; i < n; ++i) {
                    if (claims.isDone(i))
                        continue;
                    allDone = false;
                    bool stolen = false;
                    if (!claims.tryClaim(i, &stolen))
                        continue;
                    claimedAny = true;
                    const int lane = ThreadPool::currentLane();
                    const auto idx = static_cast<std::int64_t>(i);
                    if (trace) {
                        JsonValue claimArgs = JsonValue::object();
                        claimArgs.set("index", idx);
                        trace->instant(stolen ? "steal" : "claim",
                                       "claims", lane,
                                       std::move(claimArgs));
                    }
                    heartbeats.beat(
                        static_cast<std::int64_t>(
                            restoredCount +
                            ranHere.load(std::memory_order_relaxed)),
                        idx);
                    const ParamSet params = grid.point(i);
                    JsonValue spanArgs;
                    if (trace) {
                        spanArgs = JsonValue::object();
                        spanArgs.set("index", idx);
                    }
                    telemetry::SeriesCapture::setLabel(
                        params.label());
                    telemetry::TraceSpan pointSpan(
                        trace, params.label(), "point", lane,
                        std::move(spanArgs));
                    const telemetry::Stopwatch pointClock;
                    const std::uint64_t simStartUs =
                        trace ? trace->nowMicros() : 0;
                    telemetry::TraceSpan simSpan(trace, "sim",
                                                 "phase", lane);
                    std::vector<ResultRow> rows =
                        scenario.runPoint(params);
                    simSpan.end();
                    if (trace)
                        telemetry::SeriesCapture::emitTraceCounters(
                            trace, lane, simStartUs,
                            trace->nowMicros());
                    const double wall = pointClock.seconds();
                    for (ResultRow &row : rows)
                        row = mergeParams(params, std::move(row));
                    {
                        telemetry::TraceSpan flushSpan(
                            trace, "journal-flush", "phase", lane);
                        // flushed before the marker (every=1)
                        journal.writePoint(i, rows, wall);
                    }
                    claims.markDone(i);
                    claims.release(i);
                    if (trace)
                        trace->instant("done-marker", "claims", lane);
                    pointSpan.end();
                    const std::size_t done =
                        ranHere.fetch_add(
                            1, std::memory_order_relaxed) +
                        1;
                    heartbeats.beat(
                        static_cast<std::int64_t>(restoredCount +
                                                  done),
                        -1);
                    if (options.progress)
                        progress(context,
                                 "point " + std::to_string(i + 1) +
                                     "/" + std::to_string(n) + " " +
                                     params.label() + " (" +
                                     std::to_string(done) +
                                     " run here)");
                }
                if (allDone)
                    break;
                // Everything unfinished is claimed by someone else:
                // back off instead of hammering the filesystem.
                if (!claimedAny)
                    std::this_thread::sleep_for(
                        std::chrono::duration<double>(
                            options.steal.pollSeconds));
            }
        });
    }
    pool.run(std::move(tasks));
    journal.flush();
    heartbeats.beat(
        static_cast<std::int64_t>(
            restoredCount + ranHere.load(std::memory_order_relaxed)),
        -1, true);

    // Every point now carries a done marker, and markers guarantee a
    // flushed journal record somewhere in the directory.
    telemetry::TraceSpan mergeSpan(trace, "merge", "phase", -1);
    SweepResult result = assembleMergedResult(
        scenario,
        mergeJournals(journalFilesFor(directory, scenario.name)),
        pool.threadCount());
    mergeSpan.end();
    result.wallSeconds = sweepClock.seconds();
    return result;
}

} // namespace

std::string
rowsToCsv(const std::vector<ResultRow> &rows)
{
    const std::vector<std::string> columns = collectColumns(rows);

    std::string out;
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out += ',';
        out += csvEscape(columns[i]);
    }
    out += '\n';
    for (const ResultRow &row : rows) {
        for (std::size_t i = 0; i < columns.size(); ++i) {
            if (i)
                out += ',';
            if (const JsonValue *value = row.get(columns[i]))
                out += csvEscape(cellText(*value));
        }
        out += '\n';
    }
    return out;
}

JsonValue
SweepResult::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("scenario", scenario);
    root.set("title", title);
    if (!notes.empty())
        root.set("notes", notes);
    root.set("generator", "pracbench");
    root.set("jobs", static_cast<std::int64_t>(jobs));
    root.set("points", static_cast<std::int64_t>(points));
    root.set("wall_seconds", wallSeconds);
    root.set("provenance", provenanceObject(grid));
    root.set("grid", grid);

    JsonValue rowArray = JsonValue::array();
    for (const ResultRow &row : rows)
        rowArray.push(row);
    root.set("rows", std::move(rowArray));

    JsonValue summaryArray = JsonValue::array();
    for (const ResultRow &row : summary)
        summaryArray.push(row);
    root.set("summary", std::move(summaryArray));
    return root;
}

std::string
SweepResult::toCsv() const
{
    return rowsToCsv(rows);
}

namespace {

/** Arms the process-global series sink for one sweep; the
 *  destructor disarms even when a scenario point throws. */
struct SeriesCaptureScope
{
    explicit SeriesCaptureScope(bool enable) : enabled(enable)
    {
        if (enabled)
            telemetry::SeriesCapture::arm();
    }
    ~SeriesCaptureScope()
    {
        if (enabled)
            telemetry::SeriesCapture::disarm();
    }
    bool enabled;
};

} // namespace

SweepResult
runScenario(const Scenario &scenario, const RunOptions &options)
{
    validateRunOptions(options);
    const ParamGrid grid = effectiveGrid(scenario, options);
    std::unique_ptr<telemetry::TraceSession> trace;
    if (!options.telemetry.traceOut.empty())
        trace = std::make_unique<telemetry::TraceSession>(
            options.telemetry.traceOut);
    const SeriesCaptureScope series(
        !options.telemetry.seriesOut.empty());
    SweepResult result =
        options.steal.enabled
            ? runSweepStealing(scenario, grid, options, trace.get())
            : runSweepLocal(scenario, grid, options, trace.get());
    if (series.enabled &&
        !telemetry::SeriesCapture::writeAll(
            options.telemetry.seriesOut))
        throw std::runtime_error("cannot write series to " +
                                 options.telemetry.seriesOut);
    if (trace)
        trace->write();
    return result;
}

SweepResult
runScenarioByName(const std::string &name, const RunOptions &options)
{
    const Scenario *scenario =
        ScenarioRegistry::instance().find(name);
    if (!scenario)
        throw std::invalid_argument("unknown scenario '" + name +
                                    "' (try `pracbench list`)");
    return runScenario(*scenario, options);
}

SweepResult
assembleMergedResult(const Scenario &scenario,
                     const MergedJournals &merged, unsigned jobs)
{
    if (scenario.name != merged.scenario)
        throw std::invalid_argument(
            "merged journals are for scenario '" + merged.scenario +
            "', not '" + scenario.name + "'");

    SweepResult result;
    result.scenario = scenario.name;
    result.title = scenario.title;
    result.notes = scenario.notes;
    // The grid comes from the journal header (hash-verified against
    // the header's own pin), not from the live scenario: the sweep
    // may have run with --set overrides the merge never sees.
    result.grid = merged.grid;
    result.jobs = jobs;
    result.points = merged.points;
    // rowsByPoint is an ordered map, so rows land in grid-index
    // order -- exactly the order a single-host run concatenates.
    for (const auto &[index, rows] : merged.rowsByPoint) {
        (void)index;
        for (const ResultRow &row : rows)
            result.rows.push_back(row);
    }
    if (scenario.summarize)
        result.summary = scenario.summarize(result.rows);
    return result;
}

SweepResult
mergeSweepFromJournals(const std::vector<std::string> &paths,
                       unsigned jobs)
{
    MergedJournals merged = mergeJournals(paths);
    const Scenario *scenario =
        ScenarioRegistry::instance().find(merged.scenario);
    if (!scenario)
        throw std::runtime_error(
            "journals name scenario '" + merged.scenario +
            "', which this build does not register -- merge with "
            "the build that ran the sweep");
    return assembleMergedResult(*scenario, merged, jobs);
}

namespace {

void
printTable(const std::vector<ResultRow> &rows)
{
    if (rows.empty())
        return;
    const std::vector<std::string> columns = collectColumns(rows);

    std::vector<std::size_t> widths;
    for (const auto &column : columns)
        widths.push_back(column.size());
    std::vector<std::vector<std::string>> cells;
    for (const ResultRow &row : rows) {
        std::vector<std::string> line;
        for (std::size_t i = 0; i < columns.size(); ++i) {
            const JsonValue *value = row.get(columns[i]);
            std::string text = value ? cellText(*value) : "";
            if (text.size() > 40)
                text = text.substr(0, 37) + "...";
            widths[i] = std::max(widths[i], text.size());
            line.push_back(std::move(text));
        }
        cells.push_back(std::move(line));
    }

    for (std::size_t i = 0; i < columns.size(); ++i)
        std::printf("%s%-*s", i ? "  " : "",
                    static_cast<int>(widths[i]), columns[i].c_str());
    std::printf("\n");
    for (const auto &line : cells) {
        for (std::size_t i = 0; i < columns.size(); ++i)
            std::printf("%s%-*s", i ? "  " : "",
                        static_cast<int>(widths[i]), line[i].c_str());
        std::printf("\n");
    }
}

} // namespace

void
printTables(const SweepResult &result)
{
    std::printf("\n=== %s ===\n", result.title.c_str());
    printTable(result.rows);
    if (!result.summary.empty()) {
        std::printf("\n--- summary ---\n");
        printTable(result.summary);
    }
    if (!result.notes.empty())
        std::printf("\n(%s)\n", result.notes.c_str());
    std::printf("[%zu points, %u jobs, %.1fs]\n\n", result.points,
                result.jobs, result.wallSeconds);
}

void
runAndPrint(const std::string &name)
{
    registerBuiltinScenarios();
    RunOptions options;
    options.progress = false;
    printTables(runScenarioByName(name, options));
}

bool
writeFile(const std::string &path, const std::string &contents)
{
    std::error_code ec;
    const std::filesystem::path target(path);
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "pracbench: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << contents;
    out.close();
    return out.good();
}

bool
writeFileAtomic(const std::string &path, const std::string &contents)
{
    // The temporary lives next to the target so the rename stays on
    // one filesystem (and therefore atomic).
    const std::string temporary = path + ".tmp";
    if (!writeFile(temporary, contents))
        return false;
    std::error_code ec;
    std::filesystem::rename(temporary, path, ec);
    if (ec) {
        std::fprintf(stderr,
                     "pracbench: cannot finalize %s: %s\n",
                     path.c_str(), ec.message().c_str());
        std::filesystem::remove(temporary, ec);
        return false;
    }
    return true;
}

} // namespace pracleak::sim
