#include "sim/thread_pool.h"

#include <algorithm>

namespace pracleak::sim {

namespace {

/** Pool-worker lane of this thread; -1 off the pool (main thread). */
thread_local int t_lane = -1;

} // namespace

int
ThreadPool::currentLane()
{
    return t_lane;
}

ThreadPool::ThreadPool(unsigned threads)
{
    threadCount_ = threads != 0
                       ? threads
                       : std::max(2u, std::thread::hardware_concurrency());
    workers_.reserve(threadCount_);
    for (unsigned i = 0; i < threadCount_; ++i)
        workers_.emplace_back([this, i] {
            t_lane = static_cast<int>(i);
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workCv_.notify_one();
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void
ThreadPool::run(std::vector<std::function<void()>> jobs)
{
    std::vector<std::function<int()>> wrapped;
    wrapped.reserve(jobs.size());
    for (auto &job : jobs)
        wrapped.push_back([job = std::move(job)] {
            job();
            return 0;
        });
    map(std::move(wrapped));
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::waitForCount(const std::atomic<std::size_t> &done,
                         std::size_t target)
{
    while (done.load(std::memory_order_acquire) < target) {
        // Help drain the queue so nested collectors make progress
        // even when every worker is blocked in a collector itself.
        if (tryRunOne())
            continue;
        std::unique_lock<std::mutex> lock(finishedMutex_);
        if (done.load(std::memory_order_acquire) >= target)
            break;
        finishedCv_.wait_for(lock, std::chrono::milliseconds(2));
    }
}

} // namespace pracleak::sim
