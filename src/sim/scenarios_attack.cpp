/**
 * @file
 * Attack-characterization scenarios: Figure 3 (ABO latency spikes),
 * Figure 4 (one side-channel instance with full timeline), Figure 5
 * (key sweep) and Figure 9 (TPRAC security validation sweep).
 *
 * The per-point bodies are ports of the original standalone benches;
 * the grids make the sweeps (key step, encryption count, PRAC level)
 * overridable from the pracbench CLI.
 */

#include "sim/scenario.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "attack/agents.h"
#include "attack/harness.h"
#include "attack/side_channel.h"

namespace pracleak::sim {

namespace {

std::vector<JsonValue>
steppedValues(int limit, int step)
{
    std::vector<JsonValue> values;
    for (int v = 0; v < limit; v += step)
        values.push_back(JsonValue(static_cast<std::int64_t>(v)));
    return values;
}

/**
 * Probe-lag calibration is deterministic per encryption budget and
 * costs a full attack run, so sweeps share one result per budget.
 */
int
calibratedLag(int encryptions)
{
    static std::mutex mutex;
    static std::map<int, int> cache;
    const std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(encryptions);
    if (it != cache.end())
        return it->second;
    SideChannelParams params;
    params.encryptions = encryptions;
    const int lag = calibrateProbeLag(params);
    cache.emplace(encryptions, lag);
    return lag;
}

// --- Figure 3 ------------------------------------------------------

struct Fig3Row
{
    double baseline_ns = 0.0;
    double spike_ns = 0.0;
    std::uint64_t spikes = 0;
    std::uint64_t alerts = 0;
};

Fig3Row
characterizeAbo(std::uint32_t nbo, std::uint32_t nmit, bool with_victim,
                double window_ms)
{
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = nbo;
    spec.prac.nmit = nmit;

    ControllerConfig config;
    config.mode = MitigationMode::AboOnly;
    config.prac.queue = QueueKind::Ideal; // UPRAC, as in the paper
    config.refreshEnabled = false;        // isolate ABO effects
    AttackHarness harness(spec, config);

    // Registry-style construction (attack/adversaries.h): flat bank
    // 18 is (rank 0, group 4, bank 2); burstSpacing doubles as the
    // decoy row stride, so 4 decoys at 0x100+0x100+i = 0x200..0x203
    // -- the exact layout the figure has always used.
    AttackerConfig probe_config;
    probe_config.targetBank = 0;
    probe_config.targetRow = 3;
    ProbeAgent probe(harness.mem(), probe_config);

    AttackerConfig victim_config;
    victim_config.targetBank = 18;
    victim_config.targetRow = 0x100;
    victim_config.poolSize = 4;
    victim_config.burstSpacing = 0x100;
    HammerAgent victim(harness.mem(), victim_config);

    harness.add(&probe);
    harness.add(&victim);

    const Cycle end = nsToCycles(window_ms * 1.0e6);
    while (harness.now() < end) {
        if (with_victim && victim.done())
            victim.startHammer(spec.prac.nbo + spec.prac.aboAct + 4);
        harness.step();
    }

    Fig3Row row;
    double baseSum = 0.0;
    std::uint64_t baseCount = 0;
    double spikeSum = 0.0;
    for (const auto &sample : probe.samples()) {
        if (sample.latency >= ProbeAgent::spikeThreshold()) {
            spikeSum += cyclesToNs(sample.latency);
            ++row.spikes;
        } else {
            baseSum += cyclesToNs(sample.latency);
            ++baseCount;
        }
    }
    row.baseline_ns = baseCount ? baseSum / baseCount : 0.0;
    row.spike_ns = row.spikes ? spikeSum / row.spikes : 0.0;
    row.alerts = harness.mem().prac().alerts();
    return row;
}

Scenario
fig03TimingVariation()
{
    Scenario scenario;
    scenario.name = "fig03_timing_variation";
    scenario.tags = {"attack"};
    scenario.title = "Figure 3: attacker latency vs concurrent ABO";
    scenario.notes = "paper: spikes ~545 / 976 / 1669 ns for PRAC "
                     "level 1 / 2 / 4; flat without a victim";
    scenario.grid.axis("nmit", {1, 2, 4})
        .axis("with_victim", {true, false})
        .constant("nbo", 256)
        .constant("window_ms", 2.0);

    scenario.runPoint = [](const ParamSet &params) {
        // Without a victim no ABO ever fires, so nmit cannot matter:
        // keep a single quiet-baseline point instead of one per level.
        if (!params.getBool("with_victim") &&
            params.getInt("nmit") != 1)
            return std::vector<ResultRow>{};
        const Fig3Row data = characterizeAbo(
            static_cast<std::uint32_t>(params.getInt("nbo")),
            static_cast<std::uint32_t>(params.getInt("nmit")),
            params.getBool("with_victim"),
            params.getDouble("window_ms"));
        ResultRow row = JsonValue::object();
        row.set("baseline_ns", data.baseline_ns);
        row.set("spike_ns", data.spike_ns);
        row.set("spikes", data.spikes);
        row.set("alerts", data.alerts);
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

// --- Figure 4 ------------------------------------------------------

Scenario
fig04SideChannelTrace()
{
    Scenario scenario;
    scenario.name = "fig04_side_channel_trace";
    scenario.tags = {"attack"};
    scenario.title = "Figure 4: one side-channel attack instance "
                     "(latency trace, RFMs, per-row ACTs)";
    scenario.notes = "paper: single ABO with 207 victim + 49 attacker "
                     "activations on Row 0";
    scenario.grid.constant("k0", 0)
        .constant("p0", 0)
        .constant("encryptions", 200);

    scenario.runPoint = [](const ParamSet &params) {
        SideChannelParams config;
        config.key = Aes128T::Key{};
        config.key[0] = static_cast<std::uint8_t>(params.getInt("k0"));
        config.p0 = static_cast<std::uint8_t>(params.getInt("p0"));
        config.encryptions =
            static_cast<int>(params.getInt("encryptions"));
        config.recordTimeline = true;

        const SideChannelResult result = runAesSideChannel(config);

        ResultRow row = JsonValue::object();
        JsonValue acts = JsonValue::array();
        for (const std::uint32_t count : result.victimActsPerRow)
            acts.push(count);
        row.set("victim_acts_per_row", std::move(acts));
        row.set("spike_observed", result.spikeObserved);
        row.set("estimated_trigger_row", result.estimatedTriggerRow);
        row.set("true_trigger_row", result.trueTriggerRow);
        row.set("attacker_acts_to_trigger",
                result.attackerActsToTrigger);
        row.set("trigger_row_total_acts",
                result.trueTriggerRow >= 0
                    ? static_cast<std::int64_t>(
                          result.victimActsPerRow[result
                                                      .trueTriggerRow] +
                          result.attackerActsToTrigger)
                    : static_cast<std::int64_t>(0));
        row.set("recovered_key_nibble", result.recoveredKeyNibble);

        // Panel (a): max probe latency per 50 us bucket.
        JsonValue trace = JsonValue::array();
        const Cycle bucket = nsToCycles(50000);
        Cycle cur = 0;
        double peak = 0;
        auto flush = [&] {
            if (peak > 0) {
                JsonValue point = JsonValue::object();
                point.set("t_us", cyclesToUs(cur));
                point.set("max_ns", peak);
                trace.push(std::move(point));
            }
        };
        for (const auto &sample : result.probeTimeline) {
            while (sample.doneAt >= cur + bucket) {
                flush();
                cur += bucket;
                peak = 0;
            }
            peak = std::max(peak, cyclesToNs(sample.latency));
        }
        flush();
        row.set("latency_trace", std::move(trace));

        JsonValue rfms = JsonValue::array();
        for (const Cycle t : result.rfmTimes)
            rfms.push(cyclesToUs(t));
        row.set("rfm_times_us", std::move(rfms));
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

// --- Figure 5 ------------------------------------------------------

Scenario
fig05KeySweep()
{
    Scenario scenario;
    scenario.name = "fig05_key_sweep";
    scenario.tags = {"attack"};
    scenario.title = "Figure 5: side-channel key sweep (hottest row "
                     "and ABO trigger row vs k0)";
    scenario.notes = "paper: trigger row tracks k0's top nibble; "
                     "victim + attacker acts sum to NBO";
    scenario.grid.axis("k0", steppedValues(256, 8))
        .constant("encryptions", 200)
        .constant("repeats", 3);

    scenario.runPoint = [](const ParamSet &params) {
        const int k0 = static_cast<int>(params.getInt("k0"));
        const int encryptions =
            static_cast<int>(params.getInt("encryptions"));
        SideChannelParams config;
        config.key = Aes128T::Key{};
        config.key[0] = static_cast<std::uint8_t>(k0);
        config.p0 = 0;
        config.encryptions = encryptions;
        config.seed = 1000 + static_cast<std::uint64_t>(k0);
        config.probeLag = calibratedLag(encryptions);

        const SideChannelResult result = runAesSideChannelMajority(
            config, static_cast<int>(params.getInt("repeats")));

        int hottest = 0;
        for (int r = 1; r < 16; ++r)
            if (result.victimActsPerRow[r] >
                result.victimActsPerRow[hottest])
                hottest = r;

        ResultRow row = JsonValue::object();
        row.set("hottest_row", hottest);
        row.set("victim_acts", result.victimActsPerRow[hottest]);
        row.set("trigger_row", result.estimatedTriggerRow);
        row.set("attacker_acts", result.attackerActsToTrigger);
        row.set("recovered", result.recoveredKeyNibble);
        row.set("correct", result.recoveredKeyNibble == (k0 >> 4));
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::int64_t correct = 0;
        for (const ResultRow &row : rows)
            if (const JsonValue *ok = row.get("correct"))
                correct += ok->asBool() ? 1 : 0;
        ResultRow row = JsonValue::object();
        row.set("recovered_nibbles", correct);
        row.set("total_keys", static_cast<std::int64_t>(rows.size()));
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

// --- Figure 9 ------------------------------------------------------

Scenario
fig09DefenseValidation()
{
    Scenario scenario;
    scenario.name = "fig09_defense_validation";
    scenario.tags = {"attack", "defense"};
    scenario.title = "Figure 9: row triggering the first observed RFM "
                     "vs k0, undefended and under TPRAC";
    scenario.notes = "paper: undefended trigger row tracks the key; "
                     "TPRAC uncorrelated (chance = 1/16) with zero "
                     "Alerts";
    scenario.grid.axis("mode", {"abo-only", "tprac"})
        .axis("k0", steppedValues(256, 16))
        .constant("encryptions", 200)
        .constant("repeats", 5);

    scenario.runPoint = [](const ParamSet &params) {
        const int k0 = static_cast<int>(params.getInt("k0"));
        const int encryptions =
            static_cast<int>(params.getInt("encryptions"));
        const bool defended = params.getString("mode") == "tprac";

        SideChannelParams config;
        config.key = Aes128T::Key{};
        config.key[0] = static_cast<std::uint8_t>(k0);
        config.encryptions = encryptions;
        config.seed = 2000 + static_cast<std::uint64_t>(k0);
        config.mode = defended ? MitigationMode::Tprac
                               : MitigationMode::AboOnly;
        config.probeLag = calibratedLag(encryptions);
        if (defended) {
            // TB-RFMs are single 350 ns RFMabs; the attacker lowers
            // its detection threshold to keep "seeing" RFM events.
            config.spikeThresholdNs = 400.0;
        }

        const SideChannelResult result = runAesSideChannelMajority(
            config, static_cast<int>(params.getInt("repeats")));

        ResultRow row = JsonValue::object();
        row.set("trigger_row", result.estimatedTriggerRow);
        row.set("alert_fired", result.trueTriggerRow >= 0);
        row.set("key_match",
                result.estimatedTriggerRow == (k0 >> 4));
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::map<std::string, std::pair<std::int64_t, std::int64_t>>
            leaks; // mode -> (key matches, total)
        std::int64_t tpracAlerts = 0;
        for (const ResultRow &row : rows) {
            const std::string mode = row.get("mode")->asString();
            auto &bucket = leaks[mode];
            bucket.first += row.get("key_match")->asBool() ? 1 : 0;
            bucket.second += 1;
            if (mode == "tprac")
                tpracAlerts += row.get("alert_fired")->asBool() ? 1 : 0;
        }
        std::vector<ResultRow> out;
        for (const auto &[mode, bucket] : leaks) {
            ResultRow row = JsonValue::object();
            row.set("mode", mode);
            row.set("key_correlated", bucket.first);
            row.set("total", bucket.second);
            if (mode == "tprac")
                row.set("alerts", tpracAlerts);
            out.push_back(std::move(row));
        }
        return out;
    };
    return scenario;
}

} // namespace

void
registerAttackScenarios(ScenarioRegistry &registry)
{
    registry.add(fig03TimingVariation());
    registry.add(fig04SideChannelTrace());
    registry.add(fig05KeySweep());
    registry.add(fig09DefenseValidation());
}

} // namespace pracleak::sim
