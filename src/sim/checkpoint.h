/**
 * @file
 * Sweep checkpoint journal: an append-only JSONL file that records
 * each completed grid point as workers finish, so a killed
 * multi-hour sweep resumes instead of restarting.
 *
 * Line 1 is a header record pinning the identity the journal belongs
 * to -- scenario name, FNV-1a hash of the effective grid, building
 * git revision, point count -- and every later line is one completed
 * point: `{"kind": "point", "index": I, "rows": [...]}` with the
 * point's parameters already merged into its rows.  Records land in
 * completion order (workers finish out of order); the loader keys
 * them by grid index, so the merged output is identical to an
 * uninterrupted run regardless of `--jobs` or kill timing.
 *
 * Robustness contract:
 *  - a torn final record (crash mid-write; no trailing newline) is
 *    dropped and its point re-run -- the file is truncated back to
 *    the last complete record before appending resumes;
 *  - duplicate records for one index are legal, last wins;
 *  - any header mismatch (scenario, grid hash, git revision, point
 *    count, format version) refuses to resume with a clear error
 *    rather than merging rows from a different sweep;
 *  - a newline-terminated record that fails to parse is corruption,
 *    not a torn tail, and is likewise a hard error.
 *
 * See src/sim/DESIGN.md for the format and versioning rules.
 */

#ifndef PRACLEAK_SIM_CHECKPOINT_H
#define PRACLEAK_SIM_CHECKPOINT_H

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/json.h"
#include "sim/scenario.h"

namespace pracleak::sim {

/** Journal format version; bump on any incompatible record change. */
inline constexpr std::int64_t kJournalVersion = 1;

/** The journal a sweep of @p scenario writes under @p directory. */
std::string journalPath(const std::string &directory,
                        const std::string &scenario);

/** Build the header record pinning a sweep's identity. */
JsonValue journalHeader(const std::string &scenario,
                        const JsonValue &grid, std::size_t points);

/** What loadJournal() recovered from an existing journal. */
struct CheckpointState
{
    /** Completed points (params already merged into their rows). */
    std::map<std::size_t, std::vector<ResultRow>> rowsByPoint;

    /** A valid header was found (resume appends; fresh rewrites). */
    bool hasHeader = false;

    /**
     * Byte offset just past the last complete record; a torn tail
     * beyond it is truncated away before appending resumes.
     */
    std::size_t validBytes = 0;

    /** An unterminated final record was dropped. */
    bool droppedTornTail = false;
};

/**
 * Read @p path and validate it against the sweep about to run
 * (@p scenario / @p grid / @p points describe the *effective* grid,
 * after overrides).  A missing or empty file -- including one whose
 * only content is a torn header -- yields an empty state (fresh
 * start).  Throws std::runtime_error with a path-prefixed message on
 * any identity mismatch or interior corruption.
 */
CheckpointState loadJournal(const std::string &path,
                            const std::string &scenario,
                            const JsonValue &grid,
                            std::size_t points);

/**
 * Append-only journal writer.  Construction either truncates and
 * writes a fresh header, or -- when resuming -- trims a torn tail
 * and reopens for append.  writePoint() is safe to call from
 * concurrent workers: record serialization happens outside the
 * lock, the stream write inside it.
 */
class JournalWriter
{
  public:
    /**
     * @p append reopens an existing journal after truncating it to
     * @p truncateTo bytes (from CheckpointState::validBytes);
     * otherwise the file is created/truncated and @p header written
     * and flushed immediately.  @p flushEvery >= 1 is the flush
     * granularity in completed points (Scenario::checkpointEvery).
     * Throws std::runtime_error when the file cannot be opened.
     */
    JournalWriter(const std::string &path, const JsonValue &header,
                  bool append, std::size_t truncateTo,
                  std::size_t flushEvery);

    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Journal one completed point (thread-safe). */
    void writePoint(std::size_t index,
                    const std::vector<ResultRow> &rows);

    /** Push everything written so far to the OS. */
    void flush();

  private:
    void warnIfFailedLocked();

    std::ofstream out_;
    std::mutex mutex_;
    std::size_t flushEvery_ = 1;
    std::size_t sinceFlush_ = 0;
    bool warnedFailed_ = false;
};

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_CHECKPOINT_H
