/**
 * @file
 * Sweep checkpoint journal: an append-only JSONL file that records
 * each completed grid point as workers finish, so a killed
 * multi-hour sweep resumes instead of restarting -- and, since the
 * journal pins the sweep's full identity, the unit of distribution
 * for fleet-scale sharded sweeps.
 *
 * Line 1 is a header record pinning the identity the journal belongs
 * to -- scenario name, FNV-1a hash of the effective grid, building
 * git revision, point count, and (for distributed runs) the shard
 * spec or work-stealing worker id -- and every later line is one
 * completed point: `{"kind": "point", "index": I, "rows": [...]}`
 * with the point's parameters already merged into its rows.  Records
 * land in completion order (workers finish out of order); the loader
 * keys them by grid index, so the merged output is identical to an
 * uninterrupted run regardless of `--jobs` or kill timing.
 *
 * Distribution is built from three pieces, all defined here:
 *  - ShardSpec / shardOwns(): a deterministic round-robin partition
 *    of the grid-point index space, so N hosts journal disjoint
 *    ranges against per-shard journals;
 *  - readJournalFile() / mergeJournals(): fuse any set of shard and
 *    worker journals back into one result, refusing on identity
 *    mismatch, overlapping ownership with *conflicting* rows, or
 *    missing points;
 *  - PointClaims: a work-stealing claim protocol over a shared
 *    checkpoint directory -- workers claim points via O_EXCL claim
 *    files, publish completion via atomically renamed done markers,
 *    and steal claims whose mtime is older than a TTL so a crashed
 *    host's points get re-run.
 *
 * Robustness contract:
 *  - a torn final record (crash mid-write; no trailing newline) is
 *    dropped and its point re-run -- the file is truncated back to
 *    the last complete record before appending resumes;
 *  - duplicate records for one index are legal, last wins;
 *  - any header mismatch (scenario, grid hash, git revision, point
 *    count, shard spec, worker id, format version) refuses to resume
 *    with a clear error rather than merging rows from a different
 *    sweep;
 *  - a newline-terminated record that fails to parse is corruption,
 *    not a torn tail, and is likewise a hard error.
 *
 * See src/sim/DESIGN.md for the format and versioning rules.
 */

#ifndef PRACLEAK_SIM_CHECKPOINT_H
#define PRACLEAK_SIM_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/json.h"
#include "sim/scenario.h"

namespace pracleak::sim {

/**
 * Journal format version; bump on any incompatible record change.
 * v2 added the optional "shard"/"worker" header identity fields.
 */
inline constexpr std::int64_t kJournalVersion = 2;

/**
 * Which slice of a sweep's grid-point index space one host owns.
 * count == 0 means unsharded (the whole grid); otherwise the shard
 * owns every point whose index is congruent to `index` modulo
 * `count` -- a round-robin partition, so expensive points that
 * cluster in grid order still spread across hosts.
 */
struct ShardSpec
{
    unsigned index = 0;
    unsigned count = 0;

    bool active() const { return count != 0; }
    bool operator==(const ShardSpec &other) const
    {
        return index == other.index && count == other.count;
    }

    /** "i/N" (or "" when inactive), as spelled on the CLI. */
    std::string label() const;
};

/**
 * Does @p shard own grid point @p point?  Pure, deterministic, and
 * independent of --jobs: the union over all shards of one count is
 * the whole index space, pairwise disjoint.  An inactive spec owns
 * everything.
 */
bool shardOwns(std::size_t point, const ShardSpec &shard);

/** The journal a sweep of @p scenario writes under @p directory. */
std::string journalPath(const std::string &directory,
                        const std::string &scenario);

/** Per-shard journal: DIR/<scenario>.shard-I-of-N.jsonl. */
std::string shardJournalPath(const std::string &directory,
                             const std::string &scenario,
                             const ShardSpec &shard);

/**
 * Per-worker journal for work-stealing runs:
 * DIR/<scenario>.worker-<id>.jsonl.  Throws std::invalid_argument
 * when @p worker contains characters unsafe in a file name (allowed:
 * alphanumerics, '-', '_', '.').
 */
std::string workerJournalPath(const std::string &directory,
                              const std::string &scenario,
                              const std::string &worker);

/**
 * Build the header record pinning a sweep's identity.  An active
 * @p shard adds a {"index", "count"} object under "shard"; a
 * non-empty @p worker adds a "worker" field -- both are validated on
 * resume exactly like the scenario name and grid hash.
 */
JsonValue journalHeader(const std::string &scenario,
                        const JsonValue &grid, std::size_t points,
                        const ShardSpec &shard = {},
                        const std::string &worker = {});

/** What loadJournal() recovered from an existing journal. */
struct CheckpointState
{
    /** Completed points (params already merged into their rows). */
    std::map<std::size_t, std::vector<ResultRow>> rowsByPoint;

    /** A valid header was found (resume appends; fresh rewrites). */
    bool hasHeader = false;

    /**
     * Byte offset just past the last complete record; a torn tail
     * beyond it is truncated away before appending resumes.
     */
    std::size_t validBytes = 0;

    /** An unterminated final record was dropped. */
    bool droppedTornTail = false;
};

/**
 * Read @p path and validate it against the sweep about to run
 * (@p scenario / @p grid / @p points / @p shard / @p worker describe
 * the *effective* sweep, after overrides).  A missing or empty file
 * -- including one whose only content is a torn header -- yields an
 * empty state (fresh start).  Throws std::runtime_error with a
 * path-prefixed message on any identity mismatch or interior
 * corruption, including a point record outside the declared shard's
 * ownership.
 */
CheckpointState loadJournal(const std::string &path,
                            const std::string &scenario,
                            const JsonValue &grid,
                            std::size_t points,
                            const ShardSpec &shard = {},
                            const std::string &worker = {});

/**
 * One journal read without an expected identity (the merge path):
 * the header's own fields are returned for cross-journal validation
 * instead of being checked against a sweep about to run.
 */
struct JournalFile
{
    std::string path;
    std::string scenario;
    std::string gitRev;
    std::string gridHash;
    JsonValue grid;
    std::size_t points = 0;
    ShardSpec shard;    //!< inactive when the journal is unsharded
    std::string worker; //!< "" when not a work-stealing journal
    std::map<std::size_t, std::vector<ResultRow>> rowsByPoint;
    bool droppedTornTail = false;
};

/**
 * Parse one journal structurally: header present and well-formed,
 * embedded grid consistent with the header's own grid hash (tamper
 * check), every point record shaped correctly, in range, and -- for
 * a shard journal -- owned by the declared shard.  A torn final
 * record is dropped (a crashed worker's journal must still merge);
 * any complete line that fails these checks throws
 * std::runtime_error.
 */
JournalFile readJournalFile(const std::string &path);

/**
 * The `*.jsonl` files under @p directory whose first line is a valid
 * journal header -- for @p scenario when non-empty, else for any
 * scenario -- sorted by path.  Files without a complete header line
 * (e.g. a worker killed mid-header) are skipped: they cannot contain
 * any point records.
 */
std::vector<std::string>
journalFilesFor(const std::string &directory,
                const std::string &scenario = {});

/** What mergeJournals() fused out of a set of shard/worker journals. */
struct MergedJournals
{
    std::string scenario;
    JsonValue grid;
    std::size_t points = 0;
    std::map<std::size_t, std::vector<ResultRow>> rowsByPoint;
};

/**
 * Fuse @p paths -- any mix of whole-sweep, per-shard, and per-worker
 * journals -- into one complete point map.  Throws
 * std::runtime_error when:
 *  - the set is empty, or any journal fails readJournalFile();
 *  - the journals disagree on scenario, grid hash, point count, or
 *    format version, or were written by a different git revision
 *    than this build (results from different code must not fuse);
 *  - two journals cover the same point with *conflicting* rows
 *    (byte-identical duplicates are legal -- work stealing may run a
 *    point twice);
 *  - any grid point is covered by no journal (the merged result
 *    would silently claim completeness it does not have).
 */
MergedJournals mergeJournals(const std::vector<std::string> &paths);

/**
 * Append-only journal writer.  Construction either truncates and
 * writes a fresh header, or -- when resuming -- trims a torn tail
 * and reopens for append.  writePoint() is safe to call from
 * concurrent workers: record serialization happens outside the
 * lock, the stream write inside it.
 */
class JournalWriter
{
  public:
    /**
     * @p append reopens an existing journal after truncating it to
     * @p truncateTo bytes (from CheckpointState::validBytes);
     * otherwise the file is created/truncated and @p header written
     * and flushed immediately.  @p flushEvery >= 1 is the flush
     * granularity in completed points (Scenario::checkpointEvery).
     * Throws std::runtime_error when the file cannot be opened.
     */
    JournalWriter(const std::string &path, const JsonValue &header,
                  bool append, std::size_t truncateTo,
                  std::size_t flushEvery);

    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Journal one completed point (thread-safe).  A non-negative
     * @p wall_seconds is stored as a record-level "wall_seconds"
     * field -- straggler telemetry for the fleet tooling.  Loaders
     * ignore it (they read only kind/index/rows), so rows merged
     * from journals stay byte-identical to a live run's and
     * duplicate points from work stealing still fuse: wall clock
     * never contaminates result rows.
     */
    void writePoint(std::size_t index,
                    const std::vector<ResultRow> &rows,
                    double wall_seconds = -1.0);

    /** Push everything written so far to the OS. */
    void flush();

  private:
    void warnIfFailedLocked();

    std::ofstream out_;
    std::mutex mutex_;
    std::size_t flushEvery_ = 1;
    std::size_t sinceFlush_ = 0;
    bool warnedFailed_ = false;
};

/**
 * Work-stealing claim protocol over a shared checkpoint directory
 * (DIR/<scenario>.claims/).  Claims are an optimization, not the
 * correctness mechanism: the journal tolerates duplicate records and
 * mergeJournals() accepts byte-identical overlap, so a lost race or
 * a stolen-but-still-running claim costs duplicated work, never a
 * wrong result.  Done markers, by contrast, are authoritative: one
 * is created only after the point's journal record is flushed, so a
 * marker guarantees some journal in the directory durably holds the
 * point.
 *
 * Atomicity discipline (same as writeFileAtomic): claims are taken
 * with O_CREAT|O_EXCL -- exactly one creator wins; stale claims
 * (mtime older than the TTL) are stolen by renaming to a
 * per-stealer tombstone first, so exactly one stealer wins the right
 * to re-claim; done markers are published via temp + rename.
 *
 * Safe for concurrent use from multiple threads *and* multiple
 * processes sharing one directory (a coherent local or network
 * filesystem is assumed).
 */
class PointClaims
{
  public:
    /**
     * @p claimTtlSeconds: a claim older than this is presumed dead
     * and may be stolen.  Set it above the slowest expected point
     * runtime -- a premature steal only duplicates work, but
     * needlessly.  Throws std::runtime_error when the claims
     * directory cannot be created, std::invalid_argument on a
     * path-unsafe @p worker.
     */
    PointClaims(const std::string &directory,
                const std::string &scenario, std::string worker,
                double claimTtlSeconds);

    /**
     * Try to take ownership of @p point.  False when the point is
     * already done, freshly claimed by someone else, or lost in a
     * race; true means this worker should run the point, then call
     * markDone() and release().  When @p stolen is non-null it is
     * set to whether the claim was taken by stealing a stale one
     * (telemetry: steals mean a worker is presumed dead).
     */
    bool tryClaim(std::size_t point, bool *stolen = nullptr);

    /** Drop this worker's claim file (after markDone()). */
    void release(std::size_t point);

    /**
     * Publish @p point as durably journaled.  Callers must flush the
     * journal record first -- other workers trust the marker.
     * Throws std::runtime_error on failure (a silently lost marker
     * would stall every other worker until the TTL).
     */
    void markDone(std::size_t point);

    /** Has any worker published @p point as done? */
    bool isDone(std::size_t point) const;

    const std::string &claimsDirectory() const { return claimsDir_; }

  private:
    std::string claimPath(std::size_t point) const;
    std::string donePath(std::size_t point) const;

    std::string claimsDir_;
    std::string worker_;
    double ttlSeconds_ = 300.0;
};

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_CHECKPOINT_H
