#include "sim/search.h"

#include <algorithm>
#include <stdexcept>

#include "attack/harness.h"
#include "common/rng.h"
#include "mitigation/registry.h"
#include "sim/runner.h"

namespace pracleak::sim {

namespace {

/**
 * Knob-name <-> AttackerConfig field mapping.  Covered by the
 * kAttackerConfigFieldCount tripwire: a new searchable knob must be
 * added here, to the CLI sub-keys, and to attackerKnobSpace().
 */
std::uint32_t *
knobField(AttackerConfig &config, const std::string &knob)
{
    if (knob == "aggressors")
        return &config.aggressors;
    if (knob == "pool_size")
        return &config.poolSize;
    if (knob == "burst_spacing")
        return &config.burstSpacing;
    if (knob == "phase")
        return &config.phase;
    throw std::invalid_argument("search: unknown attacker knob '" +
                                knob + "'");
}

/** Candidate 0: the defense-oblivious security-matrix hammer. */
AttackerConfig
obliviousBaseline(const AttackerConfig &base)
{
    AttackerConfig config;
    config.attacker = "hammer";
    config.targetBank = base.targetBank;
    config.targetRow = base.targetRow;
    config.seed = base.seed;
    return config;
}

/**
 * Sample candidate @p id's knobs from its own counter-derived RNG
 * stream.  Knobs pinned (non-zero) in @p base are not sampled, so
 * `--set attacker.<knob>=` narrows the search space.
 */
AttackerConfig
sampleCandidate(const std::string &attacker,
                const AttackerConfig &base, std::uint64_t seed,
                std::uint32_t id)
{
    AttackerConfig config = base;
    config.attacker = attacker;
    Rng rng(deriveRngStream(seed, id));
    for (const AttackerKnob &knob : attackerKnobSpace(attacker)) {
        std::uint32_t *field = knobField(config, knob.knob);
        if (*knobField(const_cast<AttackerConfig &>(base),
                       knob.knob) != 0)
            continue;  // pinned by the caller
        *field = knob.lo + static_cast<std::uint32_t>(rng.range(
                               knob.hi - knob.lo + 1));
    }
    return config;
}

JsonValue
candidateToJson(const SearchCandidate &candidate)
{
    JsonValue obj = JsonValue::object();
    obj.set("id", static_cast<std::int64_t>(candidate.id));
    obj.set("attacker", candidate.config.attacker);
    obj.set("aggressors",
            static_cast<std::int64_t>(candidate.config.aggressors));
    obj.set("pool_size",
            static_cast<std::int64_t>(candidate.config.poolSize));
    obj.set("burst_spacing",
            static_cast<std::int64_t>(candidate.config.burstSpacing));
    obj.set("phase",
            static_cast<std::int64_t>(candidate.config.phase));
    obj.set("target_bank",
            static_cast<std::int64_t>(candidate.config.targetBank));
    obj.set("target_row",
            static_cast<std::int64_t>(candidate.config.targetRow));
    obj.set("max_counter",
            static_cast<std::int64_t>(candidate.maxCounter));
    obj.set("secure", candidate.secure);
    return obj;
}

} // namespace

ResultRow
evaluateAttacker(const std::string &defense,
                 const AttackerConfig &config,
                 const std::string &spec_name, std::uint32_t nbo,
                 double window_ms)
{
    // The defense_matrix_security universe: scaled 2 ms tREFW so a
    // complete worst-case attack fits a bench budget.
    DramSpec spec = specByName(spec_name);
    spec.prac.nbo = nbo;
    spec.timing.tREFW = nsToCycles(2.0e6);

    ControllerConfig controller;
    configureDefense(controller, defense, spec);

    AttackHarness harness(spec, controller);
    const std::unique_ptr<AttackerAgent> attacker = attackerByName(
        config.attacker.empty() ? std::string("hammer")
                                : config.attacker,
        config, harness.mem());
    harness.add(attacker.get());
    harness.run(nsToCycles(window_ms * 1.0e6));

    const MemoryController &mem = harness.mem();
    const std::uint32_t max_counter =
        mem.prac().counters().maxEverSeen();
    const std::uint32_t contract = nbo + spec.prac.aboAct;

    ResultRow row = JsonValue::object();
    row.set("attacker", attacker->name());
    const AttackerConfig &effective = attacker->config();
    row.set("aggressors",
            static_cast<std::int64_t>(effective.aggressors));
    row.set("pool_size",
            static_cast<std::int64_t>(effective.poolSize));
    row.set("burst_spacing",
            static_cast<std::int64_t>(effective.burstSpacing));
    row.set("phase", static_cast<std::int64_t>(effective.phase));
    row.set("max_counter", static_cast<std::int64_t>(max_counter));
    row.set("contract", static_cast<std::int64_t>(contract));
    row.set("secure", max_counter <= contract);
    row.set("alerts",
            static_cast<std::int64_t>(mem.prac().alerts()));
    row.set("mitigation_events",
            static_cast<std::int64_t>(mem.mitigationEvents()));
    row.set("graphene_rfms", static_cast<std::int64_t>(
                                 mem.rfmCount(RfmReason::Graphene)));
    row.set("pb_rfms", static_cast<std::int64_t>(
                           mem.rfmCount(RfmReason::PerBank)));
    return row;
}

JsonValue
SearchResult::toJson() const
{
    JsonValue obj = JsonValue::object();
    obj.set("search", "attacker");
    obj.set("target_defense", targetDefense);
    obj.set("attacker", attacker);
    obj.set("seed", static_cast<std::int64_t>(seed));
    obj.set("budget", static_cast<std::int64_t>(budget));
    obj.set("contract", static_cast<std::int64_t>(contract));
    JsonValue round_list = JsonValue::array();
    for (const SearchRound &round : rounds) {
        JsonValue entry = JsonValue::object();
        entry.set("round", static_cast<std::int64_t>(round.round));
        entry.set("window_ms", round.windowMs);
        JsonValue list = JsonValue::array();
        for (const SearchCandidate &candidate : round.candidates)
            list.push(candidateToJson(candidate));
        entry.set("candidates", std::move(list));
        round_list.push(std::move(entry));
    }
    obj.set("rounds", std::move(round_list));
    obj.set("best", candidateToJson(best));
    obj.set("oblivious", candidateToJson(oblivious));
    return obj;
}

SearchResult
runAttackerSearch(const SearchOptions &options)
{
    SearchResult result;
    result.targetDefense = options.targetDefense;
    result.attacker = options.attacker.empty()
                          ? attackerForDefense(options.targetDefense)
                          : options.attacker;
    result.seed = options.seed;
    result.budget = std::max<std::uint32_t>(2, options.budget);
    result.contract =
        options.nbo + specByName(options.specName).prac.aboAct;

    // Candidate 0 is the oblivious baseline; it is exempt from
    // elimination so the final full-window round always contains it
    // and the reported best is >= the oblivious attack.
    std::vector<AttackerConfig> candidates;
    candidates.push_back(obliviousBaseline(options.base));
    for (std::uint32_t id = 1; id < result.budget; ++id)
        candidates.push_back(sampleCandidate(
            result.attacker, options.base, options.seed, id));

    std::vector<std::uint32_t> surviving;
    for (std::uint32_t id = 0; id < candidates.size(); ++id)
        surviving.push_back(id);

    const std::uint32_t total_rounds =
        std::max<std::uint32_t>(1, options.rounds);
    for (std::uint32_t round = 1; round <= total_rounds; ++round) {
        const double window_ms =
            options.windowMs /
            static_cast<double>(1u << (total_rounds - round));

        Scenario inner;
        inner.name = options.journalTag + "." +
                     options.targetDefense + ".r" +
                     std::to_string(round);
        inner.title = "attacker search round";
        inner.checkpointEvery = 1;
        std::vector<JsonValue> axis;
        for (const std::uint32_t id : surviving)
            axis.emplace_back(static_cast<std::int64_t>(id));
        inner.grid.axis("candidate", std::move(axis));
        const std::string defense = options.targetDefense;
        const std::string spec_name = options.specName;
        const std::uint32_t nbo = options.nbo;
        inner.runPoint = [&candidates, defense, spec_name, nbo,
                          window_ms](const ParamSet &params) {
            const auto id = static_cast<std::uint32_t>(
                params.getInt("candidate"));
            return std::vector<ResultRow>{
                evaluateAttacker(defense, candidates[id], spec_name,
                                 nbo, window_ms)};
        };

        RunOptions run_options;
        run_options.jobs = options.jobs;
        run_options.progress = false;
        if (!options.checkpointDir.empty()) {
            run_options.checkpoint.directory = options.checkpointDir;
            run_options.checkpoint.resume = options.resume;
        }
        const SweepResult sweep = runScenario(inner, run_options);

        SearchRound record;
        record.round = round;
        record.windowMs = window_ms;
        for (const ResultRow &row : sweep.rows) {
            SearchCandidate candidate;
            candidate.id = static_cast<std::uint32_t>(
                row.get("candidate")->asInt());
            candidate.config = candidates[candidate.id];
            candidate.maxCounter = static_cast<std::uint32_t>(
                row.get("max_counter")->asInt());
            candidate.secure = row.get("secure")->asBool();
            candidates[candidate.id].attacker =
                row.get("attacker")->asString();
            candidate.config = candidates[candidate.id];
            record.candidates.push_back(candidate);
        }
        result.rounds.push_back(record);

        // Successive halving: rank by (metric desc, id asc), keep
        // the top half, and re-admit the baseline if it fell out.
        std::vector<SearchCandidate> ranked = record.candidates;
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const SearchCandidate &a,
                            const SearchCandidate &b) {
                             return a.maxCounter > b.maxCounter;
                         });
        const std::size_t keep = (ranked.size() + 1) / 2;
        surviving.clear();
        for (std::size_t i = 0; i < keep; ++i)
            surviving.push_back(ranked[i].id);
        if (std::find(surviving.begin(), surviving.end(), 0u) ==
            surviving.end())
            surviving.push_back(0);
        std::sort(surviving.begin(), surviving.end());

        if (round == total_rounds) {
            for (const SearchCandidate &candidate :
                 record.candidates) {
                if (candidate.id == 0)
                    result.oblivious = candidate;
                if (candidate.maxCounter > result.best.maxCounter ||
                    (candidate.maxCounter == result.best.maxCounter &&
                     result.best.config.attacker.empty()))
                    result.best = candidate;
            }
        }
    }
    return result;
}

} // namespace pracleak::sim
