/**
 * @file
 * Offline leakage analyzer over bus time-series files: the
 * `pracbench analyze` subcommand.
 *
 * Loads the JSONL series that `--series-out` emits (one header /
 * window-lines / summary block per simulation, see
 * telemetry/timeseries.h), classifies each window as attacker-ON or
 * attacker-OFF, and applies the same activity-correlation rule as
 * the `defense_matrix_leakage` scenario to the *bus-visible* signal
 * alone: channel-wide events (RFMab) against any probe, per-bank
 * events (RFMpb on the victim's bank) against a same-bank probe.
 * The point of the exercise is that the verdicts -- ABO/ACB leak
 * channel-wide, Graphene/PB-RFM leak same-bank, PARA/TB-RFM don't --
 * are recoverable from the recorded series without re-running any
 * simulation, which is exactly the paper's attacker model: the
 * adversary only ever sees the bus.
 */

#ifndef PRACLEAK_SIM_ANALYZE_SUPPORT_H
#define PRACLEAK_SIM_ANALYZE_SUPPORT_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace pracleak::sim {

/** One parsed simulation record from a series file. */
struct SeriesSim
{
    std::string label;
    std::string mitigation;
    Cycle windowCycles = 0;
    std::uint32_t channels = 1;
    std::int64_t victimBank = -1; //!< -1: unknown, scan all banks
    std::vector<std::pair<Cycle, Cycle>> onWindows;

    struct Window
    {
        std::uint32_t channel = 0;
        std::uint64_t index = 0;
        std::uint64_t act = 0;
        std::uint64_t ref = 0;
        std::uint64_t rfmAb = 0;
        std::uint64_t rfmPb = 0;
        std::uint64_t abo = 0;
        Cycle blocked = 0;
        std::map<std::uint32_t, std::uint64_t> rfmPbBanks;
    };
    std::vector<Window> windows;
};

/** Event totals split by the victim's ON/OFF phases. */
struct OnOffCounts
{
    std::uint64_t on = 0;
    std::uint64_t off = 0;
};

/**
 * The defense-matrix activity-correlation rule (the single shared
 * definition; scenarios_defense.cpp applies it to probe-latency
 * spikes, the analyzer to bus event counts): signal concentrated in
 * ON phases beyond what a periodic emitter would show.
 */
inline bool
correlatedCounts(const OnOffCounts &counts)
{
    return counts.on > 2 * counts.off + 3;
}

/** What one simulation's series leaks, and to whom. */
struct LeakVerdict
{
    std::string label;
    std::string mitigation;
    std::uint64_t windows = 0;   //!< materialized windows analyzed
    std::uint64_t bursts = 0;    //!< maximal runs of RFM-active windows
    OnOffCounts channel;         //!< channel-wide events (RFMab)
    OnOffCounts sameBank;        //!< victim-bank RFMpb events
    bool leakChannel = false;
    bool leakSameBank = false;

    bool leaked() const { return leakChannel || leakSameBank; }

    /** Same vocabulary as defense_matrix_leakage's summary rows. */
    std::string observableTo() const;
};

/**
 * Parse one JSONL series file (possibly holding several simulation
 * records).  On malformed input returns what was parsed and sets
 * @p error; a clean parse clears it.
 */
std::vector<SeriesSim> loadSeriesFile(const std::string &path,
                                      std::string *error);

/**
 * ON/OFF-distinguishability analysis of one simulation.  Windows
 * are classified ON when their midpoint cycle falls inside a header
 * `on_windows` range; a header without ranges falls back to ACT
 * activity (a window with more than half the peak ACT count is ON).
 */
LeakVerdict analyzeSeries(const SeriesSim &sim);

/** CLI options for `pracbench analyze`. */
struct AnalyzeCliOptions
{
    std::vector<std::string> paths;   //!< series files (JSONL)
    bool defenseMatrix = false;       //!< per-defense verdict summary
    std::string outJson;              //!< "" = stdout tables only
    bool table = true;
};

/** `pracbench analyze` entry point; returns the process exit code. */
int runAnalyzeCommand(const AnalyzeCliOptions &options);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_ANALYZE_SUPPORT_H
