/**
 * @file
 * Analytic scenarios (no simulation): Figure 7, the TMAX-vs-TB-Window
 * security analysis that derives the safe TPRAC configuration.
 */

#include "sim/scenario.h"

#include "tprac/analysis.h"

namespace pracleak::sim {

namespace {

FeintingParams
feintingParams()
{
    return FeintingParams::fromSpec(DramSpec::ddr5_8000b());
}

Scenario
fig07TmaxAnalysis()
{
    Scenario scenario;
    scenario.name = "fig07_tmax_analysis";
    scenario.tags = {"analysis"};
    scenario.title = "Figure 7: TMAX vs TB-Window, and derived safe "
                     "windows per NBO";
    scenario.notes = "paper: safe TB-Window ~1.6 tREFI at NRH = 1024";
    scenario.grid.axis("window_trefi",
                       {0.25, 0.5, 0.75, 1.0, 2.0, 4.0});

    scenario.runPoint = [](const ParamSet &params) {
        const FeintingParams p = feintingParams();
        const double windowNs =
            params.getDouble("window_trefi") * p.trefiNs;
        ResultRow row = JsonValue::object();
        row.set("tmax_reset", tmaxWithReset(windowNs, p));
        row.set("tmax_noreset", tmaxNoReset(windowNs, p));
        row.set("acts_per_window", actsPerWindow(windowNs, p));
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &) {
        const FeintingParams p = feintingParams();
        std::vector<ResultRow> rows;
        for (const std::uint32_t nbo :
             {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
            ResultRow row = JsonValue::object();
            row.set("nbo", nbo);
            row.set("safe_window_trefi_reset",
                    maxSafeWindowNs(nbo, true, p) / p.trefiNs);
            row.set("safe_window_trefi_noreset",
                    maxSafeWindowNs(nbo, false, p) / p.trefiNs);
            row.set("safe_bat", maxSafeBat(nbo, true, p));
            rows.push_back(std::move(row));
        }
        return rows;
    };
    return scenario;
}

} // namespace

void
registerAnalysisScenarios(ScenarioRegistry &registry)
{
    registry.add(fig07TmaxAnalysis());
}

} // namespace pracleak::sim
