#include "sim/design.h"

#include <algorithm>

#include "mitigation/registry.h"
#include <future>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace pracleak::sim {

SystemConfig
makeSystemConfig(const DesignConfig &design, const RunBudget &budget)
{
    SystemConfig config;
    config.spec = design.spec.empty() ? DramSpec::ddr5_8000b()
                                      : specByName(design.spec);
    config.spec.prac.nbo = design.nbo;
    config.spec.prac.nmit = design.nmit;
    if (design.ranks != 0)
        config.spec.org.ranks = design.ranks;
    config.channels = design.channels;
    config.channelInterleaveBytes = design.channelInterleaveBytes;
    config.fastForward = design.fastForward;
    config.warmupInstrs = budget.warmup;
    config.measureInstrs = budget.measure;

    config.mem.mode = design.mode;
    if (design.randomRfmPerTrefi >= 0.0)
        config.mem.randomRfmPerTrefi = design.randomRfmPerTrefi;
    config.mem.prac.queue = QueueKind::SingleEntry;
    config.mem.prac.counterResetAtTrefw = design.counterReset;
    config.mem.prac.trefPeriodRefs = design.trefPeriodRefs;

    if (!design.mitigation.empty()) {
        configureDefense(config.mem, design.mitigation, config.spec,
                         design.trefPeriodRefs != 0);
        if (design.mitigation == "tprac")
            config.mem.tbRfm.perBank = design.perBankRfm;
        return config;
    }

    const FeintingParams fp = FeintingParams::fromSpec(config.spec);
    if (design.mode == MitigationMode::AboAcb) {
        config.mem.bat = std::max<std::uint32_t>(
            16, maxSafeBat(design.nbo, design.counterReset, fp));
    }
    if (design.mode == MitigationMode::Tprac) {
        config.mem.tbRfm = TbRfmConfig::forNbo(
            design.nbo, design.counterReset, config.spec,
            design.trefPeriodRefs != 0);
        config.mem.tbRfm.perBank = design.perBankRfm;
    }
    return config;
}

RunResult
runOne(const SuiteEntry &entry, const DesignConfig &design,
       const RunBudget &budget, std::uint32_t cores)
{
    System system(makeSystemConfig(design, budget),
                  instantiate(entry, cores));
    return system.run();
}

namespace {

/**
 * Every knob a NoMitigation baseline run can observe.  Kept honest
 * by the kDesignConfigFieldCount tripwire (design.h): when a field
 * is added to DesignConfig, decide here whether the baseline can
 * observe it and extend the key if so -- label, mode/mitigation,
 * perBankRfm, randomRfmPerTrefi, and fastForward are deliberately
 * excluded (the baseline forces NoMitigation, and fast-forward is
 * statistics-invariant by the event-scheduler contract).
 */
static_assert(kDesignConfigFieldCount == 14,
              "DesignConfig changed: re-audit BaselineKey before "
              "updating the count");
using BaselineKey =
    std::tuple<std::string, std::string, std::uint32_t, std::uint32_t,
               std::uint32_t, bool, std::uint64_t, std::uint64_t,
               std::uint32_t, std::uint32_t, std::uint32_t,
               std::uint32_t>;

// shared_future per key: the first thread to claim a key computes
// it, concurrent claimants wait instead of re-simulating.
std::mutex g_baselineMutex;
std::map<BaselineKey, std::shared_future<RunResult>> g_baselineCache;

BaselineKey
baselineKey(const SuiteEntry &entry, const DesignConfig &design,
            const RunBudget &budget, std::uint32_t cores)
{
    return BaselineKey{entry.params.name,
                       design.spec,
                       design.nbo,
                       design.nmit,
                       design.trefPeriodRefs,
                       design.counterReset,
                       budget.warmup,
                       budget.measure,
                       cores,
                       design.channels,
                       design.ranks,
                       design.channelInterleaveBytes};
}

} // namespace

PairResult
runNormalizedPair(const SuiteEntry &entry, const DesignConfig &design,
                  const RunBudget &budget, std::uint32_t cores)
{
    DesignConfig baseline = design;
    baseline.label = "baseline";
    baseline.mode = MitigationMode::NoMitigation;
    baseline.mitigation.clear();
    baseline.perBankRfm = false;

    const BaselineKey key = baselineKey(entry, design, budget, cores);
    std::shared_future<RunResult> future;
    std::promise<RunResult> promise;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(g_baselineMutex);
        const auto it = g_baselineCache.find(key);
        if (it != g_baselineCache.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            g_baselineCache.emplace(key, future);
            owner = true;
        }
    }
    if (owner) {
        try {
            promise.set_value(runOne(entry, baseline, budget, cores));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }

    PairResult pair;
    pair.design = runOne(entry, design, budget, cores);
    pair.baseline = future.get();
    return pair;
}

void
clearBaselineCache()
{
    const std::lock_guard<std::mutex> lock(g_baselineMutex);
    g_baselineCache.clear();
}

std::vector<EntryPerf>
runSuiteNormalized(const std::vector<SuiteEntry> &entries,
                   const DesignConfig &design, const RunBudget &budget,
                   ThreadPool *pool)
{
    std::vector<std::function<PairResult()>> jobs;
    jobs.reserve(entries.size());
    for (const SuiteEntry &entry : entries)
        jobs.push_back([entry, design, budget] {
            return runNormalizedPair(entry, design, budget);
        });
    auto pairs = runParallel(std::move(jobs), pool);

    std::vector<EntryPerf> out;
    out.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EntryPerf perf;
        perf.name = entries[i].params.name;
        perf.intensity = entries[i].intensity;
        perf.normalized =
            normalizedPerf(pairs[i].design, pairs[i].baseline);
        perf.result = std::move(pairs[i].design);
        out.push_back(std::move(perf));
    }
    return out;
}

double
meanNormalized(const std::vector<EntryPerf> &perfs)
{
    if (perfs.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &perf : perfs)
        sum += perf.normalized;
    return sum / static_cast<double>(perfs.size());
}

const SuiteEntry &
findSuiteEntry(const std::string &name)
{
    static const std::vector<SuiteEntry> suite = standardSuite();
    for (const SuiteEntry &entry : suite)
        if (entry.params.name == name)
            return entry;
    std::string known;
    for (const SuiteEntry &entry : suite)
        known += (known.empty() ? "" : ", ") + entry.params.name;
    throw std::invalid_argument("unknown suite entry '" + name +
                                "' (have: " + known + ")");
}

std::vector<std::string>
suiteEntryNames()
{
    std::vector<std::string> names;
    for (const SuiteEntry &entry : standardSuite())
        names.push_back(entry.params.name);
    return names;
}

std::vector<std::string>
suiteEntryNames(MemIntensity intensity)
{
    std::vector<std::string> names;
    for (const SuiteEntry &entry : standardSuite())
        if (entry.intensity == intensity)
            names.push_back(entry.params.name);
    return names;
}

std::vector<std::string>
memoryIntensiveEntryNames()
{
    std::vector<std::string> names = suiteEntryNames(MemIntensity::High);
    for (auto &name : suiteEntryNames(MemIntensity::Medium))
        names.push_back(std::move(name));
    return names;
}

} // namespace pracleak::sim
