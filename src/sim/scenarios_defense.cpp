/**
 * @file
 * Cross-defense bake-off scenarios over the pluggable mitigation
 * registry (src/mitigation/).  All three sweep the same string-keyed
 * `mitigation` axis, so `pracbench --set mitigation=...` narrows any
 * of them to a defense subset (including "obfuscation", which is
 * registered but not part of the default seven-way grid):
 *
 *  - defense_matrix_leakage: a victim hammers in ON/OFF bursts while
 *    two latency probes watch -- one sharing the victim's bank, one
 *    in a distant bank.  A defense leaks when a probe sees latency
 *    spikes (above the no-defense noise ceiling) correlated with the
 *    ON phases.  Expected: ABO / ACB / Graphene / PB-RFM leak,
 *    TB-RFM spikes are uncorrelated, PARA and the baseline show
 *    nothing above noise.
 *  - defense_matrix_perf: normalized weighted speedup of every
 *    defense over the Table-4 workload suite (memoized NoMitigation
 *    baseline), plus RFM/energy telemetry.
 *  - defense_matrix_security: the Feinting stress attacker against
 *    every defense in the scaled 2 ms-tREFW universe; reports the
 *    highest per-row activation count reached and whether it stayed
 *    within the defense's contract (NBO + the ABOACT allowance).
 */

#include "sim/scenario.h"

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "attack/agents.h"
#include "attack/harness.h"
#include "mitigation/registry.h"
#include "sim/analyze_support.h"
#include "sim/design.h"
#include "sim/scenario_util.h"
#include "sim/search.h"
#include "telemetry/timeseries.h"
#include "tprac/analysis.h"

namespace pracleak::sim {

namespace {

/** The default seven-way bake-off axis, in catalog order. */
std::vector<JsonValue>
defenseAxis()
{
    return toValues({"none", "abo-only", "abo+acb-rfm", "tprac",
                     "para", "graphene", "pb-rfm"});
}

// --- defense_matrix_leakage ----------------------------------------

/** One probe's samples plus the ON-window schedule of the run. */
struct LeakRun
{
    std::vector<LatencySample> nearSamples; //!< victim's bank
    std::vector<LatencySample> farSamples;  //!< distant bank
    std::vector<std::pair<Cycle, Cycle>> onWindows;
    std::uint64_t aboRfms = 0;
    std::uint64_t acbRfms = 0;
    std::uint64_t tbRfms = 0;
    std::uint64_t grapheneRfms = 0;
    std::uint64_t pbRfms = 0;
    std::uint64_t paraEvents = 0;
    std::uint64_t alerts = 0;
};

LeakRun
runLeakExperiment(const std::string &defense,
                  const std::string &spec_name, std::uint32_t nbo,
                  double phase_ms, int bursts)
{
    DramSpec spec = specByName(spec_name);
    spec.prac.nbo = nbo;

    ControllerConfig config;
    config.prac.queue = QueueKind::Ideal; // UPRAC, as in fig03
    config.refreshEnabled = false;        // isolate mitigation events
    configureDefense(config, defense, spec);

    AttackHarness harness(spec, config);

    // Victim hammers flat bank 18 = (rank 0, bg 4, bank 2); the near
    // probe shares that bank (per-bank RFMs block it), the far probe
    // sits in a distant bank (only channel-wide RFMabs reach it).
    // Registry-style construction: burstSpacing doubles as the decoy
    // row stride, so 4 decoys land at 0x200..0x203 as before.
    AttackerConfig victim_config;
    victim_config.targetBank = 18;
    victim_config.targetRow = 0x100;
    victim_config.poolSize = 4;
    victim_config.burstSpacing = 0x100;
    HammerAgent victim(harness.mem(), victim_config);
    AttackerConfig near_config;
    near_config.targetBank = 18;
    near_config.targetRow = 3;
    ProbeAgent near_probe(harness.mem(), near_config);
    AttackerConfig far_config;
    far_config.targetBank = 0;
    far_config.targetRow = 3;
    ProbeAgent far_probe(harness.mem(), far_config);

    harness.add(&victim);
    harness.add(&near_probe);
    harness.add(&far_probe);

    LeakRun run;
    const Cycle phase = nsToCycles(phase_ms * 1.0e6);
    for (int burst = 0; burst < bursts; ++burst) {
        const Cycle on_end = harness.now() + phase;
        run.onWindows.emplace_back(harness.now(), on_end);
        while (harness.now() < on_end) {
            if (victim.done())
                victim.startHammer(spec.prac.nbo + spec.prac.aboAct +
                                   4);
            harness.step();
        }
        victim.stop();
        const Cycle off_end = harness.now() + phase;
        while (harness.now() < off_end)
            harness.step();
    }

    const MemoryController &mem = harness.mem();
    run.nearSamples = near_probe.samples();
    run.farSamples = far_probe.samples();
    run.aboRfms = mem.rfmCount(RfmReason::Abo);
    run.acbRfms = mem.rfmCount(RfmReason::Acb);
    run.tbRfms = mem.rfmCount(RfmReason::TimingBased);
    run.grapheneRfms = mem.rfmCount(RfmReason::Graphene);
    run.pbRfms = mem.rfmCount(RfmReason::PerBank);
    run.paraEvents =
        defense == "para" ? mem.mitigationEvents() : 0;
    run.alerts = mem.prac().alerts();
    return run;
}

bool
inOnWindow(const std::vector<std::pair<Cycle, Cycle>> &windows,
           Cycle at)
{
    for (const auto &[begin, end] : windows)
        if (at >= begin && at < end)
            return true;
    return false;
}

Cycle
maxLatency(const std::vector<LatencySample> &samples)
{
    Cycle most = 0;
    for (const LatencySample &sample : samples)
        most = std::max(most, sample.latency);
    return most;
}

/**
 * The no-defense calibration run (noise ceilings AND the
 * mitigation=none grid point) is deterministic per experiment shape
 * and costs a full simulation, so sweeps share one per (nbo, phase,
 * bursts).  shared_future per key: the first claimant simulates
 * outside the lock, concurrent workers wait on the future instead of
 * serializing behind a mutex-held run (same pattern as the memoized
 * baselines in sim/design.cpp).
 */
const LeakRun &
quietRun(const std::string &spec_name, std::uint32_t nbo,
         double phase_ms, int bursts)
{
    static std::mutex mutex;
    static std::map<std::string, std::shared_future<LeakRun>> cache;
    const std::string key = spec_name + "/" + std::to_string(nbo) +
                            "/" + std::to_string(phase_ms) + "/" +
                            std::to_string(bursts);
    std::shared_future<LeakRun> future;
    std::promise<LeakRun> promise;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(mutex);
        const auto it = cache.find(key);
        if (it != cache.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            cache.emplace(key, future);
            owner = true;
        }
    }
    if (owner) {
        try {
            promise.set_value(runLeakExperiment("none", spec_name,
                                                nbo, phase_ms,
                                                bursts));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

/** Spikes above @p threshold split by phase. */
struct PhaseSpikes
{
    std::uint64_t on = 0;
    std::uint64_t off = 0;
};

PhaseSpikes
countSpikes(const std::vector<LatencySample> &samples, Cycle threshold,
            const std::vector<std::pair<Cycle, Cycle>> &on_windows)
{
    PhaseSpikes spikes;
    for (const LatencySample &sample : samples) {
        if (sample.latency <= threshold)
            continue;
        if (inOnWindow(on_windows, sample.doneAt))
            ++spikes.on;
        else
            ++spikes.off;
    }
    return spikes;
}

/**
 * Activity-correlation rule: a probe leaks when its above-noise
 * spikes concentrate in the victim's ON phases.  Periodic TB-RFM
 * spikes split evenly between phases and fail this; ABO/ACB/
 * Graphene/PB-RFM events exist only while the victim is active and
 * pass it.
 */
bool
correlated(const PhaseSpikes &spikes)
{
    return spikes.on > 2 * spikes.off + 3;
}

Scenario
defenseMatrixLeakage()
{
    Scenario scenario;
    scenario.name = "defense_matrix_leakage";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"defense", "attack"};
    scenario.title = "Defense bake-off: RFM-latency leakage of every "
                     "registered mitigation (ON/OFF victim bursts, "
                     "same-bank + cross-bank probes)";
    scenario.notes = "expected: abo-only / abo+acb-rfm leak to both "
                     "probes (RFMab), graphene / pb-rfm leak to the "
                     "same-bank probe (RFMpb), tprac's spikes are "
                     "phase-uncorrelated, para and none show nothing "
                     "above noise";
    scenario.grid.axis("mitigation", defenseAxis())
        .constant("spec", "ddr5-8000b")
        .constant("nbo", 256)
        .constant("window_ms", 0.25)    //!< one ON (or OFF) phase
        .constant("bursts", 8);

    scenario.runPoint = [](const ParamSet &params) {
        const std::string defense = params.getString("mitigation");
        const std::string spec_name = params.getString("spec");
        const auto nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        const double phase_ms = params.getDouble("window_ms");
        const int bursts = static_cast<int>(params.getInt("bursts"));

        const LeakRun &quiet =
            quietRun(spec_name, nbo, phase_ms, bursts);
        const Cycle near_ceiling = maxLatency(quiet.nearSamples);
        const Cycle far_ceiling = maxLatency(quiet.farSamples);
        const Cycle margin = nsToCycles(100);
        const LeakRun run =
            defense == "none"
                ? quiet
                : runLeakExperiment(defense, spec_name, nbo,
                                    phase_ms, bursts);

        const PhaseSpikes near_spikes = countSpikes(
            run.nearSamples, near_ceiling + margin, run.onWindows);
        const PhaseSpikes far_spikes = countSpikes(
            run.farSamples, far_ceiling + margin, run.onWindows);
        const bool leak_near = correlated(near_spikes);
        const bool leak_far = correlated(far_spikes);

        ResultRow row = JsonValue::object();
        row.set("near_spikes_on", near_spikes.on);
        row.set("near_spikes_off", near_spikes.off);
        row.set("far_spikes_on", far_spikes.on);
        row.set("far_spikes_off", far_spikes.off);
        row.set("near_max_ns", cyclesToNs(maxLatency(run.nearSamples)));
        row.set("far_max_ns", cyclesToNs(maxLatency(run.farSamples)));
        row.set("leak_near", leak_near);
        row.set("leak_far", leak_far);
        row.set("leaked", leak_near || leak_far);
        row.set("abo_rfms", run.aboRfms);
        row.set("acb_rfms", run.acbRfms);
        row.set("tb_rfms", run.tbRfms);
        row.set("graphene_rfms", run.grapheneRfms);
        row.set("pb_rfms", run.pbRfms);
        row.set("para_refreshes", run.paraEvents);
        row.set("alerts", run.alerts);
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::vector<ResultRow> out;
        for (const ResultRow &row : rows) {
            ResultRow summary = JsonValue::object();
            summary.set("mitigation", *row.get("mitigation"));
            summary.set("leaked", *row.get("leaked"));
            summary.set("observable_to",
                        row.get("leak_near")->asBool()
                            ? (row.get("leak_far")->asBool()
                                   ? "any probe"
                                   : "same-bank probe")
                            : (row.get("leak_far")->asBool()
                                   ? "cross-bank probe"
                                   : "none"));
            out.push_back(std::move(summary));
        }
        return out;
    };
    return scenario;
}

// --- leakage_timeline ----------------------------------------------

Scenario
leakageTimeline()
{
    Scenario scenario;
    scenario.name = "leakage_timeline";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"defense", "attack", "telemetry"};
    scenario.title = "Per-window bus time series of every registered "
                     "mitigation over the ON/OFF hammer workload";
    scenario.notes = "window rows list only windows with bus-visible "
                     "maintenance; the verdict rows apply "
                     "defense_matrix_leakage's correlation rule to "
                     "the series alone (RFMab = channel-wide, "
                     "victim-bank RFMpb = same-bank); add "
                     "--series-out to export the full series for "
                     "`pracbench analyze`";
    scenario.grid.axis("mitigation", defenseAxis())
        .constant("spec", "ddr5-8000b")
        .constant("nbo", 256)
        .constant("window_ms", 0.25)    //!< one ON (or OFF) phase
        .constant("bursts", 8);

    scenario.runPoint = [](const ParamSet &params) {
        const std::string defense = params.getString("mitigation");
        DramSpec spec = specByName(params.getString("spec"));
        spec.prac.nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));

        ControllerConfig config;
        config.prac.queue = QueueKind::Ideal; // UPRAC, as in fig03
        config.refreshEnabled = false; // isolate mitigation events
        configureDefense(config, defense, spec);

        // Same experiment shape as runLeakExperiment, but recording
        // the bus series instead of probe latencies, and with no
        // memoized baseline: a shared quiet run executes under
        // whichever grid point claims it first, which would make
        // series attribution depend on --jobs scheduling.
        AttackHarness harness(spec, config);
        MemoryController &mem = harness.mem();

        // Reuse the capture-attached observer when --series-out
        // armed one (the harness constructor attached it); install a
        // local observer otherwise, so the scenario's rows never
        // depend on whether the series export is on.
        telemetry::BusObserver *bus = mem.busObserver();
        std::unique_ptr<telemetry::BusObserver> local;
        if (!bus) {
            local = std::make_unique<telemetry::BusObserver>(spec);
            mem.setBusObserver(local.get());
            bus = local.get();
        }

        // Same flat-bank-18 layout as runLeakExperiment, built
        // through the attacker registry's config path.
        AttackerConfig victim_config;
        victim_config.targetBank = 18;
        victim_config.targetRow = 0x100;
        victim_config.poolSize = 4;
        victim_config.burstSpacing = 0x100;
        telemetry::SeriesCapture::setVictimBank(
            victim_config.targetBank);
        HammerAgent victim(mem, victim_config);
        AttackerConfig near_config;
        near_config.targetBank = 18;
        near_config.targetRow = 3;
        ProbeAgent near_probe(mem, near_config);
        AttackerConfig far_config;
        far_config.targetBank = 0;
        far_config.targetRow = 3;
        ProbeAgent far_probe(mem, far_config);
        harness.add(&victim);
        harness.add(&near_probe);
        harness.add(&far_probe);

        std::vector<std::pair<Cycle, Cycle>> on_windows;
        const Cycle phase =
            nsToCycles(params.getDouble("window_ms") * 1.0e6);
        const int bursts = static_cast<int>(params.getInt("bursts"));
        for (int burst = 0; burst < bursts; ++burst) {
            const Cycle on_end = harness.now() + phase;
            on_windows.emplace_back(harness.now(), on_end);
            telemetry::SeriesCapture::markOnWindow(harness.now(),
                                                   on_end);
            while (harness.now() < on_end) {
                if (victim.done())
                    victim.startHammer(spec.prac.nbo +
                                       spec.prac.aboAct + 4);
                harness.step();
            }
            victim.stop();
            const Cycle off_end = harness.now() + phase;
            while (harness.now() < off_end)
                harness.step();
        }

        // Hand the recorded series to the analyzer core -- the same
        // code path `pracbench analyze` runs over exported files.
        SeriesSim sim;
        sim.label = params.label();
        sim.mitigation = defense;
        sim.windowCycles = bus->windowCycles();
        sim.victimBank = victim_config.targetBank;
        sim.onWindows = on_windows;
        for (const telemetry::SeriesWindow &w : bus->windows()) {
            SeriesSim::Window window;
            window.index = w.index;
            window.act = w.act;
            window.ref = w.ref;
            window.rfmAb = w.rfmAb;
            window.rfmPb = w.rfmPb;
            window.abo = w.abo;
            window.blocked = w.blocked;
            window.rfmPbBanks = w.rfmPbBanks;
            sim.windows.push_back(std::move(window));
        }
        const LeakVerdict verdict = analyzeSeries(sim);

        const auto window_on = [&](std::uint64_t index) {
            const Cycle mid = index * sim.windowCycles +
                              sim.windowCycles / 2;
            return inOnWindow(on_windows, mid);
        };

        std::vector<ResultRow> rows;
        for (const SeriesSim::Window &w : sim.windows) {
            if (w.rfmAb + w.rfmPb + w.abo + w.ref == 0)
                continue;
            ResultRow row = JsonValue::object();
            row.set("kind", "window");
            row.set("w", w.index);
            row.set("on", window_on(w.index));
            row.set("act", w.act);
            row.set("rfm_ab", w.rfmAb);
            row.set("rfm_pb", w.rfmPb);
            row.set("abo", w.abo);
            row.set("blocked", static_cast<std::uint64_t>(w.blocked));
            rows.push_back(std::move(row));
        }

        ResultRow row = JsonValue::object();
        row.set("kind", "verdict");
        row.set("windows", verdict.windows);
        row.set("bursts", verdict.bursts);
        row.set("ch_on", verdict.channel.on);
        row.set("ch_off", verdict.channel.off);
        row.set("bank_on", verdict.sameBank.on);
        row.set("bank_off", verdict.sameBank.off);
        row.set("leaked", verdict.leaked());
        row.set("observable_to", verdict.observableTo());
        rows.push_back(std::move(row));

        if (local)
            mem.setBusObserver(nullptr);
        return rows;
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::vector<ResultRow> out;
        for (const ResultRow &row : rows) {
            const JsonValue *kind = row.get("kind");
            if (!kind || kind->asString() != "verdict")
                continue;
            ResultRow summary = JsonValue::object();
            summary.set("mitigation", *row.get("mitigation"));
            summary.set("leaked", *row.get("leaked"));
            summary.set("observable_to", *row.get("observable_to"));
            out.push_back(std::move(summary));
        }
        return out;
    };
    return scenario;
}

// --- defense_matrix_perf -------------------------------------------

Scenario
defenseMatrixPerf()
{
    Scenario scenario;
    scenario.name = "defense_matrix_perf";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"defense", "perf", "energy"};
    scenario.title = "Defense bake-off: normalized performance and "
                     "energy of every registered mitigation over the "
                     "Table-4 suite";
    scenario.notes = "all defenses share one memoized NoMitigation "
                     "baseline per workload; para's in-DRAM refreshes "
                     "cost energy but no bus time";
    scenario.grid.axis("mitigation", defenseAxis())
        .axis("entry", toValues(suiteEntryNames()))
        .constant("spec", "ddr5-8000b")
        .constant("nrh", 1024)
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        DesignConfig design;
        design.label = params.getString("mitigation");
        design.mitigation = design.label;
        design.spec = params.getString("spec");
        design.nbo =
            static_cast<std::uint32_t>(params.getInt("nrh"));

        RunBudget budget;
        budget.warmup =
            static_cast<std::uint64_t>(params.getInt("warmup"));
        budget.measure =
            static_cast<std::uint64_t>(params.getInt("measure"));

        const SuiteEntry &entry =
            findSuiteEntry(params.getString("entry"));
        const PairResult pair =
            runNormalizedPair(entry, design, budget);

        ResultRow row = JsonValue::object();
        row.set("class", intensityName(entry.intensity));
        row.set("normalized",
                normalizedPerf(pair.design, pair.baseline));
        row.set("abo_rfms", pair.design.aboRfms);
        row.set("acb_rfms", pair.design.acbRfms);
        row.set("tb_rfms", pair.design.tbRfms);
        row.set("graphene_rfms", pair.design.grapheneRfms);
        row.set("pb_rfms", pair.design.pbRfms);
        row.set("mitigation_events", pair.design.mitigationEvents);
        row.set("alerts", pair.design.alerts);
        row.set("mitigation_nj", pair.design.energy.mitigationNj);
        row.set("energy_overhead_pct",
                100.0 *
                    (pair.design.energy.totalNj() -
                     pair.baseline.energy.totalNj()) /
                    pair.baseline.energy.totalNj());
        // Scheduler-efficiency telemetry (design run, measure
        // window): where the event-driven scheduler's speedup comes
        // from for this defense/workload.  Deterministic, so the
        // rows stay byte-identical across --jobs and work stealing.
        row.set("ticks_fired", pair.design.sched.ticksFired);
        row.set("cycles_jumped", pair.design.sched.cyclesJumped);
        row.set("nextwork_cache_hits",
                pair.design.sched.nextWorkCacheHits);
        row.set("nextwork_rebuilds",
                pair.design.sched.nextWorkRebuilds);
        row.set("nextwork_hint_rebuilds",
                pair.design.sched.nextWorkHintRebuilds);
        row.set("queue_occupancy",
                parseJson(pair.design.queueOccupancy.toJson()));
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        struct Bucket
        {
            double norm = 0.0, energy = 0.0;
            std::int64_t rfms = 0, events = 0, alerts = 0, count = 0;
            std::int64_t ticks = 0, jumped = 0;
        };
        std::vector<std::string> order;
        std::map<std::string, Bucket> groups;
        for (const ResultRow &row : rows) {
            const std::string defense =
                row.get("mitigation")->asString();
            if (groups.find(defense) == groups.end())
                order.push_back(defense);
            Bucket &bucket = groups[defense];
            bucket.norm += row.get("normalized")->asDouble();
            bucket.energy +=
                row.get("energy_overhead_pct")->asDouble();
            bucket.rfms += row.get("abo_rfms")->asInt() +
                           row.get("acb_rfms")->asInt() +
                           row.get("tb_rfms")->asInt() +
                           row.get("graphene_rfms")->asInt() +
                           row.get("pb_rfms")->asInt();
            bucket.events += row.get("mitigation_events")->asInt();
            bucket.alerts += row.get("alerts")->asInt();
            bucket.ticks += row.get("ticks_fired")->asInt();
            bucket.jumped += row.get("cycles_jumped")->asInt();
            ++bucket.count;
        }
        std::vector<ResultRow> out;
        for (const std::string &defense : order) {
            const Bucket &bucket = groups[defense];
            const auto n = static_cast<double>(bucket.count);
            ResultRow row = JsonValue::object();
            row.set("mitigation", defense);
            row.set("mean_normalized", bucket.norm / n);
            row.set("mean_energy_overhead_pct", bucket.energy / n);
            row.set("total_rfms", bucket.rfms);
            row.set("mitigation_events", bucket.events);
            row.set("alerts", bucket.alerts);
            row.set("ticks_fired", bucket.ticks);
            row.set("cycles_jumped", bucket.jumped);
            out.push_back(std::move(row));
        }
        return out;
    };
    return scenario;
}

// --- defense_matrix_security ---------------------------------------

Scenario
defenseMatrixSecurity()
{
    Scenario scenario;
    scenario.name = "defense_matrix_security";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"defense", "security"};
    scenario.title = "Defense bake-off: Feinting stress attack vs "
                     "every registered mitigation (scaled 2 ms "
                     "tREFW)";
    scenario.notes = "secure defenses keep the hottest row at or "
                     "below NBO + ABOACT under both attackers; "
                     "'none' blows through it under the direct "
                     "hammer, and para's guarantee is only "
                     "probabilistic (see escape_prob)";
    scenario.grid.axis("mitigation", defenseAxis())
        .axis("attack", {"hammer", "feinting"})
        .constant("spec", "ddr5-8000b")
        .constant("nbo", 512)
        .constant("window_ms", 4.0)     //!< total attack duration
        // Attacker knob sub-keys (0 = derive from spec/defense), so
        // `--set attack=para-retry --set attacker.aggressors=4`
        // reproduces any point of a search by hand.
        .constant("attacker.aggressors", 0)
        .constant("attacker.pool_size", 0)
        .constant("attacker.burst_spacing", 0)
        .constant("attacker.phase", 0);

    scenario.runPoint = [](const ParamSet &params) {
        const std::string defense = params.getString("mitigation");
        const std::string attack = params.getString("attack");
        const auto nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));

        // Scaled universe (2 ms tREFW) so the complete worst-case
        // attack finishes in a bench budget (see ablation_queues).
        DramSpec spec = specByName(params.getString("spec"));
        spec.prac.nbo = nbo;
        spec.timing.tREFW = nsToCycles(2.0e6);

        ControllerConfig config;
        configureDefense(config, defense, spec);

        AttackHarness harness(spec, config);
        const Cycle end =
            nsToCycles(params.getDouble("window_ms") * 1.0e6);

        // Registry construction: a default AttackerConfig reproduces
        // the historical hand-built agents stream-for-stream
        // ("feinting" derives its TB-RFM-safe decoy pool, "hammer"
        // alternates the row-5000 target with the 6000/6001 decoys
        // and restarts each NBO+ABOACT+4 burst).  The axis also
        // accepts any other registered attacker via --set attack=.
        AttackerConfig attacker_config;
        attacker_config.aggressors = static_cast<std::uint32_t>(
            params.getInt("attacker.aggressors"));
        attacker_config.poolSize = static_cast<std::uint32_t>(
            params.getInt("attacker.pool_size"));
        attacker_config.burstSpacing = static_cast<std::uint32_t>(
            params.getInt("attacker.burst_spacing"));
        attacker_config.phase = static_cast<std::uint32_t>(
            params.getInt("attacker.phase"));
        const std::unique_ptr<AttackerAgent> attacker =
            attackerByName(attack, attacker_config, harness.mem());
        harness.add(attacker.get());
        harness.run(end);

        const MemoryController &mem = harness.mem();
        const std::uint32_t max_counter =
            mem.prac().counters().maxEverSeen();
        // ABO's contract allows the counter to touch NBO plus the
        // ABOACT allowance before the RFM lands.
        const std::uint32_t contract = nbo + spec.prac.aboAct;

        ResultRow row = JsonValue::object();
        row.set("max_counter", max_counter);
        row.set("contract", contract);
        row.set("secure", max_counter <= contract);
        row.set("alerts", mem.prac().alerts());
        row.set("mitigated_rows", mem.prac().mitigatedRows());
        row.set("abo_rfms", mem.rfmCount(RfmReason::Abo));
        row.set("acb_rfms", mem.rfmCount(RfmReason::Acb));
        row.set("tb_rfms", mem.rfmCount(RfmReason::TimingBased));
        row.set("graphene_rfms", mem.rfmCount(RfmReason::Graphene));
        row.set("pb_rfms", mem.rfmCount(RfmReason::PerBank));
        row.set("mitigation_events", mem.mitigationEvents());
        row.set("acts",
                mem.dram().issueCount(CmdType::ACT));
        if (defense == "para") {
            // Per-row escape probability between counter resets.
            const double p = mem.config().para.refreshProb;
            double escape = 1.0;
            for (std::uint32_t i = 0; i < nbo; ++i)
                escape *= 1.0 - p;
            row.set("escape_prob", escape);
        }
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        // Verdict per defense: worst case over the attack axis.
        std::vector<std::string> order;
        std::map<std::string, std::pair<std::int64_t, bool>> verdicts;
        for (const ResultRow &row : rows) {
            const std::string defense =
                row.get("mitigation")->asString();
            if (verdicts.find(defense) == verdicts.end()) {
                order.push_back(defense);
                verdicts[defense] = {0, true};
            }
            auto &[max_counter, secure] = verdicts[defense];
            max_counter = std::max(max_counter,
                                   row.get("max_counter")->asInt());
            secure = secure && row.get("secure")->asBool();
        }
        std::vector<ResultRow> out;
        for (const std::string &defense : order) {
            ResultRow summary = JsonValue::object();
            summary.set("mitigation", defense);
            summary.set("max_counter", verdicts[defense].first);
            summary.set("secure", verdicts[defense].second);
            out.push_back(std::move(summary));
        }
        return out;
    };
    return scenario;
}

// --- defense_matrix_adaptive ---------------------------------------

Scenario
defenseMatrixAdaptive()
{
    Scenario scenario;
    scenario.name = "defense_matrix_adaptive";
    scenario.checkpointEvery = 1;
    scenario.tags = {"defense", "security", "search"};
    scenario.title = "Best-known-attack table: searched per-defense "
                     "adversary vs the oblivious stressor (scaled "
                     "2 ms tREFW)";
    scenario.notes = "each row runs a successive-halving attacker "
                     "search (sim/search.h) against one defense; "
                     "searched_max >= oblivious_max by construction "
                     "because the oblivious baseline is candidate 0 "
                     "and is never eliminated.  attacker='auto' "
                     "resolves the defense-matched adversary; "
                     "non-zero attacker.* constants pin that knob "
                     "instead of sampling it";
    scenario.grid
        .axis("mitigation", toValues({"graphene", "para", "pb-rfm"}))
        .constant("spec", "ddr5-8000b")
        .constant("nbo", 512)
        .constant("window_ms", 4.0)
        .constant("attacker", "auto")
        .constant("budget", 6)
        .constant("rounds", 2)
        .constant("seed", 0x5EA2C4)
        .constant("attacker.aggressors", 0)
        .constant("attacker.pool_size", 0)
        .constant("attacker.burst_spacing", 0)
        .constant("attacker.phase", 0);

    scenario.runPoint = [](const ParamSet &params) {
        SearchOptions options;
        options.targetDefense = params.getString("mitigation");
        const std::string attacker = params.getString("attacker");
        options.attacker = attacker == "auto" ? "" : attacker;
        options.budget =
            static_cast<std::uint32_t>(params.getInt("budget"));
        options.rounds =
            static_cast<std::uint32_t>(params.getInt("rounds"));
        options.seed =
            static_cast<std::uint64_t>(params.getInt("seed"));
        options.specName = params.getString("spec");
        options.nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        options.windowMs = params.getDouble("window_ms");
        options.base.aggressors = static_cast<std::uint32_t>(
            params.getInt("attacker.aggressors"));
        options.base.poolSize = static_cast<std::uint32_t>(
            params.getInt("attacker.pool_size"));
        options.base.burstSpacing = static_cast<std::uint32_t>(
            params.getInt("attacker.burst_spacing"));
        options.base.phase = static_cast<std::uint32_t>(
            params.getInt("attacker.phase"));
        // Inline, serial, unjournalled: the outer sweep runner owns
        // checkpointing and parallelism for this scenario.
        options.jobs = 1;

        const SearchResult result = runAttackerSearch(options);

        ResultRow row = JsonValue::object();
        row.set("searched_attacker", result.best.config.attacker);
        row.set("searched_max", static_cast<std::int64_t>(
                                    result.best.maxCounter));
        row.set("searched_secure", result.best.secure);
        row.set("oblivious_max", static_cast<std::int64_t>(
                                     result.oblivious.maxCounter));
        row.set("oblivious_secure", result.oblivious.secure);
        row.set("contract",
                static_cast<std::int64_t>(result.contract));
        row.set("advantage",
                static_cast<std::int64_t>(result.best.maxCounter) -
                    static_cast<std::int64_t>(
                        result.oblivious.maxCounter));
        row.set("best_aggressors", static_cast<std::int64_t>(
                                       result.best.config.aggressors));
        row.set("best_pool_size", static_cast<std::int64_t>(
                                      result.best.config.poolSize));
        row.set("best_burst_spacing",
                static_cast<std::int64_t>(
                    result.best.config.burstSpacing));
        row.set("best_phase", static_cast<std::int64_t>(
                                  result.best.config.phase));
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        // The best-known-attack table: one verdict per defense.
        std::vector<ResultRow> out;
        for (const ResultRow &row : rows) {
            ResultRow summary = JsonValue::object();
            summary.set("mitigation",
                        row.get("mitigation")->asString());
            summary.set("searched_attacker",
                        row.get("searched_attacker")->asString());
            summary.set("oblivious_max",
                        row.get("oblivious_max")->asInt());
            summary.set("searched_max",
                        row.get("searched_max")->asInt());
            summary.set("advantage", row.get("advantage")->asInt());
            summary.set("secure_vs_searched",
                        row.get("searched_secure")->asBool());
            out.push_back(std::move(summary));
        }
        return out;
    };
    return scenario;
}

} // namespace

void
registerDefenseScenarios(ScenarioRegistry &registry)
{
    registry.add(defenseMatrixAdaptive());
    registry.add(defenseMatrixLeakage());
    registry.add(defenseMatrixPerf());
    registry.add(defenseMatrixSecurity());
    registry.add(leakageTimeline());
}

} // namespace pracleak::sim
