/**
 * @file
 * Small helpers shared by the scenario translation units.
 */

#ifndef PRACLEAK_SIM_SCENARIO_UTIL_H
#define PRACLEAK_SIM_SCENARIO_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/json.h"

namespace pracleak::sim {

/** Lift a list of names into grid-axis values. */
inline std::vector<JsonValue>
toValues(const std::vector<std::string> &names)
{
    std::vector<JsonValue> values;
    values.reserve(names.size());
    for (const auto &name : names)
        values.push_back(JsonValue(name));
    return values;
}

/** Deterministic random bit message for covert-channel payloads. */
inline std::vector<bool>
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<bool> bits(n);
    for (std::size_t i = 0; i < n; ++i)
        bits[i] = rng.chance(0.5);
    return bits;
}

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_SCENARIO_UTIL_H
