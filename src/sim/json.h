/**
 * @file
 * Minimal ordered JSON value tree used by the scenario runner for
 * machine-readable results (and, via scalar values, for parameter
 * grids).  Deliberately dependency-free: the container image bakes in
 * no JSON library, and the subset needed here -- build a tree, dump
 * it -- is small.
 *
 * Objects preserve insertion order so emitted files diff cleanly and
 * CSV flattening sees a stable column order.
 */

#ifndef PRACLEAK_SIM_JSON_H
#define PRACLEAK_SIM_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pracleak::sim {

/** One JSON value (scalar, array, or insertion-ordered object). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(bool value) : kind_(Kind::Bool), bool_(value) {}
    JsonValue(int value) : kind_(Kind::Int), int_(value) {}
    JsonValue(unsigned value) : kind_(Kind::Int), int_(value) {}
    JsonValue(std::int64_t value) : kind_(Kind::Int), int_(value) {}
    JsonValue(std::uint64_t value)
        : kind_(Kind::Int), int_(static_cast<std::int64_t>(value))
    {
    }
    JsonValue(double value) : kind_(Kind::Double), double_(value) {}
    JsonValue(std::string value)
        : kind_(Kind::String), string_(std::move(value))
    {
    }
    JsonValue(const char *value) : kind_(Kind::String), string_(value) {}

    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    /** Coercive scalar accessors (numbers interconvert). */
    bool asBool() const;
    std::int64_t asInt() const;
    double asDouble() const;
    /** String content, or a rendered scalar for non-strings. */
    std::string asString() const;

    /** Array: append an element (kind must be Array or Null). */
    JsonValue &push(JsonValue element);
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object: set/overwrite a key, preserving first-seen order. */
    JsonValue &set(const std::string &key, JsonValue value);
    /** Object: lookup, nullptr when missing. */
    const JsonValue *get(const std::string &key) const;
    bool has(const std::string &key) const { return get(key) != nullptr; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Serialize; indent == 0 gives a compact single line. */
    std::string dump(int indent = 0) const;

    /**
     * Compact dump whose doubles round-trip exactly (%.17g instead
     * of the display-friendly %.10g): strtod of the emitted text
     * recovers the bit-identical value.  The checkpoint journal uses
     * this so resumed rows are indistinguishable from freshly
     * computed ones.  (NaN still emits null -- it has no literal.)
     */
    std::string dumpRoundTrip() const;

    /** Equality over scalars (used by axis-override matching). */
    bool scalarEquals(const JsonValue &other) const;

  private:
    void dumpTo(std::string &out, int indent, int depth,
                bool exactDoubles = false) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Escape a string for inclusion in JSON output (without quotes). */
std::string jsonEscape(const std::string &raw);

/**
 * Parse a scalar literal from CLI text: "true"/"false", integers,
 * doubles, else a plain string.
 */
JsonValue parseScalar(const std::string &text);

/**
 * Parse a complete JSON document (the checkpoint journal reads its
 * own records back with this).  Strict: one value, optionally
 * surrounded by whitespace; trailing bytes are an error.  On failure
 * returns Null and sets @p error to a message with a byte offset;
 * on success clears @p error.  (A document consisting of the literal
 * `null` also returns Null -- callers that must distinguish check
 * @p error.)
 */
JsonValue parseJson(std::string_view text, std::string *error = nullptr);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_JSON_H
