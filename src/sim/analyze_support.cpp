#include "sim/analyze_support.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/json.h"
#include "sim/runner.h"

namespace pracleak::sim {

namespace {

std::uint64_t
fieldU64(const JsonValue &row, const char *key)
{
    const JsonValue *value = row.get(key);
    return value ? static_cast<std::uint64_t>(value->asInt()) : 0;
}

bool
parseHeader(const JsonValue &line, SeriesSim &sim)
{
    if (const JsonValue *label = line.get("label"))
        sim.label = label->asString();
    if (const JsonValue *mitigation = line.get("mitigation"))
        sim.mitigation = mitigation->asString();
    sim.windowCycles = fieldU64(line, "window_cycles");
    sim.channels = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(fieldU64(line, "channels"), 1));
    if (const JsonValue *bank = line.get("victim_bank"))
        sim.victimBank = bank->asInt();
    if (const JsonValue *ranges = line.get("on_windows"))
        for (const JsonValue &range : ranges->items())
            if (range.items().size() == 2)
                sim.onWindows.emplace_back(
                    static_cast<Cycle>(range.items()[0].asInt()),
                    static_cast<Cycle>(range.items()[1].asInt()));
    return sim.windowCycles > 0;
}

SeriesSim::Window
parseWindow(const JsonValue &line)
{
    SeriesSim::Window window;
    window.channel =
        static_cast<std::uint32_t>(fieldU64(line, "ch"));
    window.index = fieldU64(line, "w");
    window.act = fieldU64(line, "act");
    window.ref = fieldU64(line, "ref");
    window.rfmAb = fieldU64(line, "rfm_ab");
    window.rfmPb = fieldU64(line, "rfm_pb");
    window.abo = fieldU64(line, "abo");
    window.blocked = fieldU64(line, "blocked");
    if (const JsonValue *banks = line.get("rfm_pb_banks"))
        for (const auto &[bank, count] : banks->members())
            window.rfmPbBanks[static_cast<std::uint32_t>(
                std::stoul(bank))] =
                static_cast<std::uint64_t>(count.asInt());
    return window;
}

/** Strongest-leak ordering for per-defense aggregation. */
int
verdictRank(const LeakVerdict &verdict)
{
    if (verdict.leakChannel)
        return 2;
    if (verdict.leakSameBank)
        return 1;
    return 0;
}

} // namespace

std::string
LeakVerdict::observableTo() const
{
    if (leakChannel)
        return "any probe";
    if (leakSameBank)
        return "same-bank probe";
    return "none";
}

std::vector<SeriesSim>
loadSeriesFile(const std::string &path, std::string *error)
{
    if (error)
        error->clear();
    std::vector<SeriesSim> sims;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return sims;
    }

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::string parse_error;
        const JsonValue value = parseJson(line, &parse_error);
        if (!parse_error.empty()) {
            if (error)
                *error = path + ":" + std::to_string(line_no) + ": " +
                         parse_error;
            return sims;
        }
        const JsonValue *kind = value.get("kind");
        const std::string kind_name = kind ? kind->asString() : "";
        if (kind_name == "header") {
            SeriesSim sim;
            if (!parseHeader(value, sim)) {
                if (error)
                    *error = path + ":" + std::to_string(line_no) +
                             ": header without window_cycles";
                return sims;
            }
            sims.push_back(std::move(sim));
        } else if (kind_name == "window") {
            if (sims.empty()) {
                if (error)
                    *error = path + ":" + std::to_string(line_no) +
                             ": window line before any header";
                return sims;
            }
            sims.back().windows.push_back(parseWindow(value));
        } else if (kind_name == "summary") {
            // Summaries are for humans and spot checks; the analyzer
            // recomputes everything from the window lines.
        } else {
            if (error)
                *error = path + ":" + std::to_string(line_no) +
                         ": unknown record kind '" + kind_name + "'";
            return sims;
        }
    }
    return sims;
}

LeakVerdict
analyzeSeries(const SeriesSim &sim)
{
    LeakVerdict verdict;
    verdict.label = sim.label;
    verdict.mitigation = sim.mitigation;
    verdict.windows = sim.windows.size();

    // ON/OFF classification per window index.  Ground truth from the
    // header when the experiment recorded its burst schedule; ACT
    // activity otherwise (the hammering victim dominates the ACT
    // budget, probes mostly ride row hits).
    std::map<std::uint64_t, std::uint64_t> actByIndex;
    for (const SeriesSim::Window &window : sim.windows)
        actByIndex[window.index] += window.act;
    std::uint64_t peak_act = 0;
    for (const auto &[index, act] : actByIndex)
        peak_act = std::max(peak_act, act);

    const auto is_on = [&](std::uint64_t index) {
        if (!sim.onWindows.empty()) {
            const Cycle mid =
                index * sim.windowCycles + sim.windowCycles / 2;
            for (const auto &[begin, end] : sim.onWindows)
                if (mid >= begin && mid < end)
                    return true;
            return false;
        }
        const auto it = actByIndex.find(index);
        return peak_act > 0 && it != actByIndex.end() &&
               it->second * 2 > peak_act;
    };

    // Channel-wide and per-bank signal split by phase.  The victim
    // bank comes from the header; without it, any bank whose RFMpb
    // stream correlates with the ON phases counts as a same-bank
    // leak (an attacker probing every bank in turn).
    std::map<std::uint32_t, OnOffCounts> perBank;
    for (const SeriesSim::Window &window : sim.windows) {
        const bool on = is_on(window.index);
        (on ? verdict.channel.on : verdict.channel.off) +=
            window.rfmAb;
        for (const auto &[bank, count] : window.rfmPbBanks) {
            if (sim.victimBank >= 0 &&
                bank != static_cast<std::uint32_t>(sim.victimBank))
                continue;
            OnOffCounts &counts = perBank[bank];
            (on ? counts.on : counts.off) += count;
        }
    }
    verdict.leakChannel = correlatedCounts(verdict.channel);
    for (const auto &[bank, counts] : perBank) {
        if (!correlatedCounts(counts))
            continue;
        verdict.leakSameBank = true;
        if (counts.on > verdict.sameBank.on)
            verdict.sameBank = counts;
    }
    if (!verdict.leakSameBank && !perBank.empty())
        verdict.sameBank = perBank.begin()->second;

    // Burst detection: maximal runs of RFM-active windows per
    // channel (a gap of one empty window ends a run -- empty windows
    // are implicit in the sparse series, so a jump in index is the
    // gap).
    std::map<std::uint32_t, std::uint64_t> lastIndex;
    for (const SeriesSim::Window &window : sim.windows) {
        if (window.rfmAb + window.rfmPb == 0)
            continue;
        const auto it = lastIndex.find(window.channel);
        if (it == lastIndex.end() || window.index > it->second + 1)
            ++verdict.bursts;
        lastIndex[window.channel] = window.index;
    }
    return verdict;
}

namespace {

JsonValue
verdictRow(const LeakVerdict &verdict)
{
    JsonValue row = JsonValue::object();
    row.set("label", verdict.label);
    row.set("mitigation", verdict.mitigation);
    row.set("windows", verdict.windows);
    row.set("bursts", verdict.bursts);
    row.set("ch_on", verdict.channel.on);
    row.set("ch_off", verdict.channel.off);
    row.set("bank_on", verdict.sameBank.on);
    row.set("bank_off", verdict.sameBank.off);
    row.set("leaked", verdict.leaked());
    row.set("observable_to", verdict.observableTo());
    return row;
}

/**
 * Per-defense aggregation for --defense-matrix: worst case over the
 * defense's simulations, rows in first-seen order -- the same shape
 * as defense_matrix_leakage's summary, so the two artifacts diff
 * directly.
 */
std::vector<JsonValue>
defenseSummary(const std::vector<LeakVerdict> &verdicts)
{
    std::vector<std::string> order;
    std::map<std::string, const LeakVerdict *> strongest;
    for (const LeakVerdict &verdict : verdicts) {
        const auto it = strongest.find(verdict.mitigation);
        if (it == strongest.end()) {
            order.push_back(verdict.mitigation);
            strongest[verdict.mitigation] = &verdict;
        } else if (verdictRank(verdict) > verdictRank(*it->second)) {
            it->second = &verdict;
        }
    }
    std::vector<JsonValue> rows;
    for (const std::string &mitigation : order) {
        const LeakVerdict &verdict = *strongest[mitigation];
        JsonValue row = JsonValue::object();
        row.set("mitigation", mitigation);
        row.set("leaked", verdict.leaked());
        row.set("observable_to", verdict.observableTo());
        rows.push_back(std::move(row));
    }
    return rows;
}

void
printJsonRows(const char *heading, const std::vector<JsonValue> &rows)
{
    std::printf("\n--- %s ---\n", heading);
    for (const JsonValue &row : rows) {
        std::string line;
        for (const auto &[key, value] : row.members()) {
            if (!line.empty())
                line += "  ";
            line += key + "=" + value.asString();
        }
        std::printf("%s\n", line.c_str());
    }
}

} // namespace

int
runAnalyzeCommand(const AnalyzeCliOptions &options)
{
    std::vector<LeakVerdict> verdicts;
    for (const std::string &path : options.paths) {
        std::string error;
        const std::vector<SeriesSim> sims =
            loadSeriesFile(path, &error);
        if (!error.empty()) {
            std::fprintf(stderr, "pracbench analyze: %s\n",
                         error.c_str());
            return 1;
        }
        if (sims.empty()) {
            std::fprintf(stderr,
                         "pracbench analyze: %s holds no series "
                         "records\n",
                         path.c_str());
            return 1;
        }
        for (const SeriesSim &sim : sims)
            verdicts.push_back(analyzeSeries(sim));
    }

    std::vector<JsonValue> rows;
    rows.reserve(verdicts.size());
    for (const LeakVerdict &verdict : verdicts)
        rows.push_back(verdictRow(verdict));
    std::vector<JsonValue> summary;
    if (options.defenseMatrix)
        summary = defenseSummary(verdicts);

    if (options.table) {
        printJsonRows("series verdicts", rows);
        if (options.defenseMatrix)
            printJsonRows("defense matrix", summary);
    }

    if (!options.outJson.empty()) {
        JsonValue root = JsonValue::object();
        root.set("generator", "pracbench analyze");
        JsonValue files = JsonValue::array();
        for (const std::string &path : options.paths)
            files.push(path);
        root.set("files", std::move(files));
        JsonValue rowArray = JsonValue::array();
        for (JsonValue &row : rows)
            rowArray.push(std::move(row));
        root.set("rows", std::move(rowArray));
        JsonValue summaryArray = JsonValue::array();
        for (JsonValue &row : summary)
            summaryArray.push(std::move(row));
        root.set("summary", std::move(summaryArray));
        if (!writeFileAtomic(options.outJson, root.dump(2) + "\n"))
            return 1;
    }
    return 0;
}

} // namespace pracleak::sim
