/**
 * @file
 * Parallel sweep runner: enumerate a scenario's parameter grid, fan
 * the points across a thread pool, collect per-point result rows,
 * and emit machine-readable JSON / CSV plus an aligned text table.
 */

#ifndef PRACLEAK_SIM_RUNNER_H
#define PRACLEAK_SIM_RUNNER_H

#include <map>
#include <string>
#include <vector>

#include "sim/scenario.h"
#include "sim/thread_pool.h"

namespace pracleak::sim {

/** Knobs for one sweep invocation. */
struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;

    /** Axis overrides: name -> replacement values (CLI --set). */
    std::map<std::string, std::vector<JsonValue>> overrides;

    /**
     * Like overrides, but silently skipped when the scenario has no
     * such axis (CLI --try-set) -- lets one flag set apply across a
     * fleet of scenarios with different grids.
     */
    std::map<std::string, std::vector<JsonValue>> softOverrides;

    /** Print one line per completed point. */
    bool progress = true;

    /**
     * Truncate every axis to its first value after overrides (the
     * `--smoke` CLI flag): a one-point sweep that exercises the
     * scenario end-to-end as cheaply as possible.
     */
    bool firstPointOnly = false;

    /**
     * Journal each completed point to this append-only JSONL file
     * (sim/checkpoint.h) as workers finish; "" disables.  Without
     * `resume` an existing journal is overwritten.
     */
    std::string checkpointPath;

    /**
     * Load an existing journal at checkpointPath, skip its completed
     * points, and merge their rows back in -- the final result is
     * byte-identical (modulo wall_seconds and the provenance
     * timestamp) to an uninterrupted run.  Throws std::runtime_error
     * when the journal belongs to a different sweep (scenario, grid
     * hash, git revision).  A missing journal is a fresh start.
     */
    bool resume = false;
};

/** Everything a sweep produced. */
struct SweepResult
{
    std::string scenario;
    std::string title;
    std::string notes;
    JsonValue grid;                  //!< effective axes after overrides
    std::vector<ResultRow> rows;     //!< point params merged in
    std::vector<ResultRow> summary;
    unsigned jobs = 0;
    std::size_t points = 0;
    double wallSeconds = 0.0;

    JsonValue toJson() const;
    std::string toCsv() const;       //!< rows only (summary excluded)
};

/**
 * Run @p scenario under @p options.  Throws std::invalid_argument
 * for bad axis overrides; exceptions from scenario points propagate.
 */
SweepResult runScenario(const Scenario &scenario,
                        const SweepOptions &options = {});

/** runScenario by registry name; throws when the name is unknown. */
SweepResult runScenarioByName(const std::string &name,
                              const SweepOptions &options = {});

/** Print rows (and summary, when present) as aligned text tables. */
void printTables(const SweepResult &result);

/**
 * Convenience for the thin bench binaries: register built-ins, run
 * one scenario with default options, print its tables and notes.
 */
void runAndPrint(const std::string &name);

/**
 * Write @p contents to @p path, creating parent directories.
 * Returns false (and prints to stderr) on I/O failure.
 */
bool writeFile(const std::string &path, const std::string &contents);

/**
 * writeFile via a same-directory temporary plus atomic rename: a
 * crash mid-emission leaves either the previous artifact or the new
 * one, never a torn file -- required for anything a later --resume
 * (or a results consumer) will trust.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &contents);

/** Render rows as CSV (union of keys, first-seen column order). */
std::string rowsToCsv(const std::vector<ResultRow> &rows);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_RUNNER_H
