/**
 * @file
 * Parallel sweep runner: enumerate a scenario's parameter grid, fan
 * the points across a thread pool, collect per-point result rows,
 * and emit machine-readable JSON / CSV plus an aligned text table.
 *
 * A sweep can run on one host, as one deterministic shard of an
 * N-host fleet (RunOptions::shard), or as a work-stealing worker
 * over a shared checkpoint directory (RunOptions::steal); the
 * journals any of those modes leave behind fuse back into one
 * byte-identical result via mergeSweepFromJournals().
 */

#ifndef PRACLEAK_SIM_RUNNER_H
#define PRACLEAK_SIM_RUNNER_H

#include <map>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/scenario.h"
#include "sim/thread_pool.h"

namespace pracleak::sim {

/**
 * Every knob for one sweep invocation, with defaults that mean "run
 * the whole grid on this host and print progress".  New execution
 * modes add a nested group here instead of a new runScenario
 * parameter, so callers and tests stop rippling per feature.
 */
struct RunOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned jobs = 0;

    /** Axis overrides: name -> replacement values (CLI --set). */
    std::map<std::string, std::vector<JsonValue>> overrides;

    /**
     * Like overrides, but silently skipped when the scenario has no
     * such axis (CLI --try-set) -- lets one flag set apply across a
     * fleet of scenarios with different grids.
     */
    std::map<std::string, std::vector<JsonValue>> softOverrides;

    /** Print one line per completed point. */
    bool progress = true;

    /**
     * Truncate every axis to its first value after overrides (the
     * `--smoke` CLI flag): a one-point sweep that exercises the
     * scenario end-to-end as cheaply as possible.
     */
    bool firstPointOnly = false;

    /** Restart-safety: journal completed points under a directory. */
    struct Checkpoint
    {
        /**
         * Journal each completed point to an append-only JSONL file
         * (sim/checkpoint.h) under this directory as workers finish;
         * "" disables.  The file name encodes the execution mode:
         * `<scenario>.jsonl` for a whole-grid run,
         * `<scenario>.shard-I-of-N.jsonl` for a shard, and
         * `<scenario>.worker-<id>.jsonl` for a work-stealing worker.
         */
        std::string directory;

        /**
         * Load the existing journal, skip its completed points, and
         * merge their rows back in -- the final result is
         * byte-identical (modulo wall_seconds and the provenance
         * timestamp) to an uninterrupted run.  Without it an
         * existing journal is overwritten.  Throws
         * std::runtime_error when the journal belongs to a different
         * sweep (scenario, grid hash, git revision, shard spec).  A
         * missing journal is a fresh start.
         */
        bool resume = false;
    };
    Checkpoint checkpoint;

    /**
     * Static fleet partition: run only the grid points this shard
     * owns (round-robin by index; see shardOwns()).  Requires
     * checkpoint.directory -- a shard's whole purpose is the journal
     * it leaves for `pracbench merge`.  Mutually exclusive with
     * steal.
     */
    ShardSpec shard;

    /** Observability knobs; all off/default means zero overhead. */
    struct Telemetry
    {
        /**
         * Write a Chrome trace-event JSON (Perfetto-loadable) of the
         * sweep here: one lane per pool worker, a span per grid
         * point with nested sim / journal-flush phases, instants for
         * checkpoint writes, claims, steals, and done markers.  ""
         * disables (no timing calls, no allocation).  Tracing
         * observes the harness only -- sweep output is byte-identical
         * with it on or off.
         */
        std::string traceOut;

        /**
         * Write the windowed command-bus time series of every
         * simulation the sweep runs here (telemetry/timeseries.h):
         * one header / window-lines / summary block per grid-point
         * simulation, JSONL unless the path ends in ".csv".  ""
         * disables -- the controller hot path then pays exactly one
         * null-pointer test.  The series observes the bus only;
         * sweep JSON/CSV output is byte-identical with it on or off.
         */
        std::string seriesOut;

        /**
         * Heartbeat-file write interval for work-stealing workers
         * (telemetry/heartbeat.h); heartbeats are always on in steal
         * mode since `pracbench status` depends on them.
         */
        double heartbeatSeconds = 5.0;
    };
    Telemetry telemetry;

    /** Dynamic fleet partition: work stealing over a shared dir. */
    struct Steal
    {
        /**
         * Claim points via O_EXCL claim files in
         * checkpoint.directory instead of a static shard: any number
         * of workers share one directory, stragglers don't gate the
         * fleet, and a crashed worker's claims expire (claimTtl) and
         * get re-run.  Requires checkpoint.directory and a workerId;
         * the worker's own journal is always resumed, so
         * checkpoint.resume must stay false.  Every point is flushed
         * individually (done markers promise durability to other
         * workers), overriding Scenario::checkpointEvery.
         */
        bool enabled = false;

        /** Filename-safe unique id (alphanumerics, '-', '_', '.'). */
        std::string workerId;

        /** A claim older than this is presumed dead and stolen. */
        double claimTtlSeconds = 300.0;

        /** Idle backoff between scans when nothing was claimable. */
        double pollSeconds = 0.05;
    };
    Steal steal;
};

/** Deprecated name for RunOptions; new code should spell it out. */
using SweepOptions = RunOptions;

/** Everything a sweep produced. */
struct SweepResult
{
    std::string scenario;
    std::string title;
    std::string notes;
    JsonValue grid;                  //!< effective axes after overrides
    std::vector<ResultRow> rows;     //!< point params merged in
    std::vector<ResultRow> summary;
    unsigned jobs = 0;
    std::size_t points = 0;          //!< full grid size, even sharded
    double wallSeconds = 0.0;

    JsonValue toJson() const;
    std::string toCsv() const;       //!< rows only (summary excluded)
};

/**
 * Run @p scenario under @p options.  Throws std::invalid_argument
 * for bad axis overrides or an inconsistent option set (shard and
 * steal together, shard/steal without a checkpoint directory, shard
 * index out of range, steal without a worker id); exceptions from
 * scenario points propagate.
 */
SweepResult runScenario(const Scenario &scenario,
                        const RunOptions &options = {});

/** runScenario by registry name; throws when the name is unknown. */
SweepResult runScenarioByName(const std::string &name,
                              const RunOptions &options = {});

/**
 * Build a SweepResult from journals fused by mergeJournals(): rows
 * in grid-index order, summary recomputed by the scenario's own
 * summarize hook, grid taken from the (hash-verified) journal
 * header.  @p jobs is stamped into the result verbatim so the JSON
 * can be byte-compared against a single-host run's.  wallSeconds is
 * left 0 -- merge does no sweeping.  Throws std::invalid_argument
 * when @p merged belongs to a different scenario.
 */
SweepResult assembleMergedResult(const Scenario &scenario,
                                 const MergedJournals &merged,
                                 unsigned jobs);

/**
 * mergeJournals() + registry lookup + assembleMergedResult(): fuse
 * shard/worker journals into the result the equivalent single-host
 * sweep would have produced (byte-identical modulo wall_seconds and
 * the provenance timestamp).  Throws std::runtime_error when the
 * journals are inconsistent (see mergeJournals) or name a scenario
 * this build does not register.
 */
SweepResult
mergeSweepFromJournals(const std::vector<std::string> &paths,
                       unsigned jobs);

/** Print rows (and summary, when present) as aligned text tables. */
void printTables(const SweepResult &result);

/**
 * Convenience for the thin bench binaries: register built-ins, run
 * one scenario with default options, print its tables and notes.
 */
void runAndPrint(const std::string &name);

/**
 * Write @p contents to @p path, creating parent directories.
 * Returns false (and prints to stderr) on I/O failure.
 */
bool writeFile(const std::string &path, const std::string &contents);

/**
 * writeFile via a same-directory temporary plus atomic rename: a
 * crash mid-emission leaves either the previous artifact or the new
 * one, never a torn file -- required for anything a later --resume
 * (or a results consumer) will trust.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &contents);

/** Render rows as CSV (union of keys, first-seen column order). */
std::string rowsToCsv(const std::vector<ResultRow> &rows);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_RUNNER_H
