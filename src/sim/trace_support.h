/**
 * @file
 * Bridge between the scenario/CLI layer and the trace subsystem
 * (src/trace/): record a suite workload once, replay it under any
 * registered defense, and flatten replay stats into result rows.
 * Shared by `pracbench --record-trace` / `--replay` and the
 * trace_replay_defense_sweep scenario.
 */

#ifndef PRACLEAK_SIM_TRACE_SUPPORT_H
#define PRACLEAK_SIM_TRACE_SUPPORT_H

#include <map>
#include <string>
#include <vector>

#include "sim/design.h"
#include "sim/scenario.h"
#include "trace/replay.h"
#include "trace/trace.h"

namespace pracleak::sim {

/** A recorded run: the trace plus the originating full simulation. */
struct RecordedRun
{
    trace::TraceData trace;
    RunResult run;
};

/**
 * Run @p entry under @p design with trace taps armed on every
 * channel; the returned trace replays against any defense.
 */
RecordedRun recordSuiteRun(const SuiteEntry &entry,
                           const DesignConfig &design,
                           const RunBudget &budget,
                           std::uint32_t cores = 4);

/** Flatten one replay outcome into a result row. */
ResultRow replayRow(const trace::ReplayResult &result);

/** Flatten recorded per-channel stats (summed) into row fields. */
ResultRow recordedStatsRow(const trace::TraceData &trace);

// --- pracbench subcommands -----------------------------------------

/** `pracbench --record-trace` settings. */
struct RecordCliOptions
{
    std::string dir;                    //!< output directory
    std::vector<std::string> workloads; //!< empty = whole suite

    /** Single-value settings from --set (mitigation, spec, nbo,
     *  warmup, measure, channels, cores); unknown keys error. */
    std::map<std::string, std::vector<JsonValue>> settings;

    bool progress = true;

    /** Chrome trace-event JSON of the recording; "" disables. */
    std::string traceOut;

    /** Windowed bus time series of the recording runs, one record
     *  per workload (telemetry/timeseries.h); "" disables. */
    std::string seriesOut;
};

/** Record traces per workload into dir/<workload>.trc; 0 on success. */
int runRecordTraceCommand(const RecordCliOptions &options);

/** `pracbench --replay` settings. */
struct ReplayCliOptions
{
    std::string tracePath;

    /** Defenses to replay under (--set mitigation=a,b); empty = the
     *  recorded defense. */
    std::vector<std::string> mitigations;

    /**
     * Exit non-zero unless every replay under the recorded defense
     * reproduces the recorded stats bit-identically (CI gate).
     */
    bool verify = false;

    std::string outJson;                //!< optional JSON destination
    bool table = true;
    bool progress = true;

    /** Chrome trace-event JSON of the replays; "" disables. */
    std::string traceOut;

    /** Windowed bus time series of the replays, one record per
     *  defense (telemetry/timeseries.h); "" disables. */
    std::string seriesOut;
};

/** Replay a trace across defenses; 0 on success. */
int runReplayCommand(const ReplayCliOptions &options);

} // namespace pracleak::sim

#endif // PRACLEAK_SIM_TRACE_SUPPORT_H
