/**
 * @file
 * Ablation scenarios: random-RFM obfuscation vs TPRAC (Section 7.1),
 * mitigation-queue designs under the Feinting attack (Sections 2.3
 * and 4.2.3), and per-bank TB-RFMs (TPRAC-PB, Section 7.2).
 */

#include "sim/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "attack/agents.h"
#include "attack/covert.h"
#include "attack/harness.h"
#include "common/rng.h"
#include "mem/controller.h"
#include "sim/design.h"
#include "sim/scenario_util.h"
#include "tprac/tb_rfm.h"

namespace pracleak::sim {

namespace {

// --- Obfuscation ablation ------------------------------------------

struct Defense
{
    MitigationMode mode;
    double p; //!< random-RFM injection probability per tREFI
};

Defense
parseDefense(const std::string &label)
{
    if (label == "none")
        return {MitigationMode::AboOnly, 0.0};
    if (label == "tprac")
        return {MitigationMode::Tprac, 0.0};
    const std::string prefix = "random-";
    if (label.rfind(prefix, 0) == 0)
        return {MitigationMode::Obfuscation,
                std::strtod(label.c_str() + prefix.size(), nullptr)};
    throw std::invalid_argument("unknown defense '" + label + "'");
}

double
channelAccuracy(const Defense &defense,
                const std::vector<bool> &message)
{
    CovertParams params;
    params.nbo = 256;
    params.mode = defense.mode;
    params.randomRfmPerTrefi = defense.p;
    const CovertResult result = runActivityCovert(params, message);
    return 1.0 - result.errorRate();
}

double
perfOverhead(const Defense &defense)
{
    RunBudget budget;
    budget.measure = 100'000;
    const SuiteEntry &entry =
        findSuiteEntry(suiteEntryNames(MemIntensity::High).front());

    DesignConfig design;
    design.label = "obfuscation-ablation";
    design.mode = defense.mode;
    design.nbo = 1024;
    design.randomRfmPerTrefi = defense.p;

    // All defense points share one memoized NoMitigation baseline.
    const PairResult pair = runNormalizedPair(entry, design, budget);
    return 1.0 - normalizedPerf(pair.design, pair.baseline);
}

Scenario
ablationObfuscation()
{
    Scenario scenario;
    scenario.name = "ablation_obfuscation";
    scenario.tags = {"ablation", "defense"};
    scenario.title = "Ablation: random-RFM obfuscation vs TPRAC "
                     "(leakage and cost)";
    scenario.notes = "chance = ~50%: obfuscation pushes the naive "
                     "receiver toward chance as p grows, but Bit-1 "
                     "windows always carry their ABO spike; TPRAC "
                     "removes the dependence entirely";
    scenario.grid
        .axis("defense", {"none", "random-0.125", "random-0.25",
                          "random-0.5", "tprac"})
        .constant("message_bits", 32);

    scenario.runPoint = [](const ParamSet &params) {
        const Defense defense =
            parseDefense(params.getString("defense"));
        const auto message = randomBits(
            static_cast<std::size_t>(params.getInt("message_bits")),
            77);
        ResultRow row = JsonValue::object();
        row.set("channel_accuracy_pct",
                100.0 * channelAccuracy(defense, message));
        row.set("perf_overhead_pct", 100.0 * perfOverhead(defense));
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

// --- Mitigation-queue ablation -------------------------------------

/**
 * The FIFO-specific exploit from the QPRAC/MOAT analyses: keep the
 * bounded FIFO overflowing with decoy rows that cross the enqueue
 * threshold, so the target row's single crossing is dropped and it
 * can then be hammered indefinitely without ever being mitigated.
 */
class FifoOverflowAgent : public MemAgent
{
  public:
    FifoOverflowAgent(std::uint32_t target_row,
                      std::uint32_t threshold)
        : targetRow_(target_row), threshold_(threshold)
    {
    }

    void
    tick(MemoryController &mem, Cycle) override
    {
        while (outstanding_ < 2) {
            Request req;
            req.addr = mem.mapper().compose(
                DramAddress{0, 0, 0, nextRow(), 0});
            req.onComplete = [this](const Request &) {
                --outstanding_;
            };
            if (!mem.enqueue(std::move(req)))
                return;
            ++outstanding_;
        }
    }

  private:
    std::uint32_t
    nextRow()
    {
        // Phase layout, repeated with fresh decoys:
        //   (A,B) x threshold  -- two decoys cross the threshold
        //   (T,C) x threshold-4 -- target creeps up under cover
        const std::uint32_t phase_len = 4 * threshold_ - 8;
        const std::uint32_t pos = step_ % phase_len;
        const std::uint32_t phase = step_ / phase_len;
        ++step_;
        const std::uint32_t base = 10000 + phase * 3;
        if (pos < 2 * threshold_)
            return base + (pos & 1); // decoys A/B
        if ((pos & 1) == 0)
            return targetRow_;
        return base + 2; // decoy C (stays below threshold)
    }

    std::uint32_t targetRow_;
    std::uint32_t threshold_;
    std::uint32_t step_ = 0;
    std::uint32_t outstanding_ = 0;
};

struct QueueOutcome
{
    std::uint32_t maxCounter = 0;
    std::uint64_t alerts = 0;
    std::uint64_t mitigatedRows = 0;
};

QueueKind
parseQueueKind(const std::string &name)
{
    if (name == "single-entry")
        return QueueKind::SingleEntry;
    if (name == "ideal")
        return QueueKind::Ideal;
    if (name == "fifo")
        return QueueKind::Fifo;
    throw std::invalid_argument("unknown queue kind '" + name + "'");
}

QueueOutcome
fifoExploit(QueueKind queue, std::uint32_t nbo)
{
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = nbo;
    spec.timing.tREFW = nsToCycles(2.0e6);

    ControllerConfig config;
    config.mode = MitigationMode::Tprac;
    config.prac.queue = queue;
    config.prac.fifoThreshold = 16;
    config.prac.counterResetAtTrefw = false; // favour the attacker
    config.tbRfm = TbRfmConfig::forNbo(nbo, false, spec);

    AttackHarness harness(spec, config);
    FifoOverflowAgent attacker(5000, 16);
    harness.add(&attacker);
    harness.run(config.tbRfm.windowCycles * 256);

    return QueueOutcome{
        harness.mem().prac().counters().maxEverSeen(),
        harness.mem().prac().alerts(),
        harness.mem().prac().mitigatedRows(),
    };
}

QueueOutcome
attackQueue(QueueKind queue, std::uint32_t nbo, double window_scale)
{
    // Scaled universe (2 ms tREFW) so the complete worst-case attack
    // finishes in a bench budget; see tests/test_security.cpp.
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = nbo;
    spec.timing.tREFW = nsToCycles(2.0e6);

    ControllerConfig config;
    config.mode = MitigationMode::Tprac;
    config.prac.queue = queue;
    config.prac.fifoThreshold = nbo / 8;
    config.tbRfm = TbRfmConfig::forNbo(nbo, true, spec);
    config.tbRfm.windowCycles = static_cast<Cycle>(
        config.tbRfm.windowCycles * window_scale);

    const FeintingParams fp = FeintingParams::fromSpec(spec);
    const double window_ns = cyclesToNs(config.tbRfm.windowCycles);
    const std::uint64_t act_w =
        std::max<std::uint64_t>(actsPerWindow(window_ns, fp), 1);
    const auto pool = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        maxActsPerTrefw(window_ns, fp) / act_w, 2048));

    AttackHarness harness(spec, config);
    // Registry-style construction: the pool is pinned explicitly
    // because it is sized to the (window-scaled) TB-RFM window above,
    // not the default TB-RFM-safe cadence.
    AttackerConfig attacker_config;
    attacker_config.poolSize = pool;
    FeintingAgent attacker(harness.mem(), attacker_config);
    harness.add(&attacker);
    harness.run(config.tbRfm.windowCycles * (pool + 16));

    return QueueOutcome{
        harness.mem().prac().counters().maxEverSeen(),
        harness.mem().prac().alerts(),
        harness.mem().prac().mitigatedRows(),
    };
}

Scenario
ablationQueues()
{
    Scenario scenario;
    scenario.name = "ablation_queues";
    scenario.tags = {"ablation", "security"};
    scenario.title = "Ablation: mitigation-queue designs under the "
                     "Feinting and FIFO-overflow attacks";
    scenario.notes = "window_scale 0 = the FIFO-overflow exploit "
                     "(skipped for the ideal queue); the single-entry "
                     "queue must track the oracle at the safe window "
                     "while the overflowing FIFO lets the target "
                     "reach NBO";
    scenario.grid.axis("queue", {"single-entry", "ideal", "fifo"})
        .axis("window_scale", {1.0, 2.0, 0.0})
        .constant("nbo", 512);

    scenario.runPoint = [](const ParamSet &params) {
        const QueueKind queue =
            parseQueueKind(params.getString("queue"));
        const auto nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        const double scale = params.getDouble("window_scale");

        QueueOutcome outcome;
        std::string experiment;
        if (scale == 0.0) {
            if (queue == QueueKind::Ideal)
                return std::vector<ResultRow>{}; // exploit is FIFO-specific
            experiment = "fifo-overflow";
            outcome = fifoExploit(queue, nbo);
        } else {
            experiment = "feinting";
            outcome = attackQueue(queue, nbo, scale);
        }

        ResultRow row = JsonValue::object();
        row.set("experiment", experiment);
        row.set("max_counter", outcome.maxCounter);
        row.set("mitigations", outcome.mitigatedRows);
        row.set("alerts", outcome.alerts);
        return std::vector<ResultRow>{std::move(row)};
    };
    return scenario;
}

// --- TPRAC-PB ablation ---------------------------------------------

Scenario
ablationRfmpb()
{
    Scenario scenario;
    scenario.name = "ablation_rfmpb";
    scenario.tags = {"ablation", "perf"};
    scenario.title = "Ablation: all-bank TPRAC vs per-bank TPRAC-PB "
                     "(high-RBMPKI subset)";
    scenario.notes = "the per-bank variant removes most of the "
                     "channel-stall overhead; it requires the spec "
                     "change of paper Section 7.2";
    scenario.grid.axis("design", {"tprac", "tprac-pb"})
        .axis("nrh", {256, 512, 1024, 2048})
        .axis("entry", toValues(suiteEntryNames(MemIntensity::High)))
        .constant("warmup", 50'000)
        .constant("measure", 150'000);

    scenario.runPoint = [](const ParamSet &params) {
        DesignConfig design;
        design.label = params.getString("design");
        design.mode = MitigationMode::Tprac;
        design.nbo = static_cast<std::uint32_t>(params.getInt("nrh"));
        design.perBankRfm = design.label == "tprac-pb";

        RunBudget budget;
        budget.warmup =
            static_cast<std::uint64_t>(params.getInt("warmup"));
        budget.measure =
            static_cast<std::uint64_t>(params.getInt("measure"));

        const SuiteEntry &entry =
            findSuiteEntry(params.getString("entry"));
        const PairResult pair =
            runNormalizedPair(entry, design, budget);

        ResultRow row = JsonValue::object();
        row.set("normalized",
                normalizedPerf(pair.design, pair.baseline));
        row.set("tb_rfms", pair.design.tbRfms);
        return std::vector<ResultRow>{std::move(row)};
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        // Mean slowdown per (design, nrh), mirroring the old table.
        std::vector<std::string> order;
        std::map<std::string, std::pair<double, int>> groups;
        std::map<std::string, std::pair<std::string, std::int64_t>>
            labels;
        for (const ResultRow &row : rows) {
            const std::string design =
                row.get("design")->asString();
            const std::int64_t nrh = row.get("nrh")->asInt();
            const std::string key =
                design + '@' + std::to_string(nrh);
            if (groups.find(key) == groups.end()) {
                order.push_back(key);
                labels[key] = {design, nrh};
            }
            auto &bucket = groups[key];
            bucket.first += row.get("normalized")->asDouble();
            bucket.second += 1;
        }
        std::vector<ResultRow> out;
        for (const auto &key : order) {
            const auto &bucket = groups[key];
            ResultRow row = JsonValue::object();
            row.set("design", labels[key].first);
            row.set("nrh", labels[key].second);
            row.set("mean_slowdown_pct",
                    100.0 * (1.0 - bucket.first / bucket.second));
            out.push_back(std::move(row));
        }
        return out;
    };
    return scenario;
}

} // namespace

void
registerAblationScenarios(ScenarioRegistry &registry)
{
    registry.add(ablationObfuscation());
    registry.add(ablationQueues());
    registry.add(ablationRfmpb());
}

} // namespace pracleak::sim
