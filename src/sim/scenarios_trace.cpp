/**
 * @file
 * Trace record/replay scenarios.
 *
 * trace_replay_defense_sweep turns the O(workloads x defenses)
 * full-simulation defense bake-off into O(workloads) simulations plus
 * cheap replays: each Table-4 workload is simulated once with trace
 * taps armed (under "none"), then the recorded request stream is
 * replayed against every registered bake-off defense on a fresh
 * controller + mitigation stack.  Both legs run per grid point so the
 * emitted rows carry a measured wall-clock speedup, and the
 * same-defense replay is checked bit-identical against the recording
 * (the fidelity contract; cross-defense replays are the standard
 * open-loop approximation).
 */

#include "sim/scenario.h"

#include <string>
#include <vector>

#include "telemetry/stopwatch.h"

#include "sim/design.h"
#include "sim/scenario_util.h"
#include "sim/trace_support.h"

namespace pracleak::sim {

namespace {

/** The bake-off defense set (catalog order; see scenarios_defense). */
const std::vector<std::string> &
sweepDefenses()
{
    static const std::vector<std::string> defenses = {
        "none",  "abo-only", "abo+acb-rfm", "tprac",
        "para",  "graphene", "pb-rfm"};
    return defenses;
}

Scenario
traceReplayDefenseSweep()
{
    Scenario scenario;
    scenario.name = "trace_replay_defense_sweep";
    // Minutes-per-point sweep: checkpoint every finished point.
    scenario.checkpointEvery = 1;
    scenario.tags = {"trace", "defense", "perf"};
    scenario.title =
        "Trace record/replay: per-workload defense sweep via one "
        "recorded simulation + cheap replays, vs the equivalent "
        "full-simulation sweep";
    scenario.notes =
        "speedup = full-simulation sweep time / (record + replays): "
        "both legs produce all 7 defense results -- the recorded run "
        "IS the none-defense simulation, so the replay leg replays "
        "only the other 6; the separately-run none replay must "
        "reproduce the recorded controller stats bit-identically, "
        "cross-defense replays are open-loop approximations (the "
        "stream cannot react to added maintenance back-pressure)";
    scenario.grid.axis("entry", toValues(suiteEntryNames()))
        .constant("spec", "ddr5-8000b")
        .constant("nbo", 1024)
        .constant("warmup", 20'000)
        .constant("measure", 60'000);

    scenario.runPoint = [](const ParamSet &params) {
        const SuiteEntry &entry =
            findSuiteEntry(params.getString("entry"));

        DesignConfig design;
        design.spec = params.getString("spec");
        design.nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        RunBudget budget;
        budget.warmup =
            static_cast<std::uint64_t>(params.getInt("warmup"));
        budget.measure =
            static_cast<std::uint64_t>(params.getInt("measure"));

        // Leg 1: the conventional sweep -- one full simulation per
        // defense.  Keep the results for the fidelity columns.
        const telemetry::Stopwatch full_clock;
        std::vector<RunResult> full_runs;
        full_runs.reserve(sweepDefenses().size());
        for (const std::string &defense : sweepDefenses()) {
            DesignConfig per_defense = design;
            per_defense.label = defense;
            per_defense.mitigation = defense;
            full_runs.push_back(runOne(entry, per_defense, budget));
        }
        const double full_seconds = full_clock.seconds();

        // Leg 2: record once (under "none" -- that simulation IS the
        // none-defense sweep point), replay the other defenses.
        const telemetry::Stopwatch replay_clock;
        DesignConfig record_design = design;
        record_design.label = "none";
        record_design.mitigation = "none";
        const RecordedRun recorded =
            recordSuiteRun(entry, record_design, budget);
        std::vector<trace::ReplayResult> replays;
        replays.reserve(sweepDefenses().size());
        for (const std::string &defense : sweepDefenses()) {
            if (defense == "none") {
                // Placeholder; replaced by the fidelity replay below
                // (outside the timed leg -- it validates, it does not
                // produce new sweep data).
                replays.emplace_back();
                continue;
            }
            trace::ReplayOptions options;
            options.mitigation = defense;
            replays.push_back(
                trace::replayTrace(recorded.trace, options));
        }
        const double replay_seconds = replay_clock.seconds();

        // Fidelity contract, untimed: a same-defense replay must be
        // bit-identical to the recording.
        {
            trace::ReplayOptions options;
            options.mitigation = "none";
            for (std::size_t i = 0; i < sweepDefenses().size(); ++i)
                if (sweepDefenses()[i] == "none")
                    replays[i] =
                        trace::replayTrace(recorded.trace, options);
        }

        const double speedup =
            replay_seconds > 0.0 ? full_seconds / replay_seconds
                                 : 0.0;

        std::vector<ResultRow> rows;
        for (std::size_t i = 0; i < sweepDefenses().size(); ++i) {
            const RunResult &sim = full_runs[i];
            const trace::ReplayResult &replay = replays[i];
            const trace::TraceChannelStats total = replay.total();

            ResultRow row = JsonValue::object();
            row.set("mitigation", sweepDefenses()[i]);
            // Fidelity columns: cumulative RFM/alert telemetry of
            // the full simulation vs the open-loop replay.
            row.set("sim_rfms", sim.aboRfms + sim.acbRfms +
                                    sim.tbRfms + sim.grapheneRfms +
                                    sim.pbRfms);
            std::uint64_t replay_rfms = 0;
            for (const std::uint64_t rfms : total.rfms)
                replay_rfms += rfms;
            row.set("replay_rfms", replay_rfms);
            row.set("sim_alerts", sim.alerts);
            row.set("replay_alerts", total.alerts);
            row.set("sim_mitigation_events", sim.mitigationEvents);
            row.set("replay_mitigation_events",
                    total.mitigationEvents);
            row.set("replay_max_counter", total.maxCounterSeen);
            row.set("fully_drained", replay.fullyDrained);
            if (sweepDefenses()[i] == "none")
                row.set("bit_identical",
                        replay.matchesRecorded(recorded.trace));
            row.set("full_seconds", full_seconds);
            row.set("replay_seconds", replay_seconds);
            row.set("speedup", speedup);
            rows.push_back(std::move(row));
        }
        return rows;
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        double full = 0.0, replay = 0.0;
        double min_speedup = 0.0;
        std::int64_t entries = 0;
        bool identical = true;
        std::string last_entry;
        for (const ResultRow &row : rows) {
            const std::string entry = row.get("entry")->asString();
            if (entry != last_entry) {
                last_entry = entry;
                ++entries;
                full += row.get("full_seconds")->asDouble();
                replay += row.get("replay_seconds")->asDouble();
                const double speedup =
                    row.get("speedup")->asDouble();
                if (entries == 1 || speedup < min_speedup)
                    min_speedup = speedup;
            }
            if (const JsonValue *bit = row.get("bit_identical"))
                identical = identical && bit->asBool();
        }
        ResultRow summary = JsonValue::object();
        summary.set("workloads", entries);
        summary.set("full_sweep_seconds", full);
        summary.set("record_replay_seconds", replay);
        summary.set("speedup",
                    replay > 0.0 ? full / replay : 0.0);
        summary.set("min_point_speedup", min_speedup);
        summary.set("all_bit_identical", identical);
        return std::vector<ResultRow>{std::move(summary)};
    };
    return scenario;
}

/**
 * eventqueue_benchmark: event-driven vs lockstep replay scheduling.
 *
 * Replays one recorded multi-channel trace under every bake-off
 * defense twice -- once with the lockstep per-cycle loop (fastForward
 * off) and once with the per-channel event loop (fastForward on) --
 * and asserts the two paths produce byte-identical per-channel stats.
 * The emitted speedup is the number CI guards (scripts/perf_smoke.sh)
 * and results/eventqueue_bench.json records.
 */
Scenario
eventqueueBenchmark()
{
    Scenario scenario;
    scenario.name = "eventqueue_benchmark";
    scenario.checkpointEvery = 1;
    scenario.tags = {"trace", "perf"};
    scenario.title =
        "Event-driven per-channel replay scheduling vs the lockstep "
        "per-cycle tick: wall-clock speedup on a defense sweep "
        "(stats byte-identical)";
    scenario.notes =
        "run with --jobs 1 for clean wall-clock numbers; 'identical' "
        "must always be true -- the event scheduler may never change "
        "a statistic -- and the same-defense event replay must stay "
        "bit-identical to the recording; the win grows with channel "
        "count (each channel advances independently while lockstep "
        "ticks all of them every cycle)";
    // One grid point on purpose: the whole sweep runs inside a
    // single pool task, so the wall-clock legs never interleave with
    // another point's work (the pool's calling thread participates
    // in map(), so even --jobs 1 would otherwise overlap two points
    // and contaminate the per-leg timings).
    scenario.grid
        .constant("channels", 8)
        .constant("spec", "ddr5-8000b")
        .constant("nbo", 1024)
        .constant("warmup", 20'000)
        .constant("measure", 120'000);

    scenario.runPoint = [](const ParamSet &params) {
        DesignConfig design;
        design.label = "none";
        design.mitigation = "none";
        design.spec = params.getString("spec");
        design.nbo =
            static_cast<std::uint32_t>(params.getInt("nbo"));
        design.channels =
            static_cast<std::uint32_t>(params.getInt("channels"));
        RunBudget budget;
        budget.warmup =
            static_cast<std::uint64_t>(params.getInt("warmup"));
        budget.measure =
            static_cast<std::uint64_t>(params.getInt("measure"));

        auto bench_entry = [&](const char *entry_name,
                               std::vector<ResultRow> &rows) {
            const RecordedRun recorded = recordSuiteRun(
                findSuiteEntry(entry_name), design, budget);

            std::vector<ResultRow> entry_rows;
            double lockstep_total = 0.0, event_total = 0.0;
            for (const std::string &defense : sweepDefenses()) {
                trace::ReplayOptions options;
                options.mitigation = defense;

                options.fastForward = false;
                const telemetry::Stopwatch lockstep_clock;
                const trace::ReplayResult lockstep =
                    trace::replayTrace(recorded.trace, options);
                const double lockstep_seconds =
                    lockstep_clock.seconds();

                options.fastForward = true;
                const telemetry::Stopwatch event_clock;
                const trace::ReplayResult event =
                    trace::replayTrace(recorded.trace, options);
                const double event_seconds = event_clock.seconds();

                lockstep_total += lockstep_seconds;
                event_total += event_seconds;

                // The equivalence contract: every per-channel
                // statistic, the horizon, and the drain status must
                // match exactly.
                bool identical =
                    lockstep.endCycle == event.endCycle &&
                    lockstep.replayedRequests ==
                        event.replayedRequests &&
                    lockstep.fullyDrained == event.fullyDrained &&
                    lockstep.channels.size() ==
                        event.channels.size();
                if (identical)
                    for (std::size_t c = 0;
                         c < event.channels.size(); ++c)
                        identical = identical &&
                                    lockstep.channels[c] ==
                                        event.channels[c];

                ResultRow row = JsonValue::object();
                row.set("entry", entry_name);
                row.set("mitigation", defense);
                row.set("lockstep_seconds", lockstep_seconds);
                row.set("event_seconds", event_seconds);
                row.set("speedup",
                        event_seconds > 0.0
                            ? lockstep_seconds / event_seconds
                            : 0.0);
                row.set("identical", identical);
                if (defense == "none")
                    row.set("bit_identical",
                            event.matchesRecorded(recorded.trace));
                entry_rows.push_back(std::move(row));
            }
            for (ResultRow &row : entry_rows) {
                row.set("entry_lockstep_seconds", lockstep_total);
                row.set("entry_event_seconds", event_total);
                row.set("entry_speedup",
                        event_total > 0.0
                            ? lockstep_total / event_total
                            : 0.0);
                rows.push_back(std::move(row));
            }
        };

        std::vector<ResultRow> rows;
        for (const char *entry_name :
             {"h_rand_heavy", "m_blend", "l_compute"})
            bench_entry(entry_name, rows);
        return rows;
    };

    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        double lockstep = 0.0, event = 0.0;
        std::int64_t broken = 0;
        bool bit_identical = true;
        for (const ResultRow &row : rows) {
            lockstep += row.get("lockstep_seconds")->asDouble();
            event += row.get("event_seconds")->asDouble();
            broken += row.get("identical")->asBool() ? 0 : 1;
            if (const JsonValue *bit = row.get("bit_identical"))
                bit_identical = bit_identical && bit->asBool();
        }
        ResultRow summary = JsonValue::object();
        summary.set("sweep_lockstep_seconds", lockstep);
        summary.set("sweep_event_seconds", event);
        summary.set("speedup",
                    event > 0.0 ? lockstep / event : 0.0);
        summary.set("non_identical_points", broken);
        summary.set("all_bit_identical", bit_identical);
        return std::vector<ResultRow>{std::move(summary)};
    };
    return scenario;
}

} // namespace

void
registerTraceScenarios(ScenarioRegistry &registry)
{
    registry.add(traceReplayDefenseSweep());
    registry.add(eventqueueBenchmark());
}

} // namespace pracleak::sim
