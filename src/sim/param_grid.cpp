#include "sim/param_grid.h"

#include <stdexcept>

#include "sim/suggest.h"

namespace pracleak::sim {

void
ParamSet::add(const std::string &name, JsonValue value)
{
    for (auto &entry : entries_) {
        if (entry.first == name) {
            entry.second = std::move(value);
            return;
        }
    }
    entries_.emplace_back(name, std::move(value));
}

bool
ParamSet::has(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.first == name)
            return true;
    return false;
}

const JsonValue &
ParamSet::at(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.first == name)
            return entry.second;
    throw std::out_of_range("ParamSet: no parameter named '" + name +
                            "'");
}

std::int64_t
ParamSet::getInt(const std::string &name) const
{
    return at(name).asInt();
}

double
ParamSet::getDouble(const std::string &name) const
{
    return at(name).asDouble();
}

bool
ParamSet::getBool(const std::string &name) const
{
    return at(name).asBool();
}

std::string
ParamSet::getString(const std::string &name) const
{
    return at(name).asString();
}

std::string
ParamSet::label() const
{
    std::string out;
    for (const auto &[name, value] : entries_) {
        if (!out.empty())
            out += ' ';
        out += name;
        out += '=';
        out += value.asString();
    }
    return out;
}

JsonValue
ParamSet::toJson() const
{
    JsonValue obj = JsonValue::object();
    for (const auto &[name, value] : entries_)
        obj.set(name, value);
    return obj;
}

ParamGrid &
ParamGrid::axis(std::string name, std::vector<JsonValue> values)
{
    if (values.empty())
        throw std::invalid_argument("ParamGrid: axis '" + name +
                                    "' has no values");
    axes_.push_back(ParamAxis{std::move(name), std::move(values)});
    return *this;
}

ParamGrid &
ParamGrid::constant(std::string name, JsonValue value)
{
    return axis(std::move(name), {std::move(value)});
}

std::size_t
ParamGrid::size() const
{
    std::size_t n = 1;
    for (const auto &axis : axes_)
        n *= axis.values.size();
    return n;
}

ParamSet
ParamGrid::point(std::size_t index) const
{
    ParamSet set;
    // Row-major: the last declared axis varies fastest, so output
    // ordering matches nested loops written in declaration order.
    std::size_t stride = size();
    for (const auto &axis : axes_) {
        stride /= axis.values.size();
        const std::size_t pick = (index / stride) % axis.values.size();
        set.add(axis.name, axis.values[pick]);
    }
    return set;
}

const ParamAxis *
ParamGrid::findAxis(const std::string &name) const
{
    for (const auto &axis : axes_)
        if (axis.name == name)
            return &axis;
    return nullptr;
}

void
ParamGrid::overrideAxis(const std::string &name,
                        std::vector<JsonValue> values)
{
    if (values.empty())
        throw std::invalid_argument("ParamGrid: override of '" + name +
                                    "' has no values");
    for (auto &axis : axes_) {
        if (axis.name == name) {
            axis.values = std::move(values);
            return;
        }
    }
    std::string known;
    std::vector<std::string> names;
    for (const auto &axis : axes_) {
        known += (known.empty() ? "" : ", ") + axis.name;
        names.push_back(axis.name);
    }
    const std::string hint = closestTo(name, names);
    throw std::invalid_argument(
        "ParamGrid: unknown axis '" + name + "'" +
        (hint.empty() ? "" : " (did you mean '" + hint + "'?)") +
        " (have: " + known + ")");
}

JsonValue
ParamGrid::toJson() const
{
    JsonValue obj = JsonValue::object();
    for (const auto &axis : axes_) {
        JsonValue values = JsonValue::array();
        for (const auto &value : axis.values)
            values.push(value);
        obj.set(axis.name, std::move(values));
    }
    return obj;
}

} // namespace pracleak::sim
