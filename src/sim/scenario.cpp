#include "sim/scenario.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace pracleak::sim {

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry registry;
    return registry;
}

void
ScenarioRegistry::add(Scenario scenario)
{
    if (scenario.name.empty())
        throw std::invalid_argument("scenario has no name");
    if (!scenario.runPoint)
        throw std::invalid_argument("scenario '" + scenario.name +
                                    "' has no runPoint");
    if (find(scenario.name))
        throw std::invalid_argument("duplicate scenario '" +
                                    scenario.name + "'");
    scenarios_.push_back(std::move(scenario));
}

const Scenario *
ScenarioRegistry::find(const std::string &name) const
{
    for (const Scenario &scenario : scenarios_)
        if (scenario.name == name)
            return &scenario;
    return nullptr;
}

std::vector<const Scenario *>
ScenarioRegistry::all() const
{
    std::vector<const Scenario *> out;
    out.reserve(scenarios_.size());
    for (const Scenario &scenario : scenarios_)
        out.push_back(&scenario);
    std::sort(out.begin(), out.end(),
              [](const Scenario *a, const Scenario *b) {
                  return a->name < b->name;
              });
    return out;
}

// Implemented by the scenario translation units (scenarios_*.cpp).
void registerAttackScenarios(ScenarioRegistry &registry);
void registerAnalysisScenarios(ScenarioRegistry &registry);
void registerPerfScenarios(ScenarioRegistry &registry);
void registerCovertScenarios(ScenarioRegistry &registry);
void registerAblationScenarios(ScenarioRegistry &registry);
void registerMultichannelScenarios(ScenarioRegistry &registry);
void registerDefenseScenarios(ScenarioRegistry &registry);
void registerTraceScenarios(ScenarioRegistry &registry);

void
registerBuiltinScenarios()
{
    static std::once_flag once;
    std::call_once(once, [] {
        ScenarioRegistry &registry = ScenarioRegistry::instance();
        registerAttackScenarios(registry);
        registerAnalysisScenarios(registry);
        registerPerfScenarios(registry);
        registerCovertScenarios(registry);
        registerAblationScenarios(registry);
        registerMultichannelScenarios(registry);
        registerDefenseScenarios(registry);
        registerTraceScenarios(registry);
    });
}

} // namespace pracleak::sim
