/**
 * @file
 * Physical-address to DRAM-coordinate translation.
 *
 * The default scheme is Minimalist Open-Page (MOP): small blocks of
 * four consecutive cache lines share a row for spatial locality, and
 * successive blocks stripe across bank groups, banks, and ranks for
 * parallelism.  A consequence the paper's attacks rely on: one 8 KB
 * DRAM row collects 4-line blocks from 32 *different* 4 KB page-sized
 * regions, so two processes' pages can share a physical row.
 *
 * RowInterleaved keeps each row's 128 lines physically contiguous
 * (classic open-page mapping) and is provided as an ablation.
 *
 * Multi-channel: a ChannelInterleave selects one of N channels per
 * interleave block.  The selector bits are removed from the address
 * before the per-channel coordinate mapping, and (optionally) XOR-
 * folded with the higher address bits so pathological strides cannot
 * camp on one channel.  With channels == 1 every operation here is
 * bit-identical to the single-channel mapper.
 */

#ifndef PRACLEAK_MEM_ADDRESS_MAPPER_H
#define PRACLEAK_MEM_ADDRESS_MAPPER_H

#include <cstdint>

#include "common/types.h"
#include "dram/dram_spec.h"

namespace pracleak {

/** Decomposed DRAM coordinates of one cache line. */
struct DramAddress
{
    std::uint32_t rank = 0;
    std::uint32_t bankGroup = 0;
    std::uint32_t bank = 0;     //!< within bank group
    std::uint32_t row = 0;
    std::uint32_t col = 0;      //!< cache-line column within the row

    /**
     * Owning memory channel.  Declared last so the widely used
     * {rank, bg, bank, row, col} aggregate initializers keep their
     * single-channel meaning (channel 0).
     */
    std::uint32_t channel = 0;

    bool
    sameBank(const DramAddress &other) const
    {
        return channel == other.channel && rank == other.rank &&
               bankGroup == other.bankGroup && bank == other.bank;
    }

    bool
    sameRow(const DramAddress &other) const
    {
        return sameBank(other) && row == other.row;
    }
};

/** Address-interleaving scheme. */
enum class MappingScheme : std::uint8_t
{
    Mop4,           //!< MOP with 4-line blocks (paper's configuration)
    RowInterleaved, //!< whole row contiguous in physical space
};

/** How physical addresses stripe across memory channels. */
struct ChannelInterleave
{
    /** Number of channels; must be a power of two. */
    std::uint32_t channels = 1;

    /**
     * Contiguous bytes per channel before switching (power of two,
     * >= one cache line).  256 B = one MOP block per channel hop.
     */
    std::uint32_t granularityBytes = 256;

    /**
     * XOR-fold the address bits above the selector into the channel
     * choice.  Keeps the mapping bijective while decorrelating the
     * channel from simple power-of-two strides.
     */
    bool xorFold = true;
};

/** Bidirectional physical <-> DRAM address translation. */
class AddressMapper
{
  public:
    AddressMapper(const DramOrg &org,
                  MappingScheme scheme = MappingScheme::Mop4,
                  const ChannelInterleave &interleave = {});

    /** Translate a (byte) physical address; low 6 bits are ignored. */
    DramAddress map(Addr physical) const;

    /** Inverse translation: DRAM coordinates to a physical address. */
    Addr compose(const DramAddress &daddr) const;

    /** Channel that @p physical routes to (0 when single-channel). */
    std::uint32_t channelOf(Addr physical) const;

    /**
     * Channel-local address: @p physical with the channel-selector
     * bits removed.  Identity when single-channel.
     */
    Addr stripChannel(Addr physical) const;

    /** Channel-wide flat bank index for @p daddr. */
    std::uint32_t flatBank(const DramAddress &daddr) const;

    MappingScheme scheme() const { return scheme_; }
    const DramOrg &org() const { return org_; }
    const ChannelInterleave &interleave() const { return interleave_; }
    std::uint32_t channels() const { return interleave_.channels; }

  private:
    /** XOR-fold @p value into channelBits_ bits. */
    std::uint32_t fold(std::uint64_t value) const;

    DramOrg org_;
    MappingScheme scheme_;
    ChannelInterleave interleave_;

    std::uint32_t bgBits_;
    std::uint32_t bankBits_;
    std::uint32_t rankBits_;
    std::uint32_t colBits_;
    std::uint32_t rowBits_;
    std::uint32_t channelBits_;
    std::uint32_t granularityShift_;
    static constexpr std::uint32_t kMopBlockBits = 2; //!< 4-line blocks
};

} // namespace pracleak

#endif // PRACLEAK_MEM_ADDRESS_MAPPER_H
