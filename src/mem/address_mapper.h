/**
 * @file
 * Physical-address to DRAM-coordinate translation.
 *
 * The default scheme is Minimalist Open-Page (MOP): small blocks of
 * four consecutive cache lines share a row for spatial locality, and
 * successive blocks stripe across bank groups, banks, and ranks for
 * parallelism.  A consequence the paper's attacks rely on: one 8 KB
 * DRAM row collects 4-line blocks from 32 *different* 4 KB page-sized
 * regions, so two processes' pages can share a physical row.
 *
 * RowInterleaved keeps each row's 128 lines physically contiguous
 * (classic open-page mapping) and is provided as an ablation.
 */

#ifndef PRACLEAK_MEM_ADDRESS_MAPPER_H
#define PRACLEAK_MEM_ADDRESS_MAPPER_H

#include <cstdint>

#include "common/types.h"
#include "dram/dram_spec.h"

namespace pracleak {

/** Decomposed DRAM coordinates of one cache line. */
struct DramAddress
{
    std::uint32_t rank = 0;
    std::uint32_t bankGroup = 0;
    std::uint32_t bank = 0;     //!< within bank group
    std::uint32_t row = 0;
    std::uint32_t col = 0;      //!< cache-line column within the row

    bool
    sameBank(const DramAddress &other) const
    {
        return rank == other.rank && bankGroup == other.bankGroup &&
               bank == other.bank;
    }

    bool
    sameRow(const DramAddress &other) const
    {
        return sameBank(other) && row == other.row;
    }
};

/** Address-interleaving scheme. */
enum class MappingScheme : std::uint8_t
{
    Mop4,           //!< MOP with 4-line blocks (paper's configuration)
    RowInterleaved, //!< whole row contiguous in physical space
};

/** Bidirectional physical <-> DRAM address translation. */
class AddressMapper
{
  public:
    AddressMapper(const DramOrg &org,
                  MappingScheme scheme = MappingScheme::Mop4);

    /** Translate a (byte) physical address; low 6 bits are ignored. */
    DramAddress map(Addr physical) const;

    /** Inverse translation: DRAM coordinates to a physical address. */
    Addr compose(const DramAddress &daddr) const;

    /** Channel-wide flat bank index for @p daddr. */
    std::uint32_t flatBank(const DramAddress &daddr) const;

    MappingScheme scheme() const { return scheme_; }
    const DramOrg &org() const { return org_; }

  private:
    DramOrg org_;
    MappingScheme scheme_;

    std::uint32_t bgBits_;
    std::uint32_t bankBits_;
    std::uint32_t rankBits_;
    std::uint32_t colBits_;
    std::uint32_t rowBits_;
    static constexpr std::uint32_t kMopBlockBits = 2; //!< 4-line blocks
};

} // namespace pracleak

#endif // PRACLEAK_MEM_ADDRESS_MAPPER_H
