#include "mem/address_mapper.h"

#include <bit>

#include "common/log.h"

namespace pracleak {

namespace {

std::uint32_t
log2Exact(std::uint32_t value, const char *what)
{
    if (value == 0 || (value & (value - 1)) != 0)
        fatal(std::string(what) + " must be a power of two");
    return static_cast<std::uint32_t>(std::countr_zero(value));
}

} // namespace

AddressMapper::AddressMapper(const DramOrg &org, MappingScheme scheme,
                             const ChannelInterleave &interleave)
    : org_(org), scheme_(scheme), interleave_(interleave),
      bgBits_(log2Exact(org.bankGroups, "bankGroups")),
      bankBits_(log2Exact(org.banksPerGroup, "banksPerGroup")),
      rankBits_(log2Exact(org.ranks, "ranks")),
      colBits_(log2Exact(org.colsPerRow, "colsPerRow")),
      rowBits_(log2Exact(org.rowsPerBank, "rowsPerBank")),
      channelBits_(log2Exact(interleave.channels, "channels")),
      granularityShift_(
          log2Exact(interleave.granularityBytes, "granularityBytes"))
{
    if (interleave_.granularityBytes < kLineBytes)
        fatal("channel-interleave granularity below one cache line");
}

std::uint32_t
AddressMapper::fold(std::uint64_t value) const
{
    std::uint32_t folded = 0;
    const std::uint64_t mask = (1ULL << channelBits_) - 1;
    while (value != 0) {
        folded ^= static_cast<std::uint32_t>(value & mask);
        value >>= channelBits_;
    }
    return folded;
}

std::uint32_t
AddressMapper::channelOf(Addr physical) const
{
    if (channelBits_ == 0)
        return 0;
    const std::uint64_t block = physical >> granularityShift_;
    const auto selector = static_cast<std::uint32_t>(
        block & ((1ULL << channelBits_) - 1));
    if (!interleave_.xorFold)
        return selector;
    return selector ^ fold(block >> channelBits_);
}

Addr
AddressMapper::stripChannel(Addr physical) const
{
    if (channelBits_ == 0)
        return physical;
    const Addr low = physical & ((Addr{1} << granularityShift_) - 1);
    const Addr block_hi =
        physical >> (granularityShift_ + channelBits_);
    return (block_hi << granularityShift_) | low;
}

DramAddress
AddressMapper::map(Addr physical) const
{
    const std::uint32_t channel = channelOf(physical);
    std::uint64_t line = stripChannel(physical) >> kLineShift;
    DramAddress out;
    out.channel = channel;

    auto take = [&line](std::uint32_t bits) {
        const std::uint64_t value = line & ((1ULL << bits) - 1);
        line >>= bits;
        return static_cast<std::uint32_t>(value);
    };

    if (scheme_ == MappingScheme::Mop4) {
        const std::uint32_t col_lo = take(kMopBlockBits);
        out.bankGroup = take(bgBits_);
        out.bank = take(bankBits_);
        out.rank = take(rankBits_);
        const std::uint32_t col_hi = take(colBits_ - kMopBlockBits);
        out.col = (col_hi << kMopBlockBits) | col_lo;
        out.row = take(rowBits_);
    } else {
        out.col = take(colBits_);
        out.bankGroup = take(bgBits_);
        out.bank = take(bankBits_);
        out.rank = take(rankBits_);
        out.row = take(rowBits_);
    }
    return out;
}

Addr
AddressMapper::compose(const DramAddress &daddr) const
{
    std::uint64_t line = 0;
    std::uint32_t shift = 0;

    auto put = [&line, &shift](std::uint64_t value, std::uint32_t bits) {
        line |= (value & ((1ULL << bits) - 1)) << shift;
        shift += bits;
    };

    if (scheme_ == MappingScheme::Mop4) {
        put(daddr.col & ((1u << kMopBlockBits) - 1), kMopBlockBits);
        put(daddr.bankGroup, bgBits_);
        put(daddr.bank, bankBits_);
        put(daddr.rank, rankBits_);
        put(daddr.col >> kMopBlockBits, colBits_ - kMopBlockBits);
        put(daddr.row, rowBits_);
    } else {
        put(daddr.col, colBits_);
        put(daddr.bankGroup, bgBits_);
        put(daddr.bank, bankBits_);
        put(daddr.rank, rankBits_);
        put(daddr.row, rowBits_);
    }

    const Addr local = line << kLineShift;
    if (channelBits_ == 0)
        return local;

    // Re-insert the channel-selector bits at the interleave boundary,
    // undoing the XOR fold so channelOf(result) == daddr.channel.
    const Addr low = local & ((Addr{1} << granularityShift_) - 1);
    const Addr block_hi = local >> granularityShift_;
    std::uint32_t selector = daddr.channel;
    if (interleave_.xorFold)
        selector ^= fold(block_hi);
    return (((block_hi << channelBits_) | selector)
            << granularityShift_) |
           low;
}

std::uint32_t
AddressMapper::flatBank(const DramAddress &daddr) const
{
    return org_.flatBank(daddr.rank,
                         daddr.bankGroup * org_.banksPerGroup +
                             daddr.bank);
}

} // namespace pracleak
