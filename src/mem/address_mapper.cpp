#include "mem/address_mapper.h"

#include <bit>

#include "common/log.h"

namespace pracleak {

namespace {

std::uint32_t
log2Exact(std::uint32_t value, const char *what)
{
    if (value == 0 || (value & (value - 1)) != 0)
        fatal(std::string(what) + " must be a power of two");
    return static_cast<std::uint32_t>(std::countr_zero(value));
}

} // namespace

AddressMapper::AddressMapper(const DramOrg &org, MappingScheme scheme)
    : org_(org), scheme_(scheme),
      bgBits_(log2Exact(org.bankGroups, "bankGroups")),
      bankBits_(log2Exact(org.banksPerGroup, "banksPerGroup")),
      rankBits_(log2Exact(org.ranks, "ranks")),
      colBits_(log2Exact(org.colsPerRow, "colsPerRow")),
      rowBits_(log2Exact(org.rowsPerBank, "rowsPerBank"))
{
}

DramAddress
AddressMapper::map(Addr physical) const
{
    std::uint64_t line = physical >> kLineShift;
    DramAddress out;

    auto take = [&line](std::uint32_t bits) {
        const std::uint64_t value = line & ((1ULL << bits) - 1);
        line >>= bits;
        return static_cast<std::uint32_t>(value);
    };

    if (scheme_ == MappingScheme::Mop4) {
        const std::uint32_t col_lo = take(kMopBlockBits);
        out.bankGroup = take(bgBits_);
        out.bank = take(bankBits_);
        out.rank = take(rankBits_);
        const std::uint32_t col_hi = take(colBits_ - kMopBlockBits);
        out.col = (col_hi << kMopBlockBits) | col_lo;
        out.row = take(rowBits_);
    } else {
        out.col = take(colBits_);
        out.bankGroup = take(bgBits_);
        out.bank = take(bankBits_);
        out.rank = take(rankBits_);
        out.row = take(rowBits_);
    }
    return out;
}

Addr
AddressMapper::compose(const DramAddress &daddr) const
{
    std::uint64_t line = 0;
    std::uint32_t shift = 0;

    auto put = [&line, &shift](std::uint64_t value, std::uint32_t bits) {
        line |= (value & ((1ULL << bits) - 1)) << shift;
        shift += bits;
    };

    if (scheme_ == MappingScheme::Mop4) {
        put(daddr.col & ((1u << kMopBlockBits) - 1), kMopBlockBits);
        put(daddr.bankGroup, bgBits_);
        put(daddr.bank, bankBits_);
        put(daddr.rank, rankBits_);
        put(daddr.col >> kMopBlockBits, colBits_ - kMopBlockBits);
        put(daddr.row, rowBits_);
    } else {
        put(daddr.col, colBits_);
        put(daddr.bankGroup, bgBits_);
        put(daddr.bank, bankBits_);
        put(daddr.rank, rankBits_);
        put(daddr.row, rowBits_);
    }
    return line << kLineShift;
}

std::uint32_t
AddressMapper::flatBank(const DramAddress &daddr) const
{
    return org_.flatBank(daddr.rank,
                         daddr.bankGroup * org_.banksPerGroup +
                             daddr.bank);
}

} // namespace pracleak
