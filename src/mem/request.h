/**
 * @file
 * Memory request descriptor exchanged between cores/agents and the
 * memory controller.
 */

#ifndef PRACLEAK_MEM_REQUEST_H
#define PRACLEAK_MEM_REQUEST_H

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "mem/address_mapper.h"

namespace pracleak {

/** Request flavor.  Writes are posted (complete at data transfer). */
enum class ReqType : std::uint8_t
{
    Read,
    Write,
};

/** One cache-line request. */
struct Request
{
    ReqType type = ReqType::Read;
    Addr addr = 0;
    std::uint32_t coreId = 0;

    Cycle arrival = 0;          //!< enqueue time at the controller
    Cycle completed = kNeverCycle;

    /** Filled by the controller on enqueue. */
    DramAddress daddr{};

    /** Invoked exactly once when the request completes. */
    std::function<void(const Request &)> onComplete;

    /** End-to-end controller latency, valid after completion. */
    Cycle latency() const { return completed - arrival; }
};

} // namespace pracleak

#endif // PRACLEAK_MEM_REQUEST_H
