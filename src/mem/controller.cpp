#include "mem/controller.h"

#include <algorithm>

#include "common/log.h"
#include "mitigation/registry.h"
#include "telemetry/timeseries.h"

namespace pracleak {

const char *
mitigationModeName(MitigationMode mode)
{
    switch (mode) {
      case MitigationMode::NoMitigation: return "no-mitigation";
      case MitigationMode::AboOnly: return "abo-only";
      case MitigationMode::AboAcb: return "abo+acb-rfm";
      case MitigationMode::Tprac: return "tprac";
      case MitigationMode::Obfuscation: return "obfuscation";
    }
    return "?";
}

MemoryController::MemoryController(const DramSpec &spec,
                                   const ControllerConfig &config,
                                   StatSet *stats)
    : spec_(spec), config_(config), stats_(stats), dram_(spec),
      mapper_(spec.org, config.mapping, config.interleave)
{
    const std::string defense = resolveMitigationName(config_);
    const MitigationInfo *info = findMitigation(defense);
    if (!info)
        fatal("unknown mitigation '" + defense + "'");

    PracEngineConfig prac_config = config.prac;
    if (!info->usesAbo)
        prac_config.aboEnabled = false;

    prac_ = std::make_unique<PracEngine>(spec, prac_config, stats);
    dram_.addListener(prac_.get());

    MitigationContext ctx;
    ctx.spec = &spec_;
    ctx.config = &config_;
    ctx.prac = prac_.get();
    ctx.stats = stats_;
    mitigation_ = makeMitigation(defense, ctx);

    nextRefreshAt_.resize(spec.org.ranks);
    for (std::uint32_t r = 0; r < spec.org.ranks; ++r) {
        // Stagger per-rank refreshes evenly across a tREFI.
        nextRefreshAt_[r] =
            spec.timing.tREFI * (r + 1) / spec.org.ranks;
    }
    hitStreak_.assign(spec.org.totalBanks(), 0);

    // Resolve the queue-occupancy histogram once: enqueue() is too
    // hot for a per-call map lookup.  Depth in requests, one bucket
    // per slot.  Shared across channels of one System (one StatSet):
    // the histogram profiles system-wide queue pressure.
    if (stats_)
        queueOccupancy_ = &stats_->histogram(
            "mem.queue_occupancy", 1.0, config_.queueCapacity + 1);

    // Single attach choke point for the `--series-out` surfaces:
    // when a SeriesCapture is armed, every controller -- System,
    // AttackHarness, trace replay, tests -- gets its channel's bus
    // observer here, keyed by channelIndex.  Null when disarmed.
    bus_ = telemetry::SeriesCapture::attach(
        spec_, config_.channelIndex, defense);
}

bool
MemoryController::enqueue(Request request)
{
    if (!canAccept())
        return false;
    request.arrival = now_;
    request.daddr = mapper_.map(request.addr);
    if (tap_)
        tap_->onEnqueue(request, now_);
    queue_.push_back(Entry{std::move(request), nextSeq_++});
    nextWorkCacheValid_ = false;
    if (stats_)
        ++stats_->counter(request.type == ReqType::Read ? "mem.reads"
                                                        : "mem.writes");
    if (queueOccupancy_)
        queueOccupancy_->sample(static_cast<double>(queue_.size()));
    if (bus_)
        bus_->onQueueDepth(queue_.size(), now_);
    return true;
}

void
MemoryController::finishRequest(Entry &entry, Cycle done_at)
{
    entry.req.completed = done_at;
    inFlight_.push_back(InFlight{std::move(entry), done_at});
}

void
MemoryController::startAboServiceIfNeeded()
{
    if (!prac_->alertAsserted())
        return;
    const bool act_budget_spent =
        prac_->actsSinceAlert() >= spec_.prac.aboAct;
    const bool window_elapsed =
        now_ >= prac_->alertAssertedAt() + spec_.timing.tABOACT;
    if (!act_budget_spent && !window_elapsed)
        return;

    maint_.active = true;
    maint_.isRfm = true;
    // Alert service is always Nmit channel-wide RFMabs: clear any
    // per-bank targeting left over from a prior RFMpb, or the drain
    // would service the Alert with one RFMpb to a stale bank.
    maint_.perBank = false;
    maint_.reason = RfmReason::Abo;
    maint_.rfmsRemaining = spec_.prac.nmit;
}

void
MemoryController::startProactiveRfmIfNeeded()
{
    const MaintenanceRequest req =
        mitigation_->maintenanceCommands(now_);
    if (!req.wanted)
        return;
    maint_.active = true;
    maint_.isRfm = true;
    maint_.perBank = req.perBank;
    maint_.reason = req.reason;
    maint_.flatBank = req.flatBank;
    maint_.rfmsRemaining = req.rfms;
}

void
MemoryController::startRefreshIfNeeded()
{
    if (!config_.refreshEnabled)
        return;
    // Service the most overdue rank first.
    std::uint32_t best_rank = 0;
    bool found = false;
    Cycle best_due = kNeverCycle;
    for (std::uint32_t r = 0; r < spec_.org.ranks; ++r) {
        if (now_ >= nextRefreshAt_[r] && nextRefreshAt_[r] < best_due) {
            best_due = nextRefreshAt_[r];
            best_rank = r;
            found = true;
        }
    }
    if (!found)
        return;
    maint_.active = true;
    maint_.isRfm = false;
    maint_.rank = best_rank;
}

bool
MemoryController::issueIfReady(const Command &cmd)
{
    if (!dram_.canIssue(cmd, now_))
        return false;
    dram_.issue(cmd, now_);
    if (bus_)
        bus_->onCommand(cmd, now_);
    return true;
}

bool
MemoryController::issueOrTrack(const Command &cmd, Cycle &hint)
{
    // issueIfReady plus bound tracking: a declined command's
    // earliest-legal cycle feeds the next-work hint, so a tick that
    // issues nothing leaves a ready-made nextWorkAt() cache behind
    // (structurally illegal commands report kNeverCycle and drop out
    // of the min).
    const Cycle at = dram_.earliestIssue(cmd);
    if (at > now_) {
        hint = std::min(hint, at);
        return false;
    }
    dram_.issue(cmd, now_);
    if (bus_)
        bus_->onCommand(cmd, now_);
    return true;
}

void
MemoryController::countRfm(RfmReason reason, bool per_bank)
{
    ++rfmCounts_[static_cast<std::size_t>(reason)];
    if (stats_) {
        switch (reason) {
          case RfmReason::Abo:
            ++stats_->counter("mem.abo_rfms");
            break;
          case RfmReason::Acb:
            ++stats_->counter("mem.acb_rfms");
            break;
          case RfmReason::TimingBased:
            ++stats_->counter(per_bank ? "mem.tb_rfms_pb"
                                       : "mem.tb_rfms");
            break;
          case RfmReason::Random:
            ++stats_->counter("mem.random_rfms");
            break;
          case RfmReason::Graphene:
            ++stats_->counter("mem.graphene_rfms");
            break;
          case RfmReason::PerBank:
            ++stats_->counter("mem.pb_rfms");
            break;
        }
    }
    mitigation_->onRfmIssued(reason, per_bank, now_);
}

bool
MemoryController::tickMaintenance()
{
    const DramOrg &org = spec_.org;

    if (maint_.isRfm && maint_.perBank) {
        // RFMpb drain: precharge only the target bank.
        const std::uint32_t rank =
            maint_.flatBank / org.banksPerRank();
        const std::uint32_t in_rank =
            maint_.flatBank % org.banksPerRank();
        const std::uint32_t bg = in_rank / org.banksPerGroup;
        const std::uint32_t bank = in_rank % org.banksPerGroup;

        if (dram_.isOpen(rank, bg, bank)) {
            Command pre{CmdType::PRE, rank, bg, bank, 0, 0};
            return issueOrTrack(pre, maintHint_);
        }
        Command rfm{CmdType::RFMpb, rank, bg, bank, 0, 0};
        if (!issueOrTrack(rfm, maintHint_))
            return false;
        countRfm(maint_.reason, /*per_bank=*/true);
        maint_.active = false;
        return true;
    }

    if (maint_.isRfm) {
        // Drain: precharge every open bank in the channel.
        for (std::uint32_t r = 0; r < org.ranks; ++r) {
            for (std::uint32_t bg = 0; bg < org.bankGroups; ++bg) {
                for (std::uint32_t b = 0; b < org.banksPerGroup; ++b) {
                    if (!dram_.isOpen(r, bg, b))
                        continue;
                    Command pre{CmdType::PRE, r, bg, b, 0, 0};
                    if (issueOrTrack(pre, maintHint_))
                        return true;
                }
            }
        }
        if (dram_.anyOpen())
            return false; // a precharge is pending but not yet legal

        Command rfm{CmdType::RFMab, 0, 0, 0, 0, 0};
        if (!issueOrTrack(rfm, maintHint_))
            return false;

        countRfm(maint_.reason, /*per_bank=*/false);

        if (--maint_.rfmsRemaining == 0)
            maint_.active = false;
        return true;
    }

    // Refresh drain: precharge open banks of the target rank only.
    for (std::uint32_t bg = 0; bg < org.bankGroups; ++bg) {
        for (std::uint32_t b = 0; b < org.banksPerGroup; ++b) {
            if (!dram_.isOpen(maint_.rank, bg, b))
                continue;
            Command pre{CmdType::PRE, maint_.rank, bg, b, 0, 0};
            if (issueOrTrack(pre, maintHint_))
                return true;
        }
    }
    if (dram_.anyOpenInRank(maint_.rank))
        return false;

    Command ref{CmdType::REFab, maint_.rank, 0, 0, 0, 0};
    if (!issueOrTrack(ref, maintHint_))
        return false;

    nextRefreshAt_[maint_.rank] += spec_.timing.tREFI;
    maint_.active = false;
    if (stats_)
        ++stats_->counter("mem.refreshes");
    mitigation_->onRefresh(maint_.rank, now_);
    return true;
}

bool
MemoryController::hitDeferredAtCap(
    std::deque<Entry>::const_iterator it, const DramAddress &da) const
{
    // A row hit may bypass older requests unless the streak cap is
    // reached AND an older request is waiting on the same bank with a
    // different row (the FR-FCFS starvation case the cap exists for).
    if (hitStreak_[mapper_.flatBank(da)] < config_.frfcfsCap)
        return false;
    for (auto older = queue_.begin(); older != it; ++older) {
        const DramAddress &oda = older->req.daddr;
        if (oda.sameBank(da) && oda.row != da.row)
            return true;
    }
    return false;
}

bool
MemoryController::preDeferredForPendingHit(
    const DramAddress &da, std::uint32_t open_row) const
{
    // Open-page policy: don't close a row another queued request
    // still hits, as long as the streak cap leaves it headroom.
    if (hitStreak_[mapper_.flatBank(da)] >= config_.frfcfsCap)
        return false;
    for (const Entry &other : queue_)
        if (other.req.daddr.sameBank(da) &&
            other.req.daddr.row == open_row)
            return true;
    return false;
}

bool
MemoryController::tickDemand()
{
    if (queue_.empty())
        return false;

    const bool refresh_drain = maint_.active && !maint_.isRfm;
    const bool rfmpb_drain =
        maint_.active && maint_.isRfm && maint_.perBank;
    const bool acts_blocked =
        prac_->alertAsserted() &&
        prac_->actsSinceAlert() >= spec_.prac.aboAct;

    auto blocked_by_drain = [&](const DramAddress &da) {
        if (refresh_drain && da.rank == maint_.rank)
            return true;
        if (rfmpb_drain && mapper_.flatBank(da) == maint_.flatBank)
            return true;
        return false;
    };

    // Pass 1: oldest ready row-hit, subject to the streak cap.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const DramAddress &da = it->req.daddr;
        if (blocked_by_drain(da))
            continue;
        if (!dram_.isOpen(da.rank, da.bankGroup, da.bank) ||
            dram_.openRow(da.rank, da.bankGroup, da.bank) != da.row)
            continue;
        const std::uint32_t flat = mapper_.flatBank(da);
        if (hitDeferredAtCap(it, da))
            continue; // let the conflicting older request make progress

        const bool is_read = it->req.type == ReqType::Read;
        Command cas{is_read ? CmdType::RD : CmdType::WR, da.rank,
                    da.bankGroup, da.bank, da.row, da.col};
        if (!issueOrTrack(cas, demandHint_))
            continue;

        ++hitStreak_[flat];
        if (stats_)
            ++stats_->counter("mem.row_hits");
        const Cycle done = is_read
                               ? now_ + spec_.timing.readLatency()
                               : now_ + spec_.timing.writeLatency();
        Entry entry = std::move(*it);
        queue_.erase(it);
        finishRequest(entry, done);
        return true;
    }

    // Pass 2: oldest-first, issue whatever the head-of-line request
    // needs next (PRE on conflict, ACT on closed bank).
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const DramAddress &da = it->req.daddr;
        if (blocked_by_drain(da))
            continue;

        const bool open = dram_.isOpen(da.rank, da.bankGroup, da.bank);
        const std::uint32_t flat = mapper_.flatBank(da);

        if (open && dram_.openRow(da.rank, da.bankGroup, da.bank) !=
                        da.row) {
            // Row conflict: close the current row -- but not while
            // another queued request still hits it (open-page policy;
            // the streak cap bounds how long conflicts can starve).
            const std::uint32_t open_row =
                dram_.openRow(da.rank, da.bankGroup, da.bank);
            if (preDeferredForPendingHit(da, open_row))
                continue;
            Command pre{CmdType::PRE, da.rank, da.bankGroup, da.bank, 0,
                        0};
            if (issueOrTrack(pre, demandHint_)) {
                hitStreak_[flat] = 0;
                if (stats_)
                    ++stats_->counter("mem.row_conflicts");
                return true;
            }
            continue;
        }
        if (!open) {
            if (acts_blocked)
                continue; // honour the ABOACT budget
            Command act{CmdType::ACT, da.rank, da.bankGroup, da.bank,
                        da.row, 0};
            if (issueOrTrack(act, demandHint_)) {
                hitStreak_[flat] = 0;
                mitigation_->onActivate(flat, da.row, now_);
                if (stats_)
                    ++stats_->counter("mem.row_misses");
                return true;
            }
            continue;
        }
        // Open with the right row but the CAS was not ready in pass 1
        // (or was capped); nothing else to do for this entry.
    }
    return false;
}

void
MemoryController::tick()
{
    ++sched_.ticksFired;
    prac_->maybePeriodicReset(now_);
    demandHint_ = kNeverCycle;
    maintHint_ = kNeverCycle;

    // Deliver finished requests.
    for (std::size_t i = 0; i < inFlight_.size();) {
        if (inFlight_[i].doneAt <= now_) {
            Entry entry = std::move(inFlight_[i].entry);
            inFlight_[i] = std::move(inFlight_.back());
            inFlight_.pop_back();
            if (stats_ && entry.req.type == ReqType::Read) {
                stats_->histogram("mem.read_latency_ns")
                    .sample(cyclesToNs(entry.req.latency()));
            }
            if (entry.req.onComplete)
                entry.req.onComplete(entry.req);
        } else {
            ++i;
        }
    }

    if (!maint_.active)
        startAboServiceIfNeeded();
    if (!maint_.active)
        startProactiveRfmIfNeeded();
    if (!maint_.active)
        startRefreshIfNeeded();

    bool issued = false;
    if (maint_.active)
        issued = tickMaintenance();

    // Demand may proceed when no maintenance holds the channel, or
    // when only a single-rank refresh / single-bank RFMpb drain is in
    // progress (that's the point of the per-bank extension).
    bool demand_issued = false;
    if (!issued &&
        (!maint_.active || !maint_.isRfm || maint_.perBank))
        demand_issued = tickDemand();

    if (bus_) {
        // Delta-poll ABO assertions and defense mitigation events at
        // end of tick: both mutate only inside tick() (via DRAM
        // listeners and the mitigation hooks above), and the set of
        // ticked cycles is identical between the lockstep and
        // event-driven clocks, so the series cannot depend on the
        // scheduling mode.
        const std::uint64_t alerts = prac_->alerts();
        if (alerts != busAboMark_) {
            bus_->onAboAlert(alerts - busAboMark_, now_);
            busAboMark_ = alerts;
        }
        const std::uint64_t events = mitigation_->eventsTriggered();
        if (events != busMitMark_) {
            bus_->onMitigationEvents(events - busMitMark_, now_);
            busMitMark_ = events;
        }
    }

    ++now_;
    if (issued || demand_issued) {
        nextWorkCacheValid_ = false;
    } else {
        // A tick that issued nothing already scanned every candidate
        // the bound functions would scan: the declined commands'
        // earliest-issue hints rebuild the cache with only O(inflight
        // + ranks) glue instead of a second queue sweep.  The hints
        // are absolute legality instants, so they remain exact at the
        // incremented clock.
        nextWorkCache_ = composeNextWorkAt(demandHint_, maintHint_);
        nextWorkCacheValid_ = true;
        ++sched_.nextWorkHintRebuilds;
    }
}

void
MemoryController::run(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    while (now_ < end)
        tick();
}

Cycle
MemoryController::nextMaintenanceIssueAt() const
{
    // First cycle tickMaintenance() issues its next command.  Exact
    // because the drain state machine is deterministic and the DRAM
    // timing state is frozen between commands: a per-bank PRE's
    // legality depends only on its own bank's last ACT/CAS, and the
    // terminal RFM/REF becomes legal only once every required bank is
    // precharged -- which is exactly when the drain stops issuing
    // PREs.  tickMaintenance() takes the first *ready* PRE in scan
    // order, so the earliest legality over all open banks is the
    // cycle the next PRE actually fires.
    const DramOrg &org = spec_.org;

    if (maint_.isRfm && maint_.perBank) {
        const std::uint32_t rank =
            maint_.flatBank / org.banksPerRank();
        const std::uint32_t in_rank =
            maint_.flatBank % org.banksPerRank();
        const std::uint32_t bg = in_rank / org.banksPerGroup;
        const std::uint32_t bank = in_rank % org.banksPerGroup;
        if (dram_.isOpen(rank, bg, bank))
            return dram_.earliestIssue(
                Command{CmdType::PRE, rank, bg, bank, 0, 0});
        return dram_.earliestIssue(
            Command{CmdType::RFMpb, rank, bg, bank, 0, 0});
    }

    if (maint_.isRfm) {
        Cycle next = kNeverCycle;
        bool any_open = false;
        for (std::uint32_t r = 0; r < org.ranks; ++r) {
            for (std::uint32_t bg = 0; bg < org.bankGroups; ++bg) {
                for (std::uint32_t b = 0; b < org.banksPerGroup;
                     ++b) {
                    if (!dram_.isOpen(r, bg, b))
                        continue;
                    any_open = true;
                    next = std::min(
                        next, dram_.earliestIssue(Command{
                                  CmdType::PRE, r, bg, b, 0, 0}));
                }
            }
        }
        if (any_open)
            return next;
        return dram_.earliestIssue(
            Command{CmdType::RFMab, 0, 0, 0, 0, 0});
    }

    Cycle next = kNeverCycle;
    bool any_open = false;
    for (std::uint32_t bg = 0; bg < org.bankGroups; ++bg) {
        for (std::uint32_t b = 0; b < org.banksPerGroup; ++b) {
            if (!dram_.isOpen(maint_.rank, bg, b))
                continue;
            any_open = true;
            next = std::min(next,
                            dram_.earliestIssue(Command{
                                CmdType::PRE, maint_.rank, bg, b, 0,
                                0}));
        }
    }
    if (any_open)
        return next;
    return dram_.earliestIssue(
        Command{CmdType::REFab, maint_.rank, 0, 0, 0, 0});
}

Cycle
MemoryController::nextDemandIssueAt() const
{
    // Demand: the earliest cycle at which any command tickDemand()
    // would be willing to issue -- CAS on a row hit, PRE on a row
    // conflict, ACT on a closed bank -- becomes legal under the DRAM
    // timing state.  The deferral predicates are the same functions
    // tickDemand() calls: they depend only on queue content,
    // open-row state, hit streaks, and the drain/Alert blocks, all
    // of which are frozen while no command issues, so a candidate
    // declined today stays declined until some other candidate fires
    // first.
    if (queue_.empty())
        return kNeverCycle;

    const bool refresh_drain = maint_.active && !maint_.isRfm;
    const bool rfmpb_drain =
        maint_.active && maint_.isRfm && maint_.perBank;
    const bool acts_blocked =
        prac_->alertAsserted() &&
        prac_->actsSinceAlert() >= spec_.prac.aboAct;

    auto blocked_by_drain = [&](const DramAddress &da) {
        if (refresh_drain && da.rank == maint_.rank)
            return true;
        if (rfmpb_drain && mapper_.flatBank(da) == maint_.flatBank)
            return true;
        return false;
    };

    Cycle next = kNeverCycle;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const DramAddress &da = it->req.daddr;
        if (blocked_by_drain(da))
            continue;
        const bool open = dram_.isOpen(da.rank, da.bankGroup, da.bank);
        Command cmd{CmdType::ACT, da.rank, da.bankGroup, da.bank,
                    da.row, 0};
        if (open && dram_.openRow(da.rank, da.bankGroup, da.bank) ==
                        da.row) {
            if (hitDeferredAtCap(it, da))
                continue;
            cmd = Command{it->req.type == ReqType::Read ? CmdType::RD
                                                        : CmdType::WR,
                          da.rank, da.bankGroup, da.bank, da.row,
                          da.col};
        } else if (open) {
            if (preDeferredForPendingHit(
                    da, dram_.openRow(da.rank, da.bankGroup,
                                      da.bank)))
                continue;
            cmd = Command{CmdType::PRE, da.rank, da.bankGroup,
                          da.bank, 0, 0};
        } else if (acts_blocked) {
            continue; // the ABOACT budget blocks new activations
        }
        next = std::min(next, dram_.earliestIssue(cmd));
        if (next <= now_)
            return now_;
    }
    return next;
}

Cycle
MemoryController::nextWorkAt() const
{
    if (!nextWorkCacheValid_) {
        nextWorkCache_ = computeNextWorkAt();
        nextWorkCacheValid_ = true;
        ++sched_.nextWorkRebuilds;
    } else {
        ++sched_.nextWorkCacheHits;
    }
    // A valid cached bound can sit behind the clock only when the
    // caller skipped to it and is about to tick; clamping keeps the
    // contract (>= now()) without recomputing.
    return std::max(nextWorkCache_, now_);
}

Cycle
MemoryController::computeNextWorkAt() const
{
    return composeNextWorkAt(nextDemandIssueAt(),
                             maint_.active ? nextMaintenanceIssueAt()
                                           : kNeverCycle);
}

Cycle
MemoryController::composeNextWorkAt(Cycle demand_at,
                                    Cycle maint_at) const
{
    Cycle next = kNeverCycle;

    // Deliveries and the tREFW counter reset are absolute deadlines,
    // live in every controller state.  A delivery is an effect only
    // when someone can observe it -- a stats sink (latency histogram)
    // or a completion callback; the queue slot was already freed when
    // the CAS issued, so an unobserved flight (trace replay) needs no
    // wake-up and is collected lazily by a later tick.
    for (const InFlight &flight : inFlight_)
        if (stats_ || flight.entry.req.onComplete)
            next = std::min(next, flight.doneAt);
    next = std::min(next, prac_->nextCounterResetAt());

    if (maint_.active) {
        // An active drain owns the command engine: the next effect
        // is the drain's own next legal command, plus demand on the
        // banks a single-rank refresh / single-bank RFMpb drain
        // leaves schedulable.  Defense deadlines, refresh due times,
        // and Alert-service triggers are NOT polled while a drain is
        // active -- the drain's terminal RFM/REF is itself a tick,
        // after which the bound is recomputed with them back in.
        next = std::min(next, maint_at);
        if (!maint_.isRfm || maint_.perBank)
            next = std::min(next, demand_at);
        return std::max(next, now_);
    }

    if (prac_->alertAsserted()) {
        // Alert service starts the moment the ACT budget is spent;
        // until then the tABOACT window expiry is a hard trigger and
        // demand (which burns the budget) keeps running.
        if (prac_->actsSinceAlert() >= spec_.prac.aboAct)
            return now_;
        next = std::min(next, prac_->alertAssertedAt() +
                                  spec_.timing.tABOACT);
    }

    next = std::min(next, demand_at);
    if (config_.refreshEnabled)
        for (const Cycle due : nextRefreshAt_)
            next = std::min(next, due);
    next = std::min(next, mitigation_->nextMaintenanceAt(now_));
    return std::max(next, now_);
}

void
MemoryController::skipTo(Cycle target)
{
    if (target > now_) {
        sched_.cyclesJumped += target - now_;
        now_ = target;
    }
}

void
MemoryController::advanceTo(Cycle target)
{
    // Skip only on a cached bound.  When the cache is invalid (the
    // last tick issued, or a request arrived), tick immediately
    // rather than paying a full bound recomputation: ticking is
    // always behaviour-identical (lockstep is nothing but ticks), a
    // busy channel most likely has work next cycle anyway, and the
    // first tick that issues nothing rebuilds the cache as a free
    // by-product of its own scans -- so the full computeNextWorkAt()
    // sweep never runs on this path at all.
    while (now_ < target) {
        if (nextWorkCacheValid_) {
            const Cycle at = std::max(nextWorkCache_, now_);
            if (at > now_) {
                const Cycle to = std::min(at, target);
                sched_.cyclesJumped += to - now_;
                now_ = to;
                continue;
            }
        }
        tick();
    }
}

} // namespace pracleak
