/**
 * @file
 * DDR5 memory controller with FR-FCFS scheduling, open-page policy,
 * auto-refresh, and a pluggable RowHammer defense (see
 * src/mitigation/): the controller owns the command engine -- Alert
 * service, maintenance drains, refresh -- and delegates every
 * defense-specific decision (when to issue a proactive RFM, which
 * bank, at what deadline) to a Mitigation instance resolved from the
 * string-keyed registry.
 *
 * The legacy MitigationMode enum remains the convenient configuration
 * surface for the paper's modes and maps 1:1 onto registry keys:
 *
 *  - NoMitigation ("none") : PRAC timings, no ABO, no RFMs (the
 *    paper's normalization baseline).
 *  - AboOnly ("abo-only")  : DRAM asserts Alert at NBO; controller
 *    services it with Nmit RFMab commands (insecure: ABO-RFMs leak).
 *  - AboAcb ("abo+acb-rfm"): AboOnly plus proactive Activation-Based
 *    RFMs at the Bank Activation Threshold (insecure: ACB-RFMs leak).
 *  - Tprac ("tprac")       : Timing-Based RFMs at a fixed TB-Window,
 *    ABO kept armed only as a safety net.
 *  - Obfuscation           : ABO plus random RFMab injection
 *    (Section 7.1 ablation).
 *
 * New-generation defenses (PARA, Graphene, PB-RFM) have no enum
 * value; select them via ControllerConfig::mitigation.
 *
 * The controller issues at most one command per cycle, with priority
 * maintenance-over-demand: an in-flight RFM sequence first, then due
 * refreshes, then demand requests.
 */

#ifndef PRACLEAK_MEM_CONTROLLER_H
#define PRACLEAK_MEM_CONTROLLER_H

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "dram/dram.h"
#include "mem/address_mapper.h"
#include "mem/request.h"
#include "mitigation/configs.h"
#include "mitigation/mitigation.h"
#include "prac/prac_engine.h"
#include "tprac/tb_rfm.h"

namespace pracleak {

namespace telemetry {
class BusObserver;
}

/** Legacy top-level mitigation strategy selector. */
enum class MitigationMode : std::uint8_t
{
    NoMitigation,
    AboOnly,
    AboAcb,
    Tprac,

    /**
     * Section 7.1 alternative: ABO stays armed, and the controller
     * additionally injects RFMabs at random (Bernoulli draw once per
     * tREFI) to obfuscate the timing channel.  Does NOT eliminate
     * ABO-RFMs -- provided for the leakage-vs-cost ablation.
     */
    Obfuscation,
};

const char *mitigationModeName(MitigationMode mode);

/**
 * Observer of the controller's enqueue boundary.  The trace subsystem
 * (src/trace/) installs one per channel to serialize the accepted
 * request stream; the hook fires only for requests that were actually
 * admitted, so a recorded trace replays 1:1 against a fresh
 * controller.  Taps must not mutate controller state.
 */
class RequestTap
{
  public:
    virtual ~RequestTap() = default;

    /** @p request was accepted at controller cycle @p now. */
    virtual void onEnqueue(const Request &request, Cycle now) = 0;
};

/** Controller configuration. */
struct ControllerConfig
{
    MappingScheme mapping = MappingScheme::Mop4;

    /**
     * System-level channel striping.  Each controller owns one
     * channel; the mapper strips the selector bits so per-channel
     * coordinates are dense.  channels == 1 is the classic
     * single-channel configuration, bit-identical to the pre-
     * multi-channel code.
     */
    ChannelInterleave interleave{};
    std::size_t queueCapacity = 64;     //!< outstanding requests
    std::uint32_t frfcfsCap = 4;        //!< row-hit streak cap
    bool refreshEnabled = true;

    MitigationMode mode = MitigationMode::NoMitigation;

    /**
     * String-keyed defense selection (mitigation/registry.h).  When
     * non-empty it takes precedence over `mode`; the legacy enum maps
     * onto the keys "none", "abo-only", "abo+acb-rfm", "tprac", and
     * "obfuscation".
     */
    std::string mitigation;

    /**
     * Index of this controller's channel within the system; selects
     * the per-channel RNG stream of stochastic defenses (PARA).
     */
    std::uint32_t channelIndex = 0;

    PracEngineConfig prac{};
    std::uint32_t bat = 0;              //!< ACB threshold (AboAcb mode)
    TbRfmConfig tbRfm{};                //!< TPRAC window (Tprac mode)
    ParaConfig para{};                  //!< "para" defense
    GrapheneConfig graphene{};          //!< "graphene" defense
    PbRfmConfig pbRfm{};                //!< "pb-rfm" defense

    /** Obfuscation mode: P(inject one RFM) per tREFI. */
    double randomRfmPerTrefi = 0.5;
    std::uint64_t obfuscationSeed = 0xDEC0'D5ULL;
};

/**
 * Scheduler-efficiency counters: where the event-driven scheduler's
 * speedup comes from, per channel.  Plain always-on integers bumped
 * on the tick/advance paths (a StatSet map lookup per tick would
 * cost more than the tick); System::run publishes measure-window
 * deltas into the StatSet and RunResult.
 */
struct SchedCounters
{
    std::uint64_t ticksFired = 0;   //!< tick() invocations
    std::uint64_t cyclesJumped = 0; //!< cycles advanced without a tick
    std::uint64_t nextWorkCacheHits = 0; //!< nextWorkAt() cache hits
    std::uint64_t nextWorkRebuilds = 0;  //!< full computeNextWorkAt()
    std::uint64_t nextWorkHintRebuilds = 0; //!< cheap from tick hints
};

/** One-channel memory controller. */
class MemoryController
{
  public:
    MemoryController(const DramSpec &spec, const ControllerConfig &config,
                     StatSet *stats = nullptr);

    /** Whether the request queue can take another entry. */
    bool canAccept() const { return queue_.size() < config_.queueCapacity; }

    /** Enqueue a request; returns false when the queue is full. */
    bool enqueue(Request request);

    /** Advance one cycle: issue at most one DRAM command. */
    void tick();

    /** Advance @p cycles cycles, ticking every one (pure lockstep). */
    void run(Cycle cycles);

    /**
     * Event-driven stepping: advance the clock to @p target, ticking
     * only on cycles where tick() could have an effect and jumping
     * over the provably-dead cycles in between (nextWorkAt()).
     * Behaviour and statistics are bit-identical to calling tick()
     * target-now() times; the bound is cached between calls and
     * invalidated by the only two state-mutating entry points --
     * tick() and a successful enqueue() -- so a quiescent channel
     * advances in O(1) per call instead of O(queue) per cycle.
     */
    void advanceTo(Cycle target);

    /**
     * Earliest cycle >= now() at which tick() could have any effect:
     * the first cycle a queued request's CAS/PRE/ACT becomes legal
     * under the DRAM timing state, an in-flight completion, a refresh
     * deadline, the defense's next maintenance deadline, the tREFW
     * counter reset, or -- during an active RFM/REF drain -- the
     * first cycle the drain's next PRE/RFM/REF command itself becomes
     * legal (plus demand on the banks a per-rank/per-bank drain
     * leaves schedulable).  Cycles strictly before the returned value
     * are provably dead and may be skipped; exactness (never later
     * than the first effective tick) is the contract the event-driven
     * scheduler rests on -- see src/mem/DESIGN.md.
     */
    Cycle nextWorkAt() const;

    /**
     * Jump the clock forward to @p target without ticking.  The
     * caller must guarantee nextWorkAt() >= target (idle-cycle
     * fast-forward); targets at or before now() are ignored.
     */
    void skipTo(Cycle target);

    Cycle now() const { return now_; }
    std::size_t queueDepth() const { return queue_.size(); }

    DramDevice &dram() { return dram_; }
    const DramDevice &dram() const { return dram_; }
    PracEngine &prac() { return *prac_; }
    const PracEngine &prac() const { return *prac_; }
    const AddressMapper &mapper() const { return mapper_; }
    const ControllerConfig &config() const { return config_; }

    /** The active defense (never null). */
    const Mitigation &mitigation() const { return *mitigation_; }

    /** Defense-specific mitigation events (telemetry shortcut). */
    std::uint64_t mitigationEvents() const
    {
        return mitigation_->eventsTriggered();
    }

    /** TB-RFM scheduler when the defense owns one, else nullptr. */
    const TbRfmScheduler *tbScheduler() const
    {
        return mitigation_->tbScheduler();
    }

    /** RFM count by reason. */
    std::uint64_t rfmCount(RfmReason reason) const
    {
        return rfmCounts_[static_cast<std::size_t>(reason)];
    }

    /** Install (or clear, with nullptr) the enqueue-boundary tap. */
    void setRequestTap(RequestTap *tap) { tap_ = tap; }

    /**
     * Install (or clear) the windowed bus-series observer
     * (telemetry/timeseries.h).  The constructor already installs
     * one automatically when a SeriesCapture is armed; this setter
     * exists for experiments that record a series without the
     * process-global capture.  Not owned.  Null costs one pointer
     * test per hook site -- the same zero-cost-when-off idiom as
     * TraceSession.
     */
    void setBusObserver(telemetry::BusObserver *bus) { bus_ = bus; }
    telemetry::BusObserver *busObserver() const { return bus_; }

    /** Scheduler-efficiency telemetry since construction. */
    const SchedCounters &schedCounters() const { return sched_; }

  private:
    struct Entry
    {
        Request req;
        std::uint64_t seq;      //!< age for FCFS ordering
    };

    /** Multi-cycle maintenance sequence (precharge-all then RFM/REF). */
    struct Maintenance
    {
        bool active = false;
        bool isRfm = false;     //!< else refresh
        bool perBank = false;   //!< RFMpb instead of RFMab
        RfmReason reason = RfmReason::Abo;
        std::uint32_t rank = 0; //!< refresh target
        std::uint32_t flatBank = 0; //!< RFMpb target
        std::uint32_t rfmsRemaining = 0;
    };

    void startAboServiceIfNeeded();
    void startProactiveRfmIfNeeded();
    void startRefreshIfNeeded();
    bool tickMaintenance();
    bool tickDemand();

    /**
     * FR-FCFS deferral predicates, shared between tickDemand() and
     * nextWorkAt() so the scheduler and its fast-forward bound
     * cannot drift: a row hit is declined at the streak cap while an
     * older same-bank conflict starves, and a conflict PRE is held
     * while a queued request still hits the open row below the cap.
     */
    bool hitDeferredAtCap(std::deque<Entry>::const_iterator it,
                          const DramAddress &da) const;
    bool preDeferredForPendingHit(const DramAddress &da,
                                  std::uint32_t open_row) const;
    /**
     * Exact event bounds backing nextWorkAt().  Each returns the
     * first cycle the corresponding tick path could issue a command,
     * computed from the same predicates the tick path evaluates, so
     * the scheduler and its bound cannot drift (the fast-forward
     * exactness invariant, src/mem/DESIGN.md).
     */
    Cycle nextMaintenanceIssueAt() const;
    Cycle nextDemandIssueAt() const;
    Cycle computeNextWorkAt() const;
    Cycle composeNextWorkAt(Cycle demand_at, Cycle maint_at) const;

    bool issueIfReady(const Command &cmd);
    bool issueOrTrack(const Command &cmd, Cycle &hint);
    void finishRequest(Entry &entry, Cycle done_at);
    void countRfm(RfmReason reason, bool per_bank);

    DramSpec spec_;
    ControllerConfig config_;
    StatSet *stats_;
    RequestTap *tap_ = nullptr;
    telemetry::BusObserver *bus_ = nullptr;

    /**
     * Delta-poll marks for the end-of-tick bus-observer hooks: ABO
     * assertions and defense mitigation events are counted by their
     * owners; the observer sees per-tick deltas, which pins the
     * series to cycles that tick in both clock modes.
     */
    std::uint64_t busAboMark_ = 0;
    std::uint64_t busMitMark_ = 0;

    DramDevice dram_;
    AddressMapper mapper_;
    std::unique_ptr<PracEngine> prac_;
    std::unique_ptr<Mitigation> mitigation_;

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::deque<Entry> queue_;

    /** Completed-in-future requests waiting for their done time. */
    struct InFlight
    {
        Entry entry;
        Cycle doneAt;
    };
    std::vector<InFlight> inFlight_;

    std::vector<Cycle> nextRefreshAt_;
    Maintenance maint_;

    /**
     * Memoized nextWorkAt().  Every bound is an absolute cycle valid
     * while the controller state is frozen, so the cache survives
     * skipTo() and is dropped only by tick() and enqueue().
     */
    mutable Cycle nextWorkCache_ = 0;
    mutable bool nextWorkCacheValid_ = false;

    /**
     * Earliest-issue bounds tracked as a free by-product of the tick
     * scans: when a tick issues nothing, the scans it ran anyway have
     * already visited every candidate, so the next-work cache can be
     * rebuilt from these hints without a second sweep.
     */
    Cycle demandHint_ = kNeverCycle;
    Cycle maintHint_ = kNeverCycle;

    /** mutable: nextWorkAt() is const but counts hits/rebuilds. */
    mutable SchedCounters sched_;

    /** Cached &stats_->histogram("mem.queue_occupancy") (or null). */
    Histogram *queueOccupancy_ = nullptr;

    std::vector<std::uint32_t> hitStreak_;
    std::array<std::uint64_t, kRfmReasonCount> rfmCounts_{};
};

} // namespace pracleak

#endif // PRACLEAK_MEM_CONTROLLER_H
