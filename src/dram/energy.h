/**
 * @file
 * Analytic DDR5 energy model.
 *
 * The paper reports Table 5 (energy overhead of TPRAC) from a real
 * power model; we substitute IDD-style per-operation energies plus a
 * background power term.  Absolute joules are approximate, but the
 * *relative* overheads (mitigation vs. execution-time energy) that
 * Table 5 reports survive this substitution because both designs are
 * scored with the same constants.
 */

#ifndef PRACLEAK_DRAM_ENERGY_H
#define PRACLEAK_DRAM_ENERGY_H

#include <cstdint>

#include "common/types.h"
#include "dram/dram.h"

namespace pracleak {

/** Per-operation energies (nJ) and background power (W) per channel. */
struct EnergyParams
{
    double actPreNj = 1.4;      //!< one ACT + eventual PRE (8 KB row)
    double readNj = 1.1;        //!< one BL16 read burst
    double writeNj = 1.2;       //!< one BL16 write burst
    double refAbNj = 180.0;     //!< one all-bank refresh, per rank
    double rowMitigationNj = 4.0;   //!< 4 victim refreshes + counter reset
    double backgroundW = 1.2;   //!< static + peripheral power (4 ranks)
};

/** Raw event counts for one (window of a) simulation run. */
struct EnergyCounts
{
    std::uint64_t acts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t mitigatedRows = 0;
    Cycle elapsed = 0;

    /**
     * Aggregate another channel's counts.  elapsed is wall time, not
     * work: channels tick in lockstep, so it takes the max (identity
     * for the single-channel case).
     */
    EnergyCounts &operator+=(const EnergyCounts &other);
};

/** Decomposed energy for one simulation run. */
struct EnergyBreakdown
{
    double actPreNj = 0.0;
    double readNj = 0.0;
    double writeNj = 0.0;
    double refreshNj = 0.0;
    double mitigationNj = 0.0;  //!< RFM-driven row mitigations
    double backgroundNj = 0.0;

    double
    totalNj() const
    {
        return actPreNj + readNj + writeNj + refreshNj + mitigationNj +
               backgroundNj;
    }

    /** Aggregate another channel's breakdown (component-wise sum). */
    EnergyBreakdown &operator+=(const EnergyBreakdown &other);
};

/** Score a set of raw event counts. */
EnergyBreakdown computeEnergy(const EnergyCounts &counts,
                              const EnergyParams &params = {});

/**
 * Convenience wrapper reading the counts from a device's lifetime
 * issue counters.
 *
 * @param mitigated_rows Rows mitigated by RFMs/TREFs (from PracEngine).
 */
EnergyBreakdown computeEnergy(const DramDevice &dev, Cycle elapsed,
                              std::uint64_t mitigated_rows,
                              const EnergyParams &params = {});

} // namespace pracleak

#endif // PRACLEAK_DRAM_ENERGY_H
