#include "dram/dram.h"

#include <algorithm>

#include "common/log.h"

namespace pracleak {

DramDevice::DramDevice(const DramSpec &spec)
    : spec_(spec),
      banks_(spec.org.totalBanks()),
      ranks_(spec.org.ranks)
{
    for (auto &rank : ranks_) {
        rank.actTimes.fill(kNeverCycle);
        rank.lastActByBg.assign(spec_.org.bankGroups, kNeverCycle);
        rank.nextCasByBg.assign(spec_.org.bankGroups, 0);
    }
}

void
DramDevice::addListener(DramListener *listener)
{
    listeners_.push_back(listener);
}

std::size_t
DramDevice::bankIndex(std::uint32_t rank, std::uint32_t bg,
                      std::uint32_t bank) const
{
    return (static_cast<std::size_t>(rank) * spec_.org.bankGroups + bg) *
               spec_.org.banksPerGroup +
           bank;
}

const DramDevice::BankState &
DramDevice::bankOf(const Command &cmd) const
{
    return banks_[bankIndex(cmd.rank, cmd.bankGroup, cmd.bank)];
}

DramDevice::BankState &
DramDevice::bankOf(const Command &cmd)
{
    return banks_[bankIndex(cmd.rank, cmd.bankGroup, cmd.bank)];
}

bool
DramDevice::isOpen(std::uint32_t rank, std::uint32_t bg,
                   std::uint32_t bank) const
{
    return banks_[bankIndex(rank, bg, bank)].open;
}

std::uint32_t
DramDevice::openRow(std::uint32_t rank, std::uint32_t bg,
                    std::uint32_t bank) const
{
    return banks_[bankIndex(rank, bg, bank)].row;
}

bool
DramDevice::anyOpenInRank(std::uint32_t rank) const
{
    const std::size_t begin = bankIndex(rank, 0, 0);
    const std::size_t end = begin + spec_.org.banksPerRank();
    for (std::size_t i = begin; i < end; ++i)
        if (banks_[i].open)
            return true;
    return false;
}

bool
DramDevice::anyOpen() const
{
    return std::any_of(banks_.begin(), banks_.end(),
                       [](const BankState &b) { return b.open; });
}

Cycle
DramDevice::rankBlockedUntil(std::uint32_t rank) const
{
    return ranks_[rank].blockedUntil;
}

Cycle
DramDevice::earliestIssue(const Command &cmd) const
{
    switch (cmd.type) {
      case CmdType::ACT: return earliestAct(cmd);
      case CmdType::PRE: return earliestPre(cmd);
      case CmdType::RD: return earliestCas(cmd, true);
      case CmdType::WR: return earliestCas(cmd, false);
      case CmdType::REFab: return earliestRef(cmd);
      case CmdType::RFMab: return earliestRfm();
      case CmdType::RFMpb: return earliestRfmPb(cmd);
    }
    return kNeverCycle;
}

bool
DramDevice::canIssue(const Command &cmd, Cycle now) const
{
    const Cycle earliest = earliestIssue(cmd);
    return earliest != kNeverCycle && earliest <= now;
}

Cycle
DramDevice::earliestAct(const Command &cmd) const
{
    const BankState &bank = bankOf(cmd);
    if (bank.open)
        return kNeverCycle;

    const RankState &rank = ranks_[cmd.rank];
    Cycle t = std::max({bank.nextAct, rank.blockedUntil,
                        channelBlockedUntil_});

    // tFAW: at most four ACTs per rank per window.
    const Cycle oldest = rank.actTimes[rank.actPtr];
    if (oldest != kNeverCycle)
        t = std::max(t, oldest + spec_.timing.tFAW);

    // tRRD: ACT-to-ACT spacing within the rank.
    if (rank.lastActAny != kNeverCycle)
        t = std::max(t, rank.lastActAny + spec_.timing.tRRD_S);
    const Cycle last_same_bg = rank.lastActByBg[cmd.bankGroup];
    if (last_same_bg != kNeverCycle)
        t = std::max(t, last_same_bg + spec_.timing.tRRD_L);

    return t;
}

Cycle
DramDevice::earliestPre(const Command &cmd) const
{
    const BankState &bank = bankOf(cmd);
    if (!bank.open)
        return kNeverCycle;
    return std::max({bank.nextPre, ranks_[cmd.rank].blockedUntil,
                     channelBlockedUntil_});
}

Cycle
DramDevice::earliestCas(const Command &cmd, bool is_read) const
{
    const BankState &bank = bankOf(cmd);
    if (!bank.open || bank.row != cmd.row)
        return kNeverCycle;

    const RankState &rank = ranks_[cmd.rank];
    Cycle t = std::max({is_read ? bank.nextRd : bank.nextWr,
                        rank.blockedUntil, channelBlockedUntil_});
    t = std::max(t, rank.nextCasAny);
    t = std::max(t, rank.nextCasByBg[cmd.bankGroup]);
    // The data bus changes direction channel-wide; tWTR additionally
    // gates same-rank reads after a write.
    t = std::max(t, is_read ? busRdAllowedAt_ : busWrAllowedAt_);
    if (is_read)
        t = std::max(t, rank.rdAllowedAt);

    // The data bus must be free when this burst's data would start.
    const Cycle data_lead =
        is_read ? spec_.timing.tCL : spec_.timing.tCWL;
    if (busFreeAt_ > t + data_lead)
        t = busFreeAt_ - data_lead;

    return t;
}

Cycle
DramDevice::earliestRef(const Command &cmd) const
{
    if (anyOpenInRank(cmd.rank))
        return kNeverCycle;

    const RankState &rank = ranks_[cmd.rank];
    Cycle t = std::max(rank.blockedUntil, channelBlockedUntil_);
    // All banks must have completed their precharges.
    const std::size_t begin = bankIndex(cmd.rank, 0, 0);
    const std::size_t end = begin + spec_.org.banksPerRank();
    for (std::size_t i = begin; i < end; ++i)
        t = std::max(t, banks_[i].nextAct);
    return t;
}

Cycle
DramDevice::earliestRfm() const
{
    if (anyOpen())
        return kNeverCycle;

    Cycle t = channelBlockedUntil_;
    for (const auto &rank : ranks_)
        t = std::max(t, rank.blockedUntil);
    for (const auto &bank : banks_)
        t = std::max(t, bank.nextAct);
    return t;
}

void
DramDevice::issue(const Command &cmd, Cycle now)
{
    if (!canIssue(cmd, now))
        panic("illegal command issue at cycle " + std::to_string(now) +
              ": " + cmd.str());

    switch (cmd.type) {
      case CmdType::ACT: issueAct(cmd, now); break;
      case CmdType::PRE: issuePre(cmd, now); break;
      case CmdType::RD: issueCas(cmd, now, true); break;
      case CmdType::WR: issueCas(cmd, now, false); break;
      case CmdType::REFab: issueRef(cmd, now); break;
      case CmdType::RFMab: issueRfm(now); break;
      case CmdType::RFMpb: issueRfmPb(cmd, now); break;
    }

    ++issueCounts_[static_cast<std::size_t>(cmd.type)];
    if (traceSink_)
        traceSink_(cmd, now);
}

void
DramDevice::issueAct(const Command &cmd, Cycle now)
{
    BankState &bank = bankOf(cmd);
    bank.open = true;
    bank.row = cmd.row;
    bank.nextRd = now + spec_.timing.tRCD;
    bank.nextWr = now + spec_.timing.tRCD;
    bank.nextPre = now + spec_.timing.tRAS;
    bank.nextAct = now + spec_.timing.tRC;

    RankState &rank = ranks_[cmd.rank];
    rank.actTimes[rank.actPtr] = now;
    rank.actPtr = (rank.actPtr + 1) % rank.actTimes.size();
    rank.lastActAny = now;
    rank.lastActByBg[cmd.bankGroup] = now;

    const std::uint32_t flat = spec_.org.flatBank(
        cmd.rank, cmd.bankGroup * spec_.org.banksPerGroup + cmd.bank);
    for (auto *listener : listeners_)
        listener->onActivate(flat, cmd.row, now);
}

void
DramDevice::issuePre(const Command &cmd, Cycle now)
{
    BankState &bank = bankOf(cmd);
    bank.open = false;
    bank.nextAct = std::max(bank.nextAct, now + spec_.timing.tRP);
}

void
DramDevice::issueCas(const Command &cmd, Cycle now, bool is_read)
{
    BankState &bank = bankOf(cmd);
    RankState &rank = ranks_[cmd.rank];

    rank.nextCasAny = now + spec_.timing.tCCD_S;
    rank.nextCasByBg[cmd.bankGroup] = now + spec_.timing.tCCD_L;

    if (is_read) {
        const Cycle data_end = now + spec_.timing.readLatency();
        busFreeAt_ = data_end;
        bank.nextPre = std::max(bank.nextPre, now + spec_.timing.tRTP);
        busWrAllowedAt_ =
            std::max(busWrAllowedAt_, data_end + spec_.timing.tRTW);
    } else {
        const Cycle data_end = now + spec_.timing.writeLatency();
        busFreeAt_ = data_end;
        bank.nextPre =
            std::max(bank.nextPre, data_end + spec_.timing.tWR);
        busRdAllowedAt_ =
            std::max(busRdAllowedAt_, data_end + spec_.timing.tRTW);
        rank.rdAllowedAt =
            std::max(rank.rdAllowedAt, data_end + spec_.timing.tWTR);
    }
}

void
DramDevice::issueRef(const Command &cmd, Cycle now)
{
    RankState &rank = ranks_[cmd.rank];
    rank.blockedUntil = now + spec_.timing.tRFC;

    const std::size_t begin = bankIndex(cmd.rank, 0, 0);
    const std::size_t end = begin + spec_.org.banksPerRank();
    for (std::size_t i = begin; i < end; ++i)
        banks_[i].nextAct = std::max(banks_[i].nextAct, rank.blockedUntil);

    for (auto *listener : listeners_)
        listener->onRefresh(cmd.rank, now);
}

Cycle
DramDevice::earliestRfmPb(const Command &cmd) const
{
    // Only the addressed bank must be closed and idle.
    const BankState &bank = bankOf(cmd);
    if (bank.open)
        return kNeverCycle;
    return std::max({bank.nextAct, ranks_[cmd.rank].blockedUntil,
                     channelBlockedUntil_});
}

void
DramDevice::issueRfmPb(const Command &cmd, Cycle now)
{
    BankState &bank = bankOf(cmd);
    bank.nextAct = std::max(bank.nextAct, now + spec_.timing.tRFMpb);

    const std::uint32_t flat = spec_.org.flatBank(
        cmd.rank, cmd.bankGroup * spec_.org.banksPerGroup + cmd.bank);
    for (auto *listener : listeners_)
        listener->onRfmPb(flat, now);
}

void
DramDevice::issueRfm(Cycle now)
{
    channelBlockedUntil_ = now + spec_.timing.tRFMab;
    for (auto &bank : banks_)
        bank.nextAct = std::max(bank.nextAct, channelBlockedUntil_);

    for (auto *listener : listeners_)
        listener->onRfm(now);
}

} // namespace pracleak
