#include "dram/command.h"

#include <sstream>

namespace pracleak {

const char *
cmdName(CmdType type)
{
    switch (type) {
      case CmdType::ACT: return "ACT";
      case CmdType::PRE: return "PRE";
      case CmdType::RD: return "RD";
      case CmdType::WR: return "WR";
      case CmdType::REFab: return "REFab";
      case CmdType::RFMab: return "RFMab";
      case CmdType::RFMpb: return "RFMpb";
    }
    return "?";
}

std::string
Command::str() const
{
    std::ostringstream os;
    os << cmdName(type) << " r" << rank << " bg" << bankGroup << " b"
       << bank;
    if (type == CmdType::ACT)
        os << " row" << row;
    if (type == CmdType::RD || type == CmdType::WR)
        os << " col" << col;
    return os.str();
}

} // namespace pracleak
