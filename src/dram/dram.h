/**
 * @file
 * Cycle-level model of one DDR5 channel.
 *
 * The device tracks per-bank row state, per-rank ACT/CAS history, and
 * channel-level data-bus / blocking state, and enforces every timing
 * constraint in DramTiming.  The memory controller asks
 * earliestIssue() when it may legally send a command and then calls
 * issue(); issuing too early is a simulator bug (panic), not a
 * recoverable error.
 *
 * PRAC bookkeeping (per-row counters, Alert Back-Off) is layered on
 * top through the DramListener interface so the device model stays a
 * pure timing engine.
 */

#ifndef PRACLEAK_DRAM_DRAM_H
#define PRACLEAK_DRAM_DRAM_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "dram/command.h"
#include "dram/dram_spec.h"

namespace pracleak {

/**
 * Observer interface for in-DRAM maintenance logic (PRAC, TREF).
 * Callbacks fire at command-issue time.
 */
class DramListener
{
  public:
    virtual ~DramListener() = default;

    /** A row was activated. @param flat_bank channel-wide bank index. */
    virtual void onActivate(std::uint32_t flat_bank, std::uint32_t row,
                            Cycle now) = 0;

    /** An all-bank refresh started on @p rank. */
    virtual void onRefresh(std::uint32_t rank, Cycle now) = 0;

    /** An RFMab started (affects every bank in the channel). */
    virtual void onRfm(Cycle now) = 0;

    /**
     * An RFMpb started on one bank (Section-7.2 extension).  Default
     * no-op so existing listeners stay source-compatible.
     */
    virtual void onRfmPb(std::uint32_t /*flat_bank*/, Cycle /*now*/) {}
};

/** One DDR5 channel with full timing-state tracking. */
class DramDevice
{
  public:
    explicit DramDevice(const DramSpec &spec);

    const DramSpec &spec() const { return spec_; }

    /** Register an observer (not owned). */
    void addListener(DramListener *listener);

    /**
     * Earliest cycle at which @p cmd could legally issue, considering
     * every timing and structural constraint.  Returns kNeverCycle if
     * the command is structurally illegal right now (e.g. ACT to a
     * bank with an open row).
     */
    Cycle earliestIssue(const Command &cmd) const;

    /** True if @p cmd may issue exactly at @p now. */
    bool canIssue(const Command &cmd, Cycle now) const;

    /** Issue @p cmd at @p now; panics if canIssue() would be false. */
    void issue(const Command &cmd, Cycle now);

    /** Whether the given bank has an open row. */
    bool isOpen(std::uint32_t rank, std::uint32_t bg,
                std::uint32_t bank) const;

    /** Open row of a bank (only valid when isOpen()). */
    std::uint32_t openRow(std::uint32_t rank, std::uint32_t bg,
                          std::uint32_t bank) const;

    /** Whether any bank in @p rank has an open row. */
    bool anyOpenInRank(std::uint32_t rank) const;

    /** Whether any bank in the channel has an open row. */
    bool anyOpen() const;

    /** Channel blocked (RFMab in flight) until this cycle. */
    Cycle channelBlockedUntil() const { return channelBlockedUntil_; }

    /** Rank blocked (REFab in flight) until this cycle. */
    Cycle rankBlockedUntil(std::uint32_t rank) const;

    /**
     * Completion time of a read issued at @p issue_cycle (last data
     * beat on the bus).
     */
    Cycle readDoneAt(Cycle issue_cycle) const
    {
        return issue_cycle + spec_.timing.readLatency();
    }

    /** Optional sink receiving every issued command (for checkers). */
    void setTraceSink(std::function<void(const Command &, Cycle)> sink)
    {
        traceSink_ = std::move(sink);
    }

    /** Number of commands issued so far, by opcode. */
    std::uint64_t issueCount(CmdType type) const
    {
        return issueCounts_[static_cast<std::size_t>(type)];
    }

  private:
    struct BankState
    {
        bool open = false;
        std::uint32_t row = 0;
        Cycle nextAct = 0;
        Cycle nextPre = 0;
        Cycle nextRd = 0;
        Cycle nextWr = 0;
    };

    struct RankState
    {
        Cycle blockedUntil = 0;             //!< REFab
        std::array<Cycle, 4> actTimes{};    //!< tFAW ring buffer
        std::size_t actPtr = 0;
        Cycle lastActAny = kNeverCycle;     //!< tRRD_S reference
        std::vector<Cycle> lastActByBg;     //!< tRRD_L reference
        Cycle nextCasAny = 0;               //!< tCCD_S gate
        std::vector<Cycle> nextCasByBg;     //!< tCCD_L gate
        Cycle rdAllowedAt = 0;              //!< tWTR gate (same rank)
    };

    std::size_t bankIndex(std::uint32_t rank, std::uint32_t bg,
                          std::uint32_t bank) const;
    const BankState &bankOf(const Command &cmd) const;
    BankState &bankOf(const Command &cmd);

    Cycle earliestAct(const Command &cmd) const;
    Cycle earliestPre(const Command &cmd) const;
    Cycle earliestCas(const Command &cmd, bool is_read) const;
    Cycle earliestRef(const Command &cmd) const;
    Cycle earliestRfm() const;
    Cycle earliestRfmPb(const Command &cmd) const;

    void issueAct(const Command &cmd, Cycle now);
    void issuePre(const Command &cmd, Cycle now);
    void issueCas(const Command &cmd, Cycle now, bool is_read);
    void issueRef(const Command &cmd, Cycle now);
    void issueRfm(Cycle now);
    void issueRfmPb(const Command &cmd, Cycle now);

    DramSpec spec_;
    std::vector<BankState> banks_;      //!< [rank][bg][bank] flattened
    std::vector<RankState> ranks_;
    Cycle channelBlockedUntil_ = 0;
    Cycle busFreeAt_ = 0;
    Cycle busRdAllowedAt_ = 0;  //!< WR -> RD turnaround (channel-wide)
    Cycle busWrAllowedAt_ = 0;  //!< RD -> WR turnaround (channel-wide)
    std::vector<DramListener *> listeners_;
    std::function<void(const Command &, Cycle)> traceSink_;
    std::array<std::uint64_t, 7> issueCounts_{};
};

} // namespace pracleak

#endif // PRACLEAK_DRAM_DRAM_H
