#include "dram/dram_spec.h"

#include <stdexcept>

namespace pracleak {

DramSpec
DramSpec::ddr5_8000b()
{
    // Defaults in the struct definitions already encode Table 1/3;
    // this factory exists so call sites read as intent, and so future
    // variants (e.g. 16 Gb parts) can be added without touching users.
    return DramSpec{};
}

namespace {

/** Shared 16 Gb geometry of the mainstream bins: 4 KB rows. */
DramOrg
org16Gb(std::uint32_t ranks)
{
    DramOrg org;
    org.ranks = ranks;
    org.bankGroups = 8;
    org.banksPerGroup = 4;
    org.rowsPerBank = 64 * 1024;
    org.colsPerRow = 64;
    return org;
}

} // namespace

DramSpec
DramSpec::ddr5_4800(std::uint32_t ranks)
{
    DramSpec spec;
    spec.org = org16Gb(ranks);
    // DDR5-4800B: ~14.2 ns CAS, BL16 at 4800 MT/s = 3.33 ns bursts.
    // tRP/tWR keep the PRAC extension (row-cycle counter update).
    spec.timing.tRCD = nsToCycles(14.2);
    spec.timing.tCL = nsToCycles(14.2);
    spec.timing.tCWL = nsToCycles(14.2);
    spec.timing.tRAS = nsToCycles(32);
    spec.timing.tRP = nsToCycles(34.2);
    spec.timing.tRC = nsToCycles(66.2);
    spec.timing.tBL = nsToCycles(3.34);
    spec.timing.tCCD_S = nsToCycles(3.34);
    spec.timing.tCCD_L = nsToCycles(5);
    spec.timing.tRRD_S = nsToCycles(3.34);
    spec.timing.tRRD_L = nsToCycles(5);
    spec.timing.tFAW = nsToCycles(13.334);
    spec.timing.tRFC = nsToCycles(295); // 16 Gb REFab
    return spec;
}

DramSpec
DramSpec::ddr5_6400(std::uint32_t ranks)
{
    DramSpec spec;
    spec.org = org16Gb(ranks);
    // DDR5-6400B: ~14.4 ns CAS, BL16 at 6400 MT/s = 2.5 ns bursts.
    spec.timing.tRCD = nsToCycles(14.4);
    spec.timing.tCL = nsToCycles(14.4);
    spec.timing.tCWL = nsToCycles(14.4);
    spec.timing.tRAS = nsToCycles(32);
    spec.timing.tRP = nsToCycles(34.4);
    spec.timing.tRC = nsToCycles(66.4);
    spec.timing.tBL = nsToCycles(2.5);
    spec.timing.tCCD_S = nsToCycles(2.5);
    spec.timing.tCCD_L = nsToCycles(5);
    spec.timing.tRRD_S = nsToCycles(2.5);
    spec.timing.tRRD_L = nsToCycles(5);
    spec.timing.tFAW = nsToCycles(10);
    spec.timing.tRFC = nsToCycles(295); // 16 Gb REFab
    return spec;
}

const std::vector<std::string> &
specNames()
{
    static const std::vector<std::string> names = {
        "ddr5-8000b",   "ddr5-4800-1r", "ddr5-4800-2r",
        "ddr5-6400-1r", "ddr5-6400-2r",
    };
    return names;
}

DramSpec
specByName(const std::string &name)
{
    if (name == "ddr5-8000b")
        return DramSpec::ddr5_8000b();
    if (name == "ddr5-4800-1r")
        return DramSpec::ddr5_4800(1);
    if (name == "ddr5-4800-2r")
        return DramSpec::ddr5_4800(2);
    if (name == "ddr5-6400-1r")
        return DramSpec::ddr5_6400(1);
    if (name == "ddr5-6400-2r")
        return DramSpec::ddr5_6400(2);
    std::string known;
    for (const std::string &spec : specNames())
        known += (known.empty() ? "" : ", ") + spec;
    throw std::invalid_argument("unknown DRAM spec '" + name +
                                "' (have: " + known + ")");
}

} // namespace pracleak
