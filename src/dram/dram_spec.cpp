#include "dram/dram_spec.h"

namespace pracleak {

DramSpec
DramSpec::ddr5_8000b()
{
    // Defaults in the struct definitions already encode Table 1/3;
    // this factory exists so call sites read as intent, and so future
    // variants (e.g. 16 Gb parts) can be added without touching users.
    return DramSpec{};
}

} // namespace pracleak
