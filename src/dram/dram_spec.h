/**
 * @file
 * DDR5 organization, timing, and PRAC parameters.
 *
 * Values follow Table 1 and Table 3 of the paper (32 Gb DDR5-8000B with
 * PRAC-adjusted tRP/tWR per JESD79-5C).  All timings are stored in
 * simulator cycles (0.25 ns at the DDR5-8000 command clock).
 */

#ifndef PRACLEAK_DRAM_DRAM_SPEC_H
#define PRACLEAK_DRAM_DRAM_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace pracleak {

/** Physical organization of one DRAM channel. */
struct DramOrg
{
    std::uint32_t ranks = 4;
    std::uint32_t bankGroups = 8;     //!< per rank
    std::uint32_t banksPerGroup = 4;  //!< per bank group
    std::uint32_t rowsPerBank = 128 * 1024;
    std::uint32_t colsPerRow = 128;   //!< cache lines per 8 KB row

    std::uint32_t banksPerRank() const { return bankGroups * banksPerGroup; }
    std::uint32_t totalBanks() const { return ranks * banksPerRank(); }

    /** Flatten (rank, bank-in-rank) into a channel-wide bank index. */
    std::uint32_t
    flatBank(std::uint32_t rank, std::uint32_t bank_in_rank) const
    {
        return rank * banksPerRank() + bank_in_rank;
    }

    /** Total cache-line capacity of the channel. */
    std::uint64_t
    totalLines() const
    {
        return static_cast<std::uint64_t>(totalBanks()) * rowsPerBank *
               colsPerRow;
    }
};

/** DRAM timing constraints, in simulator cycles. */
struct DramTiming
{
    Cycle tRCD = nsToCycles(16);    //!< ACT -> RD/WR
    Cycle tCL = nsToCycles(16);     //!< RD -> first data
    Cycle tCWL = nsToCycles(16);    //!< WR -> first data
    Cycle tRAS = nsToCycles(16);    //!< ACT -> PRE
    Cycle tRP = nsToCycles(36);     //!< PRE -> ACT (PRAC-extended)
    Cycle tRTP = nsToCycles(5);     //!< RD -> PRE
    Cycle tWR = nsToCycles(10);     //!< end of WR data -> PRE (PRAC-ext.)
    Cycle tRC = nsToCycles(52);     //!< ACT -> ACT, same bank
    Cycle tBL = nsToCycles(2);      //!< burst (BL16 at 8000 MT/s)
    Cycle tCCD_S = nsToCycles(2);   //!< CAS -> CAS, different bank group
    Cycle tCCD_L = nsToCycles(4);   //!< CAS -> CAS, same bank group
    Cycle tRRD_S = nsToCycles(2);   //!< ACT -> ACT, different bank group
    Cycle tRRD_L = nsToCycles(5);   //!< ACT -> ACT, same bank group
    Cycle tFAW = nsToCycles(16);    //!< four-ACT window, per rank
    Cycle tWTR = nsToCycles(5);     //!< WR data end -> RD, same rank
    Cycle tRTW = nsToCycles(2);     //!< bus turnaround RD -> WR
    Cycle tRFC = nsToCycles(410);   //!< REFab duration
    Cycle tREFI = nsToCycles(3900); //!< refresh interval
    Cycle tREFW = nsToCycles(32.0e6);   //!< refresh window (32 ms)
    Cycle tRFMab = nsToCycles(350); //!< RFM all-bank blocking time
    Cycle tRFMpb = nsToCycles(210); //!< RFM per-bank blocking time
    Cycle tABOACT = nsToCycles(180);    //!< max ACT window after Alert

    /** Read latency from RD issue to last data beat. */
    Cycle readLatency() const { return tCL + tBL; }

    /** Write occupancy from WR issue to last data beat. */
    Cycle writeLatency() const { return tCWL + tBL; }
};

/** PRAC / Alert Back-Off parameters (Table 1 of the paper). */
struct PracParams
{
    /** Back-Off threshold: counter value at which DRAM asserts Alert. */
    std::uint32_t nbo = 1024;

    /** RFMs issued per Alert (PRAC level): 1, 2, or 4. */
    std::uint32_t nmit = 1;

    /** ACTs the controller may still issue between Alert and RFM. */
    std::uint32_t aboAct = 3;

    /** Min ACTs after the RFM burst before the next Alert (== nmit). */
    std::uint32_t aboDelay() const { return nmit; }

    /** Victim rows refreshed per RFM per bank (blast radius coverage). */
    std::uint32_t victimsPerMitigation = 4;
};

/** Complete device specification. */
struct DramSpec
{
    DramOrg org;
    DramTiming timing;
    PracParams prac;

    /**
     * Factory for the paper's evaluated configuration: 32 Gb DDR5-8000B,
     * 1 channel x 4 ranks x 8 bank groups x 4 banks, 128K 8KB rows.
     */
    static DramSpec ddr5_8000b();

    /**
     * Mainstream-bin variants for geometry-sensitivity studies: 16 Gb
     * DDR5-4800 / DDR5-6400 parts with 1-2 ranks and smaller (4 KB)
     * rows.  Timings are representative JEDEC-bin values expressed in
     * the shared 0.25 ns simulator clock; the PRAC parameters are
     * unchanged so defenses stay comparable across bins.
     */
    static DramSpec ddr5_4800(std::uint32_t ranks = 2);
    static DramSpec ddr5_6400(std::uint32_t ranks = 2);
};

/**
 * Registered spec names, in catalog order ("ddr5-8000b" first --
 * the default everywhere a spec name is optional).
 */
const std::vector<std::string> &specNames();

/**
 * Factory lookup by registered name; throws std::invalid_argument
 * listing the known names (CLI- and grid-friendly, like
 * findSuiteEntry).
 */
DramSpec specByName(const std::string &name);

} // namespace pracleak

#endif // PRACLEAK_DRAM_DRAM_SPEC_H
