#include "dram/energy.h"

#include <algorithm>

namespace pracleak {

EnergyCounts &
EnergyCounts::operator+=(const EnergyCounts &other)
{
    acts += other.acts;
    reads += other.reads;
    writes += other.writes;
    refreshes += other.refreshes;
    mitigatedRows += other.mitigatedRows;
    elapsed = std::max(elapsed, other.elapsed);
    return *this;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    actPreNj += other.actPreNj;
    readNj += other.readNj;
    writeNj += other.writeNj;
    refreshNj += other.refreshNj;
    mitigationNj += other.mitigationNj;
    backgroundNj += other.backgroundNj;
    return *this;
}

EnergyBreakdown
computeEnergy(const EnergyCounts &counts, const EnergyParams &params)
{
    EnergyBreakdown out;
    out.actPreNj = params.actPreNj * counts.acts;
    out.readNj = params.readNj * counts.reads;
    out.writeNj = params.writeNj * counts.writes;
    out.refreshNj = params.refAbNj * counts.refreshes;
    out.mitigationNj = params.rowMitigationNj * counts.mitigatedRows;
    // W * s = J; convert to nJ.
    out.backgroundNj =
        params.backgroundW * (cyclesToNs(counts.elapsed) * 1e-9) * 1e9;
    return out;
}

EnergyBreakdown
computeEnergy(const DramDevice &dev, Cycle elapsed,
              std::uint64_t mitigated_rows, const EnergyParams &params)
{
    EnergyCounts counts;
    counts.acts = dev.issueCount(CmdType::ACT);
    counts.reads = dev.issueCount(CmdType::RD);
    counts.writes = dev.issueCount(CmdType::WR);
    counts.refreshes = dev.issueCount(CmdType::REFab);
    counts.mitigatedRows = mitigated_rows;
    counts.elapsed = elapsed;
    return computeEnergy(counts, params);
}

} // namespace pracleak
