#include "dram/energy.h"

namespace pracleak {

EnergyBreakdown
computeEnergy(const EnergyCounts &counts, const EnergyParams &params)
{
    EnergyBreakdown out;
    out.actPreNj = params.actPreNj * counts.acts;
    out.readNj = params.readNj * counts.reads;
    out.writeNj = params.writeNj * counts.writes;
    out.refreshNj = params.refAbNj * counts.refreshes;
    out.mitigationNj = params.rowMitigationNj * counts.mitigatedRows;
    // W * s = J; convert to nJ.
    out.backgroundNj =
        params.backgroundW * (cyclesToNs(counts.elapsed) * 1e-9) * 1e9;
    return out;
}

EnergyBreakdown
computeEnergy(const DramDevice &dev, Cycle elapsed,
              std::uint64_t mitigated_rows, const EnergyParams &params)
{
    EnergyCounts counts;
    counts.acts = dev.issueCount(CmdType::ACT);
    counts.reads = dev.issueCount(CmdType::RD);
    counts.writes = dev.issueCount(CmdType::WR);
    counts.refreshes = dev.issueCount(CmdType::REFab);
    counts.mitigatedRows = mitigated_rows;
    counts.elapsed = elapsed;
    return computeEnergy(counts, params);
}

} // namespace pracleak
