#include "dram/timing_checker.h"

#include <sstream>

namespace pracleak {

TimingChecker::TimingChecker(const DramSpec &spec)
    : spec_(spec),
      open_(spec.org.totalBanks(), false),
      openRow_(spec.org.totalBanks(), 0)
{
}

bool
TimingChecker::sameBank(const Command &a, const Command &b) const
{
    return a.rank == b.rank && a.bankGroup == b.bankGroup &&
           a.bank == b.bank;
}

bool
TimingChecker::sameRank(const Command &a, const Command &b) const
{
    return a.rank == b.rank;
}

bool
TimingChecker::sameBankGroup(const Command &a, const Command &b) const
{
    return a.rank == b.rank && a.bankGroup == b.bankGroup;
}

void
TimingChecker::fail(const std::string &what, const Command &cmd,
                    Cycle now)
{
    std::ostringstream os;
    os << what << " at cycle " << now << " for " << cmd.str();
    violations_.push_back(os.str());
}

void
TimingChecker::require(bool ok, const std::string &what,
                       const Command &cmd, Cycle now)
{
    if (!ok)
        fail(what, cmd, now);
}

void
TimingChecker::observe(const Command &cmd, Cycle now)
{
    const DramTiming &t = spec_.timing;
    const std::size_t flat =
        (static_cast<std::size_t>(cmd.rank) * spec_.org.bankGroups +
         cmd.bankGroup) *
            spec_.org.banksPerGroup +
        cmd.bank;

    // Pairwise distance checks against the recent history.
    std::uint32_t acts_in_faw = 0;
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        const Command &prev = it->cmd;
        const Cycle gap = now - it->at;

        switch (cmd.type) {
          case CmdType::ACT:
            if (prev.type == CmdType::ACT && sameBank(prev, cmd))
                require(gap >= t.tRC, "tRC", cmd, now);
            if (prev.type == CmdType::ACT && sameRank(prev, cmd)) {
                require(gap >= t.tRRD_S, "tRRD_S", cmd, now);
                if (gap < t.tFAW)
                    ++acts_in_faw;
            }
            if (prev.type == CmdType::ACT && sameBankGroup(prev, cmd))
                require(gap >= t.tRRD_L, "tRRD_L", cmd, now);
            if (prev.type == CmdType::PRE && sameBank(prev, cmd))
                require(gap >= t.tRP, "tRP", cmd, now);
            if (prev.type == CmdType::REFab && sameRank(prev, cmd))
                require(gap >= t.tRFC, "tRFC", cmd, now);
            if (prev.type == CmdType::RFMab)
                require(gap >= t.tRFMab, "tRFMab-block", cmd, now);
            if (prev.type == CmdType::RFMpb && sameBank(prev, cmd))
                require(gap >= t.tRFMpb, "tRFMpb-block", cmd, now);
            break;

          case CmdType::PRE:
            if (prev.type == CmdType::ACT && sameBank(prev, cmd))
                require(gap >= t.tRAS, "tRAS", cmd, now);
            if (prev.type == CmdType::RD && sameBank(prev, cmd))
                require(gap >= t.tRTP, "tRTP", cmd, now);
            if (prev.type == CmdType::WR && sameBank(prev, cmd))
                require(gap >= t.writeLatency() + t.tWR, "tWR", cmd,
                        now);
            break;

          case CmdType::RD:
          case CmdType::WR: {
            const bool is_read = cmd.type == CmdType::RD;
            if (prev.type == CmdType::ACT && sameBank(prev, cmd))
                require(gap >= t.tRCD, "tRCD", cmd, now);
            if ((prev.type == CmdType::RD || prev.type == CmdType::WR) &&
                sameRank(prev, cmd)) {
                require(gap >= t.tCCD_S, "tCCD_S", cmd, now);
                if (sameBankGroup(prev, cmd))
                    require(gap >= t.tCCD_L, "tCCD_L", cmd, now);
            }
            if (is_read && prev.type == CmdType::WR) {
                // Channel-wide bus turnaround, plus the stricter
                // same-rank write-to-read recovery.
                require(gap >= t.writeLatency() + t.tRTW, "tWTR-bus",
                        cmd, now);
                if (sameRank(prev, cmd))
                    require(gap >= t.writeLatency() + t.tWTR, "tWTR",
                            cmd, now);
            }
            if (!is_read && prev.type == CmdType::RD)
                require(gap >= t.readLatency() + t.tRTW, "tRTW", cmd,
                        now);
            if (prev.type == CmdType::RFMab)
                require(gap >= t.tRFMab, "tRFMab-block", cmd, now);
            if (prev.type == CmdType::REFab && sameRank(prev, cmd))
                require(gap >= t.tRFC, "tRFC-block", cmd, now);
            break;
          }

          case CmdType::REFab:
            if (prev.type == CmdType::REFab && sameRank(prev, cmd))
                require(gap >= t.tRFC, "tRFC-back-to-back", cmd, now);
            break;

          case CmdType::RFMab:
            if (prev.type == CmdType::RFMab)
                require(gap >= t.tRFMab, "tRFMab-back-to-back", cmd,
                        now);
            break;

          case CmdType::RFMpb:
            if (prev.type == CmdType::RFMpb && sameBank(prev, cmd))
                require(gap >= t.tRFMpb, "tRFMpb-back-to-back", cmd,
                        now);
            break;
        }
    }

    if (cmd.type == CmdType::ACT)
        require(acts_in_faw < 4, "tFAW", cmd, now);

    // Structural open/closed-row rules.
    switch (cmd.type) {
      case CmdType::ACT:
        require(!open_[flat], "ACT-to-open-bank", cmd, now);
        open_[flat] = true;
        openRow_[flat] = cmd.row;
        break;
      case CmdType::PRE:
        require(open_[flat], "PRE-to-closed-bank", cmd, now);
        open_[flat] = false;
        break;
      case CmdType::RD:
      case CmdType::WR:
        require(open_[flat], "CAS-to-closed-bank", cmd, now);
        break;
      case CmdType::REFab:
        for (std::uint32_t b = 0; b < spec_.org.banksPerRank(); ++b)
            require(!open_[cmd.rank * spec_.org.banksPerRank() + b],
                    "REF-with-open-row", cmd, now);
        break;
      case CmdType::RFMab:
        for (std::size_t b = 0; b < open_.size(); ++b)
            require(!open_[b], "RFM-with-open-row", cmd, now);
        break;
      case CmdType::RFMpb:
        require(!open_[flat], "RFMpb-with-open-row", cmd, now);
        break;
    }

    history_.push_back({cmd, now});
    if (history_.size() > kHistory)
        history_.pop_front();
}

} // namespace pracleak
