/**
 * @file
 * DRAM command vocabulary exchanged between the memory controller and
 * the device model.
 */

#ifndef PRACLEAK_DRAM_COMMAND_H
#define PRACLEAK_DRAM_COMMAND_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace pracleak {

/** Command opcodes.  REFab and RFMab operate on all banks. */
enum class CmdType : std::uint8_t
{
    ACT,    //!< open a row
    PRE,    //!< close the open row of one bank
    RD,     //!< burst read from the open row
    WR,     //!< burst write to the open row
    REFab,  //!< all-bank refresh (per rank)
    RFMab,  //!< refresh management, all banks (blocks whole channel)

    /**
     * Per-bank refresh management (the Section-7.2 extension): the
     * addressed bank alone is blocked for tRFMpb, so mitigation no
     * longer stalls the rest of the channel.  Requires the ABO
     * protocol extension the paper describes; provided here for the
     * TPRAC-PB ablation.
     */
    RFMpb,
};

/** Human-readable opcode name. */
const char *cmdName(CmdType type);

/** A fully-addressed command. */
struct Command
{
    CmdType type = CmdType::ACT;
    std::uint32_t rank = 0;
    std::uint32_t bankGroup = 0;    //!< within rank
    std::uint32_t bank = 0;         //!< within bank group
    std::uint32_t row = 0;          //!< ACT only
    std::uint32_t col = 0;          //!< RD/WR only

    std::string str() const;
};

} // namespace pracleak

#endif // PRACLEAK_DRAM_COMMAND_H
