/**
 * @file
 * Independent verifier for DRAM command streams.
 *
 * Re-implements the JEDEC timing rules with a deliberately different
 * structure from DramDevice (pairwise command-distance checks instead
 * of next-allowed-time gates) so the two models cross-check each
 * other.  Tests attach it via DramDevice::setTraceSink and assert that
 * no violations accumulate.
 */

#ifndef PRACLEAK_DRAM_TIMING_CHECKER_H
#define PRACLEAK_DRAM_TIMING_CHECKER_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.h"
#include "dram/command.h"
#include "dram/dram_spec.h"

namespace pracleak {

/** Streaming checker; feed every issued command in order. */
class TimingChecker
{
  public:
    explicit TimingChecker(const DramSpec &spec);

    /** Observe one issued command. */
    void observe(const Command &cmd, Cycle now);

    /** Human-readable violations detected so far. */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    bool clean() const { return violations_.empty(); }

  private:
    struct Issued
    {
        Command cmd;
        Cycle at;
    };

    void fail(const std::string &what, const Command &cmd, Cycle now);
    void require(bool ok, const std::string &what, const Command &cmd,
                 Cycle now);

    /** History window large enough to cover the longest constraint. */
    static constexpr std::size_t kHistory = 4096;

    bool sameBank(const Command &a, const Command &b) const;
    bool sameRank(const Command &a, const Command &b) const;
    bool sameBankGroup(const Command &a, const Command &b) const;

    DramSpec spec_;
    std::deque<Issued> history_;
    std::vector<bool> open_;
    std::vector<std::uint32_t> openRow_;
    std::vector<std::string> violations_;
};

} // namespace pracleak

#endif // PRACLEAK_DRAM_TIMING_CHECKER_H
