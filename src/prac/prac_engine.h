/**
 * @file
 * DRAM-side PRAC logic: per-row counters, the Alert Back-Off protocol,
 * mitigation on RFM, Targeted Refresh (TREF) piggybacking, and the
 * tREFW counter-reset policy.
 *
 * The engine attaches to a DramDevice as a listener.  The memory
 * controller polls alertAsserted() and is responsible for issuing the
 * RFMab commands that service an Alert (see MemoryController); the
 * engine performs the in-DRAM side effects when those RFMs arrive.
 */

#ifndef PRACLEAK_PRAC_PRAC_ENGINE_H
#define PRACLEAK_PRAC_PRAC_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/dram.h"
#include "prac/mitigation_queue.h"
#include "prac/row_counters.h"

namespace pracleak {

/** Behavioural configuration of the PRAC implementation. */
struct PracEngineConfig
{
    /** Mitigation-queue design (TPRAC uses SingleEntry). */
    QueueKind queue = QueueKind::SingleEntry;

    /** Whether the DRAM ever asserts Alert (ABO protocol on/off). */
    bool aboEnabled = true;

    /**
     * Mitigate from the queue during every k-th REFab per rank
     * (Targeted Refresh).  0 disables TREF.
     */
    std::uint32_t trefPeriodRefs = 0;

    /** Reset all activation counters every tREFW (32 ms). */
    bool counterResetAtTrefw = true;

    /** FIFO enqueue threshold (only used with QueueKind::Fifo). */
    std::uint32_t fifoThreshold = 0;
};

/** PRAC state machine; one instance per channel. */
class PracEngine : public DramListener
{
  public:
    PracEngine(const DramSpec &spec, const PracEngineConfig &config,
               StatSet *stats = nullptr);

    // DramListener interface -------------------------------------------
    void onActivate(std::uint32_t flat_bank, std::uint32_t row,
                    Cycle now) override;
    void onRefresh(std::uint32_t rank, Cycle now) override;
    void onRfm(Cycle now) override;
    void onRfmPb(std::uint32_t flat_bank, Cycle now) override;

    // Controller-facing interface --------------------------------------

    /** Whether the Alert pin is currently asserted. */
    bool alertAsserted() const { return alertAsserted_; }

    /** Cycle at which the current Alert was asserted. */
    Cycle alertAssertedAt() const { return alertAssertedAt_; }

    /** ACTs issued since the current Alert asserted (ABOACT budget). */
    std::uint32_t actsSinceAlert() const { return actsSinceAlert_; }

    /** Apply the tREFW counter-reset policy if the window elapsed. */
    void maybePeriodicReset(Cycle now);

    /**
     * Externally triggered mitigation of one specific row (e.g. a
     * PARA neighbour refresh performed inside the row cycle): resets
     * the row's counter and books the mitigation for stats/energy,
     * without any bus command.
     */
    void mitigateRow(std::uint32_t flat_bank, std::uint32_t row);

    /** Next scheduled tREFW reset (kNeverCycle when disabled). */
    Cycle
    nextCounterResetAt() const
    {
        return config_.counterResetAtTrefw ? nextCounterResetAt_
                                           : kNeverCycle;
    }

    // Telemetry ---------------------------------------------------------

    const RowCounters &counters() const { return counters_; }
    const MitigationPolicy &policy() const { return *policy_; }
    std::uint64_t alerts() const { return alerts_; }

    /** Bank/row whose activation asserted the most recent Alert. */
    std::uint32_t lastAlertBank() const { return lastAlertBank_; }
    std::uint32_t lastAlertRow() const { return lastAlertRow_; }
    std::uint64_t mitigatedRows() const { return mitigatedRows_; }
    std::uint64_t trefMitigations() const { return trefMitigations_; }

    /**
     * Minimum per-rank TREF-round count since the last markTrefBaseline
     * call.  One full round means every bank received one queue
     * mitigation (telemetry; the scheduler uses the time-based query
     * below).
     */
    std::uint64_t minTrefRoundsSinceMark() const;

    /** Reset the TREF baseline (called when a TB-RFM is skipped/issued). */
    void markTrefBaseline();

    /**
     * Cycle of the *oldest* per-rank most-recent TREF mitigation, or
     * kNeverCycle when some rank has never had one.  A scheduled
     * TB-RFM may be skipped when this falls inside the current
     * TB-Window: every bank then already received a queue mitigation
     * in the interval (Section 4.3).
     */
    Cycle oldestRecentTref() const;

  private:
    void mitigateBank(std::uint32_t bank);
    void raiseAlertIfNeeded(std::uint32_t bank, std::uint32_t row,
                            std::uint32_t count, Cycle now);

    DramSpec spec_;
    PracEngineConfig config_;
    StatSet *stats_;

    RowCounters counters_;
    std::unique_ptr<MitigationPolicy> policy_;

    bool alertAsserted_ = false;
    Cycle alertAssertedAt_ = 0;
    std::uint32_t actsSinceAlert_ = 0;
    std::uint32_t rfmsServedThisAlert_ = 0;
    std::uint32_t aboDelayRemaining_ = 0;

    std::vector<std::uint64_t> refsPerRank_;
    std::vector<std::uint64_t> trefRoundsPerRank_;
    std::vector<std::uint64_t> trefMarkPerRank_;
    std::vector<Cycle> lastTrefAtPerRank_;

    Cycle nextCounterResetAt_;

    std::uint64_t alerts_ = 0;
    std::uint64_t mitigatedRows_ = 0;
    std::uint64_t trefMitigations_ = 0;
    std::uint32_t lastAlertBank_ = 0;
    std::uint32_t lastAlertRow_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_PRAC_PRAC_ENGINE_H
