#include "prac/prac_engine.h"

#include <algorithm>

namespace pracleak {

PracEngine::PracEngine(const DramSpec &spec,
                       const PracEngineConfig &config, StatSet *stats)
    : spec_(spec), config_(config), stats_(stats),
      counters_(spec.org.totalBanks()),
      refsPerRank_(spec.org.ranks, 0),
      trefRoundsPerRank_(spec.org.ranks, 0),
      trefMarkPerRank_(spec.org.ranks, 0),
      lastTrefAtPerRank_(spec.org.ranks, kNeverCycle),
      nextCounterResetAt_(spec.timing.tREFW)
{
    const std::uint32_t fifo_thr =
        config.fifoThreshold ? config.fifoThreshold : spec.prac.nbo / 2;
    policy_ = makeMitigationPolicy(config.queue, spec.org.totalBanks(),
                                   counters_, fifo_thr);
}

void
PracEngine::maybePeriodicReset(Cycle now)
{
    if (!config_.counterResetAtTrefw)
        return;
    while (now >= nextCounterResetAt_) {
        counters_.resetAll();
        nextCounterResetAt_ += spec_.timing.tREFW;
        if (stats_)
            ++stats_->counter("prac.counter_resets");
    }
}

void
PracEngine::raiseAlertIfNeeded(std::uint32_t bank, std::uint32_t row,
                               std::uint32_t count, Cycle now)
{
    if (!config_.aboEnabled || alertAsserted_ || aboDelayRemaining_ > 0)
        return;
    if (count >= spec_.prac.nbo) {
        alertAsserted_ = true;
        alertAssertedAt_ = now;
        actsSinceAlert_ = 0;
        rfmsServedThisAlert_ = 0;
        lastAlertBank_ = bank;
        lastAlertRow_ = row;
        ++alerts_;
        if (stats_)
            ++stats_->counter("prac.alerts");
    }
}

void
PracEngine::onActivate(std::uint32_t flat_bank, std::uint32_t row,
                       Cycle now)
{
    maybePeriodicReset(now);

    const std::uint32_t count = counters_.increment(flat_bank, row);
    policy_->onActivate(flat_bank, row, count);

    if (aboDelayRemaining_ > 0)
        --aboDelayRemaining_;
    if (alertAsserted_)
        ++actsSinceAlert_;

    raiseAlertIfNeeded(flat_bank, row, count, now);
}

void
PracEngine::mitigateBank(std::uint32_t bank)
{
    const auto victim = policy_->selectVictim(bank);
    if (!victim)
        return;
    counters_.reset(bank, *victim);
    policy_->onMitigated(bank, *victim);
    ++mitigatedRows_;
    if (stats_)
        ++stats_->counter("prac.mitigated_rows");
}

void
PracEngine::mitigateRow(std::uint32_t flat_bank, std::uint32_t row)
{
    counters_.reset(flat_bank, row);
    policy_->onMitigated(flat_bank, row);
    ++mitigatedRows_;
    if (stats_)
        ++stats_->counter("prac.mitigated_rows");
}

void
PracEngine::onRfm(Cycle now)
{
    maybePeriodicReset(now);

    for (std::uint32_t bank = 0; bank < spec_.org.totalBanks(); ++bank)
        mitigateBank(bank);

    if (alertAsserted_) {
        ++rfmsServedThisAlert_;
        if (rfmsServedThisAlert_ >= spec_.prac.nmit) {
            alertAsserted_ = false;
            rfmsServedThisAlert_ = 0;
            aboDelayRemaining_ = spec_.prac.aboDelay();
        }
    }
}

void
PracEngine::onRfmPb(std::uint32_t flat_bank, Cycle now)
{
    maybePeriodicReset(now);
    mitigateBank(flat_bank);
    // Per-bank RFMs service an Alert only once every bank had one; we
    // conservatively do not count them toward Alert service (TPRAC-PB
    // never lets the Alert assert in the first place).
}

void
PracEngine::onRefresh(std::uint32_t rank, Cycle now)
{
    maybePeriodicReset(now);

    if (config_.trefPeriodRefs == 0)
        return;

    const std::uint64_t n = ++refsPerRank_[rank];
    if (n % config_.trefPeriodRefs != 0)
        return;

    const std::uint32_t begin = rank * spec_.org.banksPerRank();
    for (std::uint32_t b = 0; b < spec_.org.banksPerRank(); ++b)
        mitigateBank(begin + b);

    ++trefRoundsPerRank_[rank];
    lastTrefAtPerRank_[rank] = now;
    ++trefMitigations_;
    if (stats_)
        ++stats_->counter("prac.tref_mitigations");
}

std::uint64_t
PracEngine::minTrefRoundsSinceMark() const
{
    std::uint64_t least = ~std::uint64_t{0};
    for (std::size_t r = 0; r < trefRoundsPerRank_.size(); ++r)
        least = std::min(least,
                         trefRoundsPerRank_[r] - trefMarkPerRank_[r]);
    return least;
}

void
PracEngine::markTrefBaseline()
{
    trefMarkPerRank_ = trefRoundsPerRank_;
}

Cycle
PracEngine::oldestRecentTref() const
{
    Cycle oldest = 0;
    for (const Cycle at : lastTrefAtPerRank_) {
        if (at == kNeverCycle)
            return kNeverCycle;
        oldest = oldest == 0 ? at : std::min(oldest, at);
    }
    return oldest;
}

} // namespace pracleak
