#include "prac/mitigation_queue.h"

#include <algorithm>

namespace pracleak {

const char *
queueKindName(QueueKind kind)
{
    switch (kind) {
      case QueueKind::SingleEntry: return "single-entry";
      case QueueKind::Ideal: return "ideal";
      case QueueKind::Fifo: return "fifo";
    }
    return "?";
}

// ---------------------------------------------------------------- single

SingleEntryQueue::SingleEntryQueue(std::uint32_t num_banks)
    : entries_(num_banks)
{
}

void
SingleEntryQueue::onActivate(std::uint32_t bank, std::uint32_t row,
                             std::uint32_t new_count)
{
    auto &entry = entries_[bank];
    if (!entry || entry->row == row || new_count > entry->count)
        entry = RowCount{row, new_count};
}

std::optional<std::uint32_t>
SingleEntryQueue::selectVictim(std::uint32_t bank)
{
    const auto &entry = entries_[bank];
    if (!entry)
        return std::nullopt;
    return entry->row;
}

void
SingleEntryQueue::onMitigated(std::uint32_t bank, std::uint32_t row)
{
    auto &entry = entries_[bank];
    if (entry && entry->row == row)
        entry.reset();
}

std::optional<RowCount>
SingleEntryQueue::entry(std::uint32_t bank) const
{
    return entries_[bank];
}

// ----------------------------------------------------------------- ideal

IdealQueue::IdealQueue(const RowCounters &counters) : counters_(counters)
{
}

void
IdealQueue::onActivate(std::uint32_t, std::uint32_t, std::uint32_t)
{
    // The oracle reads the counter table directly; nothing to track.
}

std::optional<std::uint32_t>
IdealQueue::selectVictim(std::uint32_t bank)
{
    const auto best = counters_.maxRow(bank);
    if (!best)
        return std::nullopt;
    return best->row;
}

void
IdealQueue::onMitigated(std::uint32_t, std::uint32_t)
{
}

// ------------------------------------------------------------------ fifo

FifoQueue::FifoQueue(std::uint32_t num_banks,
                     std::uint32_t enqueue_threshold, std::size_t capacity)
    : queues_(num_banks), threshold_(enqueue_threshold),
      capacity_(capacity)
{
}

void
FifoQueue::onActivate(std::uint32_t bank, std::uint32_t row,
                      std::uint32_t new_count)
{
    if (new_count != threshold_)
        return;
    auto &q = queues_[bank];
    if (std::find(q.begin(), q.end(), row) != q.end())
        return;
    if (q.size() >= capacity_) {
        ++overflows_;
        return;
    }
    q.push_back(row);
}

std::optional<std::uint32_t>
FifoQueue::selectVictim(std::uint32_t bank)
{
    auto &q = queues_[bank];
    if (q.empty())
        return std::nullopt;
    return q.front();
}

void
FifoQueue::onMitigated(std::uint32_t bank, std::uint32_t row)
{
    auto &q = queues_[bank];
    if (!q.empty() && q.front() == row)
        q.pop_front();
}

// --------------------------------------------------------------- factory

std::unique_ptr<MitigationPolicy>
makeMitigationPolicy(QueueKind kind, std::uint32_t num_banks,
                     const RowCounters &counters,
                     std::uint32_t fifo_threshold)
{
    switch (kind) {
      case QueueKind::SingleEntry:
        return std::make_unique<SingleEntryQueue>(num_banks);
      case QueueKind::Ideal:
        return std::make_unique<IdealQueue>(counters);
      case QueueKind::Fifo:
        return std::make_unique<FifoQueue>(num_banks, fifo_threshold);
    }
    return nullptr;
}

} // namespace pracleak
