#include "prac/row_counters.h"

namespace pracleak {

RowCounters::RowCounters(std::uint32_t num_banks) : banks_(num_banks) {}

std::uint32_t
RowCounters::increment(std::uint32_t bank, std::uint32_t row)
{
    BankCounters &b = banks_[bank];
    const std::uint32_t value = ++b.counts[row];

    if (value > maxEverSeen_)
        maxEverSeen_ = value;

    if (b.maxValid) {
        if (!b.cachedMax || value > b.cachedMax->count ||
            b.cachedMax->row == row) {
            b.cachedMax = RowCount{row, value};
        }
    }
    return value;
}

std::uint32_t
RowCounters::get(std::uint32_t bank, std::uint32_t row) const
{
    const auto &counts = banks_[bank].counts;
    const auto it = counts.find(row);
    return it == counts.end() ? 0 : it->second;
}

void
RowCounters::reset(std::uint32_t bank, std::uint32_t row)
{
    BankCounters &b = banks_[bank];
    b.counts.erase(row);
    if (b.cachedMax && b.cachedMax->row == row) {
        b.cachedMax.reset();
        b.maxValid = false;
    }
}

void
RowCounters::resetAll()
{
    for (auto &b : banks_) {
        b.counts.clear();
        b.cachedMax.reset();
        b.maxValid = true;
    }
}

void
RowCounters::recomputeMax(const BankCounters &bank) const
{
    bank.cachedMax.reset();
    for (const auto &[row, count] : bank.counts) {
        if (!bank.cachedMax || count > bank.cachedMax->count)
            bank.cachedMax = RowCount{row, count};
    }
    bank.maxValid = true;
}

std::optional<RowCount>
RowCounters::maxRow(std::uint32_t bank) const
{
    const BankCounters &b = banks_[bank];
    if (!b.maxValid)
        recomputeMax(b);
    return b.cachedMax;
}

} // namespace pracleak
