/**
 * @file
 * In-DRAM mitigation-queue designs.
 *
 * The PRAC specification leaves the mitigation queue to the vendor;
 * the paper (Section 4.1) argues a single-entry *frequency-based*
 * queue per bank suffices for TPRAC, and prior work shows FIFO queues
 * are attackable.  Three designs are provided:
 *
 *  - SingleEntryQueue: tracks the most-activated row seen since the
 *    last mitigation (TPRAC's proposal).
 *  - IdealQueue: oracle that always knows the true per-bank maximum
 *    (the UPRAC idealization).
 *  - FifoQueue: enqueues rows as they cross a threshold (the insecure
 *    strawman from QPRAC's analysis).
 */

#ifndef PRACLEAK_PRAC_MITIGATION_QUEUE_H
#define PRACLEAK_PRAC_MITIGATION_QUEUE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "prac/row_counters.h"

namespace pracleak {

/** Queue flavor selector. */
enum class QueueKind : std::uint8_t
{
    SingleEntry,
    Ideal,
    Fifo,
};

const char *queueKindName(QueueKind kind);

/**
 * Per-channel mitigation policy: observes activations, and nominates a
 * victim row per bank when an RFM (or TREF slot) arrives.
 */
class MitigationPolicy
{
  public:
    virtual ~MitigationPolicy() = default;

    /** A row in @p bank was activated, bringing it to @p new_count. */
    virtual void onActivate(std::uint32_t bank, std::uint32_t row,
                            std::uint32_t new_count) = 0;

    /**
     * Row to mitigate in @p bank, or nullopt when the policy has no
     * candidate.  Does not change state; the caller follows up with
     * onMitigated() once the mitigation is performed.
     */
    virtual std::optional<std::uint32_t>
    selectVictim(std::uint32_t bank) = 0;

    /** The given row was mitigated (counter reset). */
    virtual void onMitigated(std::uint32_t bank, std::uint32_t row) = 0;
};

/** Single-entry frequency-based queue per bank (TPRAC Section 4.1). */
class SingleEntryQueue : public MitigationPolicy
{
  public:
    explicit SingleEntryQueue(std::uint32_t num_banks);

    void onActivate(std::uint32_t bank, std::uint32_t row,
                    std::uint32_t new_count) override;
    std::optional<std::uint32_t> selectVictim(std::uint32_t bank) override;
    void onMitigated(std::uint32_t bank, std::uint32_t row) override;

    /** Current queue entry for a bank (testing/telemetry). */
    std::optional<RowCount> entry(std::uint32_t bank) const;

  private:
    std::vector<std::optional<RowCount>> entries_;
};

/** Oracle policy backed directly by the full counter table (UPRAC). */
class IdealQueue : public MitigationPolicy
{
  public:
    explicit IdealQueue(const RowCounters &counters);

    void onActivate(std::uint32_t bank, std::uint32_t row,
                    std::uint32_t new_count) override;
    std::optional<std::uint32_t> selectVictim(std::uint32_t bank) override;
    void onMitigated(std::uint32_t bank, std::uint32_t row) override;

  private:
    const RowCounters &counters_;
};

/**
 * FIFO queue of rows that crossed an enqueue threshold.  Bounded
 * capacity; overflowing entries are dropped (the behaviour prior work
 * exploits).
 */
class FifoQueue : public MitigationPolicy
{
  public:
    FifoQueue(std::uint32_t num_banks, std::uint32_t enqueue_threshold,
              std::size_t capacity = 4);

    void onActivate(std::uint32_t bank, std::uint32_t row,
                    std::uint32_t new_count) override;
    std::optional<std::uint32_t> selectVictim(std::uint32_t bank) override;
    void onMitigated(std::uint32_t bank, std::uint32_t row) override;

    /** Entries dropped because the queue was full. */
    std::uint64_t overflows() const { return overflows_; }

  private:
    std::vector<std::deque<std::uint32_t>> queues_;
    std::uint32_t threshold_;
    std::size_t capacity_;
    std::uint64_t overflows_ = 0;
};

/** Factory keyed on QueueKind. */
std::unique_ptr<MitigationPolicy>
makeMitigationPolicy(QueueKind kind, std::uint32_t num_banks,
                     const RowCounters &counters,
                     std::uint32_t fifo_threshold);

} // namespace pracleak

#endif // PRACLEAK_PRAC_MITIGATION_QUEUE_H
