/**
 * @file
 * Host-side Activation-Based RFM (ACB-RFM / "Targeted RFM") tracker.
 *
 * The JEDEC spec lets the memory controller count activations per bank
 * and proactively issue an RFM when any bank reaches the Bank
 * Activation Threshold (BAT), so the DRAM rarely needs to assert
 * Alert.  The paper's ABO+ACB-RFM baseline uses this; it avoids
 * ABO-RFMs but remains activity-dependent and therefore leaky.
 */

#ifndef PRACLEAK_PRAC_ACB_TRACKER_H
#define PRACLEAK_PRAC_ACB_TRACKER_H

#include <cstdint>
#include <vector>

namespace pracleak {

/** Per-bank ACT counter with a shared threshold. */
class AcbTracker
{
  public:
    /**
     * @param num_banks Channel-wide bank count.
     * @param bat       Bank Activation Threshold; 0 disables tracking.
     */
    AcbTracker(std::uint32_t num_banks, std::uint32_t bat);

    /** Record an activation in @p flat_bank. */
    void onActivate(std::uint32_t flat_bank);

    /** Whether any bank has reached BAT. */
    bool rfmNeeded() const { return pending_; }

    /** An RFMab was issued; all bank counts reset. */
    void onRfmIssued();

    std::uint32_t bat() const { return bat_; }
    std::uint64_t rfmsRequested() const { return rfmsRequested_; }

  private:
    std::vector<std::uint32_t> counts_;
    std::uint32_t bat_;
    bool pending_ = false;
    std::uint64_t rfmsRequested_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_PRAC_ACB_TRACKER_H
