/**
 * @file
 * Per-row activation counters (the "PRAC" in PRAC).
 *
 * Counters are stored sparsely per bank: real devices dedicate counter
 * cells per row, but a simulation only needs entries for rows that
 * were actually touched since the last reset.  The per-bank maximum is
 * cached and recomputed lazily so the idealized UPRAC policy ("always
 * mitigate the most-activated row") stays cheap.
 */

#ifndef PRACLEAK_PRAC_ROW_COUNTERS_H
#define PRACLEAK_PRAC_ROW_COUNTERS_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace pracleak {

/** A (row, activation-count) pair. */
struct RowCount
{
    std::uint32_t row = 0;
    std::uint32_t count = 0;
};

/** Sparse per-bank activation counters with cached per-bank maxima. */
class RowCounters
{
  public:
    explicit RowCounters(std::uint32_t num_banks);

    /** Increment the counter of (bank, row); returns the new value. */
    std::uint32_t increment(std::uint32_t bank, std::uint32_t row);

    /** Current counter value (0 if never activated since reset). */
    std::uint32_t get(std::uint32_t bank, std::uint32_t row) const;

    /** Reset one row's counter (mitigation side effect). */
    void reset(std::uint32_t bank, std::uint32_t row);

    /** Reset every counter (tREFW reset policy). */
    void resetAll();

    /** Most-activated row of @p bank, if any row has count > 0. */
    std::optional<RowCount> maxRow(std::uint32_t bank) const;

    /** Highest counter value ever observed (security telemetry). */
    std::uint32_t maxEverSeen() const { return maxEverSeen_; }

    /** Number of distinct rows currently tracked in @p bank. */
    std::size_t trackedRows(std::uint32_t bank) const
    {
        return banks_[bank].counts.size();
    }

  private:
    struct BankCounters
    {
        std::unordered_map<std::uint32_t, std::uint32_t> counts;
        mutable std::optional<RowCount> cachedMax;
        mutable bool maxValid = true;
    };

    void recomputeMax(const BankCounters &bank) const;

    std::vector<BankCounters> banks_;
    std::uint32_t maxEverSeen_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_PRAC_ROW_COUNTERS_H
