#include "prac/acb_tracker.h"

#include <algorithm>

namespace pracleak {

AcbTracker::AcbTracker(std::uint32_t num_banks, std::uint32_t bat)
    : counts_(num_banks, 0), bat_(bat)
{
}

void
AcbTracker::onActivate(std::uint32_t flat_bank)
{
    if (bat_ == 0)
        return;
    if (++counts_[flat_bank] >= bat_ && !pending_) {
        pending_ = true;
        ++rfmsRequested_;
    }
}

void
AcbTracker::onRfmIssued()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    pending_ = false;
}

} // namespace pracleak
