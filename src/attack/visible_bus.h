/**
 * @file
 * The attacker's view of the command bus, as one audited surface.
 *
 * The paper's leakage taxonomy sorts every maintenance mechanism by
 * *where its latency lands*: RFMab and REFab block the whole channel
 * (any probe sees them), RFMpb blocks one bank (only a same-bank
 * probe sees it), and PARA-style in-DRAM neighbor refreshes ride
 * inside normal timing (no probe sees them).  The probes, the bus
 * observer (telemetry/timeseries.h), and the offline analyzer
 * (sim/analyze_support.h) must all agree on this taxonomy and on the
 * latency thresholds that separate "RFM in flight" from scheduler
 * noise; before this header each of them re-derived the numbers
 * ad hoc.  See src/attack/DESIGN.md for the taxonomy rationale.
 */

#ifndef PRACLEAK_ATTACK_VISIBLE_BUS_H
#define PRACLEAK_ATTACK_VISIBLE_BUS_H

#include "common/types.h"
#include "dram/command.h"
#include "dram/dram_spec.h"

namespace pracleak {

/** Where a bus/maintenance event's latency is observable from. */
enum class BusVisibility : std::uint8_t
{
    ChannelWide, //!< any probe on the channel sees the stall
    SameBank,    //!< only a probe in the blocked bank sees it
    InDram,      //!< absorbed inside device timing; no probe sees it
};

/** Human-readable visibility name ("channel" / "bank" / "in-dram"). */
const char *busVisibilityName(BusVisibility visibility);

/**
 * Timing-derived facts about what an attacker can observe on one
 * channel.  Value type, cheap to construct from a spec.
 */
class VisibleBusModel
{
  public:
    static VisibleBusModel fromSpec(const DramSpec &spec);

    /** Visibility class of a command's blocking time. */
    static BusVisibility commandVisibility(CmdType type);

    /** Bus-blocking duration of @p type (0 for ACT/PRE/RD/WR). */
    Cycle blockingCycles(CmdType type) const;

    /** Total channel stall of one ABO Alert service (Nmit RFMabs). */
    Cycle alertServiceCycles() const
    {
        return tRfmAb_ * nmit_;
    }

    /**
     * Latency threshold separating an Alert-service stall from
     * scheduler noise: just under the full Nmit-RFMab drain, so a
     * probe that was parked behind the service trips it while
     * queueing jitter does not.  (The AES side-channel prober's
     * historical `tRFMab * Nmit - 100 ns` expression.)
     */
    Cycle rfmSpikeThreshold() const
    {
        return alertServiceCycles() - nsToCycles(100);
    }

    /**
     * Latency threshold separating a *single* RFM-blocked probe read
     * from a normal one: an RFMab blocks the channel for 350 ns, a
     * normal probe read finishes well under 100 ns, and one caught
     * behind an RFM reports 400+ ns -- 300 ns cleanly separates the
     * populations (ProbeAgent's historical constant).
     */
    static Cycle probeSpikeThreshold()
    {
        return nsToCycles(300);
    }

  private:
    Cycle tRfmAb_ = 0;
    Cycle tRfmPb_ = 0;
    Cycle tRfc_ = 0;
    std::uint32_t nmit_ = 1;
};

} // namespace pracleak

#endif // PRACLEAK_ATTACK_VISIBLE_BUS_H
