#include "attack/agents.h"

#include "attack/visible_bus.h"

namespace pracleak {

// ------------------------------------------------------------ ProbeAgent

ProbeAgent::ProbeAgent(Addr probe_addr, bool record_all)
    : addr_(probe_addr), recordAll_(record_all)
{
}

Cycle
ProbeAgent::spikeThreshold()
{
    // One audited surface for "what can a probe see": the visible-bus
    // model owns the single-RFM latency discriminator (an RFMab
    // blocks the channel for 350 ns; a normal probe read finishes
    // well under 100 ns).
    return VisibleBusModel::probeSpikeThreshold();
}

void
ProbeAgent::tick(MemoryController &mem, Cycle)
{
    if (inFlight_)
        return;

    Request req;
    req.type = ReqType::Read;
    req.addr = addr_;
    req.onComplete = [this](const Request &done) {
        inFlight_ = false;
        ++completed_;
        const LatencySample sample{done.completed, done.latency()};
        if (sample.latency >= spikeThreshold())
            lastSpikeAt_ = sample.doneAt;
        if (recordAll_ || sample.latency >= spikeThreshold())
            samples_.push_back(sample);
    };
    if (mem.enqueue(std::move(req)))
        inFlight_ = true;
}

bool
ProbeAgent::spikeSince(Cycle since) const
{
    return lastSpikeAt_ != 0 && lastSpikeAt_ >= since;
}

void
ProbeAgent::clearSamples()
{
    samples_.clear();
}

// ----------------------------------------------------------- HammerAgent

HammerAgent::HammerAgent(const AddressMapper &mapper,
                         const DramAddress &target,
                         std::vector<DramAddress> decoys,
                         std::uint32_t max_outstanding)
    : mapper_(mapper), maxOutstanding_(max_outstanding)
{
    targetAddr_ = mapper.compose(target);
    decoyAddrs_.reserve(decoys.size());
    for (const auto &decoy : decoys)
        decoyAddrs_.push_back(mapper.compose(decoy));
}

void
HammerAgent::startHammer(std::uint32_t target_acts)
{
    active_ = true;
    nextIsTarget_ = true;
    targetBudget_ = target_acts;
    targetIssued_ = 0;
    targetDone_ = 0;
}

void
HammerAgent::stop()
{
    active_ = false;
    targetBudget_ = 0;
}

bool
HammerAgent::done() const
{
    return !active_ ||
           (targetBudget_ == 0 && outstanding_ == 0);
}

Addr
HammerAgent::nextAddress()
{
    if (nextIsTarget_) {
        nextIsTarget_ = false;
        return targetAddr_;
    }
    nextIsTarget_ = true;
    const Addr addr = decoyAddrs_[decoyIdx_];
    decoyIdx_ = (decoyIdx_ + 1) % decoyAddrs_.size();
    return addr;
}

void
HammerAgent::tick(MemoryController &mem, Cycle)
{
    if (!active_)
        return;

    while (outstanding_ < maxOutstanding_) {
        if (targetBudget_ == 0 && nextIsTarget_) {
            // Burst complete once in-flight reads drain.
            if (outstanding_ == 0)
                active_ = false;
            return;
        }

        const bool is_target = nextIsTarget_;
        const Addr addr = nextAddress();

        Request req;
        req.type = ReqType::Read;
        req.addr = addr;
        req.onComplete = [this, is_target](const Request &) {
            --outstanding_;
            if (is_target)
                ++targetDone_;
        };
        if (!mem.enqueue(std::move(req))) {
            // Queue full: undo the sequencing step and retry later.
            nextIsTarget_ = is_target;
            if (!is_target)
                decoyIdx_ = (decoyIdx_ + decoyAddrs_.size() - 1) %
                            decoyAddrs_.size();
            return;
        }
        ++outstanding_;
        if (is_target) {
            --targetBudget_;
            ++targetIssued_;
        }
    }
}

// --------------------------------------------------------- FeintingAgent

FeintingAgent::FeintingAgent(MemoryController &mem,
                             std::uint32_t pool_size,
                             std::uint32_t target_row)
    : mem_(mem), targetRow_(target_row)
{
    for (std::uint32_t i = 0; i < pool_size; ++i)
        pool_.push_back(target_row + 1 + i);
    pool_.push_back(target_row);
}

std::uint32_t
FeintingAgent::nextRow()
{
    if (cursor_ >= pool_.size()) {
        // End of a wave: drop decoys whose counters were mitigated
        // back to zero -- their activations are now pure overhead.
        cursor_ = 0;
        std::vector<std::uint32_t> alive;
        for (const std::uint32_t row : pool_)
            if (row == targetRow_ ||
                mem_.prac().counters().get(0, row) > 0)
                alive.push_back(row);
        pool_ = std::move(alive);
    }
    if (pool_.size() <= 1)
        return targetRow_;
    return pool_[cursor_++];
}

void
FeintingAgent::tick(MemoryController &mem, Cycle)
{
    while (outstanding_ < 2) {
        Request req;
        req.addr = mem.mapper().compose(
            DramAddress{0, 0, 0, nextRow(), 0});
        req.onComplete = [this](const Request &) {
            --outstanding_;
        };
        if (!mem.enqueue(std::move(req)))
            return;
        ++outstanding_;
    }
}

} // namespace pracleak
