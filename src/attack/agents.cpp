#include "attack/agents.h"

#include <algorithm>

#include "attack/visible_bus.h"
#include "tprac/analysis.h"

namespace pracleak {

namespace {

/**
 * The Feinting pool sized for the TB-RFM-safe cadence -- the exact
 * derivation defense_matrix_security has always used, so a
 * zero-poolSize AttackerConfig is stream-identical to the legacy
 * hand-computed construction.
 */
std::uint32_t
deriveFeintingPool(const MemoryController &mem)
{
    const DramSpec &spec = mem.dram().spec();
    const FeintingParams fp = FeintingParams::fromSpec(spec);
    const double cadence_ns =
        std::max(maxSafeWindowNs(spec.prac.nbo, true, fp), fp.trcNs);
    const std::uint64_t act_w =
        std::max<std::uint64_t>(actsPerWindow(cadence_ns, fp), 1);
    return static_cast<std::uint32_t>(std::min<std::uint64_t>(
        maxActsPerTrefw(cadence_ns, fp) / act_w, 2048));
}

/** Decoy layout for the config-constructed HammerAgent. */
std::vector<DramAddress>
hammerDecoys(const DramOrg &org, const AttackerConfig &config)
{
    const std::uint32_t count =
        config.poolSize == 0 ? 2 : config.poolSize;
    const std::uint32_t stride =
        config.burstSpacing == 0 ? 1000 : config.burstSpacing;
    std::vector<DramAddress> decoys;
    for (std::uint32_t i = 0; i < count; ++i)
        decoys.push_back(attackerBankAddress(
            org, config.targetBank, config.targetRow + stride + i));
    return decoys;
}

} // namespace

// ------------------------------------------------------------ ProbeAgent

ProbeAgent::ProbeAgent(Addr probe_addr, bool record_all)
    : addr_(probe_addr), recordAll_(record_all)
{
}

ProbeAgent::ProbeAgent(const MemoryController &mem,
                       const AttackerConfig &config, bool record_all)
    : ProbeAgent(mem.mapper().compose(attackerBankAddress(
                     mem.dram().spec().org, config.targetBank,
                     config.targetRow)),
                 record_all)
{
}

Cycle
ProbeAgent::spikeThreshold()
{
    // One audited surface for "what can a probe see": the visible-bus
    // model owns the single-RFM latency discriminator (an RFMab
    // blocks the channel for 350 ns; a normal probe read finishes
    // well under 100 ns).
    return VisibleBusModel::probeSpikeThreshold();
}

void
ProbeAgent::tick(MemoryController &mem, Cycle)
{
    if (inFlight_)
        return;

    Request req;
    req.type = ReqType::Read;
    req.addr = addr_;
    req.onComplete = [this](const Request &done) {
        inFlight_ = false;
        ++completed_;
        const LatencySample sample{done.completed, done.latency()};
        if (sample.latency >= spikeThreshold())
            lastSpikeAt_ = sample.doneAt;
        if (recordAll_ || sample.latency >= spikeThreshold())
            samples_.push_back(sample);
    };
    if (mem.enqueue(std::move(req)))
        inFlight_ = true;
}

bool
ProbeAgent::spikeSince(Cycle since) const
{
    return lastSpikeAt_ != 0 && lastSpikeAt_ >= since;
}

void
ProbeAgent::clearSamples()
{
    samples_.clear();
}

// ----------------------------------------------------------- HammerAgent

HammerAgent::HammerAgent(const AddressMapper &mapper,
                         const DramAddress &target,
                         std::vector<DramAddress> decoys,
                         std::uint32_t max_outstanding)
    : mapper_(mapper), maxOutstanding_(max_outstanding)
{
    targetAddr_ = mapper.compose(target);
    decoyAddrs_.reserve(decoys.size());
    for (const auto &decoy : decoys)
        decoyAddrs_.push_back(mapper.compose(decoy));
}

HammerAgent::HammerAgent(const MemoryController &mem,
                         const AttackerConfig &config)
    : HammerAgent(mem.mapper(),
                  attackerBankAddress(mem.dram().spec().org,
                                      config.targetBank,
                                      config.targetRow),
                  hammerDecoys(mem.dram().spec().org, config))
{
}

void
HammerAgent::startHammer(std::uint32_t target_acts)
{
    active_ = true;
    nextIsTarget_ = true;
    targetBudget_ = target_acts;
    targetIssued_ = 0;
    targetDone_ = 0;
}

void
HammerAgent::stop()
{
    active_ = false;
    targetBudget_ = 0;
}

bool
HammerAgent::done() const
{
    return !active_ ||
           (targetBudget_ == 0 && outstanding_ == 0);
}

Addr
HammerAgent::nextAddress()
{
    if (nextIsTarget_) {
        nextIsTarget_ = false;
        return targetAddr_;
    }
    nextIsTarget_ = true;
    const Addr addr = decoyAddrs_[decoyIdx_];
    decoyIdx_ = (decoyIdx_ + 1) % decoyAddrs_.size();
    return addr;
}

void
HammerAgent::tick(MemoryController &mem, Cycle)
{
    if (!active_)
        return;

    while (outstanding_ < maxOutstanding_) {
        if (targetBudget_ == 0 && nextIsTarget_) {
            // Burst complete once in-flight reads drain.
            if (outstanding_ == 0)
                active_ = false;
            return;
        }

        const bool is_target = nextIsTarget_;
        const Addr addr = nextAddress();

        Request req;
        req.type = ReqType::Read;
        req.addr = addr;
        req.onComplete = [this, is_target](const Request &) {
            --outstanding_;
            if (is_target)
                ++targetDone_;
        };
        if (!mem.enqueue(std::move(req))) {
            // Queue full: undo the sequencing step and retry later.
            nextIsTarget_ = is_target;
            if (!is_target)
                decoyIdx_ = (decoyIdx_ + decoyAddrs_.size() - 1) %
                            decoyAddrs_.size();
            return;
        }
        ++outstanding_;
        if (is_target) {
            --targetBudget_;
            ++targetIssued_;
        }
    }
}

// --------------------------------------------------------- FeintingAgent

FeintingAgent::FeintingAgent(MemoryController &mem,
                             std::uint32_t pool_size,
                             std::uint32_t target_row)
    : mem_(mem), targetRow_(target_row)
{
    for (std::uint32_t i = 0; i < pool_size; ++i)
        pool_.push_back(target_row + 1 + i);
    pool_.push_back(target_row);
}

FeintingAgent::FeintingAgent(MemoryController &mem,
                             const AttackerConfig &config)
    : FeintingAgent(mem,
                    config.poolSize == 0 ? deriveFeintingPool(mem)
                                         : config.poolSize,
                    config.targetRow)
{
}

std::uint32_t
FeintingAgent::nextRow()
{
    if (cursor_ >= pool_.size()) {
        // End of a wave: drop decoys whose counters were mitigated
        // back to zero -- their activations are now pure overhead.
        cursor_ = 0;
        std::vector<std::uint32_t> alive;
        for (const std::uint32_t row : pool_)
            if (row == targetRow_ ||
                mem_.prac().counters().get(0, row) > 0)
                alive.push_back(row);
        pool_ = std::move(alive);
    }
    if (pool_.size() <= 1)
        return targetRow_;
    return pool_[cursor_++];
}

void
FeintingAgent::tick(MemoryController &mem, Cycle)
{
    while (outstanding_ < 2) {
        Request req;
        req.addr = mem.mapper().compose(
            DramAddress{0, 0, 0, nextRow(), 0});
        req.onComplete = [this](const Request &) {
            --outstanding_;
        };
        if (!mem.enqueue(std::move(req)))
            return;
        ++outstanding_;
    }
}

} // namespace pracleak
