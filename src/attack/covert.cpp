#include "attack/covert.h"

#include <algorithm>
#include <cmath>

#include "attack/agents.h"
#include "attack/harness.h"
#include "attack/visible_bus.h"
#include "common/log.h"
#include "tprac/analysis.h"

namespace pracleak {

double
CovertResult::periodUs() const
{
    if (symbolsSent == 0)
        return 0.0;
    return cyclesToUs(totalCycles) / static_cast<double>(symbolsSent);
}

double
CovertResult::bitrateKbps() const
{
    const double period_s = periodUs() * 1e-6;
    if (period_s <= 0.0)
        return 0.0;
    return bitsPerSymbol / period_s / 1000.0;
}

double
CovertResult::errorRate() const
{
    if (symbolsSent == 0)
        return 0.0;
    return static_cast<double>(symbolErrors) /
           static_cast<double>(symbolsSent);
}

ControllerConfig
covertControllerConfig(const CovertParams &params)
{
    ControllerConfig config;
    config.mode = params.mode;
    config.refreshEnabled = params.refreshEnabled;
    // The paper's attack evaluation runs on UPRAC, whose idealized
    // queue mitigates the true per-bank maximum on every RFM.  (A
    // single-entry queue is empty for the 2nd..4th RFM of an Alert
    // burst -- nothing activates while the channel is blocked -- so
    // decoy rows would accumulate stale counts.)
    config.prac.queue = QueueKind::Ideal;
    if (params.mode == MitigationMode::AboAcb) {
        const FeintingParams fp = FeintingParams::fromSpec(params.spec);
        config.bat = std::max<std::uint32_t>(
            16, maxSafeBat(params.nbo, true, fp));
    }
    if (params.mode == MitigationMode::Tprac) {
        if (params.tbWindowCycles) {
            config.tbRfm.windowCycles = params.tbWindowCycles;
        } else {
            config.tbRfm =
                TbRfmConfig::forNbo(params.nbo, true, params.spec);
        }
    }
    if (params.mode == MitigationMode::Obfuscation)
        config.randomRfmPerTrefi = params.randomRfmPerTrefi;
    return config;
}

namespace {

DramSpec
covertSpec(const CovertParams &params)
{
    DramSpec spec = params.spec;
    spec.prac.nbo = params.nbo;
    spec.prac.nmit = params.nmit;
    return spec;
}

/**
 * Receiver-side RFM detector.  Probes one row in each of two ranks:
 * a per-rank refresh delays only one probe, while an RFMab (which
 * blocks the whole channel) delays both within a tight coincidence
 * window.  This filters refresh-induced false spikes without any
 * timing calibration.
 */
class RfmDetector : public MemAgent
{
  public:
    explicit RfmDetector(const AddressMapper &mapper,
                         std::uint32_t channel = 0)
    {
        DramAddress a{0, 0, 0, 3, 0};
        DramAddress b{1, 0, 0, 3, 0};
        a.channel = channel;
        b.channel = channel;
        probeA_ = std::make_unique<ProbeAgent>(mapper.compose(a), false);
        probeB_ = std::make_unique<ProbeAgent>(mapper.compose(b), false);
    }

    void
    tick(MemoryController &mem, Cycle now) override
    {
        probeA_->tick(mem, now);
        probeB_->tick(mem, now);
    }

    /**
     * Whether a coincident (channel-wide) spike completed since
     * @p since: some spike of probe A within 500 ns of some spike of
     * probe B.  Per-rank refreshes are staggered ~975 ns apart and
     * never coincide.
     */
    bool
    rfmSince(Cycle since) const
    {
        const Cycle window = nsToCycles(500);
        for (const auto &sa : probeA_->samples()) {
            if (sa.doneAt < since)
                continue;
            for (const auto &sb : probeB_->samples()) {
                if (sb.doneAt < since)
                    continue;
                const Cycle gap = sa.doneAt > sb.doneAt
                                      ? sa.doneAt - sb.doneAt
                                      : sb.doneAt - sa.doneAt;
                if (gap <= window)
                    return true;
            }
        }
        return false;
    }

    /** Drop accumulated spike samples (start of a new window). */
    void
    clear()
    {
        probeA_->clearSamples();
        probeB_->clearSamples();
    }

  private:
    std::unique_ptr<ProbeAgent> probeA_;
    std::unique_ptr<ProbeAgent> probeB_;
};

/**
 * Count-channel receiver: serially re-activates the shared row
 * (alternating with a private decoy to force conflicts) and watches
 * its own latencies; the activation count at the first RFM spike
 * encodes the sender's symbol.
 */
class CountReceiver : public MemAgent
{
  public:
    CountReceiver(const AddressMapper &mapper,
                  const DramAddress &shared_row,
                  const DramAddress &decoy_row, Cycle spike_threshold)
        : sharedAddr_(mapper.compose(shared_row)),
          decoyAddr_(mapper.compose(decoy_row)),
          threshold_(spike_threshold)
    {
    }

    /** Arm a probing burst of at most @p max_acts shared-row ACTs. */
    void
    arm(std::uint32_t max_acts)
    {
        active_ = true;
        spikeSeen_ = false;
        actsDone_ = 0;
        maxActs_ = max_acts;
        nextIsShared_ = true;
    }

    void disarm() { active_ = false; }

    bool spikeSeen() const { return spikeSeen_; }
    std::uint32_t actsAtSpike() const { return actsAtSpike_; }
    std::uint32_t actsDone() const { return actsDone_; }

    void
    tick(MemoryController &mem, Cycle) override
    {
        if (!active_ || inFlight_ || spikeSeen_ || actsDone_ >= maxActs_)
            return;

        const bool is_shared = nextIsShared_;
        Request req;
        req.type = ReqType::Read;
        req.addr = is_shared ? sharedAddr_ : decoyAddr_;
        req.onComplete = [this, is_shared](const Request &done) {
            inFlight_ = false;
            if (is_shared)
                ++actsDone_;
            if (!spikeSeen_ && done.latency() >= threshold_) {
                spikeSeen_ = true;
                actsAtSpike_ = actsDone_;
            }
        };
        if (mem.enqueue(std::move(req))) {
            inFlight_ = true;
            nextIsShared_ = !nextIsShared_;
        }
    }

  private:
    Addr sharedAddr_;
    Addr decoyAddr_;
    Cycle threshold_;
    bool active_ = false;
    bool inFlight_ = false;
    bool nextIsShared_ = true;
    bool spikeSeen_ = false;
    std::uint32_t actsDone_ = 0;
    std::uint32_t actsAtSpike_ = 0;
    std::uint32_t maxActs_ = 0;
};

} // namespace

CovertResult
runActivityCovert(const CovertParams &params,
                  const std::vector<bool> &message)
{
    return runActivityCovertParallel(params, {message})[0];
}

std::vector<CovertResult>
runActivityCovertParallel(const CovertParams &params,
                          const std::vector<std::vector<bool>> &messages)
{
    const DramSpec spec = covertSpec(params);
    const auto channels = static_cast<std::uint32_t>(messages.size());
    AttackHarness harness(spec, covertControllerConfig(params),
                          channels);

    // One sender/receiver pair per channel; the sender hammers a
    // private bank, far from its channel's detector rows.
    std::vector<std::unique_ptr<RfmDetector>> detectors;
    std::vector<std::unique_ptr<HammerAgent>> senders;
    for (std::uint32_t c = 0; c < channels; ++c) {
        const AddressMapper &mapper = harness.mem(c).mapper();
        detectors.push_back(std::make_unique<RfmDetector>(mapper, c));

        DramAddress target{0, 4, 2, 0x100, 0};
        target.channel = c;
        std::vector<DramAddress> decoys;
        for (std::uint32_t i = 0; i < 4; ++i) {
            DramAddress decoy{0, 4, 2, 0x200 + i, 0};
            decoy.channel = c;
            decoys.push_back(decoy);
        }
        senders.push_back(std::make_unique<HammerAgent>(
            mapper, target, std::move(decoys)));

        harness.add(detectors[c].get(), c);
        harness.add(senders[c].get(), c);
    }

    // Settle caches/row state and the first refresh rounds.
    harness.run(spec.timing.tREFI * 4);

    // A Bit-1 window must fit NBO target activations.  Each target
    // activation costs one target and one decoy row cycle; with the
    // PRAC-extended tRP the bank pipeline is tRP+tRCD+tRTP per cycle.
    // 15% headroom absorbs refresh stalls.
    const Cycle row_cycle =
        spec.timing.tRP + spec.timing.tRCD + spec.timing.tRTP;
    const Cycle window =
        row_cycle * 2 * params.nbo * 115 / 100 +
        spec.timing.tRFMab * spec.prac.nmit + nsToCycles(3000);

    std::vector<CovertResult> results(channels);
    std::size_t max_bits = 0;
    for (const auto &message : messages)
        max_bits = std::max(max_bits, message.size());

    for (std::size_t i = 0; i < max_bits; ++i) {
        const Cycle start = harness.now();
        for (std::uint32_t c = 0; c < channels; ++c) {
            if (i >= messages[c].size())
                continue;
            detectors[c]->clear();
            if (messages[c][i])
                senders[c]->startHammer(params.nbo +
                                        spec.prac.aboAct + 4);
        }
        harness.run(window);
        for (std::uint32_t c = 0; c < channels; ++c) {
            senders[c]->stop();
            if (i >= messages[c].size())
                continue;
            const bool bit = messages[c][i];
            const bool decoded = detectors[c]->rfmSince(start);
            CovertResult &result = results[c];
            result.sent.push_back(bit ? 1 : 0);
            result.decoded.push_back(decoded ? 1 : 0);
            if (decoded != bit)
                ++result.symbolErrors;
            ++result.symbolsSent;
            result.totalCycles += harness.now() - start;
        }
    }

    for (CovertResult &result : results)
        result.bitsPerSymbol = 1.0;
    return results;
}

CovertResult
runCountCovert(const CovertParams &params,
               const std::vector<std::uint32_t> &symbols)
{
    const DramSpec spec = covertSpec(params);
    AttackHarness harness(spec, covertControllerConfig(params));
    const AddressMapper &mapper = harness.mem().mapper();

    // Sender and receiver share one physical row (different columns),
    // which MOP mapping makes possible across page boundaries.
    const DramAddress shared{0, 2, 1, 0x500, 0};
    const DramAddress shared_rx{0, 2, 1, 0x500, 64};

    std::vector<DramAddress> tx_decoys;
    for (std::uint32_t i = 0; i < 4; ++i)
        tx_decoys.push_back(DramAddress{0, 2, 1, 0x600 + i, 0});
    const DramAddress rx_decoy{0, 2, 1, 0x700, 0};

    HammerAgent sender(mapper, shared, tx_decoys);
    const Cycle spike_threshold =
        VisibleBusModel::fromSpec(spec).rfmSpikeThreshold();
    CountReceiver receiver(mapper, shared_rx, rx_decoy, spike_threshold);

    harness.add(&sender);
    harness.add(&receiver);
    harness.run(spec.timing.tREFI * 4);

    // Counts are spaced kSpacing apart so spike-attribution jitter
    // never crosses a symbol boundary.  The jitter comes from the
    // receiver's in-flight pipeline plus refresh-induced
    // re-activations, and the latter grows with the (NBO-proportional)
    // phase length -- hence the adaptive spacing.  Counts stay below
    // nbo/2 so the sender alone can never assert the Alert.
    const std::uint32_t kSpacing = params.nbo <= 256 ? 8 : 16;
    const std::uint32_t max_count = params.nbo / 2;
    const std::uint32_t max_symbol = max_count / kSpacing;
    // Sender keeps two reads in flight (one bank row-cycle per read);
    // the receiver is serialized, so each of its activations also pays
    // the read round trip.  15% headroom absorbs refresh stalls.
    const Cycle row_cycle =
        spec.timing.tRP + spec.timing.tRCD + spec.timing.tRTP;
    const Cycle rx_read =
        row_cycle + spec.timing.readLatency() + spec.timing.tRTP;
    const Cycle send_phase =
        row_cycle * 2 * max_count * 115 / 100 + nsToCycles(2000);
    const Cycle recv_phase = rx_read * 2 * params.nbo * 115 / 100 +
                             spec.timing.tRFMab * spec.prac.nmit +
                             nsToCycles(3000);

    // The receiver's in-flight pipeline means the spike is observed a
    // fixed number of activations after the true NBO crossing; a
    // known preamble symbol calibrates that offset.
    const std::uint32_t preamble = max_count / 2;

    CovertResult result;
    result.bitsPerSymbol =
        std::log2(static_cast<double>(max_symbol));

    std::int64_t offset = 0;
    bool calibrated = false;
    const Cycle t0 = harness.now();

    auto transmit = [&](std::uint32_t k) -> std::int64_t {
        // Sender phase: k activations of the shared row.
        if (k > 0)
            sender.startHammer(k);
        harness.run(send_phase);
        sender.stop();

        // Receiver phase: activate until the RFM spike.
        receiver.arm(params.nbo + 16);
        const Cycle deadline = harness.now() + recv_phase;
        harness.runUntil([&] { return receiver.spikeSeen(); },
                         recv_phase);
        receiver.disarm();
        // Keep windows fixed-length for a clockable channel.
        if (harness.now() < deadline)
            harness.run(deadline - harness.now());

        if (!receiver.spikeSeen())
            return -1;
        return static_cast<std::int64_t>(params.nbo) -
               static_cast<std::int64_t>(receiver.actsAtSpike());
    };

    // Preamble (not scored).
    const std::int64_t pre_raw = transmit(preamble);
    if (pre_raw >= 0) {
        offset = static_cast<std::int64_t>(preamble) - pre_raw;
        calibrated = true;
    } else {
        warn("count covert channel: preamble produced no spike");
    }

    for (const std::uint32_t symbol : symbols) {
        const std::uint32_t clamped = std::min(symbol, max_symbol - 1);
        const std::uint32_t k = kSpacing * clamped + kSpacing / 2;
        const std::int64_t raw = transmit(k);
        std::int64_t decoded_symbol = -1;
        std::int64_t k_cal = -1;
        if (raw >= 0) {
            k_cal = raw + (calibrated ? offset : 0);
            decoded_symbol = k_cal / kSpacing; // grid cell (k+-3 safe)
        }
        result.rawCounts.push_back(k_cal);
        result.sent.push_back(clamped);
        result.decoded.push_back(
            decoded_symbol < 0
                ? 0
                : static_cast<std::uint32_t>(decoded_symbol));
        if (decoded_symbol != static_cast<std::int64_t>(clamped))
            ++result.symbolErrors;
        ++result.symbolsSent;
    }

    result.totalCycles = harness.now() - t0;
    return result;
}

} // namespace pracleak
