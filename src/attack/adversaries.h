/**
 * @file
 * String-keyed registry of attack agents, mirroring the defense
 * registry in mitigation/registry.h, plus the defense-aware
 * adversaries the attacker-search driver (sim/search.h) tunes.
 *
 * The paper's security matrix is argued with defense-oblivious
 * stressors; this registry upgrades it to best-known-attack claims.
 * Each registered attacker implements the MemAgent tick contract and
 * is constructed from one AttackerConfig aggregate, so scenario
 * grids can sweep `--set attacker=...` exactly like `--set
 * mitigation=...`, with `attacker.<knob>=` sub-keys pinning
 * individual knobs.
 *
 * Registered attackers (see src/attack/DESIGN.md for the taxonomy):
 *  - "probe"           latency spy (ProbeAgent behind the registry)
 *  - "hammer"          oblivious direct hammer, the security-matrix
 *                      baseline every searched adversary must beat
 *  - "feinting"        mitigation-bandwidth-wasting wave attacker
 *  - "graphene-thrash" Space-Saving-table thrasher: decoy rotation
 *                      in the target bank plus cross-bank trigger
 *                      noise that clogs the serial RFMpb FIFO
 *  - "para-retry"      retry-until-escape hammer: races candidate
 *                      rows and re-concentrates on the ones PARA's
 *                      probabilistic refresh has not yet reset
 *  - "pb-parallel"     bank-parallel hammer saturating per-bank
 *                      RAAIMT budgets faster than the channel-serial
 *                      RFMpb drain can service them
 */

#ifndef PRACLEAK_ATTACK_ADVERSARIES_H
#define PRACLEAK_ATTACK_ADVERSARIES_H

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "attack/harness.h"
#include "common/types.h"

namespace pracleak {

/**
 * Construction-time knobs for every registered attacker.  A zero
 * value means "derive a sensible default from the controller's spec
 * and defense configuration"; the per-attacker meaning of each knob
 * is documented in attackerCatalog() and src/attack/DESIGN.md.
 * The search driver walks exactly the knobs listed in
 * attackerKnobSpace().
 */
struct AttackerConfig
{
    /** Registry key ("hammer", "para-retry", ...). */
    std::string attacker;

    /** Parallel aggressor streams (rows, candidates, or noise banks). */
    std::uint32_t aggressors = 0;

    /** Decoy/rotation pool size (rows cycled around the target). */
    std::uint32_t poolSize = 0;

    /** Issue pacing: adaptation poll interval or noise:target ratio. */
    std::uint32_t burstSpacing = 0;

    /** Cycles to idle before the first request (tREFW alignment). */
    std::uint32_t phase = 0;

    /** Flat bank of the primary target row. */
    std::uint32_t targetBank = 0;

    /** Row driven toward NBO (the attack metric tracks its counter). */
    std::uint32_t targetRow = 5000;

    /** Base RNG seed for any randomized decisions (derived streams). */
    std::uint64_t seed = 0xA77AC0DEULL;
};

namespace detail {

/** Implicitly convertible to any field type: probes aggregate arity. */
struct AnyAttackerField
{
    template <class T> operator T() const;
};

template <std::size_t> using AttackerFieldProbe = AnyAttackerField;

template <class T, class... Args>
auto attackerBraceTest(int)
    -> decltype(T{std::declval<Args>()...}, std::true_type{});
template <class, class...>
auto attackerBraceTest(...) -> std::false_type;

template <class T, std::size_t... I>
constexpr bool
attackerAcceptsFieldsImpl(std::index_sequence<I...>)
{
    return decltype(attackerBraceTest<T, AttackerFieldProbe<I>...>(
        0))::value;
}

/** Whether aggregate @p T brace-initializes from exactly N values. */
template <class T, std::size_t N>
inline constexpr bool attackerAcceptsFields =
    attackerAcceptsFieldsImpl<T>(std::make_index_sequence<N>{});

} // namespace detail

/**
 * Field-count tripwire, same idiom as DesignConfig (sim/design.h).
 * AttackerConfig is consumed positionally in places the compiler
 * cannot audit: attackerConfigToJson()/knob export in
 * adversaries.cpp, the `attacker.<knob>` CLI sub-keys, and the
 * search driver's candidate sampling must each enumerate every knob
 * or a new field silently never gets swept.  Update the count only
 * after auditing those sites.
 */
inline constexpr std::size_t kAttackerConfigFieldCount = 8;

static_assert(std::is_aggregate_v<AttackerConfig>,
              "AttackerConfig must stay an aggregate: scenarios and "
              "the search driver rely on designated initializers, "
              "and the field-count tripwire probes "
              "brace-initialization");
static_assert(
    detail::attackerAcceptsFields<AttackerConfig,
                                  kAttackerConfigFieldCount> &&
        !detail::attackerAcceptsFields<AttackerConfig,
                                       kAttackerConfigFieldCount + 1>,
    "AttackerConfig gained or lost a field: audit the knob export, "
    "the attacker.<knob> CLI sub-keys, and the search driver's "
    "candidate sampler (sim/search.cpp), then update "
    "kAttackerConfigFieldCount");

/** A registry-constructed attack actor. */
class AttackerAgent : public MemAgent
{
  public:
    explicit AttackerAgent(AttackerConfig config)
        : config_(std::move(config))
    {
    }

    /** Registry key, e.g. "hammer" or "para-retry". */
    virtual const char *name() const = 0;

    /** Effective knobs after zero-value derivation. */
    const AttackerConfig &config() const { return config_; }

  protected:
    AttackerConfig config_;
};

/** Catalog entry for one registered attacker. */
struct AttackerInfo
{
    const char *name;
    const char *description;

    /** Defense this attacker is tuned against ("" = oblivious). */
    const char *targetDefense;
};

/** Inclusive sampling range of one searchable knob. */
struct AttackerKnob
{
    const char *knob;       //!< "aggressors", "pool_size", ...
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
};

/** All registered attackers, in presentation order. */
const std::vector<AttackerInfo> &attackerCatalog();

/** Catalog lookup; nullptr when unknown. */
const AttackerInfo *findAttacker(const std::string &name);

/** Registered attacker keys, in catalog order. */
std::vector<std::string> attackerNames();

/**
 * The search-space bounds of @p name's knobs (empty for attackers
 * with nothing to tune, e.g. the oblivious "hammer" baseline).
 */
std::vector<AttackerKnob> attackerKnobSpace(const std::string &name);

/**
 * The defense-aware attacker matched to defense @p defense
 * ("graphene" -> "graphene-thrash", ...); "feinting" for defenses
 * without a specialised adversary.
 */
std::string attackerForDefense(const std::string &defense);

/**
 * Construct the attacker named @p name against @p mem (whose spec
 * and defense configuration drive zero-knob derivation).  Fatals on
 * unknown keys, like makeMitigation.  The returned agent is not yet
 * registered with any harness.
 */
std::unique_ptr<AttackerAgent>
attackerByName(const std::string &name, const AttackerConfig &config,
               MemoryController &mem);

/**
 * Inverse of AddressMapper::flatBank: the DramAddress of @p row in
 * @p flat_bank.  Attackers compose lane addresses from flat banks so
 * knobs stay organization-independent.
 */
DramAddress attackerBankAddress(const DramOrg &org,
                                std::uint32_t flat_bank,
                                std::uint32_t row);

} // namespace pracleak

#endif // PRACLEAK_ATTACK_ADVERSARIES_H
