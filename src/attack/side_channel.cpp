#include "attack/side_channel.h"

#include <deque>
#include <memory>

#include "attack/harness.h"
#include "attack/visible_bus.h"
#include "common/log.h"
#include "common/rng.h"
#include "tprac/analysis.h"

namespace pracleak {

namespace {

/** Bank holding the monitored Te0 rows. */
constexpr std::uint32_t kTe0Rank = 0;
constexpr std::uint32_t kTe0Bg = 3;
constexpr std::uint32_t kTe0Bank = 0;
constexpr std::uint32_t kTe0RowBase = 0x1000;
constexpr std::uint32_t kVictimCol = 0;
constexpr std::uint32_t kAttackerCol = 64;

DramAddress
te0Row(int line, std::uint32_t col)
{
    return DramAddress{kTe0Rank, kTe0Bg, kTe0Bank,
                       kTe0RowBase + static_cast<std::uint32_t>(line),
                       col};
}

/** Counts ACTs in the monitored bank, per monitored row. */
class ActRecorder : public DramListener
{
  public:
    ActRecorder(const AddressMapper &mapper, bool record_timeline)
        : recordTimeline_(record_timeline)
    {
        flatBank_ = mapper.flatBank(te0Row(0, 0));
    }

    void
    onActivate(std::uint32_t flat_bank, std::uint32_t row,
               Cycle now) override
    {
        if (flat_bank != flatBank_)
            return;
        if (row < kTe0RowBase || row >= kTe0RowBase + 16)
            return;
        const int idx = static_cast<int>(row - kTe0RowBase);
        ++counts_[idx];
        if (recordTimeline_)
            timeline_.emplace_back(now, idx);
    }

    void onRefresh(std::uint32_t, Cycle) override {}

    void
    onRfm(Cycle now) override
    {
        rfmTimes_.push_back(now);
    }

    const std::array<std::uint32_t, 16> &counts() const
    {
        return counts_;
    }
    std::array<std::uint32_t, 16> snapshot() const { return counts_; }
    const std::vector<Cycle> &rfmTimes() const { return rfmTimes_; }
    const std::vector<std::pair<Cycle, int>> &timeline() const
    {
        return timeline_;
    }

  private:
    std::uint32_t flatBank_;
    bool recordTimeline_;
    std::array<std::uint32_t, 16> counts_{};
    std::vector<Cycle> rfmTimes_;
    std::vector<std::pair<Cycle, int>> timeline_;
};

/**
 * The victim process: encrypts attacker-chosen plaintexts; its
 * first-round Te0 lookups surface as serialized DRAM reads because
 * the attacker keeps the table lines flushed.
 */
class AesVictim : public MemAgent
{
  public:
    AesVictim(const AddressMapper &mapper, const Aes128T::Key &key,
              std::uint8_t p0, int encryptions, std::uint64_t seed)
        : mapper_(mapper), aes_(key), p0_(p0),
          remaining_(encryptions), rng_(seed)
    {
        aes_.setAccessHook([this](int table, std::uint8_t index,
                                  int round) {
            if (table == 0 && round == 1)
                pendingLines_.push_back(index >> 4);
        });
    }

    bool done() const { return remaining_ == 0 && queue_.empty(); }

    void
    tick(MemoryController &mem, Cycle) override
    {
        if (inFlight_)
            return;
        if (queue_.empty()) {
            if (remaining_ == 0)
                return;
            runOneEncryption();
        }
        if (queue_.empty())
            return;

        Request req;
        req.type = ReqType::Read;
        req.addr = queue_.front();
        req.onComplete = [this](const Request &) { inFlight_ = false; };
        if (mem.enqueue(std::move(req))) {
            queue_.pop_front();
            inFlight_ = true;
        }
    }

  private:
    void
    runOneEncryption()
    {
        Aes128T::Block pt;
        pt[0] = p0_;
        for (int i = 1; i < 16; ++i)
            pt[i] = static_cast<std::uint8_t>(rng_.range(256));
        pendingLines_.clear();
        aes_.encrypt(pt);
        for (const int line : pendingLines_)
            queue_.push_back(mapper_.compose(te0Row(line, kVictimCol)));
        --remaining_;
    }

    const AddressMapper &mapper_;
    Aes128T aes_;
    std::uint8_t p0_;
    int remaining_;
    Rng rng_;
    std::vector<int> pendingLines_;
    std::deque<Addr> queue_;
    bool inFlight_ = false;
};

/**
 * The attacker's prober: round-robin single activations over the 16
 * monitored rows, watching its own latencies for the RFM spike.
 */
class SideProber : public MemAgent
{
  public:
    SideProber(const AddressMapper &mapper, Cycle spike_threshold,
               bool record_timeline)
        : threshold_(spike_threshold), recordTimeline_(record_timeline)
    {
        for (int line = 0; line < 16; ++line)
            addrs_[line] = mapper.compose(te0Row(line, kAttackerCol));
    }

    void arm() { active_ = true; }

    bool spikeSeen() const { return spikeSeen_; }
    int spikeIndex() const { return spikeIndex_; }
    int completedReads() const { return completed_; }
    const std::vector<LatencySample> &timeline() const
    {
        return timeline_;
    }

    /** Attacker activations to @p row so far. */
    std::uint32_t
    actsToRow(int row) const
    {
        // Round-robin: reads i with i % 16 == row.
        return static_cast<std::uint32_t>((completed_ + 15 - row) / 16);
    }

    void
    tick(MemoryController &mem, Cycle) override
    {
        // Two reads stay in flight so the probe activates at the
        // bank's full row-cycle rate; the controller's ABOACT budget
        // (3 ACTs) then binds before the 180 ns window does, which
        // makes the spike's distance from the trigger deterministic.
        while (active_ && !spikeSeen_ && outstanding_ < 2) {
            const int idx = issued_;
            Request req;
            req.type = ReqType::Read;
            req.addr = addrs_[idx % 16];
            req.onComplete = [this, idx](const Request &done) {
                --outstanding_;
                ++completed_;
                if (recordTimeline_)
                    timeline_.push_back(
                        LatencySample{done.completed, done.latency()});
                if (!spikeSeen_ && done.latency() >= threshold_) {
                    spikeSeen_ = true;
                    spikeIndex_ = idx;
                }
            };
            if (!mem.enqueue(std::move(req)))
                return;
            ++outstanding_;
            ++issued_;
        }
    }

  private:
    std::array<Addr, 16> addrs_{};
    Cycle threshold_;
    bool recordTimeline_;
    bool active_ = false;
    std::uint32_t outstanding_ = 0;
    bool spikeSeen_ = false;
    int spikeIndex_ = -1;
    int issued_ = 0;
    int completed_ = 0;
    std::vector<LatencySample> timeline_;
};

ControllerConfig
sideChannelConfig(const SideChannelParams &params)
{
    ControllerConfig config;
    config.mode = params.mode;
    config.prac.queue = QueueKind::Ideal; // UPRAC, as in the paper
    if (params.mode == MitigationMode::AboAcb) {
        const FeintingParams fp = FeintingParams::fromSpec(params.spec);
        config.bat = std::max<std::uint32_t>(
            16, maxSafeBat(params.nbo, true, fp));
    }
    if (params.mode == MitigationMode::Tprac) {
        if (params.tbWindowCycles)
            config.tbRfm.windowCycles = params.tbWindowCycles;
        else
            config.tbRfm =
                TbRfmConfig::forNbo(params.nbo, true, params.spec);
    }
    return config;
}

} // namespace

SideChannelResult
runAesSideChannel(const SideChannelParams &params)
{
    DramSpec spec = params.spec;
    spec.prac.nbo = params.nbo;
    spec.prac.nmit = params.nmit;

    int lag = params.probeLag;
    if (lag < 0) {
        SideChannelParams cal = params;
        cal.probeLag = 0;
        cal.key = Aes128T::Key{}; // all-zero key
        cal.p0 = 0;               // => true trigger row is 0
        cal.mode = MitigationMode::AboOnly;
        cal.recordTimeline = false;
        const SideChannelResult dry = runAesSideChannel(cal);
        if (dry.spikeObserved)
            lag = (dry.spikeProbeIndex % 16 + 16 - 0) % 16;
        else
            lag = 0;
    }

    AttackHarness harness(spec, sideChannelConfig(params));
    const AddressMapper &mapper = harness.mem().mapper();

    ActRecorder recorder(mapper, params.recordTimeline);
    harness.mem().dram().addListener(&recorder);

    AesVictim victim(mapper, params.key, params.p0, params.encryptions,
                     params.seed);
    const Cycle threshold =
        params.spikeThresholdNs > 0.0
            ? nsToCycles(params.spikeThresholdNs)
            : VisibleBusModel::fromSpec(spec).rfmSpikeThreshold();
    SideProber prober(mapper, threshold, params.recordTimeline);

    harness.add(&victim);
    harness.add(&prober);

    // Phase A: victim encrypts under attacker-controlled flushing.
    harness.runUntil([&] { return victim.done(); },
                     spec.timing.tREFW / 8);
    if (!victim.done())
        warn("AES victim did not finish its encryptions");

    SideChannelResult result;
    result.victimActsPerRow = recorder.snapshot();
    result.victimPhaseEnd = harness.now();

    // Phase B: attacker probes until the first RFM spike.
    prober.arm();
    const Cycle probe_budget =
        spec.timing.tRC * 2 * (params.nbo + 64) * 16 +
        nsToCycles(200000);
    harness.runUntil([&] { return prober.spikeSeen(); }, probe_budget);

    result.spikeObserved = prober.spikeSeen();
    result.spikeProbeIndex = prober.spikeIndex();
    if (result.spikeObserved) {
        result.estimatedTriggerRow =
            ((prober.spikeIndex() % 16) + 16 - (lag % 16)) % 16;
        result.attackerActsToTrigger =
            prober.actsToRow(result.estimatedTriggerRow);
        result.recoveredKeyNibble =
            result.estimatedTriggerRow ^ (params.p0 >> 4);
    }
    if (harness.mem().prac().alerts() > 0) {
        const std::uint32_t row = harness.mem().prac().lastAlertRow();
        if (row >= kTe0RowBase && row < kTe0RowBase + 16)
            result.trueTriggerRow = static_cast<int>(row - kTe0RowBase);
    }

    if (params.recordTimeline) {
        result.probeTimeline = prober.timeline();
        result.rfmTimes = recorder.rfmTimes();
        result.actTimeline = recorder.timeline();
    }
    return result;
}

SideChannelResult
runAesSideChannelMajority(const SideChannelParams &params, int repeats)
{
    // Attribution noise is one-sided: a refresh colliding with the
    // ABOACT window only removes probe reads between the trigger and
    // the observed spike, so the estimate can only fall *behind* the
    // true row on the 16-row ring.  The ring-maximum over repeats is
    // therefore the consistent estimator (exact as soon as one repeat
    // is collision-free).
    std::vector<int> estimates;
    SideChannelResult best;
    bool have_result = false;
    for (int r = 0; r < repeats; ++r) {
        SideChannelParams attempt = params;
        attempt.seed = params.seed + 7919ULL * r;
        SideChannelResult result = runAesSideChannel(attempt);
        if (!result.spikeObserved)
            continue;
        if (result.estimatedTriggerRow >= 0)
            estimates.push_back(result.estimatedTriggerRow);
        if (!have_result) {
            best = std::move(result);
            have_result = true;
        }
    }
    if (!have_result || estimates.empty())
        return best;

    const int reference = estimates.front();
    int max_forward = 0;
    for (const int estimate : estimates) {
        // Signed ring distance from the reference, in [-8, 8).
        int d = ((estimate - reference) % 16 + 16) % 16;
        if (d >= 8)
            d -= 16;
        max_forward = std::max(max_forward, d);
    }
    const int winner = ((reference + max_forward) % 16 + 16) % 16;
    best.estimatedTriggerRow = winner;
    best.recoveredKeyNibble = winner ^ (params.p0 >> 4);
    return best;
}

int
calibrateProbeLag(SideChannelParams params)
{
    params.probeLag = 0;
    params.key = Aes128T::Key{};
    params.p0 = 0;
    params.mode = MitigationMode::AboOnly;
    const SideChannelResult dry = runAesSideChannel(params);
    if (!dry.spikeObserved)
        return 0;
    return dry.spikeProbeIndex % 16;
}

} // namespace pracleak
