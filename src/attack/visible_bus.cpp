#include "attack/visible_bus.h"

namespace pracleak {

const char *
busVisibilityName(BusVisibility visibility)
{
    switch (visibility) {
      case BusVisibility::ChannelWide: return "channel";
      case BusVisibility::SameBank: return "bank";
      case BusVisibility::InDram: return "in-dram";
    }
    return "?";
}

VisibleBusModel
VisibleBusModel::fromSpec(const DramSpec &spec)
{
    VisibleBusModel model;
    model.tRfmAb_ = spec.timing.tRFMab;
    model.tRfmPb_ = spec.timing.tRFMpb;
    model.tRfc_ = spec.timing.tRFC;
    model.nmit_ = spec.prac.nmit;
    return model;
}

BusVisibility
VisibleBusModel::commandVisibility(CmdType type)
{
    switch (type) {
      case CmdType::REFab:
      case CmdType::RFMab:
        return BusVisibility::ChannelWide;
      case CmdType::RFMpb:
        return BusVisibility::SameBank;
      case CmdType::ACT:
      case CmdType::PRE:
      case CmdType::RD:
      case CmdType::WR:
        // Demand commands occupy the bus but block nothing beyond
        // their own bank-level timing; they are the noise floor the
        // spike thresholds discriminate against, not a signal.
        return BusVisibility::InDram;
    }
    return BusVisibility::InDram;
}

Cycle
VisibleBusModel::blockingCycles(CmdType type) const
{
    switch (type) {
      case CmdType::REFab: return tRfc_;
      case CmdType::RFMab: return tRfmAb_;
      case CmdType::RFMpb: return tRfmPb_;
      default: return 0;
    }
}

} // namespace pracleak
