#include "attack/adversaries.h"

#include <algorithm>

#include "attack/agents.h"
#include "common/log.h"

namespace pracleak {

DramAddress
attackerBankAddress(const DramOrg &org, std::uint32_t flat_bank,
                    std::uint32_t row)
{
    DramAddress daddr{};
    daddr.rank = flat_bank / org.banksPerRank();
    const std::uint32_t in_rank = flat_bank % org.banksPerRank();
    daddr.bankGroup = in_rank / org.banksPerGroup;
    daddr.bank = in_rank % org.banksPerGroup;
    daddr.row = row;
    daddr.col = 0;
    return daddr;
}

namespace {

/** Reads kept in flight by the adaptive attackers (bank-parallel). */
constexpr std::uint32_t kAdaptiveOutstanding = 8;

/**
 * Bank-parallel saturation depth: enough reads in flight to keep
 * dozens of banks busy at once without exhausting the controller's
 * 64-entry request queue.
 */
constexpr std::uint32_t kDeepOutstanding = 63;

// -------------------------------------------------------------- probe

/** ProbeAgent behind the registry (latency spy, no ACT pressure). */
class ProbeAttacker final : public AttackerAgent
{
  public:
    ProbeAttacker(const AttackerConfig &config, MemoryController &mem)
        : AttackerAgent(config), probe_(mem, config)
    {
    }

    const char *name() const override { return "probe"; }

    void
    tick(MemoryController &mem, Cycle now) override
    {
        if (now < config_.phase)
            return;
        probe_.tick(mem, now);
    }

  private:
    ProbeAgent probe_;
};

// ------------------------------------------------------------- hammer

/**
 * The defense-oblivious stressor: the security matrix's direct
 * hammer (alternate target and same-bank decoys, restart the burst
 * whenever it drains), now self-driving so it satisfies the plain
 * MemAgent contract without a scenario-side restart loop.
 */
class ObliviousHammer final : public AttackerAgent
{
  public:
    ObliviousHammer(const AttackerConfig &config,
                    MemoryController &mem)
        : AttackerAgent(config), hammer_(mem, config),
          burst_(mem.dram().spec().prac.nbo +
                 mem.dram().spec().prac.aboAct + 4)
    {
    }

    const char *name() const override { return "hammer"; }

    void
    tick(MemoryController &mem, Cycle now) override
    {
        if (now < config_.phase)
            return;
        if (hammer_.done())
            hammer_.startHammer(burst_);
        hammer_.tick(mem, now);
    }

  private:
    HammerAgent hammer_;
    std::uint32_t burst_;
};

// ----------------------------------------------------------- feinting

/** The Feinting/Wave stressor behind the registry. */
class FeintingAttacker final : public AttackerAgent
{
  public:
    FeintingAttacker(const AttackerConfig &config,
                     MemoryController &mem)
        : AttackerAgent(config), feinting_(mem, config)
    {
    }

    const char *name() const override { return "feinting"; }

    void
    tick(MemoryController &mem, Cycle now) override
    {
        if (now < config_.phase)
            return;
        feinting_.tick(mem, now);
    }

  private:
    FeintingAgent feinting_;
};

// ----------------------------------------------------- graphene-thrash

/**
 * Space-Saving-table thrasher.  Two cooperating exploits:
 *
 *  1. Victim absorption in the target bank: a Feinting-style wave
 *     over a rotating decoy pool keeps decoy true counters level
 *     with the target's, so when Graphene finally services the bank
 *     the RFMpb's hottest-row victim selection often lands on a
 *     decoy; pruned (mitigated) decoys are replaced with fresh rows
 *     so the table keeps churning through Space-Saving evictions.
 *  2. FIFO clogging: `aggressors` noise banks each hammer an
 *     alternating row pair, generating Graphene triggers whose
 *     RFMpbs queue ahead of the target bank's in the channel-serial
 *     pending FIFO -- every queued noise mitigation delays the
 *     target bank's service while the target keeps climbing.
 *
 * Adaptation: the thrasher polls Mitigation::pendingMitigations()
 * and raises the noise:target issue ratio while the FIFO is
 * draining too fast to stay clogged.
 */
class GrapheneThrashAttacker final : public AttackerAgent
{
  public:
    GrapheneThrashAttacker(const AttackerConfig &config,
                           MemoryController &mem)
        : AttackerAgent(config)
    {
        const DramOrg &org = mem.dram().spec().org;
        const std::uint32_t banks = org.totalBanks();

        if (config_.aggressors == 0)
            config_.aggressors = 6;
        config_.aggressors =
            std::min(config_.aggressors, banks - 1);
        if (config_.poolSize == 0) {
            // Sized to evict the tracked-aggressor set: one rotating
            // decoy per table entry plus the target itself.
            const std::uint32_t table =
                mem.config().graphene.tableSize;
            config_.poolSize =
                table == 0 ? 64
                           : std::min<std::uint32_t>(table + 1, 512);
        }
        if (config_.burstSpacing == 0)
            config_.burstSpacing = 2;
        ratio_ = config_.burstSpacing;

        pool_.push_back(config_.targetRow);
        for (std::uint32_t j = 0; j < config_.poolSize; ++j)
            pool_.push_back(config_.targetRow + 1000 + j);
        nextFreshRow_ = config_.targetRow + 1000 + config_.poolSize;

        for (std::uint32_t i = 0; i < config_.aggressors; ++i)
            noiseBanks_.push_back((config_.targetBank + 1 + i) %
                                  banks);
    }

    const char *name() const override { return "graphene-thrash"; }

    void
    tick(MemoryController &mem, Cycle now) override
    {
        if (now < config_.phase)
            return;
        while (outstanding_ < kAdaptiveOutstanding && issueOne(mem)) {
        }
    }

  private:
    bool
    issueOne(MemoryController &mem)
    {
        const DramOrg &org = mem.dram().spec().org;
        const bool target_lane =
            noiseBanks_.empty() || slot_ % (1 + ratio_) == 0;

        DramAddress daddr{};
        if (target_lane) {
            if (cursor_ >= pool_.size())
                endWave(mem);
            daddr = attackerBankAddress(org, config_.targetBank,
                                pool_[cursor_]);
        } else {
            const std::uint32_t lane =
                noiseCursor_ % noiseBanks_.size();
            const std::uint32_t row =
                config_.targetRow + (noiseFlip_ ? 1 : 0);
            daddr = attackerBankAddress(org, noiseBanks_[lane], row);
        }

        Request req;
        req.type = ReqType::Read;
        req.addr = mem.mapper().compose(daddr);
        req.onComplete = [this](const Request &) { --outstanding_; };
        if (!mem.enqueue(std::move(req)))
            return false;
        ++outstanding_;
        ++slot_;
        if (target_lane) {
            ++cursor_;
        } else {
            ++noiseCursor_;
            if (noiseCursor_ % noiseBanks_.size() == 0)
                noiseFlip_ = !noiseFlip_;
        }
        if (++sincePoll_ >= 256) {
            sincePoll_ = 0;
            adapt(mem);
        }
        return true;
    }

    void
    endWave(MemoryController &mem)
    {
        cursor_ = 0;
        // Rotate out decoys whose counters were mitigated back to
        // zero: their table entries were serviced, so fresh rows
        // re-enter through Space-Saving eviction at low inherited
        // estimates while the survivors keep their true counts.
        for (std::uint32_t &row : pool_) {
            if (row == config_.targetRow)
                continue;
            if (mem.prac().counters().get(config_.targetBank, row) ==
                0)
                row = nextFreshRow_++;
        }
    }

    void
    adapt(MemoryController &mem)
    {
        if (noiseBanks_.empty())
            return;
        const std::size_t backlog =
            mem.mitigation().pendingMitigations();
        if (backlog < noiseBanks_.size() / 2)
            ratio_ = std::min<std::uint32_t>(ratio_ * 2, 16);
        else
            ratio_ = config_.burstSpacing;
    }

    std::vector<std::uint32_t> pool_;       //!< target-bank wave rows
    std::vector<std::uint32_t> noiseBanks_;
    std::uint32_t nextFreshRow_ = 0;
    std::uint32_t ratio_ = 2;
    std::uint64_t slot_ = 0;
    std::size_t cursor_ = 0;
    std::uint64_t noiseCursor_ = 0;
    bool noiseFlip_ = false;
    std::uint32_t sincePoll_ = 0;
    std::uint32_t outstanding_ = 0;
};

// --------------------------------------------------------- para-retry

/**
 * Retry-until-escape hammer.  PARA resets an activated row's counter
 * with probability p per ACT, so any single row's expected maximum
 * is tightly bounded -- but the *best of K* independent candidates
 * is not.  The attacker races `aggressors` candidate rows spread
 * across banks (bank parallelism buys raw ACT throughput), polls
 * their PRAC counters every `burst_spacing` issues, and
 * re-concentrates its activation budget on the half that has
 * escaped the most resets; when the leader is finally reset it
 * widens back out and restarts the race.
 */
class ParaRetryAttacker final : public AttackerAgent
{
  public:
    ParaRetryAttacker(const AttackerConfig &config,
                      MemoryController &mem)
        : AttackerAgent(config)
    {
        const DramOrg &org = mem.dram().spec().org;
        if (config_.aggressors == 0)
            config_.aggressors = 8;
        config_.aggressors =
            std::min(config_.aggressors, org.totalBanks());
        if (config_.burstSpacing == 0)
            config_.burstSpacing = 64;

        for (std::uint32_t i = 0; i < config_.aggressors; ++i) {
            Candidate candidate;
            candidate.bank =
                (config_.targetBank + i) % org.totalBanks();
            candidate.row = config_.targetRow + i;
            candidates_.push_back(candidate);
            focus_.push_back(i);
        }
    }

    const char *name() const override { return "para-retry"; }

    void
    tick(MemoryController &mem, Cycle now) override
    {
        if (now < config_.phase)
            return;
        while (outstanding_ < kAdaptiveOutstanding && issueOne(mem)) {
        }
    }

  private:
    struct Candidate
    {
        std::uint32_t bank = 0;
        std::uint32_t row = 0;
    };

    bool
    issueOne(MemoryController &mem)
    {
        const DramOrg &org = mem.dram().spec().org;
        const Candidate &candidate =
            candidates_[focus_[focusCursor_ % focus_.size()]];
        // Alternate the candidate row with a same-bank decoy so
        // every candidate visit costs one real ACT.
        const std::uint32_t row =
            flip_ ? candidate.row + 1000 : candidate.row;

        Request req;
        req.type = ReqType::Read;
        req.addr = mem.mapper().compose(
            attackerBankAddress(org, candidate.bank, row));
        req.onComplete = [this](const Request &) { --outstanding_; };
        if (!mem.enqueue(std::move(req)))
            return false;
        ++outstanding_;
        flip_ = !flip_;
        if (!flip_)
            ++focusCursor_;
        if (++sincePoll_ >= config_.burstSpacing) {
            sincePoll_ = 0;
            refocus(mem);
        }
        return true;
    }

    void
    refocus(MemoryController &mem)
    {
        std::vector<std::uint32_t> counts(candidates_.size());
        std::uint32_t best = 0;
        for (std::size_t i = 0; i < candidates_.size(); ++i) {
            counts[i] = mem.prac().counters().get(
                candidates_[i].bank, candidates_[i].row);
            best = std::max(best, counts[i]);
        }
        if (focus_.size() == 1 && counts[focus_[0]] < lastBest_) {
            // The leader was reset: the bet is dead, restart the
            // race across every candidate.
            focus_.clear();
            for (std::uint32_t i = 0; i < candidates_.size(); ++i)
                focus_.push_back(i);
        } else if (focus_.size() > 1) {
            std::stable_sort(
                focus_.begin(), focus_.end(),
                [&counts](std::uint32_t a, std::uint32_t b) {
                    return counts[a] > counts[b];
                });
            focus_.resize((focus_.size() + 1) / 2);
        }
        lastBest_ = best;
        focusCursor_ = 0;
    }

    std::vector<Candidate> candidates_;
    std::vector<std::uint32_t> focus_;  //!< candidate indices raced
    std::size_t focusCursor_ = 0;
    bool flip_ = false;
    std::uint32_t sincePoll_ = 0;
    std::uint32_t lastBest_ = 0;
    std::uint32_t outstanding_ = 0;
};

// -------------------------------------------------------- pb-parallel

/**
 * Bank-parallel RAAIMT saturator.  PB-RFM's triggers are per-bank
 * but its RFMpb service is channel-serial: total trigger rate is
 * acts/RAAIMT regardless of spread, while per-bank ACT throughput
 * is tRC-limited -- so spreading lanes across banks multiplies the
 * activation rate until triggers outrun the drain and the pending
 * FIFO backlog grows without bound.  Every queued mitigation delays
 * the hottest rows' resets, letting lane counters overshoot the
 * RAAIMT budget.  Adaptation: while pendingMitigations() reads
 * empty the drain is keeping up, so the attacker doubles its active
 * lane count (up to `aggressors`).
 */
class PbParallelAttacker final : public AttackerAgent
{
  public:
    PbParallelAttacker(const AttackerConfig &config,
                       MemoryController &mem)
        : AttackerAgent(config)
    {
        const DramOrg &org = mem.dram().spec().org;
        if (config_.aggressors == 0)
            config_.aggressors =
                std::min<std::uint32_t>(16, org.totalBanks());
        config_.aggressors = std::max<std::uint32_t>(
            1, std::min(config_.aggressors, org.totalBanks()));
        if (config_.poolSize == 0)
            config_.poolSize = 2;
        config_.poolSize = std::max<std::uint32_t>(2, config_.poolSize);
        if (config_.burstSpacing == 0)
            config_.burstSpacing = 128;

        // Stride lanes across ranks (33 is coprime with the 128-bank
        // space): per-rank tFAW would cap a single rank well below
        // the ACT rate needed to outrun the serial RFMpb drain.
        for (std::uint32_t i = 0; i < config_.aggressors; ++i)
            lanes_.push_back(
                i == 0 ? config_.targetBank
                       : (config_.targetBank + i * (org.banksPerRank() + 1)) %
                             org.totalBanks());
        active_ = std::min<std::uint32_t>(
            4, static_cast<std::uint32_t>(lanes_.size()));
    }

    const char *name() const override { return "pb-parallel"; }

    void
    tick(MemoryController &mem, Cycle now) override
    {
        if (now < config_.phase)
            return;
        // Deep pipelining only while noise lanes are worth driving:
        // FIFO saturation needs hundreds of MACT/s across banks, but
        // single-bank absorption must stay shallow so stale in-flight
        // target reads cannot land right after a cover reset.
        const std::uint32_t depth =
            active_ > 1 ? kDeepOutstanding : 2;
        while (outstanding_ < depth && issueOne(mem)) {
        }
    }

  private:
    bool
    issueOne(MemoryController &mem)
    {
        const DramOrg &org = mem.dram().spec().org;
        std::uint32_t bank;
        std::uint32_t row;
        // One slot in ratio_ hammers the target bank (alternating
        // rows so every visit row-conflicts, tRC-limited anyway);
        // the rest sweep the noise lanes, whose only job is to trip
        // their banks' RAAIMT budgets faster than the channel-serial
        // RFMpb drain can retire them.  Once the FIFO backlog grows,
        // the target bank's own RFMpb -- and with it the reset of
        // the target row's counter -- queues ever further behind.
        const bool target_slot =
            active_ <= 1 || slot_ % ratio_ == 0;
        if (target_slot) {
            bank = lanes_[0];
            row = absorptionRow();
        } else {
            const auto noise = static_cast<std::uint32_t>(
                1 + noiseSlot_ % (active_ - 1));
            bank = lanes_[noise];
            // Rotate each noise lane over poolSize rows so no noise
            // row outgrows the target row between its bank's resets.
            const auto rotation = static_cast<std::uint32_t>(
                noiseSlot_ / (active_ - 1) % config_.poolSize);
            row = config_.targetRow + 1000 +
                  noise * config_.poolSize + rotation;
        }

        Request req;
        req.type = ReqType::Read;
        req.addr = mem.mapper().compose(
            attackerBankAddress(org, bank, row));
        req.onComplete = [this](const Request &) { --outstanding_; };
        if (!mem.enqueue(std::move(req)))
            return false;
        ++outstanding_;
        ++slot_;
        if (target_slot)
            ++targetSlot_;
        else
            ++noiseSlot_;
        if (++sincePoll_ >= config_.burstSpacing) {
            sincePoll_ = 0;
            adapt(mem);
        }
        return true;
    }

    /**
     * Absorption hammer on the target bank: alternate the target
     * with a rotating pool of same-bank decoys.  The decoys' standing
     * counts absorb a share of the tracked-victim resets (the reset
     * lands on whichever row the single-entry queue saw hottest), so
     * the target overshoots the RAAIMT budget before its own reset
     * lands.  poolSize tunes the target:decoy count equilibrium --
     * conservation caps any row near RAAIMT plus this overshoot, so
     * the knob walks the overshoot space rather than escaping it.
     */
    std::uint32_t
    absorptionRow()
    {
        if (targetSlot_ % 2 == 0)
            return config_.targetRow;
        const auto pick = static_cast<std::uint32_t>(
            (targetSlot_ / 2) % config_.poolSize);
        return config_.targetRow + 1 + pick;
    }

    void
    adapt(MemoryController &mem)
    {
        // Expectation-driven: a growing backlog means the noise
        // lanes are outrunning the serial drain, so widen that side;
        // a drained FIFO means they are wasted bandwidth, so fall
        // back toward the absorption hammer on the target bank.
        const std::size_t backlog =
            mem.mitigation().pendingMitigations();
        if (backlog > lastBacklog_) {
            active_ = std::min<std::uint32_t>(
                active_ * 2,
                static_cast<std::uint32_t>(lanes_.size()));
            ratio_ = std::min<std::uint32_t>(ratio_ * 2, 64);
        } else {
            active_ = std::max<std::uint32_t>(1, active_ / 2);
            ratio_ = std::max<std::uint32_t>(2, ratio_ / 2);
        }
        lastBacklog_ = backlog;
    }

    std::vector<std::uint32_t> lanes_;  //!< flat banks hammered
    std::uint32_t active_ = 1;          //!< lanes currently driven
    std::uint32_t ratio_ = 2;           //!< slots per target visit
    std::size_t lastBacklog_ = 0;
    std::uint64_t targetSlot_ = 0;
    std::uint64_t noiseSlot_ = 0;
    std::uint64_t slot_ = 0;
    std::uint32_t sincePoll_ = 0;
    std::uint32_t outstanding_ = 0;
};

} // namespace

// ------------------------------------------------------------ registry

const std::vector<AttackerInfo> &
attackerCatalog()
{
    static const std::vector<AttackerInfo> catalog = {
        {"probe",
         "latency spy: one read in flight, logs RFM-shaped spikes",
         ""},
        {"hammer",
         "oblivious direct hammer: target + same-bank decoys, "
         "restarted bursts (security-matrix baseline)",
         ""},
        {"feinting",
         "mitigation-bandwidth-wasting wave over a pruned decoy "
         "pool (TB-Window worst case)",
         ""},
        {"graphene-thrash",
         "rotating decoy pool evicts the tracked set while noise "
         "banks clog the serial RFMpb FIFO",
         "graphene"},
        {"para-retry",
         "races candidate rows across banks, re-concentrates on "
         "the ones PARA has not reset",
         "para"},
        {"pb-parallel",
         "bank-parallel hammer outrunning the channel-serial RFMpb "
         "drain of per-bank RAAIMT budgets",
         "pb-rfm"},
    };
    return catalog;
}

const AttackerInfo *
findAttacker(const std::string &name)
{
    for (const AttackerInfo &info : attackerCatalog())
        if (name == info.name)
            return &info;
    return nullptr;
}

std::vector<std::string>
attackerNames()
{
    std::vector<std::string> names;
    for (const AttackerInfo &info : attackerCatalog())
        names.emplace_back(info.name);
    return names;
}

std::vector<AttackerKnob>
attackerKnobSpace(const std::string &name)
{
    // Bounds are deliberately generous: the search driver samples
    // uniformly inside them and the constructors clamp to the
    // organization actually being attacked.
    if (name == "feinting")
        return {{"pool_size", 64, 2048}};
    if (name == "graphene-thrash")
        return {{"aggressors", 1, 24},
                {"pool_size", 2, 96},
                {"burst_spacing", 1, 8},
                {"phase", 0, 65536}};
    if (name == "para-retry")
        return {{"aggressors", 2, 32},
                {"burst_spacing", 16, 256},
                {"phase", 0, 65536}};
    if (name == "pb-parallel")
        return {{"aggressors", 2, 32},
                {"pool_size", 2, 8},
                {"burst_spacing", 32, 512},
                {"phase", 0, 65536}};
    return {};
}

std::string
attackerForDefense(const std::string &defense)
{
    if (defense == "graphene")
        return "graphene-thrash";
    if (defense == "para")
        return "para-retry";
    if (defense == "pb-rfm")
        return "pb-parallel";
    return "feinting";
}

std::unique_ptr<AttackerAgent>
attackerByName(const std::string &name, const AttackerConfig &config,
               MemoryController &mem)
{
    AttackerConfig effective = config;
    effective.attacker = name;
    if (name == "probe")
        return std::make_unique<ProbeAttacker>(effective, mem);
    if (name == "hammer")
        return std::make_unique<ObliviousHammer>(effective, mem);
    if (name == "feinting")
        return std::make_unique<FeintingAttacker>(effective, mem);
    if (name == "graphene-thrash")
        return std::make_unique<GrapheneThrashAttacker>(effective,
                                                        mem);
    if (name == "para-retry")
        return std::make_unique<ParaRetryAttacker>(effective, mem);
    if (name == "pb-parallel")
        return std::make_unique<PbParallelAttacker>(effective, mem);
    fatal("unknown attacker '" + name + "'");
}

} // namespace pracleak
