#include "attack/harness.h"

#include "common/log.h"

namespace pracleak {

AttackHarness::AttackHarness(const DramSpec &spec,
                             const ControllerConfig &config,
                             std::uint32_t channels)
{
    if (channels == 0 || (channels & (channels - 1)) != 0)
        fatal("AttackHarness: channels must be a power of two");
    ControllerConfig per_channel = config;
    per_channel.interleave.channels = channels;
    mems_.reserve(channels);
    for (std::uint32_t c = 0; c < channels; ++c) {
        per_channel.channelIndex = c;
        mems_.push_back(std::make_unique<MemoryController>(
            spec, per_channel, &stats_));
    }
}

void
AttackHarness::add(MemAgent *agent, std::uint32_t channel)
{
    if (channel >= mems_.size())
        fatal("AttackHarness::add: no such channel");
    agents_.push_back(Pinned{agent, channel});
}

void
AttackHarness::step()
{
    const Cycle now = mems_[0]->now();
    for (const Pinned &pinned : agents_)
        pinned.agent->tick(*mems_[pinned.channel], now);
    for (auto &mem : mems_)
        mem->tick();
}

void
AttackHarness::run(Cycle cycles)
{
    const Cycle end = now() + cycles;
    while (now() < end)
        step();
}

} // namespace pracleak
