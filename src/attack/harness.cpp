#include "attack/harness.h"

namespace pracleak {

AttackHarness::AttackHarness(const DramSpec &spec,
                             const ControllerConfig &config)
    : mem_(spec, config, &stats_)
{
}

void
AttackHarness::add(MemAgent *agent)
{
    agents_.push_back(agent);
}

void
AttackHarness::step()
{
    const Cycle now = mem_.now();
    for (auto *agent : agents_)
        agent->tick(mem_, now);
    mem_.tick();
}

void
AttackHarness::run(Cycle cycles)
{
    const Cycle end = mem_.now() + cycles;
    while (mem_.now() < end)
        step();
}

} // namespace pracleak
