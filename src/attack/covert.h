/**
 * @file
 * PRACLeak covert channels (paper Section 3.2).
 *
 * Activity-based channel: sender and receiver share only the DRAM
 * channel.  Per time window the sender either hammers a private row
 * to NBO activations (Bit-1, triggering an Alert Back-Off RFM whose
 * latency spike the receiver observes) or idles (Bit-0).
 *
 * Activation-count-based channel: sender and receiver share one
 * physical DRAM row.  The sender performs k < NBO activations of the
 * shared row; the receiver then activates the same row until it
 * observes the ABO spike after NBO - k of its own activations,
 * recovering k and thus log2(NBO) bits per window.
 */

#ifndef PRACLEAK_ATTACK_COVERT_H
#define PRACLEAK_ATTACK_COVERT_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/controller.h"

namespace pracleak {

/** Channel configuration. */
struct CovertParams
{
    DramSpec spec = DramSpec::ddr5_8000b();
    MitigationMode mode = MitigationMode::AboOnly;

    /** Back-Off threshold (overrides spec.prac.nbo). */
    std::uint32_t nbo = 256;

    /** RFMs per Alert (PRAC level). */
    std::uint32_t nmit = 4;

    /** TPRAC window, only used when mode == Tprac. */
    Cycle tbWindowCycles = 0;

    /** Random-RFM injection rate, only used when mode == Obfuscation. */
    double randomRfmPerTrefi = 0.5;

    /** Auto-refresh on/off (off isolates the channel for unit tests). */
    bool refreshEnabled = true;
};

/** Outcome of one covert-channel run. */
struct CovertResult
{
    std::size_t symbolsSent = 0;
    std::size_t symbolErrors = 0;
    double bitsPerSymbol = 1.0;
    Cycle totalCycles = 0;

    /** Mean time for one symbol, in microseconds. */
    double periodUs() const;

    /** Achieved bitrate in kilobits per second. */
    double bitrateKbps() const;

    /** Fraction of symbols decoded incorrectly. */
    double errorRate() const;

    std::vector<std::uint32_t> sent;
    std::vector<std::uint32_t> decoded;

    /**
     * Count channel only: calibrated raw activation counts before
     * symbol rounding (diagnostics; -1 when no spike was seen).
     */
    std::vector<std::int64_t> rawCounts;
};

/**
 * Run the activity-based channel transmitting @p message (one bit per
 * window).
 */
CovertResult runActivityCovert(const CovertParams &params,
                               const std::vector<bool> &message);

/**
 * Run one independent activity-channel sender/receiver pair per
 * memory channel, concurrently, on a single multi-channel harness
 * (messages.size() channels; must be a power of two).  Per-channel
 * PRAC state keeps the pairs isolated, so each result should match a
 * standalone runActivityCovert of the same message -- a regression
 * that leaks Alerts or RFMs across channels shows up here as decode
 * errors.
 */
std::vector<CovertResult>
runActivityCovertParallel(const CovertParams &params,
                          const std::vector<std::vector<bool>> &messages);

/**
 * Run the activation-count channel transmitting @p symbols, each in
 * [0, nbo/(2*spacing)) where spacing is 8 for nbo <= 256 and 16
 * beyond (log2(nbo)-4 or -5 bits per window).
 *
 * Symbols are spaced several activations apart (k = spacing*symbol +
 * spacing/2) so spike-attribution jitter -- the receiver's in-flight
 * pipeline plus refresh-induced re-activations, which grow with the
 * phase length -- never flips a symbol; the top half of the count
 * range is excluded so sender activations alone cannot trigger the
 * Alert.
 */
CovertResult runCountCovert(const CovertParams &params,
                            const std::vector<std::uint32_t> &symbols);

/** Build a ControllerConfig for the given channel parameters. */
ControllerConfig covertControllerConfig(const CovertParams &params);

} // namespace pracleak

#endif // PRACLEAK_ATTACK_COVERT_H
