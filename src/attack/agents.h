/**
 * @file
 * Reusable attack actors.
 *
 *  - ProbeAgent: the spy.  Keeps one read outstanding to a private
 *    row and logs completion latencies; an RFM anywhere in the
 *    channel shows up as a latency spike (Section 3.1).
 *  - HammerAgent: the trojan's activation engine.  Alternates reads
 *    between a target row and decoy rows in the same bank so every
 *    target read forces a row conflict and hence exactly one ACT of
 *    the target.
 */

#ifndef PRACLEAK_ATTACK_AGENTS_H
#define PRACLEAK_ATTACK_AGENTS_H

#include <cstdint>
#include <vector>

#include "attack/adversaries.h"
#include "attack/harness.h"
#include "common/types.h"
#include "mem/address_mapper.h"

namespace pracleak {

/** One latency observation from the probe. */
struct LatencySample
{
    Cycle doneAt = 0;
    Cycle latency = 0;
};

/** Spy that measures its own memory-access latency continuously. */
class ProbeAgent : public MemAgent
{
  public:
    /**
     * @param probe_addr Address the spy reads in a loop (its own bank;
     *                   open-page keeps the row open, so the spy's own
     *                   activation counters stay parked).
     * @param record_all Keep the full timeline (Fig. 3 needs it);
     *                   otherwise only recent samples are retained.
     *
     * Deprecated entry point: prefer the AttackerConfig overload (or
     * attackerByName("probe", ...)), which names the probe placement
     * instead of passing a pre-composed physical address.
     */
    explicit ProbeAgent(Addr probe_addr, bool record_all = true);

    /**
     * Registry-style construction: probe @p config.targetRow in flat
     * bank @p config.targetBank of @p mem's address space.
     */
    ProbeAgent(const MemoryController &mem,
               const AttackerConfig &config, bool record_all = true);

    void tick(MemoryController &mem, Cycle now) override;

    const std::vector<LatencySample> &samples() const { return samples_; }

    /** Number of completed probe reads. */
    std::uint64_t completed() const { return completed_; }

    /** Latency (cycles) above which a sample counts as an RFM spike. */
    static Cycle spikeThreshold();

    /** Whether any spike completed in [since, now]. */
    bool spikeSince(Cycle since) const;

    /** Completion time of the most recent spike (0 if none). */
    Cycle lastSpikeAt() const { return lastSpikeAt_; }

    /** Forget accumulated samples (keeps the in-flight read). */
    void clearSamples();

  private:
    Addr addr_;
    bool recordAll_;
    bool inFlight_ = false;
    std::uint64_t completed_ = 0;
    std::vector<LatencySample> samples_;
    Cycle lastSpikeAt_ = 0;
};

/**
 * Memory-level Feinting/Wave attacker (paper Section 4.2): cycles a
 * pool of decoy rows plus one target row in a single bank, pruning
 * decoys whose counters were mitigated back to zero, so mitigation
 * bandwidth is wasted on decoys while the target creeps toward NBO.
 * This is the worst-case stressor the TB-Window analysis is sized
 * against; the defense bake-off runs it against every registered
 * mitigation.
 */
class FeintingAgent : public MemAgent
{
  public:
    /**
     * @param mem        Controller whose PRAC counters steer pruning.
     * @param pool_size  Initial decoy-row count.
     * @param target_row Row being driven toward NBO (same bank 0).
     *
     * Deprecated entry point: prefer the AttackerConfig overload (or
     * attackerByName("feinting", ...)), which derives the pool from
     * the controller's spec when the knob is left at zero.
     */
    FeintingAgent(MemoryController &mem, std::uint32_t pool_size,
                  std::uint32_t target_row);

    /**
     * Registry-style construction: @p config.poolSize decoys around
     * @p config.targetRow; poolSize 0 derives the TB-RFM-safe
     * worst-case pool from @p mem's spec (the defense bake-off's
     * sizing).  The wave stays pinned to bank 0 like the legacy
     * constructor.
     */
    FeintingAgent(MemoryController &mem, const AttackerConfig &config);

    void tick(MemoryController &mem, Cycle now) override;

  private:
    std::uint32_t nextRow();

    MemoryController &mem_;
    std::uint32_t targetRow_;
    std::vector<std::uint32_t> pool_;
    std::size_t cursor_ = 0;
    std::uint32_t outstanding_ = 0;
};

/** Trojan-side activation engine. */
class HammerAgent : public MemAgent
{
  public:
    /**
     * @param mapper  Translator used to build conflict addresses.
     * @param target  Row to hammer.
     * @param decoys  Same-bank rows alternated with the target to
     *                force row conflicts.  More than one decoy keeps
     *                the decoys' own counters well below the target's.
     * @param max_outstanding Reads kept in flight (2 saturates the
     *                bank's tRC pipeline).
     *
     * Deprecated entry point: prefer the AttackerConfig overload (or
     * attackerByName("hammer", ...)), which derives the decoy layout
     * from named knobs instead of explicit address lists.
     */
    HammerAgent(const AddressMapper &mapper, const DramAddress &target,
                std::vector<DramAddress> decoys,
                std::uint32_t max_outstanding = 2);

    /**
     * Registry-style construction: hammer @p config.targetRow in flat
     * bank @p config.targetBank, alternating with poolSize same-bank
     * decoys (default 2) at rows targetRow + burstSpacing + i
     * (burstSpacing doubles as the decoy-row stride; default 1000).
     */
    HammerAgent(const MemoryController &mem,
                const AttackerConfig &config);

    void tick(MemoryController &mem, Cycle now) override;

    /** Begin a burst of @p target_acts activations of the target. */
    void startHammer(std::uint32_t target_acts);

    /** Abort the current burst. */
    void stop();

    /** Whether the requested burst has fully completed. */
    bool done() const;

    /** Target reads completed in the current burst. */
    std::uint32_t targetActsDone() const { return targetDone_; }

  private:
    Addr nextAddress();

    const AddressMapper &mapper_;
    Addr targetAddr_;
    std::vector<Addr> decoyAddrs_;
    std::uint32_t maxOutstanding_;

    bool active_ = false;
    bool nextIsTarget_ = true;
    std::size_t decoyIdx_ = 0;
    std::uint32_t targetBudget_ = 0;   //!< target reads left to issue
    std::uint32_t targetIssued_ = 0;
    std::uint32_t targetDone_ = 0;
    std::uint32_t outstanding_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_ATTACK_AGENTS_H
