/**
 * @file
 * Memory-level attack harness.
 *
 * PRACLeak's covert and side channels operate below the caches (the
 * attacker flushes or bypasses them), so attack experiments drive the
 * memory controller directly with cycle-stepped *agents* -- exactly
 * how the paper runs spy/trojan/victim traces in Ramulator2.
 *
 * The harness can own several interleaved channels (one controller
 * per channel, lockstep clock); each agent is pinned to one channel,
 * which is how cross-channel experiments place a victim and a spy on
 * different PRAC engines.  The default is the classic single-channel
 * harness.
 */

#ifndef PRACLEAK_ATTACK_HARNESS_H
#define PRACLEAK_ATTACK_HARNESS_H

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/controller.h"

namespace pracleak {

/** A process-like actor issuing memory requests each cycle. */
class MemAgent
{
  public:
    virtual ~MemAgent() = default;

    /** Called once per cycle before the controller ticks. */
    virtual void tick(MemoryController &mem, Cycle now) = 0;
};

/** Owns one controller per channel and steps agents against them. */
class AttackHarness
{
  public:
    /**
     * @param channels Interleaved channels to instantiate; config's
     *                 ChannelInterleave fan-out is overridden to
     *                 match.
     */
    AttackHarness(const DramSpec &spec, const ControllerConfig &config,
                  std::uint32_t channels = 1);

    /** Register an agent (not owned) pinned to @p channel. */
    void add(MemAgent *agent, std::uint32_t channel = 0);

    /** Run for @p cycles cycles. */
    void run(Cycle cycles);

    /** Run until @p predicate() or @p max_cycles more cycles. */
    template <typename Pred>
    void
    runUntil(Pred predicate, Cycle max_cycles)
    {
        const Cycle end = now() + max_cycles;
        while (!predicate() && now() < end)
            step();
    }

    /** Single cycle. */
    void step();

    MemoryController &mem() { return *mems_[0]; }
    MemoryController &mem(std::uint32_t channel)
    {
        return *mems_[channel];
    }
    std::uint32_t channels() const
    {
        return static_cast<std::uint32_t>(mems_.size());
    }
    StatSet &stats() { return stats_; }
    Cycle now() const { return mems_[0]->now(); }

  private:
    struct Pinned
    {
        MemAgent *agent;
        std::uint32_t channel;
    };

    StatSet stats_;
    std::vector<std::unique_ptr<MemoryController>> mems_;
    std::vector<Pinned> agents_;
};

} // namespace pracleak

#endif // PRACLEAK_ATTACK_HARNESS_H
