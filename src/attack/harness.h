/**
 * @file
 * Memory-level attack harness.
 *
 * PRACLeak's covert and side channels operate below the caches (the
 * attacker flushes or bypasses them), so attack experiments drive the
 * memory controller directly with cycle-stepped *agents* -- exactly
 * how the paper runs spy/trojan/victim traces in Ramulator2.
 */

#ifndef PRACLEAK_ATTACK_HARNESS_H
#define PRACLEAK_ATTACK_HARNESS_H

#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/controller.h"

namespace pracleak {

/** A process-like actor issuing memory requests each cycle. */
class MemAgent
{
  public:
    virtual ~MemAgent() = default;

    /** Called once per cycle before the controller ticks. */
    virtual void tick(MemoryController &mem, Cycle now) = 0;
};

/** Owns a controller and steps a set of agents against it. */
class AttackHarness
{
  public:
    AttackHarness(const DramSpec &spec, const ControllerConfig &config);

    /** Register an agent (not owned). */
    void add(MemAgent *agent);

    /** Run for @p cycles cycles. */
    void run(Cycle cycles);

    /** Run until @p predicate() or @p max_cycles more cycles. */
    template <typename Pred>
    void
    runUntil(Pred predicate, Cycle max_cycles)
    {
        const Cycle end = mem_.now() + max_cycles;
        while (!predicate() && mem_.now() < end)
            step();
    }

    /** Single cycle. */
    void step();

    MemoryController &mem() { return mem_; }
    StatSet &stats() { return stats_; }
    Cycle now() const { return mem_.now(); }

  private:
    StatSet stats_;
    MemoryController mem_;
    std::vector<MemAgent *> agents_;
};

} // namespace pracleak

#endif // PRACLEAK_ATTACK_HARNESS_H
