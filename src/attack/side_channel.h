/**
 * @file
 * PRACLeak side-channel attack on T-table AES (paper Section 3.3).
 *
 * Setup: victim and attacker share the 16 DRAM rows that hold the 16
 * cache lines of the first AES T-table (possible because one 8 KB row
 * collects data from many pages under MOP mapping).  The attacker
 * continuously flushes those lines, so the victim's first-round Te0
 * lookups become DRAM activations.  With the chosen plaintext byte p0
 * fixed, the line of index x0 = p0 XOR k0 accumulates ~1.19
 * activations per encryption versus ~0.19 for the other 15 lines.
 *
 * After n encryptions the attacker round-robins single activations
 * over the 16 rows; the first row to trigger the Alert Back-Off RFM
 * is the hottest one, and its index leaks the top nibble of k0.
 * Under TPRAC the first observed RFM is a Timing-Based RFM whose
 * position is independent of the key (Fig. 9).
 */

#ifndef PRACLEAK_ATTACK_SIDE_CHANNEL_H
#define PRACLEAK_ATTACK_SIDE_CHANNEL_H

#include <array>
#include <cstdint>
#include <vector>

#include "attack/agents.h"
#include "common/types.h"
#include "crypto/aes128t.h"
#include "mem/controller.h"

namespace pracleak {

/** Experiment configuration. */
struct SideChannelParams
{
    DramSpec spec = DramSpec::ddr5_8000b();
    MitigationMode mode = MitigationMode::AboOnly;

    std::uint32_t nbo = 256;
    std::uint32_t nmit = 4;
    Cycle tbWindowCycles = 0;   //!< 0 = derive from nbo (Tprac mode)

    Aes128T::Key key{};         //!< victim's secret key
    std::uint8_t p0 = 0;        //!< fixed chosen-plaintext byte 0
    int encryptions = 200;
    std::uint64_t seed = 1;

    /**
     * Probe-pipeline lag (reads between the true NBO crossing and the
     * observed spike); -1 auto-calibrates with a known-key dry run.
     */
    int probeLag = -1;

    /** Record the full Fig.-4 timeline (latency + ACT traces). */
    bool recordTimeline = false;

    /**
     * Probe spike threshold in ns; 0 derives it from the PRAC level
     * (nmit * 350 - 100).  Fig. 9's defended sweep lowers it so the
     * attacker still "sees" the (single-RFM) TB-RFM events.
     */
    double spikeThresholdNs = 0.0;
};

/** Experiment outcome. */
struct SideChannelResult
{
    /** Victim-phase activations of each monitored row (ground truth). */
    std::array<std::uint32_t, 16> victimActsPerRow{};

    bool spikeObserved = false;
    int spikeProbeIndex = -1;       //!< attacker read index of the spike
    int estimatedTriggerRow = -1;   //!< attacker's lag-corrected guess
    int trueTriggerRow = -1;        //!< row that asserted the Alert
    std::uint32_t attackerActsToTrigger = 0;
    int recoveredKeyNibble = -1;    //!< estimatedTriggerRow ^ (p0 >> 4)

    // Fig. 4 timeline (only when recordTimeline).
    std::vector<LatencySample> probeTimeline;
    std::vector<Cycle> rfmTimes;
    /** (cycle, monitored-row index) of every ACT in the Te0 bank. */
    std::vector<std::pair<Cycle, int>> actTimeline;
    Cycle victimPhaseEnd = 0;
};

/** Run one measurement of key nibble k0's top 4 bits. */
SideChannelResult runAesSideChannel(const SideChannelParams &params);

/**
 * Repeat the attack @p repeats times (fresh plaintext seeds, same
 * key) and majority-vote the trigger row -- the standard attacker
 * response to environmental noise such as refresh collisions with
 * the Alert window.  Returns the winning run with the voted row and
 * nibble substituted.
 */
SideChannelResult runAesSideChannelMajority(
    const SideChannelParams &params, int repeats = 3);

/**
 * Determine the probe lag by attacking a known key and finding the
 * offset that recovers it (the paper's attacker would calibrate the
 * same way on a machine it controls).
 */
int calibrateProbeLag(SideChannelParams params);

} // namespace pracleak

#endif // PRACLEAK_ATTACK_SIDE_CHANNEL_H
