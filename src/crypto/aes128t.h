/**
 * @file
 * T-table AES-128 in the style of OpenSSL/GnuPG software AES -- the
 * paper's victim (Section 3.3).
 *
 * Four 1 KB lookup tables (Te0..Te3) are indexed by key- and
 * plaintext-dependent bytes; each table spans 16 cache lines, and the
 * *cache-line index* of a first-round lookup is the top nibble of
 * p_i XOR k_i.  The optional access hook reports every table lookup
 * (table, index, round) so the attack framework can translate lookups
 * into DRAM activity.
 *
 * Functionally verified against the FIPS-197 test vectors (see
 * tests/test_aes.cpp).
 */

#ifndef PRACLEAK_CRYPTO_AES128T_H
#define PRACLEAK_CRYPTO_AES128T_H

#include <array>
#include <cstdint>
#include <functional>

namespace pracleak {

/** AES-128 with T-table rounds and a lookup observation hook. */
class Aes128T
{
  public:
    using Block = std::array<std::uint8_t, 16>;
    using Key = std::array<std::uint8_t, 16>;

    /**
     * Lookup observer: @p table in [0,4), @p index in [0,256),
     * @p round in [1,10].
     */
    using AccessHook =
        std::function<void(int table, std::uint8_t index, int round)>;

    explicit Aes128T(const Key &key);

    /** Encrypt one block, reporting every T-table lookup if hooked. */
    Block encrypt(const Block &plaintext) const;

    /** Install (or clear, with nullptr) the lookup observer. */
    void setAccessHook(AccessHook hook) { hook_ = std::move(hook); }

    /** Raw T-table word (used by tests to validate table structure). */
    static std::uint32_t tableWord(int table, std::uint8_t index);

    /** The AES S-box (exposed for test cross-validation). */
    static std::uint8_t sbox(std::uint8_t x);

  private:
    std::uint32_t look(int table, std::uint8_t index, int round) const;

    std::array<std::uint32_t, 44> roundKeys_;
    mutable AccessHook hook_;
};

} // namespace pracleak

#endif // PRACLEAK_CRYPTO_AES128T_H
