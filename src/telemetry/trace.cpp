#include "telemetry/trace.h"

#include <unistd.h>

#include "telemetry/io.h"

namespace pracleak::telemetry {

namespace {

/** Chrome thread id for a lane: main (-1) is tid 0, workers 1..N. */
int
laneTid(int lane)
{
    return lane + 1;
}

} // namespace

TraceSession::TraceSession(std::string path) : path_(std::move(path))
{
}

void
TraceSession::complete(const std::string &name,
                       const std::string &category, int lane,
                       std::uint64_t start_us, std::uint64_t dur_us,
                       sim::JsonValue args)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(Event{'X', name, category, lane, start_us,
                            dur_us, std::move(args)});
}

void
TraceSession::instant(const std::string &name,
                      const std::string &category, int lane,
                      sim::JsonValue args)
{
    const std::uint64_t ts = nowMicros();
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(
        Event{'i', name, category, lane, ts, 0, std::move(args)});
}

void
TraceSession::counter(const std::string &name, int lane,
                      std::uint64_t ts_us, sim::JsonValue args)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(
        Event{'C', name, "counter", lane, ts_us, 0, std::move(args)});
}

void
TraceSession::nameLane(int lane, const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    laneNames_[lane] = name;
}

std::size_t
TraceSession::eventCount() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

bool
TraceSession::write()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::int64_t pid = static_cast<std::int64_t>(::getpid());

    sim::JsonValue traceEvents = sim::JsonValue::array();

    // Metadata first: process name plus one named lane per thread id
    // seen, so Perfetto shows "main" / "worker-N" instead of bare
    // numbers.
    {
        sim::JsonValue meta = sim::JsonValue::object();
        meta.set("name", "process_name");
        meta.set("ph", "M");
        meta.set("pid", pid);
        meta.set("tid", 0);
        sim::JsonValue args = sim::JsonValue::object();
        args.set("name", "pracbench");
        meta.set("args", std::move(args));
        traceEvents.push(std::move(meta));
    }
    std::map<int, std::string> lanes = laneNames_;
    for (const Event &event : events_)
        if (!lanes.count(event.lane))
            lanes[event.lane] =
                event.lane < 0
                    ? "main"
                    : "worker-" + std::to_string(event.lane);
    for (const auto &[lane, name] : lanes) {
        sim::JsonValue meta = sim::JsonValue::object();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", pid);
        meta.set("tid", laneTid(lane));
        sim::JsonValue args = sim::JsonValue::object();
        args.set("name", name);
        meta.set("args", std::move(args));
        traceEvents.push(std::move(meta));
    }

    for (const Event &event : events_) {
        sim::JsonValue out = sim::JsonValue::object();
        out.set("name", event.name);
        out.set("cat", event.category);
        out.set("ph", std::string(1, event.phase));
        out.set("ts", event.tsUs);
        if (event.phase == 'X')
            out.set("dur", event.durUs);
        else if (event.phase == 'i')
            out.set("s", "t"); // thread-scoped instant
        out.set("pid", pid);
        out.set("tid", laneTid(event.lane));
        if (event.args.kind() == sim::JsonValue::Kind::Object)
            out.set("args", event.args);
        traceEvents.push(std::move(out));
    }

    sim::JsonValue root = sim::JsonValue::object();
    root.set("traceEvents", std::move(traceEvents));
    root.set("displayTimeUnit", "ms");
    return writeAtomic(path_, root.dump() + "\n");
}

} // namespace pracleak::telemetry
