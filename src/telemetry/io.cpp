#include "telemetry/io.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace pracleak::telemetry {

bool
writeAtomic(const std::string &path, const std::string &contents)
{
    const std::filesystem::path target(path);
    std::error_code ec;
    if (target.has_parent_path())
        std::filesystem::create_directories(target.parent_path(), ec);

    // The temporary lives next to the target so the rename stays on
    // one filesystem (and therefore atomic).
    const std::string temporary = path + ".tmp";
    {
        std::ofstream out(temporary,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "telemetry: cannot write %s\n",
                         temporary.c_str());
            return false;
        }
        out << contents;
        out.close();
        if (!out.good()) {
            std::fprintf(stderr, "telemetry: write to %s failed\n",
                         temporary.c_str());
            std::filesystem::remove(temporary, ec);
            return false;
        }
    }
    std::filesystem::rename(temporary, path, ec);
    if (ec) {
        std::fprintf(stderr, "telemetry: cannot finalize %s: %s\n",
                     path.c_str(), ec.message().c_str());
        std::filesystem::remove(temporary, ec);
        return false;
    }
    return true;
}

double
fileAgeSeconds(const std::string &path)
{
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);
    if (ec)
        return -1.0;
    const auto age =
        std::filesystem::file_time_type::clock::now() - mtime;
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               age)
        .count();
}

} // namespace pracleak::telemetry
