#include "telemetry/fleet_status.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include "telemetry/io.h"

namespace pracleak::telemetry {

namespace {

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/**
 * The scenario a journal file belongs to, read from its own header
 * line ("" when the file has no complete, well-formed header -- a
 * worker killed mid-header leaves one behind).
 */
struct JournalPeek
{
    std::string scenario;
    std::int64_t points = 0;
};

bool
peekJournalHeader(const std::string &path, JournalPeek *out)
{
    std::ifstream in(path, std::ios::binary);
    std::string line;
    if (!in || !std::getline(in, line))
        return false;
    // A torn header (crash mid-write, no newline) fails the parse
    // below: records are streamed as one newline-terminated string,
    // so a complete JSON object implies a complete record.
    std::string error;
    const sim::JsonValue header = sim::parseJson(line, &error);
    if (!error.empty() ||
        header.kind() != sim::JsonValue::Kind::Object)
        return false;
    const sim::JsonValue *kind = header.get("kind");
    const sim::JsonValue *scenario = header.get("scenario");
    const sim::JsonValue *points = header.get("points");
    if (!kind || kind->asString() != "header" || !scenario)
        return false;
    out->scenario = scenario->asString();
    out->points = points && points->isNumber() ? points->asInt() : 0;
    return true;
}

} // namespace

double
FleetStatus::etaSeconds() const
{
    if (points == 0 || livePointsPerSec <= 0.0)
        return -1.0;
    return static_cast<double>(remaining()) / livePointsPerSec;
}

std::vector<std::string>
fleetScenarios(const std::string &directory)
{
    std::set<std::string> names;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory, ec)) {
        const std::string name = entry.path().filename().string();
        if (entry.is_directory()) {
            for (const char *suffix : {".claims", ".heartbeats"})
                if (endsWith(name, suffix))
                    names.insert(name.substr(
                        0, name.size() - std::string(suffix).size()));
        } else if (endsWith(name, ".jsonl")) {
            JournalPeek peek;
            if (peekJournalHeader(entry.path().string(), &peek))
                names.insert(peek.scenario);
        }
    }
    return {names.begin(), names.end()};
}

FleetStatus
collectFleetStatus(const std::string &directory,
                   const std::string &scenario,
                   double stale_ttl_seconds)
{
    std::error_code ec;
    if (!std::filesystem::is_directory(directory, ec))
        throw std::runtime_error("status: " + directory +
                                 " is not a directory");

    FleetStatus status;
    status.scenario = scenario;

    // Total points, from the first journal whose header names this
    // scenario (every journal of one sweep pins the same count).
    for (const auto &entry :
         std::filesystem::directory_iterator(directory, ec)) {
        if (entry.is_directory() ||
            !endsWith(entry.path().filename().string(), ".jsonl"))
            continue;
        JournalPeek peek;
        if (peekJournalHeader(entry.path().string(), &peek) &&
            peek.scenario == scenario && peek.points > 0) {
            status.points = static_cast<std::size_t>(peek.points);
            break;
        }
    }

    // Done markers and claims (sim/checkpoint.h PointClaims layout).
    // Steal tombstones (point-N.claim.stale-<worker>) and in-flight
    // temporaries are neither markers nor live claims.
    const std::string claimsDir =
        directory + (directory.empty() || directory.back() == '/'
                         ? ""
                         : "/") +
        scenario + ".claims";
    for (const auto &entry :
         std::filesystem::directory_iterator(claimsDir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("point-", 0) != 0)
            continue;
        if (endsWith(name, ".done")) {
            ++status.done;
        } else if (endsWith(name, ".claim")) {
            const double age =
                fileAgeSeconds(entry.path().string());
            if (age >= 0.0 && age > stale_ttl_seconds)
                ++status.claimedStale;
            else
                ++status.claimedFresh;
        }
    }

    // Heartbeats: one file per worker, staleness by mtime age.
    const std::string beatsDir =
        heartbeatDirectory(directory, scenario);
    for (const auto &entry :
         std::filesystem::directory_iterator(beatsDir, ec)) {
        const std::string path = entry.path().string();
        if (!endsWith(path, ".json"))
            continue;
        std::ifstream in(path, std::ios::binary);
        if (!in)
            continue;
        const std::string text(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        std::string error;
        const sim::JsonValue value = sim::parseJson(text, &error);
        WorkerStatus worker;
        if (!error.empty() ||
            !Heartbeat::fromJson(value, &worker.beat, &error))
            continue; // half-written by a foreign tool; skip
        worker.ageSeconds = fileAgeSeconds(path);
        worker.stale = worker.ageSeconds < 0.0 ||
                       worker.ageSeconds > stale_ttl_seconds;
        if (!worker.stale)
            status.livePointsPerSec += worker.beat.pointsPerSec;
        status.workers.push_back(std::move(worker));
    }
    std::sort(status.workers.begin(), status.workers.end(),
              [](const WorkerStatus &a, const WorkerStatus &b) {
                  return a.beat.worker < b.beat.worker;
              });
    return status;
}

std::string
renderFleetStatus(const FleetStatus &status)
{
    char line[256];
    std::string out;

    std::snprintf(line, sizeof(line), "scenario %s\n",
                  status.scenario.c_str());
    out += line;
    if (status.points > 0)
        std::snprintf(line, sizeof(line),
                      "  points    %zu done / %zu total (%zu "
                      "remaining)\n",
                      status.done, status.points,
                      status.remaining());
    else
        std::snprintf(line, sizeof(line),
                      "  points    %zu done / total unknown (no "
                      "journal header yet)\n",
                      status.done);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  claims    %zu in flight, %zu stale\n",
                  status.claimedFresh, status.claimedStale);
    out += line;

    std::size_t live = 0;
    for (const WorkerStatus &worker : status.workers)
        live += worker.stale ? 0 : 1;
    std::snprintf(line, sizeof(line),
                  "  workers   %zu live, %zu stale\n", live,
                  status.workers.size() - live);
    out += line;
    for (const WorkerStatus &worker : status.workers) {
        std::snprintf(
            line, sizeof(line),
            "    %-24s %s  pid %lld  %lld done  %.2f pts/s  "
            "(last beat %.1fs ago)\n",
            worker.beat.worker.c_str(),
            worker.stale ? "STALE" : "live ",
            static_cast<long long>(worker.beat.pid),
            static_cast<long long>(worker.beat.pointsDone),
            worker.beat.pointsPerSec, worker.ageSeconds);
        out += line;
    }

    const double eta = status.etaSeconds();
    if (status.points > 0 && status.remaining() == 0)
        out += "  eta       complete\n";
    else if (eta >= 0.0) {
        std::snprintf(line, sizeof(line),
                      "  eta       %.0fs at %.2f pts/s\n", eta,
                      status.livePointsPerSec);
        out += line;
    } else {
        out += "  eta       unknown (no live workers)\n";
    }
    return out;
}

} // namespace pracleak::telemetry
