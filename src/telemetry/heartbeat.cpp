#include "telemetry/heartbeat.h"

#include <filesystem>
#include <unistd.h>

#include "telemetry/io.h"

namespace pracleak::telemetry {

std::string
heartbeatDirectory(const std::string &directory,
                   const std::string &scenario)
{
    std::string dir = directory;
    if (!dir.empty() && dir.back() != '/')
        dir += '/';
    return dir + scenario + ".heartbeats";
}

std::string
heartbeatPath(const std::string &directory,
              const std::string &scenario, const std::string &worker)
{
    return heartbeatDirectory(directory, scenario) + "/" + worker +
           ".json";
}

sim::JsonValue
Heartbeat::toJson() const
{
    sim::JsonValue out = sim::JsonValue::object();
    out.set("kind", "heartbeat");
    out.set("worker", worker);
    out.set("pid", pid);
    out.set("scenario", scenario);
    out.set("points", totalPoints);
    out.set("points_done", pointsDone);
    out.set("current_point", currentPoint);
    out.set("points_per_sec", pointsPerSec);
    out.set("uptime_seconds", uptimeSeconds);
    return out;
}

bool
Heartbeat::fromJson(const sim::JsonValue &value, Heartbeat *out,
                    std::string *error)
{
    if (value.kind() != sim::JsonValue::Kind::Object) {
        if (error)
            *error = "heartbeat is not a JSON object";
        return false;
    }
    const sim::JsonValue *kind = value.get("kind");
    if (!kind || kind->asString() != "heartbeat") {
        if (error)
            *error = "not a heartbeat record";
        return false;
    }
    auto str = [&](const char *name) {
        const sim::JsonValue *field = value.get(name);
        return field ? field->asString() : std::string();
    };
    auto num = [&](const char *name, std::int64_t fallback) {
        const sim::JsonValue *field = value.get(name);
        return field && field->isNumber() ? field->asInt() : fallback;
    };
    auto dbl = [&](const char *name) {
        const sim::JsonValue *field = value.get(name);
        return field && field->isNumber() ? field->asDouble() : 0.0;
    };
    out->worker = str("worker");
    out->pid = num("pid", 0);
    out->scenario = str("scenario");
    out->totalPoints = num("points", 0);
    out->pointsDone = num("points_done", 0);
    out->currentPoint = num("current_point", -1);
    out->pointsPerSec = dbl("points_per_sec");
    out->uptimeSeconds = dbl("uptime_seconds");
    if (error)
        error->clear();
    return true;
}

HeartbeatWriter::HeartbeatWriter(const std::string &directory,
                                 const std::string &scenario,
                                 std::string worker,
                                 std::int64_t total_points,
                                 double interval_seconds)
    : path_(heartbeatPath(directory, scenario, worker)),
      scenario_(scenario), worker_(std::move(worker)),
      totalPoints_(total_points), intervalSeconds_(interval_seconds)
{
    std::error_code ec;
    std::filesystem::create_directories(
        heartbeatDirectory(directory, scenario), ec);
}

void
HeartbeatWriter::beat(std::int64_t points_done,
                      std::int64_t current_point, bool force)
{
    const double now = uptime_.seconds();
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!force && lastWriteAt_ >= 0.0 &&
        now - lastWriteAt_ < intervalSeconds_)
        return;
    lastWriteAt_ = now;

    Heartbeat beat;
    beat.worker = worker_;
    beat.pid = static_cast<std::int64_t>(::getpid());
    beat.scenario = scenario_;
    beat.totalPoints = totalPoints_;
    beat.pointsDone = points_done;
    beat.currentPoint = current_point;
    beat.pointsPerSec =
        now > 0.0 ? static_cast<double>(points_done) / now : 0.0;
    beat.uptimeSeconds = now;
    // A failed write is already reported by writeAtomic; heartbeats
    // are advisory, so the sweep must not die over one.
    writeAtomic(path_, beat.toJson().dump(1) + "\n");
}

} // namespace pracleak::telemetry
