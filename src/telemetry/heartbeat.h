/**
 * @file
 * Worker heartbeats for live fleet status: each work-stealing worker
 * periodically writes a small JSON file (atomic rename) into
 * DIR/<scenario>.heartbeats/ with its pid, progress, and throughput.
 * `pracbench status DIR` reads the directory to show who is alive,
 * who is stale, and how fast the fleet is moving.
 *
 * Staleness is judged by the heartbeat file's mtime, not its
 * contents: a SIGKILLed worker leaves its last (complete, thanks to
 * the atomic rename) heartbeat behind, and the file simply stops
 * getting younger -- no shutdown handshake required.
 */

#ifndef PRACLEAK_TELEMETRY_HEARTBEAT_H
#define PRACLEAK_TELEMETRY_HEARTBEAT_H

#include <cstdint>
#include <mutex>
#include <string>

#include "sim/json.h"
#include "telemetry/stopwatch.h"

namespace pracleak::telemetry {

/** DIR/<scenario>.heartbeats */
std::string heartbeatDirectory(const std::string &directory,
                               const std::string &scenario);

/** DIR/<scenario>.heartbeats/<worker>.json */
std::string heartbeatPath(const std::string &directory,
                          const std::string &scenario,
                          const std::string &worker);

/** One worker's self-reported state (heartbeat file contents). */
struct Heartbeat
{
    std::string worker;
    std::int64_t pid = 0;
    std::string scenario;
    std::int64_t totalPoints = 0;
    std::int64_t pointsDone = 0;   //!< completed by this worker
    std::int64_t currentPoint = -1; //!< claimed right now; -1 = idle
    double pointsPerSec = 0.0;
    double uptimeSeconds = 0.0;

    sim::JsonValue toJson() const;

    /**
     * Parse a heartbeat file's JSON.  Returns false (and fills
     * @p error) when @p value is not a heartbeat object; missing
     * numeric fields default to 0 / -1.
     */
    static bool fromJson(const sim::JsonValue &value, Heartbeat *out,
                         std::string *error);
};

/**
 * Throttled heartbeat emitter for one worker.  beat() is cheap when
 * the interval has not elapsed (one clock read, no I/O) and
 * thread-safe, so every pool thread of a worker process can call it
 * after each completed point.
 */
class HeartbeatWriter
{
  public:
    /**
     * Creates the heartbeat directory.  @p interval_seconds
     * throttles writes; 0 writes on every beat() (tests).
     */
    HeartbeatWriter(const std::string &directory,
                    const std::string &scenario, std::string worker,
                    std::int64_t total_points,
                    double interval_seconds = 5.0);

    /**
     * Report progress.  Writes the heartbeat file when @p force or
     * when interval_seconds have passed since the last write.
     */
    void beat(std::int64_t points_done, std::int64_t current_point,
              bool force = false);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::string scenario_;
    std::string worker_;
    std::int64_t totalPoints_ = 0;
    double intervalSeconds_ = 5.0;
    Stopwatch uptime_;
    std::mutex mutex_;
    double lastWriteAt_ = -1.0; //!< uptime seconds; <0 = never
};

} // namespace pracleak::telemetry

#endif // PRACLEAK_TELEMETRY_HEARTBEAT_H
