/**
 * @file
 * Small filesystem helpers shared by the telemetry surfaces (trace
 * export, heartbeats, fleet status).  Kept separate from sim/runner.h
 * so the telemetry layer stays below the sweep runner in the include
 * graph.
 */

#ifndef PRACLEAK_TELEMETRY_IO_H
#define PRACLEAK_TELEMETRY_IO_H

#include <string>

namespace pracleak::telemetry {

/**
 * Write @p contents to @p path via a same-directory temporary plus
 * atomic rename, creating parent directories.  A crash mid-write
 * leaves either the previous file or the new one, never a torn one
 * -- readers (fleet status, Perfetto) always see a complete
 * artifact.  Returns false (with a message on stderr) on failure.
 */
bool writeAtomic(const std::string &path, const std::string &contents);

/**
 * Age of @p path's last modification in seconds.  Returns a negative
 * value when the file does not exist or cannot be stat'd -- callers
 * distinguish "no heartbeat yet" from "stale heartbeat".
 */
double fileAgeSeconds(const std::string &path);

} // namespace pracleak::telemetry

#endif // PRACLEAK_TELEMETRY_IO_H
