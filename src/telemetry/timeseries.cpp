#include "telemetry/timeseries.h"

#include <algorithm>
#include <mutex>

#include "sim/json.h"
#include "telemetry/io.h"
#include "telemetry/trace.h"

namespace pracleak::telemetry {

// ------------------------------------------------------- BusObserver

BusObserver::BusObserver(const DramSpec &spec, Cycle window_cycles)
    : org_(spec.org),
      windowCycles_(window_cycles ? window_cycles
                                  : spec.timing.tREFI),
      tRfmAb_(spec.timing.tRFMab), tRfmPb_(spec.timing.tRFMpb),
      tRfc_(spec.timing.tRFC),
      occupancy_(1.0, 65), rfmPerWindow_(1.0, 64)
{
}

SeriesWindow &
BusObserver::windowAt(std::uint64_t index)
{
    // The clock is monotonic, so the target is the last window or a
    // fresh append; only blocking spans reach forward, and every
    // window they touch is materialized in order, so an earlier
    // index always finds an existing entry.
    if (windows_.empty() || windows_.back().index < index) {
        windows_.emplace_back();
        windows_.back().index = index;
        return windows_.back();
    }
    if (windows_.back().index == index)
        return windows_.back();
    const auto it = std::lower_bound(
        windows_.begin(), windows_.end(), index,
        [](const SeriesWindow &w, std::uint64_t i) {
            return w.index < i;
        });
    if (it != windows_.end() && it->index == index)
        return *it;
    SeriesWindow fresh;
    fresh.index = index;
    return *windows_.insert(it, std::move(fresh));
}

void
BusObserver::addBlocked(Cycle start, Cycle duration)
{
    // Spread a blocking span exactly across every window it
    // overlaps: boundaries are exact, empty windows between events
    // stay implicit (the span itself materializes the ones it
    // covers, which are not empty -- they are blocked).
    const Cycle end = start + duration;
    Cycle at = start;
    while (at < end) {
        const std::uint64_t w = at / windowCycles_;
        const Cycle window_end = (w + 1) * windowCycles_;
        const Cycle upto = std::min(end, window_end);
        windowAt(w).blocked += upto - at;
        at = upto;
    }
}

void
BusObserver::onCommand(const Command &cmd, Cycle now)
{
    SeriesWindow &w = windowAt(now / windowCycles_);
    switch (cmd.type) {
      case CmdType::ACT:
        ++w.act;
        break;
      case CmdType::PRE:
        ++w.pre;
        break;
      case CmdType::RD:
        ++w.rd;
        break;
      case CmdType::WR:
        ++w.wr;
        break;
      case CmdType::REFab:
        ++w.ref;
        addBlocked(now, tRfc_);
        break;
      case CmdType::RFMab:
        ++w.rfmAb;
        addBlocked(now, tRfmAb_);
        break;
      case CmdType::RFMpb: {
        ++w.rfmPb;
        const std::uint32_t flat = org_.flatBank(
            cmd.rank,
            cmd.bankGroup * org_.banksPerGroup + cmd.bank);
        // addBlocked may reallocate windows_; take the bank count
        // through a fresh lookup to keep the reference valid.
        ++windowAt(now / windowCycles_).rfmPbBanks[flat];
        addBlocked(now, tRfmPb_);
        break;
      }
    }
}

void
BusObserver::onAboAlert(std::uint64_t delta, Cycle now)
{
    windowAt(now / windowCycles_).abo += delta;
}

void
BusObserver::onMitigationEvents(std::uint64_t delta, Cycle now)
{
    windowAt(now / windowCycles_).mitEvents += delta;
}

void
BusObserver::onQueueDepth(std::size_t depth, Cycle now)
{
    SeriesWindow &w = windowAt(now / windowCycles_);
    ++w.qSamples;
    w.qSum += depth;
    w.qMax = std::max<std::uint64_t>(w.qMax, depth);
    occupancy_.sample(static_cast<double>(depth));
}

void
BusObserver::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    for (const SeriesWindow &w : windows_)
        rfmPerWindow_.sample(static_cast<double>(w.rfmAb + w.rfmPb));
}

// ----------------------------------------------------- SeriesCapture

namespace {

struct CaptureState
{
    std::mutex mutex;
    bool armed = false;
    Cycle windowCycles = 0;
    std::uint64_t generation = 0;
    std::uint64_t nextSeq = 0;
    std::vector<std::unique_ptr<SeriesCapture::SimRecord>> records;
};

CaptureState &
state()
{
    static CaptureState instance;
    return instance;
}

// Thread-local view: the record channel-0 attaches started on this
// thread, plus the records created since the last setLabel() (for
// trace-counter emission).  Guarded by a generation stamp so a
// disarm/re-arm cycle cannot leave dangling pointers behind.
thread_local std::string tlLabel;
thread_local std::uint64_t tlGeneration = 0;
thread_local SeriesCapture::SimRecord *tlCurrent = nullptr;
thread_local std::vector<SeriesCapture::SimRecord *> tlPointRecords;

/** Must be called with the state mutex held. */
void
refreshThreadView(CaptureState &st)
{
    if (tlGeneration != st.generation) {
        tlGeneration = st.generation;
        tlCurrent = nullptr;
        tlPointRecords.clear();
    }
}

sim::JsonValue
histogramJson(const Histogram &histogram)
{
    return sim::parseJson(histogram.toJson());
}

void
setNonZero(sim::JsonValue &row, const char *key, std::uint64_t value)
{
    if (value)
        row.set(key, value);
}

std::string
renderRecordJsonl(const SeriesCapture::SimRecord &record)
{
    std::string out;

    sim::JsonValue header = sim::JsonValue::object();
    header.set("kind", "header");
    header.set("version", 1);
    header.set("label", record.meta.label);
    header.set("mitigation", record.meta.mitigation);
    header.set("window_cycles", record.meta.windowCycles);
    header.set("channels",
               static_cast<std::uint64_t>(record.channels.size()));
    if (record.meta.victimBank >= 0)
        header.set("victim_bank", record.meta.victimBank);
    if (!record.meta.onWindows.empty()) {
        sim::JsonValue ranges = sim::JsonValue::array();
        for (const auto &[begin, end] : record.meta.onWindows) {
            sim::JsonValue range = sim::JsonValue::array();
            range.push(begin);
            range.push(end);
            ranges.push(std::move(range));
        }
        header.set("on_windows", std::move(ranges));
    }
    out += header.dumpRoundTrip() + "\n";

    sim::JsonValue summary = sim::JsonValue::object();
    summary.set("kind", "summary");
    std::uint64_t windows = 0, acts = 0, rfm_ab = 0, rfm_pb = 0,
                  abo = 0;
    for (std::size_t ch = 0; ch < record.channels.size(); ++ch) {
        BusObserver &bus = *record.channels[ch];
        bus.finalize();
        for (const SeriesWindow &w : bus.windows()) {
            sim::JsonValue row = sim::JsonValue::object();
            row.set("kind", "window");
            row.set("ch", static_cast<std::uint64_t>(ch));
            row.set("w", w.index);
            setNonZero(row, "act", w.act);
            setNonZero(row, "pre", w.pre);
            setNonZero(row, "rd", w.rd);
            setNonZero(row, "wr", w.wr);
            setNonZero(row, "ref", w.ref);
            setNonZero(row, "rfm_ab", w.rfmAb);
            setNonZero(row, "rfm_pb", w.rfmPb);
            if (!w.rfmPbBanks.empty()) {
                sim::JsonValue banks = sim::JsonValue::object();
                for (const auto &[bank, count] : w.rfmPbBanks)
                    banks.set(std::to_string(bank), count);
                row.set("rfm_pb_banks", std::move(banks));
            }
            setNonZero(row, "abo", w.abo);
            setNonZero(row, "mit_events", w.mitEvents);
            setNonZero(row, "blocked", w.blocked);
            if (w.qSamples) {
                row.set("q_n", w.qSamples);
                row.set("q_sum", w.qSum);
                row.set("q_max", w.qMax);
            }
            out += row.dumpRoundTrip() + "\n";
            ++windows;
            acts += w.act;
            rfm_ab += w.rfmAb;
            rfm_pb += w.rfmPb;
            abo += w.abo;
        }
    }
    summary.set("windows", windows);
    summary.set("act", acts);
    summary.set("rfm_ab", rfm_ab);
    summary.set("rfm_pb", rfm_pb);
    summary.set("abo", abo);
    if (!record.channels.empty()) {
        summary.set("queue_occupancy",
                    histogramJson(
                        record.channels[0]->queueOccupancy()));
        summary.set("rfm_per_window",
                    histogramJson(
                        record.channels[0]->rfmPerWindow()));
    }
    out += summary.dumpRoundTrip() + "\n";
    return out;
}

std::string
renderRecordCsv(const SeriesCapture::SimRecord &record)
{
    std::string label = "\"";
    for (const char c : record.meta.label) {
        if (c == '"')
            label += '"';
        label += c;
    }
    label += '"';

    std::string out;
    for (std::size_t ch = 0; ch < record.channels.size(); ++ch) {
        for (const SeriesWindow &w : record.channels[ch]->windows()) {
            out += label + "," +
                   record.meta.mitigation + "," +
                   std::to_string(ch) + "," +
                   std::to_string(w.index) + "," +
                   std::to_string(w.act) + "," +
                   std::to_string(w.pre) + "," +
                   std::to_string(w.rd) + "," +
                   std::to_string(w.wr) + "," +
                   std::to_string(w.ref) + "," +
                   std::to_string(w.rfmAb) + "," +
                   std::to_string(w.rfmPb) + "," +
                   std::to_string(w.abo) + "," +
                   std::to_string(w.mitEvents) + "," +
                   std::to_string(w.blocked) + "," +
                   std::to_string(w.qMax) + "\n";
        }
    }
    return out;
}

/** Records sorted by (label, arrival): byte-stable across --jobs. */
std::vector<const SeriesCapture::SimRecord *>
sortedRecords(CaptureState &st)
{
    std::vector<const SeriesCapture::SimRecord *> sorted;
    sorted.reserve(st.records.size());
    for (const auto &record : st.records)
        sorted.push_back(record.get());
    std::sort(sorted.begin(), sorted.end(),
              [](const SeriesCapture::SimRecord *a,
                 const SeriesCapture::SimRecord *b) {
                  if (a->meta.label != b->meta.label)
                      return a->meta.label < b->meta.label;
                  return a->seq < b->seq;
              });
    return sorted;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

void
SeriesCapture::arm(Cycle window_cycles)
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.armed = true;
    st.windowCycles = window_cycles;
    st.records.clear();
    st.nextSeq = 0;
    ++st.generation;
}

void
SeriesCapture::disarm()
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    st.armed = false;
    st.records.clear();
    ++st.generation;
}

bool
SeriesCapture::armed()
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    return st.armed;
}

BusObserver *
SeriesCapture::attach(const DramSpec &spec,
                      std::uint32_t channel_index,
                      const std::string &mitigation)
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.armed)
        return nullptr;
    refreshThreadView(st);

    if (channel_index == 0) {
        auto record = std::make_unique<SimRecord>();
        record->meta.label = tlLabel;
        record->meta.mitigation = mitigation;
        record->seq = st.nextSeq++;
        record->channels.push_back(
            std::make_unique<BusObserver>(spec, st.windowCycles));
        record->meta.windowCycles =
            record->channels.back()->windowCycles();
        BusObserver *bus = record->channels.back().get();
        tlCurrent = record.get();
        tlPointRecords.push_back(record.get());
        st.records.push_back(std::move(record));
        return bus;
    }
    // A non-zero channel joins the simulation the calling thread's
    // last channel-0 construction started.  Controllers are built in
    // channel order on one thread (System, AttackHarness, replay).
    if (!tlCurrent)
        return nullptr;
    tlCurrent->channels.push_back(
        std::make_unique<BusObserver>(spec, st.windowCycles));
    return tlCurrent->channels.back().get();
}

void
SeriesCapture::setLabel(const std::string &label)
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    refreshThreadView(st);
    tlLabel = label;
    tlCurrent = nullptr;
    tlPointRecords.clear();
}

void
SeriesCapture::markOnWindow(Cycle begin, Cycle end)
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.armed)
        return;
    refreshThreadView(st);
    if (tlCurrent)
        tlCurrent->meta.onWindows.emplace_back(begin, end);
}

void
SeriesCapture::setVictimBank(std::uint32_t flat_bank)
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    if (!st.armed)
        return;
    refreshThreadView(st);
    if (tlCurrent)
        tlCurrent->meta.victimBank = flat_bank;
}

std::string
SeriesCapture::renderAll(bool csv)
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    std::string out;
    if (csv)
        out += "label,mitigation,ch,w,act,pre,rd,wr,ref,rfm_ab,"
               "rfm_pb,abo,mit_events,blocked,q_max\n";
    for (const SimRecord *record : sortedRecords(st))
        out += csv ? renderRecordCsv(*record)
                   : renderRecordJsonl(*record);
    return out;
}

bool
SeriesCapture::writeAll(const std::string &path)
{
    return writeAtomic(path, renderAll(endsWith(path, ".csv")));
}

void
SeriesCapture::emitTraceCounters(TraceSession *trace, int lane,
                                 std::uint64_t start_us,
                                 std::uint64_t end_us)
{
    if (!trace)
        return;
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    refreshThreadView(st);
    if (tlPointRecords.empty() || end_us <= start_us)
        return;

    for (const SimRecord *record : tlPointRecords) {
        for (std::size_t ch = 0; ch < record->channels.size();
             ++ch) {
            const auto &windows = record->channels[ch]->windows();
            if (windows.empty())
                continue;
            const std::uint64_t first = windows.front().index;
            const std::uint64_t span =
                windows.back().index - first + 1;
            const std::uint64_t buckets =
                std::min<std::uint64_t>(span, 200);
            std::vector<std::uint64_t> acts(buckets, 0);
            std::vector<std::uint64_t> rfms(buckets, 0);
            for (const SeriesWindow &w : windows) {
                const std::uint64_t b =
                    (w.index - first) * buckets / span;
                acts[b] += w.act;
                rfms[b] += w.rfmAb + w.rfmPb;
            }
            const std::string name =
                "bus-ch" + std::to_string(ch);
            for (std::uint64_t b = 0; b < buckets; ++b) {
                sim::JsonValue args = sim::JsonValue::object();
                args.set("act", acts[b]);
                args.set("rfm", rfms[b]);
                const std::uint64_t ts =
                    start_us + (end_us - start_us) * b / buckets;
                trace->counter(name, lane, ts, std::move(args));
            }
        }
    }
}

std::size_t
SeriesCapture::recordCount()
{
    CaptureState &st = state();
    const std::lock_guard<std::mutex> lock(st.mutex);
    return st.records.size();
}

} // namespace pracleak::telemetry
