/**
 * @file
 * Windowed command-bus time series: the simulated memory system's
 * *observable* signal over time, per channel.
 *
 * The paper's leakage argument is temporal -- an attacker learns when
 * mitigation traffic (ABO alert service, proactive RFMs) hits the
 * bus, not just how much of it there was -- so end-of-run scalar
 * stats cannot express it.  A BusObserver slices the simulated clock
 * into fixed windows (default one tREFI) and counts, per window,
 * every bus-visible event the controller issues: ACT/PRE/RD/WR,
 * REFab, RFMab, RFMpb (per target bank), plus ABO assertions,
 * defense mitigation events, request-queue depth, and the cycles the
 * window spent blocked behind maintenance.
 *
 * Zero-cost-when-off contract (same idiom as TraceSession): the
 * controller holds a `BusObserver *` that is null unless a series
 * sink is armed, and every hook site is guarded by one pointer test.
 * All hooks fire from inside MemoryController::tick() -- the cycles
 * that tick are identical between the lockstep and event-driven
 * clocks, and a window is addressed purely by `cycle / width`, so
 * the recorded series is bit-identical across scheduling modes.
 * Windows in which nothing happened are never materialized (a cycle
 * jump over dead time allocates nothing); the sparse storage keeps a
 * multi-millisecond simulation's series small.
 *
 * SeriesCapture is the process-global sink the `--series-out` CLI
 * surfaces arm: MemoryController's constructor is the single attach
 * choke point, so every construction path (System, AttackHarness,
 * trace replay, unit tests) is covered without per-harness plumbing.
 */

#ifndef PRACLEAK_TELEMETRY_TIMESERIES_H
#define PRACLEAK_TELEMETRY_TIMESERIES_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/command.h"
#include "dram/dram_spec.h"

namespace pracleak::telemetry {

class TraceSession;

/** Per-window bus-visible event counts for one channel. */
struct SeriesWindow
{
    std::uint64_t index = 0;    //!< absolute window = cycle / width

    std::uint64_t act = 0;
    std::uint64_t pre = 0;
    std::uint64_t rd = 0;
    std::uint64_t wr = 0;
    std::uint64_t ref = 0;      //!< REFab commands
    std::uint64_t rfmAb = 0;    //!< channel-wide RFMs
    std::uint64_t rfmPb = 0;    //!< per-bank RFMs (all banks)
    std::uint64_t abo = 0;      //!< ABO Alert assertions
    std::uint64_t mitEvents = 0; //!< defense mitigation events

    /** Cycles of this window spent under an RFM/REF blocking span. */
    Cycle blocked = 0;

    /** Queue-depth samples taken at enqueue time. */
    std::uint64_t qSamples = 0;
    std::uint64_t qSum = 0;
    std::uint64_t qMax = 0;

    /** RFMpb count by flat bank index (sparse; usually 0-2 banks). */
    std::map<std::uint32_t, std::uint64_t> rfmPbBanks;
};

/**
 * One channel's windowed bus recorder.  Hot hooks are O(1) amortized:
 * the clock is monotonic, so the target window is almost always the
 * last one (or a fresh append); only blocking spans reach forward
 * into future windows.
 */
class BusObserver
{
  public:
    /**
     * @param window_cycles Window width; 0 selects one tREFI from
     *                      @p spec (the natural bus-observation
     *                      granularity: refresh-rate periodic).
     */
    explicit BusObserver(const DramSpec &spec, Cycle window_cycles = 0);

    Cycle windowCycles() const { return windowCycles_; }

    /** A command hit the bus at @p now (controller issue time). */
    void onCommand(const Command &cmd, Cycle now);

    /** @p delta new ABO Alert assertions observed at @p now. */
    void onAboAlert(std::uint64_t delta, Cycle now);

    /** @p delta new defense mitigation events at @p now. */
    void onMitigationEvents(std::uint64_t delta, Cycle now);

    /** Queue depth @p depth right after an accepted enqueue. */
    void onQueueDepth(std::size_t depth, Cycle now);

    /** Recorded windows, ascending by index; gaps are all-zero. */
    const std::vector<SeriesWindow> &windows() const
    {
        return windows_;
    }

    /** Queue-depth samples across the whole run (summary export). */
    const Histogram &queueOccupancy() const { return occupancy_; }

    /** Per-window event-count histogram over bus-visible RFMs. */
    const Histogram &rfmPerWindow() const { return rfmPerWindow_; }

    /**
     * Finalize derived summaries (the per-window RFM histogram) over
     * the recorded windows.  Idempotent; called by the renderers.
     */
    void finalize();

  private:
    SeriesWindow &windowAt(std::uint64_t index);
    void addBlocked(Cycle start, Cycle duration);

    DramOrg org_;
    Cycle windowCycles_;
    Cycle tRfmAb_;
    Cycle tRfmPb_;
    Cycle tRfc_;
    std::vector<SeriesWindow> windows_;
    Histogram occupancy_;
    Histogram rfmPerWindow_;
    bool finalized_ = false;
};

/** Metadata carried in a series file header (one per simulation). */
struct SeriesMeta
{
    std::string label;       //!< grid-point label / workload / defense
    std::string mitigation;  //!< resolved defense registry key
    Cycle windowCycles = 0;
    std::uint32_t channels = 0;

    /** Victim's flat bank, when the driving experiment knows it. */
    std::int64_t victimBank = -1;

    /** Ground-truth attacker-ON cycle ranges, when known. */
    std::vector<std::pair<Cycle, Cycle>> onWindows;
};

/**
 * Process-global series sink.  arm() installs it; from then on every
 * MemoryController constructed attaches an observer: a channel-0
 * construction starts a new simulation record on the calling thread
 * and higher channels append to it, which groups one multi-channel
 * System / harness / replay into one record without any caller
 * plumbing.  The capture owns the observers (controllers may be
 * destroyed long before the series is written) and renders them as
 * compact JSONL (or CSV), ordered by (label, arrival) so the output
 * is byte-identical across `--jobs` counts.
 */
class SeriesCapture
{
  public:
    /** One simulation's record: metadata plus per-channel series. */
    struct SimRecord
    {
        SeriesMeta meta;
        std::vector<std::unique_ptr<BusObserver>> channels;
        std::uint64_t seq = 0; //!< global arrival order (tie-break)
    };

    /** Install the sink.  @p window_cycles 0 = one tREFI per spec. */
    static void arm(Cycle window_cycles = 0);

    /** Uninstall and drop every record. */
    static void disarm();

    static bool armed();

    /**
     * Controller-constructor hook: attach an observer for channel
     * @p channel_index of a simulation using @p spec under defense
     * @p mitigation.  Returns null when no sink is armed.
     */
    static BusObserver *attach(const DramSpec &spec,
                               std::uint32_t channel_index,
                               const std::string &mitigation);

    /** Label applied to records the calling thread creates next. */
    static void setLabel(const std::string &label);

    /** Annotate the thread's current record (no-ops when disarmed). */
    static void markOnWindow(Cycle begin, Cycle end);
    static void setVictimBank(std::uint32_t flat_bank);

    /**
     * Render every record and write it to @p path atomically.  A
     * ".csv" extension selects the flat CSV rendering; anything else
     * gets JSONL (one header, N window lines, and one summary line
     * per simulation).  Returns false on I/O failure.
     */
    static bool writeAll(const std::string &path);

    /** The rendering writeAll() would emit (tests, merging). */
    static std::string renderAll(bool csv);

    /**
     * Merge Chrome-trace "C" counter events for the records the
     * calling thread created since its last setLabel() into
     * @p trace on @p lane: each record's windows are mapped linearly
     * onto the wall-clock span [@p start_us, @p end_us] (the grid
     * point's span), downsampled to at most ~200 samples, so
     * Perfetto shows ACT/RFM rate aligned with the point spans.
     */
    static void emitTraceCounters(TraceSession *trace, int lane,
                                  std::uint64_t start_us,
                                  std::uint64_t end_us);

    /** Records so far (tests). */
    static std::size_t recordCount();
};

} // namespace pracleak::telemetry

#endif // PRACLEAK_TELEMETRY_TIMESERIES_H
