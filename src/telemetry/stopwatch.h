/**
 * @file
 * One wall-clock stopwatch for every hand-rolled
 * `std::chrono::steady_clock` timing block the harness used to carry
 * (sweep runner, fast-forward benches, trace replay).  Wall-clock
 * telemetry only: nothing in the simulation may read it, so results
 * stay independent of the host's clock.
 */

#ifndef PRACLEAK_TELEMETRY_STOPWATCH_H
#define PRACLEAK_TELEMETRY_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace pracleak::telemetry {

/** Monotonic elapsed-time counter, started at construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** Reset the epoch to now. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds since construction / the last restart(). */
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Whole microseconds since the epoch (Chrome trace `ts` unit). */
    std::uint64_t micros() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace pracleak::telemetry

#endif // PRACLEAK_TELEMETRY_STOPWATCH_H
