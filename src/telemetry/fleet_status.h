/**
 * @file
 * Live fleet status over a work-stealing checkpoint directory: fuse
 * the done markers and claim files (sim/checkpoint.h PointClaims),
 * the journal headers, and the worker heartbeats
 * (telemetry/heartbeat.h) into one done/claimed/stale/remaining
 * picture with per-worker throughput and an ETA.  Read-only: status
 * never touches claims, journals, or markers, so it is safe to run
 * against a directory a live fleet is working in.
 */

#ifndef PRACLEAK_TELEMETRY_FLEET_STATUS_H
#define PRACLEAK_TELEMETRY_FLEET_STATUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/heartbeat.h"

namespace pracleak::telemetry {

/** One worker as seen through its heartbeat file. */
struct WorkerStatus
{
    Heartbeat beat;
    double ageSeconds = 0.0; //!< since the heartbeat file's mtime
    bool stale = false;      //!< ageSeconds > the status TTL
};

/** Everything `pracbench status` shows for one scenario. */
struct FleetStatus
{
    std::string scenario;
    std::size_t points = 0; //!< 0 when no journal header was found
    std::size_t done = 0;
    std::size_t claimedFresh = 0;
    std::size_t claimedStale = 0;
    std::vector<WorkerStatus> workers;

    /** Summed throughput of the non-stale workers. */
    double livePointsPerSec = 0.0;

    std::size_t remaining() const
    {
        return points > done ? points - done : 0;
    }

    /** remaining() / livePointsPerSec; < 0 when unknowable. */
    double etaSeconds() const;
};

/**
 * Scenario names with any footprint under @p directory: a journal,
 * a claims directory, or a heartbeats directory.  Sorted.
 */
std::vector<std::string>
fleetScenarios(const std::string &directory);

/**
 * Collect the status of @p scenario under @p directory.  A claim or
 * heartbeat whose mtime is older than @p stale_ttl_seconds counts as
 * stale (use the fleet's --claim-ttl for claims to match the
 * stealing workers' own judgement).  Throws std::runtime_error when
 * the directory does not exist.
 */
FleetStatus collectFleetStatus(const std::string &directory,
                               const std::string &scenario,
                               double stale_ttl_seconds);

/** Human-readable multi-line rendering (pracbench status). */
std::string renderFleetStatus(const FleetStatus &status);

} // namespace pracleak::telemetry

#endif // PRACLEAK_TELEMETRY_FLEET_STATUS_H
