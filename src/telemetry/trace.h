/**
 * @file
 * Chrome trace-event export for sweep runs: one lane per pool
 * worker, a span per grid point and per phase (sim / record / replay
 * / journal-flush / merge), and instant events for checkpoint
 * writes, claim acquisitions/steals, and done-marker publishes.  The
 * emitted JSON loads in Perfetto / chrome://tracing, so fleet
 * scheduling gaps and straggler points are visible at a glance.
 *
 * Zero-cost-when-off contract: every call site holds a
 * `TraceSession *` that is null when tracing is disabled, and the
 * inline `TraceSpan` helper takes no timestamp when its session is
 * null -- a run without `--trace-out` performs no timing calls and
 * allocates nothing.  Tracing observes the harness only (wall clock,
 * scheduling); it must never be consulted by simulation code, so
 * sweep output is byte-identical with tracing on or off.
 */

#ifndef PRACLEAK_TELEMETRY_TRACE_H
#define PRACLEAK_TELEMETRY_TRACE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/json.h"
#include "telemetry/stopwatch.h"

namespace pracleak::telemetry {

/**
 * One trace recording: thread-safe event buffer plus the steady
 * clock all timestamps are relative to.  Lanes are small integers
 * (ThreadPool worker index; -1 for the calling/main thread) mapped
 * to Chrome thread ids with human-readable names.
 */
class TraceSession
{
  public:
    /** @p path is where write() emits the JSON (atomic rename). */
    explicit TraceSession(std::string path);

    const std::string &path() const { return path_; }

    /** Microseconds since the session started (event `ts` unit). */
    std::uint64_t nowMicros() const { return clock_.micros(); }

    /**
     * Record a complete ('X') event: a span on @p lane covering
     * [@p start_us, @p start_us + @p dur_us].  @p args is attached
     * verbatim when it is an object.
     */
    void complete(const std::string &name, const std::string &category,
                  int lane, std::uint64_t start_us,
                  std::uint64_t dur_us,
                  sim::JsonValue args = sim::JsonValue());

    /** Record a thread-scoped instant ('i') event on @p lane. */
    void instant(const std::string &name, const std::string &category,
                 int lane, sim::JsonValue args = sim::JsonValue());

    /**
     * Record a counter ('C') event on @p lane at @p ts_us: each
     * numeric member of @p args is one counter series, rendered by
     * Perfetto as a stacked value track aligned with the lane's
     * spans.  The bus time-series export (telemetry/timeseries.h)
     * uses this to overlay ACT/RFM rate on the grid-point spans.
     */
    void counter(const std::string &name, int lane,
                 std::uint64_t ts_us, sim::JsonValue args);

    /** Override the display name of @p lane (default: worker-N). */
    void nameLane(int lane, const std::string &name);

    /**
     * Emit the Chrome trace-event JSON to path() via writeAtomic().
     * Callable once at the end of the run; returns false on I/O
     * failure.
     */
    bool write();

    /** Events recorded so far (tests). */
    std::size_t eventCount() const;

  private:
    struct Event
    {
        char phase;          //!< 'X' or 'i'
        std::string name;
        std::string category;
        int lane;
        std::uint64_t tsUs;
        std::uint64_t durUs; //!< 'X' only
        sim::JsonValue args;
    };

    std::string path_;
    Stopwatch clock_;
    mutable std::mutex mutex_;
    std::vector<Event> events_;
    std::map<int, std::string> laneNames_;
};

/**
 * RAII span: records the start time at construction and emits one
 * complete event at destruction (or an explicit end()).  A null
 * session makes every member a no-op -- including the clock read --
 * so hot paths can construct spans unconditionally.
 */
class TraceSpan
{
  public:
    TraceSpan() = default;

    TraceSpan(TraceSession *session, std::string name,
              std::string category, int lane,
              sim::JsonValue args = sim::JsonValue())
        : session_(session), name_(std::move(name)),
          category_(std::move(category)), lane_(lane),
          args_(std::move(args))
    {
        if (session_)
            startUs_ = session_->nowMicros();
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan() { end(); }

    /** Emit the event now; later end() calls are no-ops. */
    void end()
    {
        if (!session_)
            return;
        const std::uint64_t now = session_->nowMicros();
        session_->complete(name_, category_, lane_, startUs_,
                           now - startUs_, std::move(args_));
        session_ = nullptr;
    }

  private:
    TraceSession *session_ = nullptr;
    std::string name_;
    std::string category_;
    int lane_ = -1;
    std::uint64_t startUs_ = 0;
    sim::JsonValue args_;
};

} // namespace pracleak::telemetry

#endif // PRACLEAK_TELEMETRY_TRACE_H
