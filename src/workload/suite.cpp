#include "workload/suite.h"

#include "common/log.h"

namespace pracleak {

const char *
intensityName(MemIntensity intensity)
{
    switch (intensity) {
      case MemIntensity::High: return "high";
      case MemIntensity::Medium: return "medium";
      case MemIntensity::Low: return "low";
    }
    return "?";
}

namespace {

WorkloadParams
make(const std::string &name, std::uint64_t footprint_lines,
     double non_mem_per_mem, double seq_prob, double write_fraction,
     double dependent_prob, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = name;
    p.footprintLines = footprint_lines;
    p.nonMemPerMem = non_mem_per_mem;
    p.seqProb = seq_prob;
    p.writeFraction = write_fraction;
    p.dependentProb = dependent_prob;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<SuiteEntry>
standardSuite()
{
    std::vector<SuiteEntry> suite;

    // High intensity (RBMPKI >= 10): large footprints, frequent
    // random jumps.  Modeled after the paper's milc/lbm/mcf class.
    // 2^23 lines = 512 MB per core.
    suite.push_back({make("h_rand_heavy", 1ULL << 23, 19.0, 0.00, 0.20,
                          0.00, 11),
                     MemIntensity::High, false, {}});
    suite.push_back({make("h_rand_write", 1ULL << 23, 24.0, 0.10, 0.40,
                          0.00, 12),
                     MemIntensity::High, false, {}});
    suite.push_back({make("h_scan_mix", 1ULL << 23, 14.0, 0.50, 0.25,
                          0.00, 13),
                     MemIntensity::High, false, {}});
    suite.push_back({make("h_chase", 1ULL << 22, 29.0, 0.00, 0.05,
                          0.50, 14),
                     MemIntensity::High, false, {}});
    suite.push_back({make("h_stream_wide", 1ULL << 23, 9.0, 0.90, 0.30,
                          0.00, 15),
                     MemIntensity::High, false, {}});

    // Medium intensity (1 <= RBMPKI < 10): moderate footprints and
    // locality (the bzip2/gcc/astar class).
    suite.push_back({make("m_blend", 1ULL << 19, 59.0, 0.75, 0.25,
                          0.00, 21),
                     MemIntensity::Medium, false, {}});
    suite.push_back({make("m_sparse", 1ULL << 20, 99.0, 0.50, 0.15,
                          0.00, 22),
                     MemIntensity::Medium, false, {}});
    suite.push_back({make("m_stride", 1ULL << 18, 65.0, 0.80, 0.20,
                          0.10, 23),
                     MemIntensity::Medium, false, {}});

    // Low intensity (RBMPKI < 1): cache-resident footprints (the
    // namd/povray/gamess class).  Footprints fit the private L2 or
    // the shared LLC, and are dense enough to warm quickly.
    suite.push_back({make("l_resident", 1ULL << 12, 9.0, 0.80, 0.25,
                          0.00, 31),
                     MemIntensity::Low, false, {}});
    suite.push_back({make("l_tiny_hot", 1ULL << 10, 14.0, 0.50, 0.30,
                          0.00, 32),
                     MemIntensity::Low, false, {}});
    suite.push_back({make("l_compute", 1ULL << 10, 49.0, 0.80, 0.20,
                          0.00, 33),
                     MemIntensity::Low, false, {}});

    // Cloud-style heterogeneous mix: one distinct thread per core
    // (the cassandra/nutch/cloud9/classification class -- all High).
    SuiteEntry cloud;
    cloud.params = make("cloud_mix", 1ULL << 23, 19.0, 0.20, 0.25,
                        0.05, 41);
    cloud.intensity = MemIntensity::High;
    cloud.heterogeneous = true;
    cloud.perCore = {
        make("cloud_serve", 1ULL << 23, 19.0, 0.10, 0.30, 0.00, 42),
        make("cloud_index", 1ULL << 22, 24.0, 0.40, 0.20, 0.10, 43),
        make("cloud_cache", 1ULL << 21, 39.0, 0.60, 0.35, 0.00, 44),
        make("cloud_analyze", 1ULL << 23, 14.0, 0.00, 0.15, 0.00, 45),
    };
    suite.push_back(std::move(cloud));

    return suite;
}

std::vector<SuiteEntry>
suiteByIntensity(MemIntensity intensity)
{
    std::vector<SuiteEntry> out;
    for (auto &entry : standardSuite())
        if (entry.intensity == intensity)
            out.push_back(std::move(entry));
    return out;
}

std::vector<std::unique_ptr<WorkloadSource>>
instantiate(const SuiteEntry &entry, std::uint32_t num_cores)
{
    std::vector<std::unique_ptr<WorkloadSource>> sources;
    sources.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        if (entry.heterogeneous) {
            if (entry.perCore.empty())
                fatal("heterogeneous suite entry without per-core list");
            const WorkloadParams &p =
                entry.perCore[c % entry.perCore.size()];
            sources.push_back(makeWorkload(p, c));
        } else {
            sources.push_back(makeWorkload(entry.params, c));
        }
    }
    return sources;
}

} // namespace pracleak
