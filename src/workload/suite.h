/**
 * @file
 * The evaluation workload suite.
 *
 * Mirrors the paper's Table 4 structure: workloads are grouped by
 * row-buffer misses per kilo-instruction (RBMPKI) into High (>= 10),
 * Medium ([1, 10)), and Low (< 1) categories, and by provenance into
 * "spec2k6-like" / "spec2k17-like" homogeneous 4-core mixes plus a
 * heterogeneous "cloud-like" mix.  Names are synthetic on purpose --
 * see DESIGN.md for the substitution rationale.
 */

#ifndef PRACLEAK_WORKLOAD_SUITE_H
#define PRACLEAK_WORKLOAD_SUITE_H

#include <memory>
#include <string>
#include <vector>

#include "cpu/trace_core.h"
#include "workload/synthetic.h"

namespace pracleak {

/** RBMPKI category (Table 4). */
enum class MemIntensity : std::uint8_t
{
    High,
    Medium,
    Low,
};

const char *intensityName(MemIntensity intensity);

/** One suite entry. */
struct SuiteEntry
{
    WorkloadParams params;
    MemIntensity intensity;

    /** True for the heterogeneous cloud-style mix. */
    bool heterogeneous = false;

    /** Per-core parameter overrides for heterogeneous entries. */
    std::vector<WorkloadParams> perCore;
};

/** The full evaluation suite (12 entries across the categories). */
std::vector<SuiteEntry> standardSuite();

/** Subset of the suite with the given intensity. */
std::vector<SuiteEntry> suiteByIntensity(MemIntensity intensity);

/**
 * Instantiate the @p num_cores workload sources for a suite entry
 * (homogeneous copies, or the per-core list for heterogeneous mixes).
 */
std::vector<std::unique_ptr<WorkloadSource>>
instantiate(const SuiteEntry &entry, std::uint32_t num_cores);

} // namespace pracleak

#endif // PRACLEAK_WORKLOAD_SUITE_H
