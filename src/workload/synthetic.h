/**
 * @file
 * Synthetic workload generators.
 *
 * Substitution for the paper's SPEC2006/SPEC2017/CloudSuite traces
 * (unavailable offline): the performance results depend on workloads
 * only through memory intensity and row-buffer locality -- the paper
 * itself categorizes workloads purely by row-buffer misses per
 * kilo-instruction (RBMPKI).  These generators expose exactly those
 * knobs, so the High/Medium/Low structure of the evaluation carries
 * over.
 */

#ifndef PRACLEAK_WORKLOAD_SYNTHETIC_H
#define PRACLEAK_WORKLOAD_SYNTHETIC_H

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "cpu/trace_core.h"

namespace pracleak {

/** Knobs of one synthetic program. */
struct WorkloadParams
{
    std::string name = "synthetic";

    /** Touched cache lines; footprint = this * 64 B. */
    std::uint64_t footprintLines = 1ULL << 20;

    /** Mean non-memory instructions between memory instructions. */
    double nonMemPerMem = 9.0;

    /** Fraction of memory instructions that are stores. */
    double writeFraction = 0.2;

    /** Probability the next access continues sequentially. */
    double seqProb = 0.5;

    /** Probability a load is serializing (pointer-chase style). */
    double dependentProb = 0.0;

    std::uint64_t seed = 1;
};

/** WorkloadSource implementing the parameterized behaviour. */
class SyntheticWorkload : public WorkloadSource
{
  public:
    /**
     * @param params Behaviour knobs.
     * @param base   Base physical address of this program's memory
     *               (gives each core a disjoint region).
     */
    SyntheticWorkload(const WorkloadParams &params, Addr base);

    TraceOp next() override;
    const std::string &name() const override { return params_.name; }

  private:
    WorkloadParams params_;
    Addr base_;
    Rng rng_;
    std::uint64_t cursor_ = 0; //!< current line offset in footprint
};

/**
 * Construct a workload for @p core_id with a disjoint 32 GB address
 * region and a per-core seed derived from params.seed.
 */
std::unique_ptr<WorkloadSource>
makeWorkload(const WorkloadParams &params, std::uint32_t core_id);

/**
 * Serialized pointer-chase parameters: every load is dependent and
 * random within @p footprint_lines, with no stores.  Cache-resident
 * footprints give a low-RBMPKI workload whose stalls come from cache
 * latency -- the idle-cycle fast-forward stress case shared by the
 * fastforward_benchmark scenario, its tests, and the microbenchmarks.
 */
WorkloadParams pointerChaseParams(std::uint64_t footprint_lines);

} // namespace pracleak

#endif // PRACLEAK_WORKLOAD_SYNTHETIC_H
