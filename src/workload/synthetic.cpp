#include "workload/synthetic.h"

namespace pracleak {

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params,
                                     Addr base)
    : params_(params), base_(base), rng_(params.seed)
{
}

TraceOp
SyntheticWorkload::next()
{
    TraceOp op;
    // Geometric-ish gap around the configured mean keeps the
    // instruction mix irregular without a heavy distribution draw.
    const double mean = params_.nonMemPerMem;
    op.nonMemInstrs = static_cast<std::uint32_t>(
        rng_.range(static_cast<std::uint64_t>(2.0 * mean) + 1));
    op.isMem = true;

    if (!rng_.chance(params_.seqProb))
        cursor_ = rng_.range(params_.footprintLines);
    else
        cursor_ = (cursor_ + 1) % params_.footprintLines;

    op.addr = base_ + (cursor_ << kLineShift);
    op.isWrite = rng_.chance(params_.writeFraction);
    if (!op.isWrite)
        op.dependent = rng_.chance(params_.dependentProb);
    return op;
}

std::unique_ptr<WorkloadSource>
makeWorkload(const WorkloadParams &params, std::uint32_t core_id)
{
    WorkloadParams p = params;
    p.seed = params.seed * 0x9E3779B97F4A7C15ULL + core_id + 1;
    const Addr base = static_cast<Addr>(core_id) << 35; // 32 GB apart
    return std::make_unique<SyntheticWorkload>(p, base);
}

WorkloadParams
pointerChaseParams(std::uint64_t footprint_lines)
{
    WorkloadParams params;
    params.name = "ptrchase";
    params.footprintLines = footprint_lines;
    params.nonMemPerMem = 9.0;
    params.seqProb = 0.0;
    params.writeFraction = 0.0;
    params.dependentProb = 1.0;
    params.seed = 7;
    return params;
}

} // namespace pracleak
