/**
 * @file
 * PARA: Probabilistic Adjacent-Row Activation (Kim et al., ISCA'14),
 * modelled as an in-DRAM defense.
 *
 * On every activation the DRAM refreshes the activated row's
 * neighbours with probability p.  We model the neighbour refresh as a
 * reset of the activated row's PRAC counter (the counter is the
 * simulator's proxy for accumulated neighbour damage) performed
 * inside the row cycle the DRAM already owns -- no bus command, no
 * extra blocking time.  That is the defining contrast with every
 * RFM-based defense in the bake-off: PARA's mitigations are invisible
 * to a latency probe, so it cannot leak RFM-timing, while its
 * security guarantee is only probabilistic ((1-p)^NBO escape chance
 * per row between resets).
 *
 * Each (channel, defense) pair draws from its own counter-derived RNG
 * stream (common/rng.h) so multi-channel runs and `--jobs N` sweeps
 * stay bit-reproducible.
 */

#ifndef PRACLEAK_MITIGATION_PARA_H
#define PRACLEAK_MITIGATION_PARA_H

#include <cstdint>

#include "common/rng.h"
#include "mitigation/configs.h"
#include "mitigation/mitigation.h"

namespace pracleak {

/** In-DRAM probabilistic neighbour refresh. */
class ParaMitigation : public Mitigation
{
  public:
    ParaMitigation(const ParaConfig &config, std::uint32_t channel,
                   PracEngine *prac, StatSet *stats);

    const char *name() const override { return "para"; }

    void onActivate(std::uint32_t flat_bank, std::uint32_t row,
                    Cycle now) override;

    std::uint64_t eventsTriggered() const override { return refreshes_; }

  private:
    ParaConfig config_;
    PracEngine *prac_;
    StatSet *stats_;
    Rng rng_;
    std::uint64_t refreshes_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_MITIGATION_PARA_H
