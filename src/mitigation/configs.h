/**
 * @file
 * Per-defense configuration structs, kept separate from the defense
 * classes so ControllerConfig (mem/controller.h) can embed them
 * without pulling every concrete defense implementation into the
 * core controller header -- the controller stays defense-agnostic;
 * only mitigation/registry.cpp knows the concrete types.
 */

#ifndef PRACLEAK_MITIGATION_CONFIGS_H
#define PRACLEAK_MITIGATION_CONFIGS_H

#include <cstdint>

namespace pracleak {

/** PARA ("para"): probabilistic in-DRAM neighbour refresh. */
struct ParaConfig
{
    /**
     * Probability of refreshing the neighbours on each ACT.  0 means
     * "derive from NBO" via the registry helper (configureDefense):
     * p = 64/NBO keeps the per-row escape probability below e^-64
     * between counter resets.
     */
    double refreshProb = 0.0;

    /** Base seed; the channel index selects the stream. */
    std::uint64_t seed = 0x9A4A'5EEDULL;
};

/** Graphene ("graphene"): per-bank Space-Saving counter table. */
struct GrapheneConfig
{
    /**
     * Counter-table entries per bank.  0 means "derive" when
     * configured through configureDefense: one entry per threshold
     * activations of the per-tREFW budget, the size at which the
     * Space-Saving error bound keeps false triggers rare.
     */
    std::uint32_t tableSize = 0;

    /**
     * Estimated activation count that triggers a mitigation.  0 means
     * "derive from NBO" when configured through configureDefense
     * (NBO/4, floor 16).
     */
    std::uint32_t threshold = 0;
};

/** PB-RFM ("pb-rfm"): DDR5 RAAIMT-style per-bank RFM scheduling. */
struct PbRfmConfig
{
    /**
     * RAA Initial Management Threshold: bank activations per owed
     * RFMpb.  0 means "derive from NBO" when configured through
     * configureDefense (the per-bank Feinting-safe cadence, floor 16).
     */
    std::uint32_t raaimt = 0;
};

} // namespace pracleak

#endif // PRACLEAK_MITIGATION_CONFIGS_H
