#include "mitigation/pb_rfm.h"

#include "common/log.h"

namespace pracleak {

PbRfmMitigation::PbRfmMitigation(const PbRfmConfig &config,
                                 std::uint32_t num_banks,
                                 StatSet *stats)
    : config_(config), stats_(stats), raa_(num_banks, 0)
{
    if (config_.raaimt == 0)
        fatal("PB-RFM requires a non-zero RAAIMT");
}

void
PbRfmMitigation::onActivate(std::uint32_t flat_bank, std::uint32_t,
                            Cycle)
{
    if (++raa_[flat_bank] < config_.raaimt)
        return;
    raa_[flat_bank] -= config_.raaimt;
    pending_.push_back(flat_bank);
    ++triggers_;
    if (stats_)
        ++stats_->counter("mit.pb_rfm.triggers");
}

MaintenanceRequest
PbRfmMitigation::maintenanceCommands(Cycle)
{
    MaintenanceRequest req;
    if (pending_.empty())
        return req;
    req.wanted = true;
    req.perBank = true;
    req.reason = RfmReason::PerBank;
    req.flatBank = pending_.front();
    return req;
}

void
PbRfmMitigation::onRfmIssued(RfmReason reason, bool, Cycle)
{
    if (reason == RfmReason::PerBank && !pending_.empty())
        pending_.pop_front();
}

} // namespace pracleak
