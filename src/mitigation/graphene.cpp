#include "mitigation/graphene.h"

#include <algorithm>

#include "common/log.h"

namespace pracleak {

GrapheneMitigation::GrapheneMitigation(const GrapheneConfig &config,
                                       std::uint32_t num_banks,
                                       Cycle trefw, StatSet *stats)
    : config_(config), stats_(stats), trefw_(trefw),
      nextResetAt_(trefw), tables_(num_banks)
{
    if (config_.tableSize == 0 || config_.threshold == 0)
        fatal("Graphene requires a non-zero table size and threshold");
}

void
GrapheneMitigation::Table::setCount(std::uint32_t row,
                                    std::uint32_t from,
                                    std::uint32_t to, bool inserting)
{
    if (!inserting) {
        const auto bucket = byCount.find(from);
        bucket->second.erase(row);
        if (bucket->second.empty())
            byCount.erase(bucket);
    }
    rows[row] = to;
    byCount[to].insert(row);
}

void
GrapheneMitigation::Table::clear()
{
    rows.clear();
    byCount.clear();
}

void
GrapheneMitigation::onActivate(std::uint32_t flat_bank,
                               std::uint32_t row, Cycle now)
{
    while (now >= nextResetAt_) {
        for (Table &table : tables_)
            table.clear();
        nextResetAt_ += trefw_;
    }

    Table &table = tables_[flat_bank];
    const auto it = table.rows.find(row);
    if (it != table.rows.end()) {
        const std::uint32_t old = it->second;
        table.setCount(row, old, checkThreshold(flat_bank, old + 1),
                       false);
        return;
    }
    if (table.rows.size() < config_.tableSize) {
        table.setCount(row, 0, checkThreshold(flat_bank, 1), true);
        return;
    }

    // Table full: Space-Saving eviction.  The new row takes over the
    // lowest-row-id minimum entry and inherits its estimate plus one
    // (its true count cannot exceed that).
    const auto min_bucket = table.byCount.begin();
    const std::uint32_t victim = *min_bucket->second.begin();
    const std::uint32_t inherited = min_bucket->first + 1;
    min_bucket->second.erase(min_bucket->second.begin());
    if (min_bucket->second.empty())
        table.byCount.erase(min_bucket);
    table.rows.erase(victim);
    table.setCount(row, 0, checkThreshold(flat_bank, inherited),
                   true);
}

std::uint32_t
GrapheneMitigation::checkThreshold(std::uint32_t flat_bank,
                                   std::uint32_t count)
{
    if (count < config_.threshold)
        return count;
    // Trigger: queue the bank for an RFMpb and restart the estimate.
    pending_.push_back(flat_bank);
    ++triggers_;
    if (stats_)
        ++stats_->counter("mit.graphene.triggers");
    return 0;
}

MaintenanceRequest
GrapheneMitigation::maintenanceCommands(Cycle)
{
    MaintenanceRequest req;
    if (pending_.empty())
        return req;
    req.wanted = true;
    req.perBank = true;
    req.reason = RfmReason::Graphene;
    req.flatBank = pending_.front();
    return req;
}

void
GrapheneMitigation::onRfmIssued(RfmReason reason, bool, Cycle)
{
    if (reason == RfmReason::Graphene && !pending_.empty())
        pending_.pop_front();
}

} // namespace pracleak
