#include "mitigation/registry.h"

#include <algorithm>

#include "common/log.h"
#include "mem/controller.h"
#include "mitigation/graphene.h"
#include "mitigation/legacy.h"
#include "mitigation/para.h"
#include "mitigation/pb_rfm.h"
#include "tprac/analysis.h"

namespace pracleak {

const std::vector<MitigationInfo> &
mitigationCatalog()
{
    static const std::vector<MitigationInfo> catalog = {
        {"none",
         "PRAC timings only; no ABO, no RFMs (normalization baseline)",
         false},
        {"abo-only",
         "DRAM Alert Back-Off serviced with Nmit RFMabs (leaky)",
         true},
        {"abo+acb-rfm",
         "host-side per-bank ACT counting, RFMab at the BAT (leaky)",
         true},
        {"tprac",
         "timing-based RFMs on a fixed TB-Window; ABO as safety net",
         true},
        {"obfuscation",
         "ABO plus random RFMab injection per tREFI (Section 7.1)",
         true},
        {"para",
         "probabilistic in-DRAM neighbour refresh (no bus events)",
         false},
        {"graphene",
         "Misra-Gries counter table per bank, targeted RFMpb (leaky)",
         false},
        {"pb-rfm",
         "DDR5 RAAIMT-style per-bank RFM scheduling (leaky)", false},
    };
    return catalog;
}

const MitigationInfo *
findMitigation(const std::string &name)
{
    for (const MitigationInfo &info : mitigationCatalog())
        if (name == info.name)
            return &info;
    return nullptr;
}

std::vector<std::string>
mitigationNames()
{
    std::vector<std::string> names;
    for (const MitigationInfo &info : mitigationCatalog())
        names.emplace_back(info.name);
    return names;
}

std::string
resolveMitigationName(const ControllerConfig &config)
{
    if (!config.mitigation.empty())
        return config.mitigation;
    switch (config.mode) {
      case MitigationMode::NoMitigation: return "none";
      case MitigationMode::AboOnly: return "abo-only";
      case MitigationMode::AboAcb: return "abo+acb-rfm";
      case MitigationMode::Tprac: return "tprac";
      case MitigationMode::Obfuscation: return "obfuscation";
    }
    return "none";
}

std::unique_ptr<Mitigation>
makeMitigation(const std::string &name, const MitigationContext &ctx)
{
    const DramSpec &spec = *ctx.spec;
    const ControllerConfig &config = *ctx.config;
    const std::uint32_t banks = spec.org.totalBanks();

    if (name == "none" || name == "abo-only") {
        return std::make_unique<NullMitigation>(
            name == "none" ? "none" : "abo-only");
    }
    if (name == "abo+acb-rfm") {
        if (config.bat == 0)
            fatal("AboAcb mode requires a non-zero BAT");
        return std::make_unique<AcbRfmMitigation>(banks, config.bat);
    }
    if (name == "tprac") {
        if (config.tbRfm.windowCycles == 0)
            fatal("Tprac mode requires a non-zero TB-Window");
        TbRfmConfig tb = config.tbRfm;
        if (tb.perBank) {
            // Rotate through every bank within one window so each
            // bank still gets one mitigation per windowCycles.
            tb.windowCycles =
                std::max<Cycle>(1, tb.windowCycles / banks);
        }
        return std::make_unique<TpracMitigation>(tb, ctx.prac, banks);
    }
    if (name == "obfuscation") {
        return std::make_unique<ObfuscationMitigation>(
            config.randomRfmPerTrefi, config.obfuscationSeed,
            spec.timing.tREFI);
    }
    if (name == "para") {
        if (config.para.refreshProb <= 0.0)
            fatal("PARA requires a non-zero refresh probability");
        return std::make_unique<ParaMitigation>(
            config.para, config.channelIndex, ctx.prac, ctx.stats);
    }
    if (name == "graphene") {
        return std::make_unique<GrapheneMitigation>(
            config.graphene, banks, spec.timing.tREFW, ctx.stats);
    }
    if (name == "pb-rfm") {
        return std::make_unique<PbRfmMitigation>(config.pbRfm, banks,
                                                 ctx.stats);
    }
    fatal("unknown mitigation '" + name +
          "' (see mitigationCatalog())");
}

void
configureDefense(ControllerConfig &config, const std::string &name,
                 const DramSpec &spec, bool tref_co_design)
{
    if (!findMitigation(name))
        fatal("unknown mitigation '" + name +
              "' (see mitigationCatalog())");

    config.mitigation = name;
    const std::uint32_t nbo = spec.prac.nbo;
    const bool reset = config.prac.counterResetAtTrefw;
    const FeintingParams fp = FeintingParams::fromSpec(spec);

    if (name == "abo+acb-rfm" && config.bat == 0)
        config.bat =
            std::max<std::uint32_t>(16, maxSafeBat(nbo, reset, fp));
    if (name == "tprac" && config.tbRfm.windowCycles == 0)
        config.tbRfm =
            TbRfmConfig::forNbo(nbo, reset, spec, tref_co_design);
    if (name == "para" && config.para.refreshProb <= 0.0)
        config.para.refreshProb =
            std::min(1.0, 64.0 / static_cast<double>(nbo));
    if (name == "graphene") {
        if (config.graphene.threshold == 0)
            config.graphene.threshold =
                std::max<std::uint32_t>(16, nbo / 4);
        if (config.graphene.tableSize == 0) {
            // One entry per threshold activations of the tREFW budget
            // keeps the Space-Saving overestimate below the trigger
            // threshold (no decoy-scanning false triggers).
            const std::uint64_t budget = maxActsPerTrefw(0.0, fp);
            config.graphene.tableSize = std::max<std::uint32_t>(
                64, static_cast<std::uint32_t>(
                        budget / config.graphene.threshold + 1));
        }
    }
    if (name == "pb-rfm" && config.pbRfm.raaimt == 0)
        config.pbRfm.raaimt =
            std::max<std::uint32_t>(16, maxSafeBat(nbo, reset, fp));
}

} // namespace pracleak
