/**
 * @file
 * The seed tree's mitigation modes, ported onto the Mitigation
 * interface with bit-identical behaviour (pinned by the golden
 * equivalence tests in tests/test_golden.cpp):
 *
 *  - NullMitigation ("none" / "abo-only"): no proactive maintenance;
 *    the two keys differ only in whether the ABO substrate is armed.
 *  - AcbRfmMitigation ("abo+acb-rfm"): host-side per-bank ACT counting
 *    with proactive RFMabs at the Bank Activation Threshold.
 *  - TpracMitigation ("tprac"): timing-based RFMs on a fixed TB-Window
 *    (all-bank, or rotating RFMpb in the TPRAC-PB variant), with the
 *    optional TREF co-design skip.
 *  - ObfuscationMitigation ("obfuscation"): random RFMab injection,
 *    one Bernoulli draw per tREFI (Section 7.1 ablation).
 */

#ifndef PRACLEAK_MITIGATION_LEGACY_H
#define PRACLEAK_MITIGATION_LEGACY_H

#include <cstdint>

#include "common/rng.h"
#include "mitigation/mitigation.h"
#include "prac/acb_tracker.h"
#include "tprac/tb_rfm.h"

namespace pracleak {

/** No proactive maintenance ("none" and "abo-only"). */
class NullMitigation : public Mitigation
{
  public:
    explicit NullMitigation(const char *name) : name_(name) {}

    const char *name() const override { return name_; }

  private:
    const char *name_;
};

/** Host-side ACB-RFM: proactive RFMab at the BAT ("abo+acb-rfm"). */
class AcbRfmMitigation : public Mitigation
{
  public:
    AcbRfmMitigation(std::uint32_t num_banks, std::uint32_t bat)
        : tracker_(num_banks, bat)
    {
    }

    const char *name() const override { return "abo+acb-rfm"; }

    void
    onActivate(std::uint32_t flat_bank, std::uint32_t, Cycle) override
    {
        tracker_.onActivate(flat_bank);
    }

    MaintenanceRequest
    maintenanceCommands(Cycle) override
    {
        MaintenanceRequest req;
        if (tracker_.rfmNeeded()) {
            req.wanted = true;
            req.reason = RfmReason::Acb;
        }
        return req;
    }

    void
    onRfmIssued(RfmReason, bool per_bank, Cycle) override
    {
        // Any RFMab resets every bank count (ABO-service ones too).
        if (!per_bank)
            tracker_.onRfmIssued();
    }

    Cycle
    nextMaintenanceAt(Cycle now) const override
    {
        return tracker_.rfmNeeded() ? now : kNeverCycle;
    }

    std::uint64_t
    eventsTriggered() const override
    {
        return tracker_.rfmsRequested();
    }

    const AcbTracker &tracker() const { return tracker_; }

  private:
    AcbTracker tracker_;
};

/** Timing-based RFMs on a fixed TB-Window ("tprac" / TPRAC-PB). */
class TpracMitigation : public Mitigation
{
  public:
    /**
     * @param config    TB-Window configuration; for the per-bank
     *                  variant the window must already be divided by
     *                  the bank count (registry responsibility).
     * @param engine    PRAC engine (TREF co-design skip credit).
     * @param num_banks Channel-wide bank count (RFMpb rotation).
     */
    TpracMitigation(const TbRfmConfig &config, PracEngine *engine,
                    std::uint32_t num_banks)
        : config_(config), scheduler_(config, engine),
          numBanks_(num_banks)
    {
    }

    const char *name() const override { return "tprac"; }

    MaintenanceRequest
    maintenanceCommands(Cycle now) override
    {
        MaintenanceRequest req;
        if (!scheduler_.due(now))
            return req;
        if (scheduler_.trySkipWithTref(now))
            return req;
        req.wanted = true;
        req.reason = RfmReason::TimingBased;
        req.perBank = config_.perBank;
        if (req.perBank)
            req.flatBank = rotation_++ % numBanks_;
        return req;
    }

    void
    onRfmIssued(RfmReason reason, bool, Cycle now) override
    {
        if (reason == RfmReason::TimingBased)
            scheduler_.onRfmIssued(now);
    }

    Cycle
    nextMaintenanceAt(Cycle) const override
    {
        return scheduler_.enabled() ? scheduler_.nextDeadline()
                                    : kNeverCycle;
    }

    std::uint64_t
    eventsTriggered() const override
    {
        return scheduler_.issued();
    }

    const TbRfmScheduler *tbScheduler() const override
    {
        return &scheduler_;
    }

  private:
    TbRfmConfig config_;
    TbRfmScheduler scheduler_;
    std::uint32_t numBanks_;
    std::uint32_t rotation_ = 0;
};

/** Random-RFM injection, one draw per tREFI ("obfuscation"). */
class ObfuscationMitigation : public Mitigation
{
  public:
    ObfuscationMitigation(double probability, std::uint64_t seed,
                          Cycle trefi)
        : probability_(probability), trefi_(trefi), rng_(seed),
          nextDrawAt_(trefi)
    {
    }

    const char *name() const override { return "obfuscation"; }

    MaintenanceRequest
    maintenanceCommands(Cycle now) override
    {
        MaintenanceRequest req;
        if (now < nextDrawAt_)
            return req;
        nextDrawAt_ += trefi_;
        if (rng_.chance(probability_)) {
            req.wanted = true;
            req.reason = RfmReason::Random;
            ++injected_;
        }
        return req;
    }

    Cycle
    nextMaintenanceAt(Cycle) const override
    {
        return nextDrawAt_;
    }

    std::uint64_t eventsTriggered() const override { return injected_; }

  private:
    double probability_;
    Cycle trefi_;
    Rng rng_;
    Cycle nextDrawAt_;
    std::uint64_t injected_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_MITIGATION_LEGACY_H
