/**
 * @file
 * PB-RFM: per-bank activation-counting RFM, after DDR5's Refresh
 * Management (RAA counters + RAAIMT).
 *
 * The controller keeps one Rolling Accumulated ACT (RAA) counter per
 * bank; when a bank's counter reaches the RAA Initial Management
 * Threshold it owes the DRAM one RFMpb and the counter is debited by
 * RAAIMT.  Compared with the channel-wide ACB-RFM baseline this
 * blocks a single bank per event instead of draining the channel --
 * but the trigger is still a deterministic function of per-bank
 * activity, so its RFM timing leaks activation counts to any
 * co-located observer (the defense bake-off measures exactly this).
 */

#ifndef PRACLEAK_MITIGATION_PB_RFM_H
#define PRACLEAK_MITIGATION_PB_RFM_H

#include <cstdint>
#include <deque>
#include <vector>

#include "mitigation/configs.h"
#include "mitigation/mitigation.h"

namespace pracleak {

/** DDR5-RAAIMT-style per-bank RFM scheduling. */
class PbRfmMitigation : public Mitigation
{
  public:
    PbRfmMitigation(const PbRfmConfig &config, std::uint32_t num_banks,
                    StatSet *stats);

    const char *name() const override { return "pb-rfm"; }

    void onActivate(std::uint32_t flat_bank, std::uint32_t row,
                    Cycle now) override;

    MaintenanceRequest maintenanceCommands(Cycle now) override;

    void onRfmIssued(RfmReason reason, bool per_bank, Cycle now) override;

    Cycle
    nextMaintenanceAt(Cycle now) const override
    {
        return pending_.empty() ? kNeverCycle : now;
    }

    std::uint64_t eventsTriggered() const override { return triggers_; }

    /** Banks queued for an RFMpb but not yet serviced. */
    std::size_t pendingMitigations() const override
    {
        return pending_.size();
    }

    /** Current RAA count of @p flat_bank (testing/telemetry). */
    std::uint32_t raaCount(std::uint32_t flat_bank) const
    {
        return raa_[flat_bank];
    }

  private:
    PbRfmConfig config_;
    StatSet *stats_;
    std::vector<std::uint32_t> raa_;
    std::deque<std::uint32_t> pending_;  //!< banks owed an RFMpb
    std::uint64_t triggers_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_MITIGATION_PB_RFM_H
