/**
 * @file
 * Graphene: Misra-Gries frequent-item tracking per bank (Park et al.,
 * MICRO'20), adapted to a PRAC-era controller.
 *
 * The controller keeps a bounded table of (row, estimated count)
 * entries per bank, maintained with the Space-Saving update rule: a
 * tracked row increments its estimate, an untracked row evicts the
 * minimum entry and inherits its estimate plus one.  When any
 * estimate reaches the threshold, the controller issues an RFMpb to
 * that bank -- the DRAM's victim-selection policy then refreshes the
 * bank's hottest row, which for a Graphene-triggered bank is the
 * tracked aggressor.  Because the trigger is a deterministic function
 * of the activation stream, the RFMpb timing leaks the victim's
 * per-bank activation counts exactly like ACB-RFM does channel-wide;
 * the bake-off scenarios measure this.
 *
 * Tables reset every tREFW.  Estimates overestimate a row's true
 * window count by at most W/tableSize (W = window activations), so a
 * table sized W/threshold -- which configureDefense derives from the
 * Feinting analysis -- guarantees no row reaches 2*threshold
 * unmitigated while keeping decoy-scanning false triggers rare; this
 * per-bank SRAM is exactly the cost the Graphene paper pays.
 */

#ifndef PRACLEAK_MITIGATION_GRAPHENE_H
#define PRACLEAK_MITIGATION_GRAPHENE_H

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "mitigation/configs.h"
#include "mitigation/mitigation.h"

namespace pracleak {

/** Space-Saving counter table driving targeted per-bank RFMs. */
class GrapheneMitigation : public Mitigation
{
  public:
    GrapheneMitigation(const GrapheneConfig &config,
                       std::uint32_t num_banks, Cycle trefw,
                       StatSet *stats);

    const char *name() const override { return "graphene"; }

    void onActivate(std::uint32_t flat_bank, std::uint32_t row,
                    Cycle now) override;

    MaintenanceRequest maintenanceCommands(Cycle now) override;

    void onRfmIssued(RfmReason reason, bool per_bank, Cycle now) override;

    Cycle
    nextMaintenanceAt(Cycle now) const override
    {
        return pending_.empty() ? kNeverCycle : now;
    }

    std::uint64_t eventsTriggered() const override { return triggers_; }

    /** Banks queued for an RFMpb but not yet serviced. */
    std::size_t pendingMitigations() const override
    {
        return pending_.size();
    }

    /** Tracked entries in @p flat_bank (testing/telemetry). */
    std::size_t trackedRows(std::uint32_t flat_bank) const
    {
        return tables_[flat_bank].rows.size();
    }

  private:
    /**
     * One bank's Space-Saving state.  byCount mirrors rows as a
     * count-indexed view so the eviction victim (lowest row id among
     * the minimum estimates) resolves in O(log n) instead of a
     * full-table scan on every untracked-row activation.
     */
    struct Table
    {
        std::map<std::uint32_t, std::uint32_t> rows; //!< row -> estimate
        std::map<std::uint32_t, std::set<std::uint32_t>>
            byCount;                                 //!< estimate -> rows

        void setCount(std::uint32_t row, std::uint32_t from,
                      std::uint32_t to, bool inserting);
        void clear();
    };

    /** Threshold check on a just-updated estimate; 0 on trigger. */
    std::uint32_t checkThreshold(std::uint32_t flat_bank,
                                 std::uint32_t count);

    GrapheneConfig config_;
    StatSet *stats_;
    Cycle trefw_;
    Cycle nextResetAt_;
    std::vector<Table> tables_;
    std::deque<std::uint32_t> pending_;  //!< banks owed an RFMpb
    std::uint64_t triggers_ = 0;
};

} // namespace pracleak

#endif // PRACLEAK_MITIGATION_GRAPHENE_H
