/**
 * @file
 * String-keyed registry of RowHammer defenses.
 *
 * Every defense registers a stable key, a one-line description, and
 * whether it keeps the DRAM's Alert Back-Off substrate armed.  The
 * memory controller resolves its defense here (from
 * ControllerConfig::mitigation, falling back to the legacy
 * MitigationMode enum), and scenario grids sweep the same keys via
 * `pracbench --set mitigation=...`.
 */

#ifndef PRACLEAK_MITIGATION_REGISTRY_H
#define PRACLEAK_MITIGATION_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "mitigation/mitigation.h"

namespace pracleak {

/** Catalog entry for one registered defense. */
struct MitigationInfo
{
    const char *name;
    const char *description;

    /** Whether the DRAM Alert protocol stays armed under this defense. */
    bool usesAbo;
};

/** All registered defenses, in bake-off presentation order. */
const std::vector<MitigationInfo> &mitigationCatalog();

/** Catalog lookup; nullptr when unknown. */
const MitigationInfo *findMitigation(const std::string &name);

/** Registered defense keys, in catalog order. */
std::vector<std::string> mitigationNames();

/**
 * Resolve the effective defense key for a controller configuration:
 * ControllerConfig::mitigation when non-empty, otherwise the key the
 * legacy MitigationMode enum maps to.
 */
std::string resolveMitigationName(const ControllerConfig &config);

/**
 * Construct the defense named @p name.  Fatals on unknown keys and on
 * invalid per-defense configuration (e.g. a zero BAT for
 * "abo+acb-rfm"), matching the seed controller's checks.
 */
std::unique_ptr<Mitigation> makeMitigation(const std::string &name,
                                           const MitigationContext &ctx);

/**
 * Populate @p config for defense @p name with parameters derived from
 * @p spec (NBO, counter-reset policy) through the Feinting analysis:
 * the ACB BAT, the TPRAC TB-Window, the PB-RFM RAAIMT, the Graphene
 * threshold, and the PARA refresh probability.  Explicitly non-zero
 * values already present in @p config are kept.
 *
 * @param tref_co_design Allow TREF rounds to substitute TB-RFMs
 *                       (only meaningful for "tprac").
 */
void configureDefense(ControllerConfig &config, const std::string &name,
                      const DramSpec &spec, bool tref_co_design = false);

} // namespace pracleak

#endif // PRACLEAK_MITIGATION_REGISTRY_H
