#include "mitigation/para.h"

#include "prac/prac_engine.h"

namespace pracleak {

ParaMitigation::ParaMitigation(const ParaConfig &config,
                               std::uint32_t channel, PracEngine *prac,
                               StatSet *stats)
    : config_(config), prac_(prac), stats_(stats),
      rng_(deriveRngStream(config.seed, channel))
{
}

void
ParaMitigation::onActivate(std::uint32_t flat_bank, std::uint32_t row,
                           Cycle)
{
    if (!rng_.chance(config_.refreshProb))
        return;
    prac_->mitigateRow(flat_bank, row);
    ++refreshes_;
    if (stats_)
        ++stats_->counter("mit.para.refreshes");
}

} // namespace pracleak
