/**
 * @file
 * Pluggable RowHammer-defense framework.
 *
 * A Mitigation is the controller-side brain of one defense: it
 * observes activations and refreshes, asks the controller for
 * maintenance commands (RFMab / RFMpb) when its policy requires one,
 * and advertises its next deadline so idle-cycle fast-forward stays
 * exact for every defense.  The DRAM-side substrate (per-row PRAC
 * counters, the Alert pin, victim selection on RFM) lives in
 * PracEngine; defenses that are not PRAC-based simply run with the
 * Alert protocol disarmed.
 *
 * Defenses are created by string key through the registry
 * (mitigation/registry.h), which is what `pracbench --set
 * mitigation=...` sweeps over.  See src/mitigation/DESIGN.md for the
 * hook contract and a walkthrough of adding a new defense.
 */

#ifndef PRACLEAK_MITIGATION_MITIGATION_H
#define PRACLEAK_MITIGATION_MITIGATION_H

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"

namespace pracleak {

class PracEngine;
class TbRfmScheduler;
struct ControllerConfig;
struct DramSpec;

/** Why an RFM is being issued (for stats and experiments). */
enum class RfmReason : std::uint8_t
{
    Abo,            //!< servicing a DRAM Alert (ABO protocol)
    Acb,            //!< proactive host-side ACB-RFM at the BAT
    TimingBased,    //!< TPRAC TB-RFM (activity-independent)
    Random,         //!< obfuscation: Bernoulli draw per tREFI
    Graphene,       //!< Misra-Gries table crossed its threshold
    PerBank,        //!< PB-RFM: per-bank RAA counter hit RAAIMT
};

constexpr std::size_t kRfmReasonCount = 6;

/**
 * One maintenance command requested by a defense.  The controller
 * turns it into a drain (precharge the affected banks) followed by
 * @p rfms RFMab commands, or a single RFMpb to @p flatBank when
 * @p perBank is set.
 */
struct MaintenanceRequest
{
    bool wanted = false;
    bool perBank = false;
    RfmReason reason = RfmReason::TimingBased;
    std::uint32_t flatBank = 0;     //!< RFMpb target (perBank only)
    std::uint32_t rfms = 1;         //!< back-to-back RFMab count
};

/** Everything a defense may hold onto at construction time. */
struct MitigationContext
{
    const DramSpec *spec = nullptr;
    const ControllerConfig *config = nullptr;
    PracEngine *prac = nullptr;
    StatSet *stats = nullptr;       //!< may be null
};

/**
 * Controller-side defense logic; one instance per channel.
 *
 * Hook contract (all cycles are controller time):
 *  - onActivate() fires for every demand ACT the controller issues,
 *    after the DRAM-side PRAC counter was incremented.
 *  - onRefresh() fires when a REFab retires on @p rank.
 *  - maintenanceCommands() is polled exactly when the channel is free
 *    for proactive work (no active maintenance, no pending Alert
 *    service).  Returning wanted=false yields the slot.
 *  - onRfmIssued() fires for every RFM command the controller issues,
 *    including ABO-service RFMs, so trackers can credit them.
 *  - nextMaintenanceAt() must never be later than the first cycle at
 *    which maintenanceCommands() would return work: fast-forward
 *    skips straight to the returned cycle.
 *
 * Stats export: defenses bump StatSet counters live (prefix
 * "mit.<name>.") and report a per-channel event total through
 * eventsTriggered(); energy flows through PracEngine::mitigatedRows
 * like every other mitigation.
 */
class Mitigation
{
  public:
    virtual ~Mitigation() = default;

    /** Registry key, e.g. "tprac" or "para". */
    virtual const char *name() const = 0;

    /** Demand ACT issued on (flatBank, row). */
    virtual void
    onActivate(std::uint32_t flat_bank, std::uint32_t row, Cycle now)
    {
        (void)flat_bank;
        (void)row;
        (void)now;
    }

    /** REFab issued on @p rank. */
    virtual void
    onRefresh(std::uint32_t rank, Cycle now)
    {
        (void)rank;
        (void)now;
    }

    /** Proactive maintenance wanted at @p now, if any. */
    virtual MaintenanceRequest
    maintenanceCommands(Cycle now)
    {
        (void)now;
        return {};
    }

    /** An RFM with @p reason was issued (RFMpb when @p per_bank). */
    virtual void
    onRfmIssued(RfmReason reason, bool per_bank, Cycle now)
    {
        (void)reason;
        (void)per_bank;
        (void)now;
    }

    /**
     * Earliest cycle >= now at which this defense could want the
     * channel (kNeverCycle when only future activations can create
     * work).  Used by MemoryController::nextWorkAt for fast-forward.
     */
    virtual Cycle
    nextMaintenanceAt(Cycle now) const
    {
        (void)now;
        return kNeverCycle;
    }

    /** Defense-specific mitigation events (telemetry/energy export). */
    virtual std::uint64_t eventsTriggered() const { return 0; }

    /**
     * Maintenance commands owed but not yet issued (the RFMpb FIFO
     * backlog for queue-based defenses, 0 otherwise).  This is an
     * architecturally visible quantity -- an attacker sharing the
     * channel observes the same backlog through bus occupancy -- so
     * the adaptive adversaries (attack/adversaries.h) are allowed to
     * poll it directly instead of re-deriving it from probe latency.
     */
    virtual std::size_t pendingMitigations() const { return 0; }

    /** TB-RFM scheduler, for defenses that own one (else nullptr). */
    virtual const TbRfmScheduler *tbScheduler() const { return nullptr; }
};

} // namespace pracleak

#endif // PRACLEAK_MITIGATION_MITIGATION_H
