/**
 * @file
 * Memory-request trace capture format: the versioned, delta-encoded
 * binary container behind `pracbench --record-trace` / `--replay`.
 *
 * A trace captures the per-channel stream of requests accepted at the
 * MemoryController enqueue boundary ({cycle, type, addr, coreId}),
 * together with everything a replay needs to rebuild an identical
 * controller + mitigation stack: the DRAM spec (by registry name,
 * geometry pinned for validation), the channel interleave, and the
 * controller knobs that influence command scheduling.  The recorded
 * run's cumulative per-channel controller stats ride along so a
 * same-defense replay can verify bit-identity without re-running the
 * original simulation.  See src/trace/DESIGN.md for the byte-level
 * layout and the versioning rules.
 */

#ifndef PRACLEAK_TRACE_TRACE_H
#define PRACLEAK_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/request.h"
#include "mitigation/mitigation.h"

namespace pracleak::trace {

/** Current container version; readers reject anything else. */
inline constexpr std::uint32_t kTraceVersion = 1;

/** One accepted request at the controller enqueue boundary. */
struct TraceRecord
{
    Cycle cycle = 0;            //!< controller cycle at enqueue
    ReqType type = ReqType::Read;
    Addr addr = 0;              //!< physical address (pre-mapping)
    std::uint32_t coreId = 0;

    bool
    operator==(const TraceRecord &other) const
    {
        return cycle == other.cycle && type == other.type &&
               addr == other.addr && coreId == other.coreId;
    }
};

/**
 * Cumulative controller/mitigation stats of one channel at the end of
 * the recorded run.  A same-defense replay must reproduce every field
 * exactly -- this is the bit-identity contract the golden test pins.
 */
struct TraceChannelStats
{
    std::uint64_t requests = 0;
    std::uint64_t acts = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t rfms[kRfmReasonCount] = {};
    std::uint64_t alerts = 0;
    std::uint64_t mitigationEvents = 0;
    std::uint64_t mitigatedRows = 0;
    std::uint32_t maxCounterSeen = 0;

    bool operator==(const TraceChannelStats &other) const;
};

/** Everything the header carries besides the channel streams. */
struct TraceHeader
{
    std::string workload;       //!< display name of the recorded run
    std::string spec;           //!< DRAM spec registry name
    std::string mitigation;     //!< defense active while recording

    // Geometry snapshot of the named spec, pinned so a renamed or
    // retuned registry entry cannot silently replay against different
    // hardware.
    std::uint32_t ranks = 0;
    std::uint32_t bankGroups = 0;
    std::uint32_t banksPerGroup = 0;
    std::uint32_t rowsPerBank = 0;
    std::uint32_t colsPerRow = 0;

    // PRAC parameters in effect during recording.
    std::uint32_t nbo = 0;
    std::uint32_t nmit = 0;

    // Channel striping (mem/address_mapper.h).
    std::uint32_t channels = 1;
    std::uint32_t granularityBytes = 256;
    bool xorFold = true;

    // Controller knobs that influence command scheduling.
    std::uint8_t mapping = 0;       //!< MappingScheme
    std::uint32_t queueCapacity = 64;
    std::uint32_t frfcfsCap = 4;
    bool refreshEnabled = true;
    std::uint8_t pracQueue = 0;     //!< QueueKind
    std::uint32_t fifoThreshold = 0;
    bool counterResetAtTrefw = true;
    std::uint32_t trefPeriodRefs = 0;
    double randomRfmPerTrefi = 0.5; //!< obfuscation defense knob
    std::uint64_t obfuscationSeed = 0;

    /** Final controller cycle of the recorded run (replay horizon). */
    Cycle endCycle = 0;
};

/** One channel's stream plus its end-of-run stats. */
struct ChannelTrace
{
    std::vector<TraceRecord> records;
    TraceChannelStats stats;
};

/** A complete in-memory trace (what files serialize). */
struct TraceData
{
    TraceHeader header;
    std::vector<ChannelTrace> channels;
};

/**
 * Incremental trace builder.  The recorder appends requests as the
 * taps observe them, snapshots stats when the run finishes, and
 * either serializes to a file or hands the TraceData to an in-process
 * replay (the defense-sweep scenario skips the filesystem entirely).
 */
class TraceWriter
{
  public:
    explicit TraceWriter(TraceHeader header);

    void append(std::uint32_t channel, const TraceRecord &record);
    void setChannelStats(std::uint32_t channel,
                         const TraceChannelStats &stats);
    void setEndCycle(Cycle end) { data_.header.endCycle = end; }

    const TraceData &data() const { return data_; }
    TraceData takeData() { return std::move(data_); }

    /** Serialize to @p path; throws std::runtime_error on I/O error. */
    void writeFile(const std::string &path) const;

  private:
    TraceData data_;
};

/**
 * Trace file loader.  The constructor parses and validates the whole
 * file; malformed input (bad magic, unsupported version, truncation,
 * corrupt varints) throws std::runtime_error with a message naming
 * the defect.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    /** Parse an already-loaded serialized image (tests, pipelines). */
    static TraceData parse(const std::string &bytes);

    const TraceData &data() const { return data_; }
    const TraceHeader &header() const { return data_.header; }
    std::uint32_t
    channels() const
    {
        return static_cast<std::uint32_t>(data_.channels.size());
    }
    const ChannelTrace &
    channel(std::uint32_t index) const
    {
        return data_.channels.at(index);
    }

  private:
    TraceData data_;
};

/** Serialize @p data to its byte image (what writeFile emits). */
std::string serializeTrace(const TraceData &data);

} // namespace pracleak::trace

#endif // PRACLEAK_TRACE_TRACE_H
