#include "trace/trace.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace pracleak::trace {

namespace {

/** 8-byte magic: "PRACTRC" + NUL. */
constexpr char kMagic[8] = {'P', 'R', 'A', 'C', 'T', 'R', 'C', '\0'};

// --- encoding ------------------------------------------------------

void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>(value | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

void
putString(std::string &out, const std::string &text)
{
    putVarint(out, text.size());
    out.append(text);
}

void
putDouble(std::string &out, double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    // Fixed 8-byte little-endian image (varint would mangle doubles).
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(bits >> (8 * i)));
}

void
putStats(std::string &out, const TraceChannelStats &stats)
{
    putVarint(out, stats.requests);
    putVarint(out, stats.acts);
    putVarint(out, stats.reads);
    putVarint(out, stats.writes);
    putVarint(out, stats.refreshes);
    for (const std::uint64_t rfms : stats.rfms)
        putVarint(out, rfms);
    putVarint(out, stats.alerts);
    putVarint(out, stats.mitigationEvents);
    putVarint(out, stats.mitigatedRows);
    putVarint(out, stats.maxCounterSeen);
}

// --- decoding ------------------------------------------------------

/** Bounds-checked cursor over the serialized image. */
struct Cursor
{
    const std::string &bytes;
    std::size_t pos = 0;

    [[noreturn]] void
    truncated(const char *what) const
    {
        throw std::runtime_error(
            "truncated trace file: unexpected end of data while "
            "reading " +
            std::string(what) + " at byte " + std::to_string(pos));
    }

    std::uint8_t
    u8(const char *what)
    {
        if (pos >= bytes.size())
            truncated(what);
        return static_cast<std::uint8_t>(bytes[pos++]);
    }

    std::uint64_t
    varint(const char *what)
    {
        std::uint64_t value = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            const std::uint8_t byte = u8(what);
            // The tenth byte holds only bit 63: any higher payload
            // bit (or a further continuation) would be silently
            // truncated -- reject instead.
            if (shift == 63 && byte > 1)
                break;
            value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                return value;
        }
        throw std::runtime_error(
            "corrupt trace file: varint overflow while reading " +
            std::string(what));
    }

    std::string
    str(const char *what)
    {
        const std::uint64_t size = varint(what);
        if (size > bytes.size() - pos)
            truncated(what);
        std::string out = bytes.substr(pos, size);
        pos += size;
        return out;
    }

    double
    f64(const char *what)
    {
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i)
            bits |= static_cast<std::uint64_t>(u8(what)) << (8 * i);
        double value;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }
};

TraceChannelStats
readStats(Cursor &in)
{
    TraceChannelStats stats;
    stats.requests = in.varint("stats.requests");
    stats.acts = in.varint("stats.acts");
    stats.reads = in.varint("stats.reads");
    stats.writes = in.varint("stats.writes");
    stats.refreshes = in.varint("stats.refreshes");
    for (std::uint64_t &rfms : stats.rfms)
        rfms = in.varint("stats.rfms");
    stats.alerts = in.varint("stats.alerts");
    stats.mitigationEvents = in.varint("stats.mitigation_events");
    stats.mitigatedRows = in.varint("stats.mitigated_rows");
    stats.maxCounterSeen =
        static_cast<std::uint32_t>(in.varint("stats.max_counter"));
    return stats;
}

} // namespace

bool
TraceChannelStats::operator==(const TraceChannelStats &other) const
{
    for (std::size_t i = 0; i < kRfmReasonCount; ++i)
        if (rfms[i] != other.rfms[i])
            return false;
    return requests == other.requests && acts == other.acts &&
           reads == other.reads && writes == other.writes &&
           refreshes == other.refreshes && alerts == other.alerts &&
           mitigationEvents == other.mitigationEvents &&
           mitigatedRows == other.mitigatedRows &&
           maxCounterSeen == other.maxCounterSeen;
}

TraceWriter::TraceWriter(TraceHeader header)
{
    data_.header = std::move(header);
    data_.channels.resize(data_.header.channels);
}

void
TraceWriter::append(std::uint32_t channel, const TraceRecord &record)
{
    data_.channels.at(channel).records.push_back(record);
}

void
TraceWriter::setChannelStats(std::uint32_t channel,
                             const TraceChannelStats &stats)
{
    data_.channels.at(channel).stats = stats;
}

void
TraceWriter::writeFile(const std::string &path) const
{
    const std::string image = serializeTrace(data_);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot open trace file for writing: " +
                                 path);
    out.write(image.data(),
              static_cast<std::streamsize>(image.size()));
    out.close();
    if (!out.good())
        throw std::runtime_error("I/O error writing trace file: " +
                                 path);
}

std::string
serializeTrace(const TraceData &data)
{
    const TraceHeader &header = data.header;
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    putVarint(out, kTraceVersion);

    putString(out, header.workload);
    putString(out, header.spec);
    putString(out, header.mitigation);
    putVarint(out, header.ranks);
    putVarint(out, header.bankGroups);
    putVarint(out, header.banksPerGroup);
    putVarint(out, header.rowsPerBank);
    putVarint(out, header.colsPerRow);
    putVarint(out, header.nbo);
    putVarint(out, header.nmit);
    putVarint(out, header.channels);
    putVarint(out, header.granularityBytes);
    out.push_back(header.xorFold ? 1 : 0);
    out.push_back(static_cast<char>(header.mapping));
    putVarint(out, header.queueCapacity);
    putVarint(out, header.frfcfsCap);
    out.push_back(header.refreshEnabled ? 1 : 0);
    out.push_back(static_cast<char>(header.pracQueue));
    putVarint(out, header.fifoThreshold);
    out.push_back(header.counterResetAtTrefw ? 1 : 0);
    putVarint(out, header.trefPeriodRefs);
    putDouble(out, header.randomRfmPerTrefi);
    putVarint(out, header.obfuscationSeed);
    putVarint(out, header.endCycle);

    putVarint(out, data.channels.size());
    for (const ChannelTrace &channel : data.channels) {
        putStats(out, channel.stats);
        putVarint(out, channel.records.size());
        Cycle previous = 0;
        for (const TraceRecord &record : channel.records) {
            // Enqueue order is cycle-monotonic per channel, so the
            // delta is non-negative and usually fits one byte.
            putVarint(out, record.cycle - previous);
            previous = record.cycle;
            out.push_back(record.type == ReqType::Write ? 1 : 0);
            putVarint(out, record.coreId);
            putVarint(out, record.addr);
        }
    }
    return out;
}

TraceData
TraceReader::parse(const std::string &bytes)
{
    if (bytes.size() < sizeof(kMagic) ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error(
            "not a pracleak trace file (bad magic)");

    Cursor in{bytes, sizeof(kMagic)};
    const std::uint64_t version = in.varint("version");
    if (version != kTraceVersion)
        throw std::runtime_error(
            "unsupported trace version " + std::to_string(version) +
            " (this build reads version " +
            std::to_string(kTraceVersion) + "; re-record the trace)");

    TraceData data;
    TraceHeader &header = data.header;
    header.workload = in.str("workload");
    header.spec = in.str("spec");
    header.mitigation = in.str("mitigation");
    header.ranks = static_cast<std::uint32_t>(in.varint("ranks"));
    header.bankGroups =
        static_cast<std::uint32_t>(in.varint("bank_groups"));
    header.banksPerGroup =
        static_cast<std::uint32_t>(in.varint("banks_per_group"));
    header.rowsPerBank =
        static_cast<std::uint32_t>(in.varint("rows_per_bank"));
    header.colsPerRow =
        static_cast<std::uint32_t>(in.varint("cols_per_row"));
    header.nbo = static_cast<std::uint32_t>(in.varint("nbo"));
    header.nmit = static_cast<std::uint32_t>(in.varint("nmit"));
    header.channels =
        static_cast<std::uint32_t>(in.varint("channels"));
    header.granularityBytes =
        static_cast<std::uint32_t>(in.varint("granularity"));
    header.xorFold = in.u8("xor_fold") != 0;
    header.mapping = in.u8("mapping");
    header.queueCapacity =
        static_cast<std::uint32_t>(in.varint("queue_capacity"));
    header.frfcfsCap =
        static_cast<std::uint32_t>(in.varint("frfcfs_cap"));
    header.refreshEnabled = in.u8("refresh_enabled") != 0;
    header.pracQueue = in.u8("prac_queue");
    header.fifoThreshold =
        static_cast<std::uint32_t>(in.varint("fifo_threshold"));
    header.counterResetAtTrefw = in.u8("counter_reset") != 0;
    header.trefPeriodRefs =
        static_cast<std::uint32_t>(in.varint("tref_period"));
    header.randomRfmPerTrefi = in.f64("random_rfm_per_trefi");
    header.obfuscationSeed = in.varint("obfuscation_seed");
    header.endCycle = in.varint("end_cycle");

    const std::uint64_t channels = in.varint("channel_count");
    if (channels != header.channels)
        throw std::runtime_error(
            "corrupt trace file: header declares " +
            std::to_string(header.channels) +
            " channels but the body carries " +
            std::to_string(channels));
    if (channels == 0)
        throw std::runtime_error(
            "corrupt trace file: zero channels");
    // Every channel needs at least its 15 stats varints plus a
    // record count; a larger claim cannot fit the remaining bytes.
    if (channels > (bytes.size() - in.pos) / 16 + 1)
        throw std::runtime_error(
            "corrupt trace file: channel count " +
            std::to_string(channels) +
            " exceeds the remaining data");
    data.channels.resize(channels);
    for (ChannelTrace &channel : data.channels) {
        channel.stats = readStats(in);
        const std::uint64_t count = in.varint("record_count");
        // A record is at least 4 bytes (cycle delta, type, core,
        // addr); bound the claim before reserving, so one corrupt
        // continuation bit reports cleanly instead of allocating.
        if (count > (bytes.size() - in.pos) / 4)
            throw std::runtime_error(
                "corrupt trace file: record count " +
                std::to_string(count) + " exceeds the remaining " +
                std::to_string(bytes.size() - in.pos) + " bytes");
        channel.records.reserve(count);
        Cycle cycle = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            TraceRecord record;
            cycle += in.varint("record.cycle_delta");
            record.cycle = cycle;
            record.type = in.u8("record.type") != 0 ? ReqType::Write
                                                    : ReqType::Read;
            record.coreId =
                static_cast<std::uint32_t>(in.varint("record.core"));
            record.addr = in.varint("record.addr");
            channel.records.push_back(record);
        }
    }
    if (in.pos != bytes.size())
        throw std::runtime_error(
            "corrupt trace file: " +
            std::to_string(bytes.size() - in.pos) +
            " trailing bytes after the last channel stream");
    return data;
}

TraceReader::TraceReader(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        throw std::runtime_error("I/O error reading trace file: " +
                                 path);
    data_ = parse(bytes);
}

} // namespace pracleak::trace
