/**
 * @file
 * Trace replay: rebuild a fresh controller + mitigation stack from a
 * trace header, feed the recorded per-channel request streams back
 * through ReplayCores, and report the cumulative controller stats at
 * the recorded horizon.
 *
 * Replaying under the recorded defense reproduces the recorded run's
 * controller/mitigation stats bit-identically (pinned by the
 * Golden.TraceReplayBitIdentical test).  Replaying under a different
 * defense is the cheap leg of a defense sweep: the request stream is
 * fixed (open-loop), only the controller+defense reaction differs.
 */

#ifndef PRACLEAK_TRACE_REPLAY_H
#define PRACLEAK_TRACE_REPLAY_H

#include <string>
#include <vector>

#include "mem/controller.h"
#include "trace/trace.h"

namespace pracleak::trace {

/** Replay knobs. */
struct ReplayOptions
{
    /** Defense to replay under; empty = the recorded defense. */
    std::string mitigation;

    /** Idle-cycle fast-forward (wall-clock only; stats identical). */
    bool fastForward = true;
};

/** Outcome of one replay. */
struct ReplayResult
{
    std::string mitigation;         //!< effective defense key
    Cycle endCycle = 0;             //!< replay horizon (== recorded)
    std::uint64_t replayedRequests = 0;

    /**
     * Whether every recorded request was enqueued by the horizon.
     * Always true under the recorded defense; a heavier defense can
     * back-pressure the tail past the horizon (open-loop truncation).
     */
    bool fullyDrained = true;

    std::vector<TraceChannelStats> channels;

    /** Field-wise sum over channels (max for maxCounterSeen). */
    TraceChannelStats total() const;

    /** Exact per-channel equality against the recorded stats. */
    bool matchesRecorded(const TraceData &trace) const;
};

/**
 * Rebuild the DRAM spec a trace was recorded against: the named
 * registry spec with the header's PRAC parameters applied.  Throws
 * std::runtime_error when the registry geometry no longer matches the
 * header (the spec was retuned since recording -- re-record).
 */
DramSpec specFromHeader(const TraceHeader &header);

/**
 * Rebuild the per-channel ControllerConfig for a replay of @p header
 * under @p mitigation (defense parameters derived via
 * configureDefense, exactly like a fresh simulation).
 */
ControllerConfig configFromHeader(const TraceHeader &header,
                                  const std::string &mitigation,
                                  const DramSpec &spec);

/** Replay @p trace under @p options. */
ReplayResult replayTrace(const TraceData &trace,
                         const ReplayOptions &options = {});

} // namespace pracleak::trace

#endif // PRACLEAK_TRACE_REPLAY_H
