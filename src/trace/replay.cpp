#include "trace/replay.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "cpu/replay_core.h"
#include "mitigation/registry.h"
#include "trace/recorder.h"

namespace pracleak::trace {

TraceChannelStats
ReplayResult::total() const
{
    TraceChannelStats sum;
    for (const TraceChannelStats &channel : channels) {
        sum.requests += channel.requests;
        sum.acts += channel.acts;
        sum.reads += channel.reads;
        sum.writes += channel.writes;
        sum.refreshes += channel.refreshes;
        for (std::size_t i = 0; i < kRfmReasonCount; ++i)
            sum.rfms[i] += channel.rfms[i];
        sum.alerts += channel.alerts;
        sum.mitigationEvents += channel.mitigationEvents;
        sum.mitigatedRows += channel.mitigatedRows;
        sum.maxCounterSeen =
            std::max(sum.maxCounterSeen, channel.maxCounterSeen);
    }
    return sum;
}

bool
ReplayResult::matchesRecorded(const TraceData &trace) const
{
    if (channels.size() != trace.channels.size())
        return false;
    for (std::size_t c = 0; c < channels.size(); ++c)
        if (!(channels[c] == trace.channels[c].stats))
            return false;
    return true;
}

DramSpec
specFromHeader(const TraceHeader &header)
{
    DramSpec spec = specByName(header.spec);
    if (spec.org.ranks != header.ranks ||
        spec.org.bankGroups != header.bankGroups ||
        spec.org.banksPerGroup != header.banksPerGroup ||
        spec.org.rowsPerBank != header.rowsPerBank ||
        spec.org.colsPerRow != header.colsPerRow)
        throw std::runtime_error(
            "trace geometry mismatch: spec '" + header.spec +
            "' no longer matches the recorded organization "
            "(re-record the trace against the current registry)");
    spec.prac.nbo = header.nbo;
    spec.prac.nmit = header.nmit;
    return spec;
}

ControllerConfig
configFromHeader(const TraceHeader &header,
                 const std::string &mitigation, const DramSpec &spec)
{
    ControllerConfig config;
    config.mapping = static_cast<MappingScheme>(header.mapping);
    config.interleave.channels = header.channels;
    config.interleave.granularityBytes = header.granularityBytes;
    config.interleave.xorFold = header.xorFold;
    config.queueCapacity = header.queueCapacity;
    config.frfcfsCap = header.frfcfsCap;
    config.refreshEnabled = header.refreshEnabled;
    config.prac.queue = static_cast<QueueKind>(header.pracQueue);
    config.prac.fifoThreshold = header.fifoThreshold;
    config.prac.counterResetAtTrefw = header.counterResetAtTrefw;
    config.prac.trefPeriodRefs = header.trefPeriodRefs;
    config.randomRfmPerTrefi = header.randomRfmPerTrefi;
    config.obfuscationSeed = header.obfuscationSeed;
    configureDefense(config, mitigation, spec,
                     header.trefPeriodRefs != 0);
    return config;
}

ReplayResult
replayTrace(const TraceData &trace, const ReplayOptions &options)
{
    const TraceHeader &header = trace.header;
    if (trace.channels.empty() ||
        trace.channels.size() != header.channels)
        throw std::runtime_error(
            "trace has no usable channel streams");
    const std::string mitigation = options.mitigation.empty()
                                       ? header.mitigation
                                       : options.mitigation;

    const DramSpec spec = specFromHeader(header);
    ControllerConfig config =
        configFromHeader(header, mitigation, spec);

    std::vector<std::unique_ptr<MemoryController>> mems;
    mems.reserve(header.channels);
    for (std::uint32_t c = 0; c < header.channels; ++c) {
        config.channelIndex = c;
        mems.push_back(
            std::make_unique<MemoryController>(spec, config));
    }

    std::vector<ReplayCore> cores;
    cores.reserve(header.channels);
    for (std::uint32_t c = 0; c < header.channels; ++c)
        cores.emplace_back(*mems[c], trace.channels[c].records);

    const Cycle end = header.endCycle;
    if (options.fastForward) {
        // Event-driven replay: the channels share no state (each has
        // its own controller, mitigation stack, and record stream,
        // and replay installs no cross-channel stat sink), so each
        // channel runs to the horizon independently, alternating
        // between feeding records due now and advancing the
        // controller to the next record or its own next event --
        // whichever is earlier.  A channel never waits for a busy
        // sibling, and per-channel stats are bit-identical to the
        // lockstep loop below (fast-forward invariance; TB-RFM
        // deadlines are absolute, so lockstep cross-channel firing
        // is preserved exactly).
        for (std::uint32_t c = 0; c < header.channels; ++c) {
            ReplayCore &core = cores[c];
            MemoryController &mem = *mems[c];
            while (mem.now() < end) {
                const Cycle current = mem.now();
                const Cycle core_at = core.nextEventAt();
                if (core_at > current) {
                    mem.advanceTo(std::min(core_at, end));
                    continue;
                }
                core.tick(current);
                if (core.blocked()) {
                    // Full queue: a blocked enqueue is side-effect-
                    // free, and slots only free on the controller's
                    // own effective ticks, so jump straight to its
                    // next work instant, tick it there, and retry the
                    // cycle after -- exactly the first cycle the
                    // lockstep per-cycle retry could have succeeded.
                    const Cycle work = mem.nextWorkAt();
                    if (work >= end) {
                        mem.advanceTo(end);
                        continue;
                    }
                    if (work > current)
                        mem.advanceTo(work);
                    mem.tick();
                    continue;
                }
                mem.tick();
            }
        }
    } else {
        // Lockstep reference path: every channel ticks every cycle.
        while (mems[0]->now() < end) {
            const Cycle now = mems[0]->now();
            for (ReplayCore &core : cores)
                core.tick(now);
            for (auto &mem : mems)
                mem->tick();
        }
    }

    ReplayResult result;
    result.mitigation = mitigation;
    result.endCycle = mems[0]->now();
    result.channels.reserve(header.channels);
    for (std::uint32_t c = 0; c < header.channels; ++c) {
        TraceChannelStats stats = snapshotChannelStats(*mems[c]);
        stats.requests = cores[c].replayed();
        result.channels.push_back(stats);
        result.replayedRequests += cores[c].replayed();
        result.fullyDrained = result.fullyDrained && cores[c].done();
    }
    return result;
}

} // namespace pracleak::trace
