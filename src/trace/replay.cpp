#include "trace/replay.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "cpu/replay_core.h"
#include "mitigation/registry.h"
#include "trace/recorder.h"

namespace pracleak::trace {

TraceChannelStats
ReplayResult::total() const
{
    TraceChannelStats sum;
    for (const TraceChannelStats &channel : channels) {
        sum.requests += channel.requests;
        sum.acts += channel.acts;
        sum.reads += channel.reads;
        sum.writes += channel.writes;
        sum.refreshes += channel.refreshes;
        for (std::size_t i = 0; i < kRfmReasonCount; ++i)
            sum.rfms[i] += channel.rfms[i];
        sum.alerts += channel.alerts;
        sum.mitigationEvents += channel.mitigationEvents;
        sum.mitigatedRows += channel.mitigatedRows;
        sum.maxCounterSeen =
            std::max(sum.maxCounterSeen, channel.maxCounterSeen);
    }
    return sum;
}

bool
ReplayResult::matchesRecorded(const TraceData &trace) const
{
    if (channels.size() != trace.channels.size())
        return false;
    for (std::size_t c = 0; c < channels.size(); ++c)
        if (!(channels[c] == trace.channels[c].stats))
            return false;
    return true;
}

DramSpec
specFromHeader(const TraceHeader &header)
{
    DramSpec spec = specByName(header.spec);
    if (spec.org.ranks != header.ranks ||
        spec.org.bankGroups != header.bankGroups ||
        spec.org.banksPerGroup != header.banksPerGroup ||
        spec.org.rowsPerBank != header.rowsPerBank ||
        spec.org.colsPerRow != header.colsPerRow)
        throw std::runtime_error(
            "trace geometry mismatch: spec '" + header.spec +
            "' no longer matches the recorded organization "
            "(re-record the trace against the current registry)");
    spec.prac.nbo = header.nbo;
    spec.prac.nmit = header.nmit;
    return spec;
}

ControllerConfig
configFromHeader(const TraceHeader &header,
                 const std::string &mitigation, const DramSpec &spec)
{
    ControllerConfig config;
    config.mapping = static_cast<MappingScheme>(header.mapping);
    config.interleave.channels = header.channels;
    config.interleave.granularityBytes = header.granularityBytes;
    config.interleave.xorFold = header.xorFold;
    config.queueCapacity = header.queueCapacity;
    config.frfcfsCap = header.frfcfsCap;
    config.refreshEnabled = header.refreshEnabled;
    config.prac.queue = static_cast<QueueKind>(header.pracQueue);
    config.prac.fifoThreshold = header.fifoThreshold;
    config.prac.counterResetAtTrefw = header.counterResetAtTrefw;
    config.prac.trefPeriodRefs = header.trefPeriodRefs;
    config.randomRfmPerTrefi = header.randomRfmPerTrefi;
    config.obfuscationSeed = header.obfuscationSeed;
    configureDefense(config, mitigation, spec,
                     header.trefPeriodRefs != 0);
    return config;
}

ReplayResult
replayTrace(const TraceData &trace, const ReplayOptions &options)
{
    const TraceHeader &header = trace.header;
    if (trace.channels.empty() ||
        trace.channels.size() != header.channels)
        throw std::runtime_error(
            "trace has no usable channel streams");
    const std::string mitigation = options.mitigation.empty()
                                       ? header.mitigation
                                       : options.mitigation;

    const DramSpec spec = specFromHeader(header);
    ControllerConfig config =
        configFromHeader(header, mitigation, spec);

    std::vector<std::unique_ptr<MemoryController>> mems;
    mems.reserve(header.channels);
    for (std::uint32_t c = 0; c < header.channels; ++c) {
        config.channelIndex = c;
        mems.push_back(
            std::make_unique<MemoryController>(spec, config));
    }

    std::vector<ReplayCore> cores;
    cores.reserve(header.channels);
    for (std::uint32_t c = 0; c < header.channels; ++c)
        cores.emplace_back(*mems[c], trace.channels[c].records);

    const Cycle end = header.endCycle;
    while (mems[0]->now() < end) {
        const Cycle current = mems[0]->now();
        if (options.fastForward) {
            // Same contract as System::maybeFastForward: when every
            // core's next record and every controller's next event
            // lie strictly ahead, the cycles between are dead.  The
            // cores are checked first -- their bound is one
            // comparison, the controllers' is a queue scan.
            Cycle wake = end;
            bool idle = true;
            for (const ReplayCore &core : cores) {
                const Cycle at = core.nextEventAt();
                idle = idle && at > current;
                wake = std::min(wake, at);
            }
            for (const auto &mem : mems) {
                if (!idle)
                    break;
                const Cycle at = mem->nextWorkAt();
                idle = idle && at > current;
                wake = std::min(wake, at);
            }
            wake = std::min(wake, end);
            if (idle && wake > current)
                for (auto &mem : mems)
                    mem->skipTo(wake);
        }
        const Cycle now = mems[0]->now();
        if (now >= end)
            break;
        for (ReplayCore &core : cores)
            core.tick(now);
        for (auto &mem : mems)
            mem->tick();
    }

    ReplayResult result;
    result.mitigation = mitigation;
    result.endCycle = mems[0]->now();
    result.channels.reserve(header.channels);
    for (std::uint32_t c = 0; c < header.channels; ++c) {
        TraceChannelStats stats = snapshotChannelStats(*mems[c]);
        stats.requests = cores[c].replayed();
        result.channels.push_back(stats);
        result.replayedRequests += cores[c].replayed();
        result.fullyDrained = result.fullyDrained && cores[c].done();
    }
    return result;
}

} // namespace pracleak::trace
