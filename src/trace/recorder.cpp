#include "trace/recorder.h"

#include "mitigation/registry.h"

namespace pracleak::trace {

TraceChannelStats
snapshotChannelStats(const MemoryController &mem)
{
    const DramDevice &dev = mem.dram();
    TraceChannelStats stats;
    stats.acts = dev.issueCount(CmdType::ACT);
    stats.reads = dev.issueCount(CmdType::RD);
    stats.writes = dev.issueCount(CmdType::WR);
    stats.refreshes = dev.issueCount(CmdType::REFab);
    for (std::size_t i = 0; i < kRfmReasonCount; ++i)
        stats.rfms[i] = mem.rfmCount(static_cast<RfmReason>(i));
    stats.alerts = mem.prac().alerts();
    stats.mitigationEvents = mem.mitigationEvents();
    stats.mitigatedRows = mem.prac().mitigatedRows();
    stats.maxCounterSeen = mem.prac().counters().maxEverSeen();
    return stats;
}

TraceHeader
makeTraceHeader(const std::string &workload,
                const std::string &specName, const DramSpec &spec,
                const ControllerConfig &config, std::uint32_t channels)
{
    TraceHeader header;
    header.workload = workload;
    header.spec = specName;
    header.mitigation = resolveMitigationName(config);
    header.ranks = spec.org.ranks;
    header.bankGroups = spec.org.bankGroups;
    header.banksPerGroup = spec.org.banksPerGroup;
    header.rowsPerBank = spec.org.rowsPerBank;
    header.colsPerRow = spec.org.colsPerRow;
    header.nbo = spec.prac.nbo;
    header.nmit = spec.prac.nmit;
    header.channels = channels;
    header.granularityBytes = config.interleave.granularityBytes;
    header.xorFold = config.interleave.xorFold;
    header.mapping = static_cast<std::uint8_t>(config.mapping);
    header.queueCapacity =
        static_cast<std::uint32_t>(config.queueCapacity);
    header.frfcfsCap = config.frfcfsCap;
    header.refreshEnabled = config.refreshEnabled;
    header.pracQueue = static_cast<std::uint8_t>(config.prac.queue);
    header.fifoThreshold = config.prac.fifoThreshold;
    header.counterResetAtTrefw = config.prac.counterResetAtTrefw;
    header.trefPeriodRefs = config.prac.trefPeriodRefs;
    header.randomRfmPerTrefi = config.randomRfmPerTrefi;
    header.obfuscationSeed = config.obfuscationSeed;
    return header;
}

TraceRecorder::TraceRecorder(const std::string &workload,
                             const std::string &specName,
                             const DramSpec &spec,
                             const ControllerConfig &config,
                             std::uint32_t channels)
    : writer_(makeTraceHeader(workload, specName, spec, config,
                              channels))
{
    taps_.reserve(channels);
    for (std::uint32_t c = 0; c < channels; ++c)
        taps_.push_back(std::make_unique<ChannelTap>(&writer_, c));
}

void
TraceRecorder::armTap(MemoryController &mem, std::uint32_t channel)
{
    mem.setRequestTap(taps_.at(channel).get());
}

void
TraceRecorder::finishChannel(MemoryController &mem,
                             std::uint32_t channel)
{
    mem.setRequestTap(nullptr);
    TraceChannelStats stats = snapshotChannelStats(mem);
    stats.requests =
        writer_.data().channels.at(channel).records.size();
    writer_.setChannelStats(channel, stats);
}

void
TraceRecorder::attach(System &system)
{
    for (std::size_t c = 0; c < system.channelCount(); ++c)
        armTap(system.channel(c), static_cast<std::uint32_t>(c));
}

void
TraceRecorder::attach(AttackHarness &harness)
{
    for (std::uint32_t c = 0; c < harness.channels(); ++c)
        armTap(harness.mem(c), c);
}

void
TraceRecorder::finish(System &system)
{
    for (std::size_t c = 0; c < system.channelCount(); ++c)
        finishChannel(system.channel(c),
                      static_cast<std::uint32_t>(c));
    writer_.setEndCycle(system.channel(0).now());
}

void
TraceRecorder::finish(AttackHarness &harness)
{
    for (std::uint32_t c = 0; c < harness.channels(); ++c)
        finishChannel(harness.mem(c), c);
    writer_.setEndCycle(harness.now());
}

} // namespace pracleak::trace
