/**
 * @file
 * Trace capture: installs a RequestTap on every channel controller of
 * a System or AttackHarness, streams the accepted requests into a
 * TraceWriter, and snapshots the run's cumulative controller stats
 * when recording finishes.
 *
 * Usage (the order matters -- taps must be armed before the run):
 *
 *   TraceRecorder recorder("h_rand_heavy", "ddr5-8000b", spec,
 *                          system.channel(0).config(), channels);
 *   recorder.attach(system);
 *   system.run();
 *   recorder.finish(system);            // stats + end cycle
 *   recorder.writer().writeFile(path);  // or takeData() for in-memory
 */

#ifndef PRACLEAK_TRACE_RECORDER_H
#define PRACLEAK_TRACE_RECORDER_H

#include <memory>
#include <string>
#include <vector>

#include "attack/harness.h"
#include "cpu/system.h"
#include "mem/controller.h"
#include "trace/trace.h"

namespace pracleak::trace {

/** Cumulative controller stats in TraceChannelStats form. */
TraceChannelStats snapshotChannelStats(const MemoryController &mem);

/** Per-channel enqueue-boundary tap bound to one TraceWriter. */
class TraceRecorder
{
  public:
    /**
     * @param workload Display name stored in the header.
     * @param specName DRAM spec registry name (dram/dram_spec.h);
     *                 its geometry is pinned from @p spec.
     * @param config   The controllers' shared configuration; every
     *                 scheduling-relevant knob is serialized so replay
     *                 rebuilds an identical stack.
     */
    TraceRecorder(const std::string &workload,
                  const std::string &specName, const DramSpec &spec,
                  const ControllerConfig &config,
                  std::uint32_t channels);

    /** Arm the taps on every channel controller (before run()). */
    void attach(System &system);
    void attach(AttackHarness &harness);

    /** Snapshot stats + end cycle after the run; disarms the taps. */
    void finish(System &system);
    void finish(AttackHarness &harness);

    TraceWriter &writer() { return writer_; }
    const TraceWriter &writer() const { return writer_; }

    /** Move the finished trace out (in-memory replay pipelines). */
    TraceData takeData() { return writer_.takeData(); }

  private:
    class ChannelTap : public RequestTap
    {
      public:
        ChannelTap(TraceWriter *writer, std::uint32_t channel)
            : writer_(writer), channel_(channel)
        {
        }

        void
        onEnqueue(const Request &request, Cycle now) override
        {
            writer_->append(channel_,
                            TraceRecord{now, request.type,
                                        request.addr, request.coreId});
        }

      private:
        TraceWriter *writer_;
        std::uint32_t channel_;
    };

    void armTap(MemoryController &mem, std::uint32_t channel);
    void finishChannel(MemoryController &mem, std::uint32_t channel);

    TraceWriter writer_;
    std::vector<std::unique_ptr<ChannelTap>> taps_;
};

/**
 * Build the header for a recording of @p channels controllers running
 * @p config against @p spec (registered as @p specName).
 */
TraceHeader makeTraceHeader(const std::string &workload,
                            const std::string &specName,
                            const DramSpec &spec,
                            const ControllerConfig &config,
                            std::uint32_t channels);

} // namespace pracleak::trace

#endif // PRACLEAK_TRACE_RECORDER_H
