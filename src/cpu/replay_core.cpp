#include "cpu/replay_core.h"

namespace pracleak {

ReplayCore::ReplayCore(
    MemoryController &mem,
    const std::vector<trace::TraceRecord> &records)
    : mem_(&mem), records_(&records)
{
    nextEventAt_ =
        records_->empty() ? kNeverCycle : records_->front().cycle;
}

void
ReplayCore::tick(Cycle now)
{
    blocked_ = false;
    while (next_ < records_->size()) {
        const trace::TraceRecord &record = (*records_)[next_];
        if (record.cycle > now) {
            nextEventAt_ = record.cycle;
            return;
        }
        Request request;
        request.type = record.type;
        request.addr = record.addr;
        request.coreId = record.coreId;
        if (!mem_->enqueue(std::move(request))) {
            // Queue full (cross-defense back-pressure): hold the
            // stream in order and retry next cycle.
            blocked_ = true;
            nextEventAt_ = now + 1;
            return;
        }
        ++next_;
    }
    nextEventAt_ = kNeverCycle;
}

} // namespace pracleak
