/**
 * @file
 * Trace-replay driver for one memory channel.
 *
 * A ReplayCore stands where TraceCore + caches stand in a full
 * simulation: it feeds a recorded request stream (src/trace/) back
 * into a fresh MemoryController at the recorded cycles.  It exposes
 * the same event interface as TraceCore -- tick(now) before the
 * controller ticks, and nextEventAt() for idle-cycle fast-forward --
 * so the replay loop skips dead cycles exactly like System does.
 *
 * Under the defense the trace was recorded with, the controller
 * accepts every request at its recorded cycle (the recorded run
 * proved the queue had room) and the replay is bit-identical to the
 * original run.  Under a different defense, added maintenance can
 * back-pressure the queue; the core then holds the stream (preserving
 * order) and retries each cycle, which is the standard open-loop
 * trace-replay approximation.
 */

#ifndef PRACLEAK_CPU_REPLAY_CORE_H
#define PRACLEAK_CPU_REPLAY_CORE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/controller.h"
#include "trace/trace.h"

namespace pracleak {

/** Replays one recorded channel stream into one controller. */
class ReplayCore
{
  public:
    /** @p records must outlive the core (the trace owns them). */
    ReplayCore(MemoryController &mem,
               const std::vector<trace::TraceRecord> &records);

    /** Enqueue every record due at @p now (call before mem.tick()). */
    void tick(Cycle now);

    /**
     * Earliest future cycle at which this core has work: the next
     * record's cycle, now+1 while back-pressured by a full queue, and
     * kNeverCycle once the stream is exhausted.  Same fast-forward
     * contract as TraceCore::nextEventAt.
     */
    Cycle nextEventAt() const { return nextEventAt_; }

    /**
     * Whether the last tick() ended on a full queue.  A blocked tick
     * is side-effect-free, and queue slots only free up when the
     * controller issues a CAS -- i.e. on one of its effective ticks
     * -- so a blocked driver may skip straight to the controller's
     * nextWorkAt() instead of retrying every cycle (the replay event
     * loop does exactly that).
     */
    bool blocked() const { return blocked_; }

    bool done() const { return next_ >= records_->size(); }
    std::uint64_t replayed() const { return next_; }

  private:
    MemoryController *mem_;
    const std::vector<trace::TraceRecord> *records_;
    std::size_t next_ = 0;
    Cycle nextEventAt_ = 0;
    bool blocked_ = false;
};

} // namespace pracleak

#endif // PRACLEAK_CPU_REPLAY_CORE_H
