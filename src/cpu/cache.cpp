#include "cpu/cache.h"

#include <algorithm>

#include "common/log.h"

namespace pracleak {

// ------------------------------------------------------------- TagArray

TagArray::TagArray(const CacheLevelConfig &config)
    : sets_(config.sets()), ways_(config.ways),
      data_(static_cast<std::size_t>(config.sets()) * config.ways)
{
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0)
        fatal("cache set count must be a non-zero power of two");
}

std::size_t
TagArray::setOf(Addr line) const
{
    return static_cast<std::size_t>(line & (sets_ - 1)) * ways_;
}

bool
TagArray::lookup(Addr line)
{
    const std::size_t base = setOf(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = data_[base + w];
        if (way.valid && way.line == line) {
            way.lastUse = ++useClock_;
            return true;
        }
    }
    return false;
}

bool
TagArray::probe(Addr line) const
{
    const std::size_t base = setOf(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Way &way = data_[base + w];
        if (way.valid && way.line == line)
            return true;
    }
    return false;
}

std::optional<TagArray::Victim>
TagArray::insert(Addr line, bool dirty)
{
    const std::size_t base = setOf(line);
    std::size_t lru = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = data_[base + w];
        if (way.valid && way.line == line) {
            // Already present: refresh recency, merge dirty.
            way.lastUse = ++useClock_;
            way.dirty = way.dirty || dirty;
            return std::nullopt;
        }
        if (!way.valid) {
            way.valid = true;
            way.line = line;
            way.dirty = dirty;
            way.lastUse = ++useClock_;
            return std::nullopt;
        }
        if (way.lastUse < data_[lru].lastUse)
            lru = base + w;
    }

    Way &victim = data_[lru];
    const Victim out{victim.line, victim.dirty};
    victim.line = line;
    victim.dirty = dirty;
    victim.lastUse = ++useClock_;
    return out;
}

bool
TagArray::markDirty(Addr line)
{
    const std::size_t base = setOf(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = data_[base + w];
        if (way.valid && way.line == line) {
            way.dirty = true;
            way.lastUse = ++useClock_;
            return true;
        }
    }
    return false;
}

std::optional<bool>
TagArray::invalidate(Addr line)
{
    const std::size_t base = setOf(line);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Way &way = data_[base + w];
        if (way.valid && way.line == line) {
            way.valid = false;
            return way.dirty;
        }
    }
    return std::nullopt;
}

// ------------------------------------------------------- CacheHierarchy

CacheHierarchy::CacheHierarchy(const CacheHierConfig &config,
                               std::uint32_t num_cores,
                               MemoryController *mem, StatSet *stats)
    : CacheHierarchy(config, num_cores,
                     std::vector<MemoryController *>{mem}, stats)
{
}

CacheHierarchy::CacheHierarchy(const CacheHierConfig &config,
                               std::uint32_t num_cores,
                               std::vector<MemoryController *> mems,
                               StatSet *stats)
    : config_(config), mems_(std::move(mems)), stats_(stats),
      llc_(config.llc),
      mshrCapacity_(static_cast<std::size_t>(config.mshrsPerCore) *
                    num_cores)
{
    if (mems_.empty())
        fatal("CacheHierarchy needs at least one memory controller");
    if (mems_[0]->mapper().channels() != mems_.size())
        fatal("controller count must match the channel-interleave "
              "fan-out");
    l1_.reserve(num_cores);
    l2_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        l1_.emplace_back(config.l1);
        l2_.emplace_back(config.l2);
    }
}

MemoryController &
CacheHierarchy::memFor(Addr line)
{
    if (mems_.size() == 1)
        return *mems_[0];
    return *mems_[mems_[0]->mapper().channelOf(line << kLineShift)];
}

bool
CacheHierarchy::lookupHierarchy(std::uint32_t core, Addr line,
                                Cycle &latency)
{
    latency = config_.l1.latency;
    if (l1_[core].lookup(line)) {
        if (stats_)
            ++stats_->counter("cache.l1_hits");
        return true;
    }
    latency += config_.l2.latency;
    if (l2_[core].lookup(line)) {
        if (stats_)
            ++stats_->counter("cache.l2_hits");
        fill(core, line, false);
        return true;
    }
    latency += config_.llc.latency;
    if (llc_.lookup(line)) {
        if (stats_)
            ++stats_->counter("cache.llc_hits");
        fill(core, line, false);
        return true;
    }
    if (stats_)
        ++stats_->counter("cache.llc_misses");
    return false;
}

void
CacheHierarchy::writeback(Addr line)
{
    Request wb;
    wb.type = ReqType::Write;
    wb.addr = line << kLineShift;
    if (!memFor(line).enqueue(std::move(wb))) {
        // Queue full: drop the writeback's bandwidth cost rather than
        // stalling the hierarchy; rare, and data correctness is not
        // modeled.
        if (stats_)
            ++stats_->counter("cache.dropped_writebacks");
    } else if (stats_) {
        ++stats_->counter("cache.writebacks");
    }
}

void
CacheHierarchy::fill(std::uint32_t core, Addr line, bool dirty)
{
    // Fill into every level; only LLC evictions touch DRAM
    // (non-inclusive hierarchy, L1/L2 victims are clean or will be
    // re-fetched through the LLC).
    if (auto v = l1_[core].insert(line, dirty); v && v->dirty)
        l2_[core].insert(v->line, true);
    l2_[core].insert(line, false);
    if (auto v = llc_.insert(line, false); v && v->dirty)
        writeback(v->line);
}

bool
CacheHierarchy::missToDram(std::uint32_t core, Addr line, Waiter waiter)
{
    auto it = mshrs_.find(line);
    if (it != mshrs_.end()) {
        // Merge into the outstanding miss.
        it->second.waiters.push_back(std::move(waiter));
        if (stats_)
            ++stats_->counter("cache.mshr_merges");
        return true;
    }

    MemoryController &mem = memFor(line);
    if (mshrs_.size() >= mshrCapacity_ || !mem.canAccept())
        return false;

    Request req;
    req.type = ReqType::Read;
    req.addr = line << kLineShift;
    req.coreId = core;
    req.onComplete = [this, line](const Request &done_req) {
        auto node = mshrs_.extract(line);
        if (node.empty())
            panic("MSHR completion without entry");
        for (Waiter &w : node.mapped().waiters) {
            fill(w.core, line, false);
            if (w.isStore) {
                l1_[w.core].markDirty(line);
            } else if (w.done) {
                w.done(done_req.latency() + w.lookupLatency);
            }
        }
    };

    Mshr entry;
    entry.waiters.push_back(std::move(waiter));
    if (!mem.enqueue(std::move(req)))
        return false;
    mshrs_.emplace(line, std::move(entry));
    return true;
}

bool
CacheHierarchy::tryLoad(std::uint32_t core, Addr addr,
                        std::function<void(Cycle)> done)
{
    const Addr line = addr >> kLineShift;
    Cycle latency = 0;
    if (lookupHierarchy(core, line, latency)) {
        if (done)
            done(latency);
        return true;
    }
    return missToDram(core, line,
                      Waiter{core, false, std::move(done), latency});
}

bool
CacheHierarchy::tryStore(std::uint32_t core, Addr addr)
{
    const Addr line = addr >> kLineShift;
    Cycle latency = 0;
    if (lookupHierarchy(core, line, latency)) {
        l1_[core].markDirty(line);
        return true;
    }
    return missToDram(core, line, Waiter{core, true, nullptr, latency});
}

void
CacheHierarchy::flush(Addr addr)
{
    const Addr line = addr >> kLineShift;
    bool dirty = false;
    for (std::size_t c = 0; c < l1_.size(); ++c) {
        if (auto d = l1_[c].invalidate(line))
            dirty |= *d;
        if (auto d = l2_[c].invalidate(line))
            dirty |= *d;
    }
    if (auto d = llc_.invalidate(line))
        dirty |= *d;
    if (dirty)
        writeback(line);
}

} // namespace pracleak
