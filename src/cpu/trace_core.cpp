#include "cpu/trace_core.h"

#include <algorithm>

namespace pracleak {

TraceCore::TraceCore(std::uint32_t id, WorkloadSource *source,
                     CacheHierarchy *hierarchy, const CoreParams &params)
    : id_(id), source_(source), hier_(hierarchy), params_(params)
{
}

void
TraceCore::onLoadDone(Cycle issue_cycle, Cycle latency, bool dependent)
{
    // Hits report their latency synchronously at issue; DRAM misses
    // report at data-return time.  Either way the data is usable at
    // issue + latency (never before "now").
    const Cycle ready = std::max(issue_cycle + latency, now_);
    completions_.push_back(Completion{ready, dependent});

    // DRAM misses land *after* this core's tick (the controller
    // ticks last), so a stalled core's published wake-up time must
    // absorb the new completion or fast-forward would skip past it.
    nextEventAt_ = std::min(nextEventAt_, ready);
}

void
TraceCore::drainCompletions(Cycle now)
{
    for (std::size_t i = 0; i < completions_.size();) {
        if (completions_[i].readyAt <= now) {
            --outstanding_;
            if (completions_[i].dependent)
                --dependentOutstanding_;
            completions_[i] = completions_.back();
            completions_.pop_back();
        } else {
            ++i;
        }
    }
}

Cycle
TraceCore::earliestCompletion() const
{
    Cycle next = kNeverCycle;
    for (const Completion &completion : completions_)
        next = std::min(next, completion.readyAt);
    return next;
}

void
TraceCore::tick(Cycle now)
{
    now_ = now;
    nextEventAt_ = now + 1; // default: more work next cycle
    drainCompletions(now);

    if (dependentOutstanding_ > 0) {
        // Serialized on a pointer-chase load; nothing can happen
        // until a completion drains.
        nextEventAt_ = earliestCompletion();
        return;
    }

    std::uint32_t budget = params_.retireWidth;
    while (budget > 0) {
        if (backlog_ > 0) {
            const std::uint32_t chunk = std::min(backlog_, budget);
            backlog_ -= chunk;
            instrs_ += chunk;
            budget -= chunk;
            continue;
        }
        if (!havePendingMem_) {
            pending_ = source_->next();
            backlog_ = pending_.nonMemInstrs;
            havePendingMem_ = pending_.isMem;
            if (backlog_ > 0)
                continue;
            if (!havePendingMem_)
                continue; // pure bubble op
        }

        // One memory instruction; costs one retire slot.
        if (pending_.isWrite) {
            if (!hier_->tryStore(id_, pending_.addr))
                return; // resource-blocked; retry next cycle
            havePendingMem_ = false;
            ++instrs_;
            --budget;
            continue;
        }

        if (outstanding_ >= params_.mlp) {
            // Out of MLP: only a completion unblocks us.  DRAM-miss
            // completions surface via the controller, not
            // completions_, so kNeverCycle here defers the wake-up
            // to the controller's own event horizon.
            nextEventAt_ = earliestCompletion();
            return;
        }

        const Cycle issue_cycle = now;
        const bool dependent = pending_.dependent;
        const bool accepted = hier_->tryLoad(
            id_, pending_.addr,
            [this, issue_cycle, dependent](Cycle latency) {
                onLoadDone(issue_cycle, latency, dependent);
            });
        if (!accepted)
            return; // MSHRs/queue full; retry next cycle

        ++outstanding_;
        if (dependent)
            ++dependentOutstanding_;
        havePendingMem_ = false;
        ++instrs_;
        --budget;
        if (dependent) {
            // Nothing issues past a dependent load.
            nextEventAt_ = earliestCompletion();
            return;
        }
    }
}

} // namespace pracleak
