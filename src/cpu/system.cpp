#include "cpu/system.h"

#include <algorithm>

#include "common/log.h"

namespace pracleak {

double
RunResult::ipcSum() const
{
    double sum = 0.0;
    for (const auto &core : cores)
        sum += core.ipc;
    return sum;
}

double
RunResult::rbmpki() const
{
    std::uint64_t instrs = 0;
    for (const auto &core : cores)
        instrs += core.instrs;
    if (instrs == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(rowMisses) /
           static_cast<double>(instrs);
}

double
normalizedPerf(const RunResult &design, const RunResult &baseline)
{
    if (design.cores.size() != baseline.cores.size())
        fatal("normalizedPerf: core-count mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < design.cores.size(); ++i) {
        if (baseline.cores[i].ipc <= 0.0)
            fatal("normalizedPerf: zero baseline IPC");
        sum += design.cores[i].ipc / baseline.cores[i].ipc;
    }
    return sum / static_cast<double>(design.cores.size());
}

System::System(const SystemConfig &config,
               std::vector<std::unique_ptr<WorkloadSource>> sources)
    : config_(config), sources_(std::move(sources))
{
    if (config_.channels == 0 ||
        (config_.channels & (config_.channels - 1)) != 0)
        fatal("System: channels must be a non-zero power of two");

    ControllerConfig mem_config = config_.mem;
    mem_config.interleave.channels = config_.channels;
    mem_config.interleave.granularityBytes =
        config_.channelInterleaveBytes;
    mem_config.interleave.xorFold = config_.xorFoldChannelBits;

    mems_.reserve(config_.channels);
    std::vector<MemoryController *> mem_ptrs;
    for (std::uint32_t c = 0; c < config_.channels; ++c) {
        mem_config.channelIndex = c;
        mems_.push_back(std::make_unique<MemoryController>(
            config_.spec, mem_config, &stats_));
        mem_ptrs.push_back(mems_.back().get());
    }

    caches_ = std::make_unique<CacheHierarchy>(
        config_.caches, static_cast<std::uint32_t>(sources_.size()),
        std::move(mem_ptrs), &stats_);

    cores_.reserve(sources_.size());
    for (std::uint32_t i = 0; i < sources_.size(); ++i)
        cores_.emplace_back(i, sources_[i].get(), caches_.get(),
                            config_.core);
}

void
System::stepAll()
{
    // The skip runs at the *start* of the step so the run loops
    // always observe the same post-tick clock values (phase
    // boundaries, finish times) with fast-forward on or off.
    if (config_.fastForward) {
        maybeFastForward();
        if (now() >= config_.maxCycles)
            return; // the safety stop fires before the next tick
    }
    const Cycle current = now();
    for (auto &core : cores_)
        core.tick(current);
    if (config_.fastForward) {
        // Event-driven channel stepping: a channel with no work due
        // this cycle jumps its clock instead of ticking, so a busy
        // channel no longer drags its idle siblings through empty
        // ticks.  Completions, drains, and refreshes are all part of
        // the nextWorkAt() bound, so a skipped cycle is provably
        // dead and the per-core stall pattern -- and every statistic
        // -- is bit-identical to lockstep (tests/test_eventqueue).
        for (auto &mem : mems_)
            mem->advanceTo(current + 1);
    } else {
        for (auto &mem : mems_)
            mem->tick();
    }
}

void
System::maybeFastForward()
{
    // Based on the previous cycle's post-tick state: if every core is
    // stalled past the current cycle and every controller's next
    // event is later, the cycles in between are provably dead: jump
    // straight to the earliest event.  Wake-ups are conservative
    // (never later than the true next event), so simulated behaviour
    // -- and therefore every reported statistic -- is unchanged.
    const Cycle current = now();
    Cycle wake = kNeverCycle;
    for (const auto &core : cores_) {
        const Cycle at = core.nextEventAt();
        if (at <= current)
            return;
        wake = std::min(wake, at);
    }
    for (const auto &mem : mems_) {
        const Cycle at = mem->nextWorkAt();
        if (at <= current)
            return;
        wake = std::min(wake, at);
    }
    // Never jump past the safety stop: the run loops compare now()
    // against maxCycles every iteration.
    wake = std::min(wake, config_.maxCycles);
    if (wake <= current)
        return;
    for (auto &mem : mems_)
        mem->skipTo(wake);
    ffSkipped_ += wake - current;
}

RunResult
System::run()
{
    if (ran_)
        fatal("System::run may only be called once");
    ran_ = true;

    const std::size_t n = cores_.size();

    // Phase 1: warm-up.
    auto all_warm = [&] {
        return std::all_of(cores_.begin(), cores_.end(),
                           [&](const TraceCore &c) {
                               return c.instrsRetired() >=
                                      config_.warmupInstrs;
                           });
    };
    while (!all_warm() && now() < config_.maxCycles)
        stepAll();

    // Phase 2: measurement.
    const Cycle measure_start = now();
    const Cycle ff_skipped_at_measure_start = ffSkipped_;
    std::vector<std::uint64_t> start_instrs(n);
    for (std::size_t i = 0; i < n; ++i)
        start_instrs[i] = cores_[i].instrsRetired();

    const std::size_t nch = mems_.size();
    std::vector<EnergyCounts> start_counts(nch);
    for (std::size_t c = 0; c < nch; ++c) {
        const DramDevice &dev = mems_[c]->dram();
        start_counts[c].acts = dev.issueCount(CmdType::ACT);
        start_counts[c].reads = dev.issueCount(CmdType::RD);
        start_counts[c].writes = dev.issueCount(CmdType::WR);
        start_counts[c].refreshes = dev.issueCount(CmdType::REFab);
        start_counts[c].mitigatedRows =
            mems_[c]->prac().mitigatedRows();
    }
    const std::uint64_t start_row_misses = stats_.get("mem.row_misses");
    std::vector<SchedCounters> start_sched(nch);
    for (std::size_t c = 0; c < nch; ++c)
        start_sched[c] = mems_[c]->schedCounters();

    std::vector<Cycle> finish_at(n, 0);
    std::size_t finished = 0;
    while (finished < n && now() < config_.maxCycles) {
        stepAll();
        for (std::size_t i = 0; i < n; ++i) {
            if (finish_at[i] != 0)
                continue;
            if (cores_[i].instrsRetired() - start_instrs[i] >=
                config_.measureInstrs) {
                finish_at[i] = now();
                ++finished;
            }
        }
    }
    if (finished < n)
        warn("System::run hit maxCycles before all cores finished");

    const Cycle end = now();

    RunResult result;
    result.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        CoreResult &cr = result.cores[i];
        cr.workload = cores_[i].workloadName();
        const Cycle done = finish_at[i] ? finish_at[i] : end;
        cr.instrs = std::min(cores_[i].instrsRetired() - start_instrs[i],
                             config_.measureInstrs);
        cr.cycles = done > measure_start ? done - measure_start : 1;
        cr.ipc = static_cast<double>(cr.instrs) /
                 static_cast<double>(cr.cycles);
    }
    result.measureCycles = end - measure_start;

    result.channels.resize(nch);
    for (std::size_t c = 0; c < nch; ++c) {
        const MemoryController &mem = *mems_[c];
        const DramDevice &dev = mem.dram();
        ChannelResult &ch = result.channels[c];

        EnergyCounts delta;
        delta.acts = dev.issueCount(CmdType::ACT) - start_counts[c].acts;
        delta.reads = dev.issueCount(CmdType::RD) - start_counts[c].reads;
        delta.writes =
            dev.issueCount(CmdType::WR) - start_counts[c].writes;
        delta.refreshes =
            dev.issueCount(CmdType::REFab) - start_counts[c].refreshes;
        delta.mitigatedRows =
            mem.prac().mitigatedRows() - start_counts[c].mitigatedRows;
        delta.elapsed = result.measureCycles;
        ch.energyCounts = delta;
        ch.energy = computeEnergy(delta);

        ch.aboRfms = mem.rfmCount(RfmReason::Abo);
        ch.acbRfms = mem.rfmCount(RfmReason::Acb);
        ch.tbRfms = mem.rfmCount(RfmReason::TimingBased);
        ch.tbRfmsSkipped =
            mem.tbScheduler() ? mem.tbScheduler()->skipped() : 0;
        ch.grapheneRfms = mem.rfmCount(RfmReason::Graphene);
        ch.pbRfms = mem.rfmCount(RfmReason::PerBank);
        ch.mitigationEvents = mem.mitigationEvents();
        ch.alerts = mem.prac().alerts();
        ch.maxCounterSeen = mem.prac().counters().maxEverSeen();

        const SchedCounters &sc = mem.schedCounters();
        ch.sched.ticksFired = sc.ticksFired - start_sched[c].ticksFired;
        ch.sched.cyclesJumped =
            sc.cyclesJumped - start_sched[c].cyclesJumped;
        ch.sched.nextWorkCacheHits =
            sc.nextWorkCacheHits - start_sched[c].nextWorkCacheHits;
        ch.sched.nextWorkRebuilds =
            sc.nextWorkRebuilds - start_sched[c].nextWorkRebuilds;
        ch.sched.nextWorkHintRebuilds =
            sc.nextWorkHintRebuilds -
            start_sched[c].nextWorkHintRebuilds;
        result.sched.ticksFired += ch.sched.ticksFired;
        result.sched.cyclesJumped += ch.sched.cyclesJumped;
        result.sched.nextWorkCacheHits += ch.sched.nextWorkCacheHits;
        result.sched.nextWorkRebuilds += ch.sched.nextWorkRebuilds;
        result.sched.nextWorkHintRebuilds +=
            ch.sched.nextWorkHintRebuilds;
        // Ride the StatSet too, so stat dumps explain the scheduler
        // without a RunResult in hand.
        stats_.counter("sched.ticks_fired") += ch.sched.ticksFired;
        stats_.counter("sched.cycles_jumped") +=
            ch.sched.cyclesJumped;
        stats_.counter("sched.nextwork_cache_hits") +=
            ch.sched.nextWorkCacheHits;
        stats_.counter("sched.nextwork_rebuilds") +=
            ch.sched.nextWorkRebuilds;
        stats_.counter("sched.nextwork_hint_rebuilds") +=
            ch.sched.nextWorkHintRebuilds;

        result.energyCounts += ch.energyCounts;
        result.energy += ch.energy;
        result.aboRfms += ch.aboRfms;
        result.acbRfms += ch.acbRfms;
        result.tbRfms += ch.tbRfms;
        result.tbRfmsSkipped += ch.tbRfmsSkipped;
        result.grapheneRfms += ch.grapheneRfms;
        result.pbRfms += ch.pbRfms;
        result.mitigationEvents += ch.mitigationEvents;
        result.alerts += ch.alerts;
        result.maxCounterSeen =
            std::max(result.maxCounterSeen, ch.maxCounterSeen);
    }
    result.rowMisses = stats_.get("mem.row_misses") - start_row_misses;
    result.ffCyclesSkipped = ffSkipped_ - ff_skipped_at_measure_start;
    if (stats_.hasHistogram("mem.queue_occupancy"))
        result.queueOccupancy =
            stats_.getHistogram("mem.queue_occupancy");
    return result;
}

} // namespace pracleak
