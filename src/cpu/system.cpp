#include "cpu/system.h"

#include <algorithm>

#include "common/log.h"

namespace pracleak {

double
RunResult::ipcSum() const
{
    double sum = 0.0;
    for (const auto &core : cores)
        sum += core.ipc;
    return sum;
}

double
RunResult::rbmpki() const
{
    std::uint64_t instrs = 0;
    for (const auto &core : cores)
        instrs += core.instrs;
    if (instrs == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(rowMisses) /
           static_cast<double>(instrs);
}

double
normalizedPerf(const RunResult &design, const RunResult &baseline)
{
    if (design.cores.size() != baseline.cores.size())
        fatal("normalizedPerf: core-count mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < design.cores.size(); ++i) {
        if (baseline.cores[i].ipc <= 0.0)
            fatal("normalizedPerf: zero baseline IPC");
        sum += design.cores[i].ipc / baseline.cores[i].ipc;
    }
    return sum / static_cast<double>(design.cores.size());
}

System::System(const SystemConfig &config,
               std::vector<std::unique_ptr<WorkloadSource>> sources)
    : config_(config), sources_(std::move(sources))
{
    mem_ = std::make_unique<MemoryController>(config_.spec, config_.mem,
                                              &stats_);
    caches_ = std::make_unique<CacheHierarchy>(
        config_.caches, static_cast<std::uint32_t>(sources_.size()),
        mem_.get(), &stats_);

    cores_.reserve(sources_.size());
    for (std::uint32_t i = 0; i < sources_.size(); ++i)
        cores_.emplace_back(i, sources_[i].get(), caches_.get(),
                            config_.core);
}

void
System::stepAll()
{
    const Cycle now = mem_->now();
    for (auto &core : cores_)
        core.tick(now);
    mem_->tick();
}

RunResult
System::run()
{
    if (ran_)
        fatal("System::run may only be called once");
    ran_ = true;

    const std::size_t n = cores_.size();

    // Phase 1: warm-up.
    auto all_warm = [&] {
        return std::all_of(cores_.begin(), cores_.end(),
                           [&](const TraceCore &c) {
                               return c.instrsRetired() >=
                                      config_.warmupInstrs;
                           });
    };
    while (!all_warm() && mem_->now() < config_.maxCycles)
        stepAll();

    // Phase 2: measurement.
    const Cycle measure_start = mem_->now();
    std::vector<std::uint64_t> start_instrs(n);
    for (std::size_t i = 0; i < n; ++i)
        start_instrs[i] = cores_[i].instrsRetired();

    const DramDevice &dev = mem_->dram();
    EnergyCounts start_counts;
    start_counts.acts = dev.issueCount(CmdType::ACT);
    start_counts.reads = dev.issueCount(CmdType::RD);
    start_counts.writes = dev.issueCount(CmdType::WR);
    start_counts.refreshes = dev.issueCount(CmdType::REFab);
    start_counts.mitigatedRows = mem_->prac().mitigatedRows();
    const std::uint64_t start_row_misses = stats_.get("mem.row_misses");

    std::vector<Cycle> finish_at(n, 0);
    std::size_t finished = 0;
    while (finished < n && mem_->now() < config_.maxCycles) {
        stepAll();
        for (std::size_t i = 0; i < n; ++i) {
            if (finish_at[i] != 0)
                continue;
            if (cores_[i].instrsRetired() - start_instrs[i] >=
                config_.measureInstrs) {
                finish_at[i] = mem_->now();
                ++finished;
            }
        }
    }
    if (finished < n)
        warn("System::run hit maxCycles before all cores finished");

    const Cycle end = mem_->now();

    RunResult result;
    result.cores.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        CoreResult &cr = result.cores[i];
        cr.workload = cores_[i].workloadName();
        const Cycle done = finish_at[i] ? finish_at[i] : end;
        cr.instrs = std::min(cores_[i].instrsRetired() - start_instrs[i],
                             config_.measureInstrs);
        cr.cycles = done > measure_start ? done - measure_start : 1;
        cr.ipc = static_cast<double>(cr.instrs) /
                 static_cast<double>(cr.cycles);
    }
    result.measureCycles = end - measure_start;

    EnergyCounts delta;
    delta.acts = dev.issueCount(CmdType::ACT) - start_counts.acts;
    delta.reads = dev.issueCount(CmdType::RD) - start_counts.reads;
    delta.writes = dev.issueCount(CmdType::WR) - start_counts.writes;
    delta.refreshes =
        dev.issueCount(CmdType::REFab) - start_counts.refreshes;
    delta.mitigatedRows =
        mem_->prac().mitigatedRows() - start_counts.mitigatedRows;
    delta.elapsed = result.measureCycles;
    result.energyCounts = delta;
    result.energy = computeEnergy(delta);

    result.aboRfms = mem_->rfmCount(RfmReason::Abo);
    result.acbRfms = mem_->rfmCount(RfmReason::Acb);
    result.tbRfms = mem_->rfmCount(RfmReason::TimingBased);
    result.tbRfmsSkipped =
        mem_->tbScheduler() ? mem_->tbScheduler()->skipped() : 0;
    result.alerts = mem_->prac().alerts();
    result.rowMisses = stats_.get("mem.row_misses") - start_row_misses;
    result.maxCounterSeen = mem_->prac().counters().maxEverSeen();
    return result;
}

} // namespace pracleak
