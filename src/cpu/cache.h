/**
 * @file
 * Three-level cache hierarchy (private L1D + private L2, shared LLC)
 * feeding the memory controller.
 *
 * Modeling choices (documented substitutions from the paper's
 * ChampSim setup, see DESIGN.md):
 *  - True LRU replacement everywhere.  The paper reports <1% result
 *    variance across replacement/prefetch policies, so SRRIP and the
 *    SPP-PPF prefetcher are omitted.
 *  - Non-inclusive levels with fill-on-return to every level.
 *  - Write-back, write-allocate; LLC evictions of dirty lines become
 *    posted DRAM writes.
 *  - A shared MSHR table at the LLC merges concurrent misses to the
 *    same line and bounds outstanding DRAM reads (64 per core).
 *
 * The hierarchy is callback-driven and shares the controller's clock:
 * hits invoke the completion callback synchronously with their
 * aggregate lookup latency; misses complete when the DRAM read
 * returns.
 */

#ifndef PRACLEAK_CPU_CACHE_H
#define PRACLEAK_CPU_CACHE_H

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "mem/controller.h"

namespace pracleak {

/** Geometry and latency of one cache level. */
struct CacheLevelConfig
{
    std::uint32_t sizeBytes = 0;
    std::uint32_t ways = 0;
    Cycle latency = 0;

    std::uint32_t
    sets() const
    {
        return sizeBytes / (kLineBytes * ways);
    }
};

/** Hierarchy-wide configuration (defaults follow Table 3). */
struct CacheHierConfig
{
    CacheLevelConfig l1{48 * 1024, 12, 5};
    CacheLevelConfig l2{512 * 1024, 8, 10};
    CacheLevelConfig llc{8 * 1024 * 1024, 16, 20};
    std::uint32_t mshrsPerCore = 64;
};

/** Set-associative tag array with true-LRU replacement. */
class TagArray
{
  public:
    TagArray(const CacheLevelConfig &config);

    /** Lookup @p line; updates recency on hit. */
    bool lookup(Addr line);

    /** Hit test without recency update (for tests/telemetry). */
    bool probe(Addr line) const;

    /**
     * Insert @p line (evicting the LRU way if the set is full).
     * Returns the evicted line and its dirty bit, if any.
     */
    struct Victim
    {
        Addr line;
        bool dirty;
    };
    std::optional<Victim> insert(Addr line, bool dirty);

    /** Mark @p line dirty if present; returns presence. */
    bool markDirty(Addr line);

    /** Remove @p line if present; returns whether it was dirty. */
    std::optional<bool> invalidate(Addr line);

  private:
    struct Way
    {
        Addr line = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::size_t setOf(Addr line) const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<Way> data_;
    std::uint64_t useClock_ = 0;
};

/** Private-L1/L2 + shared-LLC hierarchy for @p num_cores cores. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheHierConfig &config, std::uint32_t num_cores,
                   MemoryController *mem, StatSet *stats = nullptr);

    /**
     * Multi-channel constructor: misses and writebacks route to the
     * controller owning the line's channel (per the controllers'
     * shared ChannelInterleave).  All controllers must share one
     * clock; a single-element vector behaves exactly like the
     * single-controller constructor.
     */
    CacheHierarchy(const CacheHierConfig &config, std::uint32_t num_cores,
                   std::vector<MemoryController *> mems,
                   StatSet *stats = nullptr);

    /**
     * Issue a load.  On a cache hit @p done fires synchronously with
     * the hit latency; on a miss it fires when DRAM data returns.
     * Returns false (and does nothing) when MSHRs or the controller
     * queue are exhausted -- the caller retries next cycle.
     */
    bool tryLoad(std::uint32_t core, Addr addr,
                 std::function<void(Cycle latency)> done);

    /**
     * Issue a posted store (write-allocate).  Returns false when the
     * required miss could not be tracked this cycle.
     */
    bool tryStore(std::uint32_t core, Addr addr);

    /**
     * Invalidate @p addr everywhere (clflush).  Dirty data is written
     * back.  Always succeeds; a full controller queue only delays the
     * writeback, never the invalidation.
     */
    void flush(Addr addr);

    std::size_t outstandingMisses() const { return mshrs_.size(); }

  private:
    struct Waiter
    {
        std::uint32_t core;
        bool isStore;
        std::function<void(Cycle)> done;
        Cycle lookupLatency; //!< L1+L2+LLC latency already incurred
    };

    struct Mshr
    {
        std::vector<Waiter> waiters;
    };

    bool lookupHierarchy(std::uint32_t core, Addr line, Cycle &latency);
    void fill(std::uint32_t core, Addr line, bool dirty);
    void writeback(Addr line);
    bool missToDram(std::uint32_t core, Addr line, Waiter waiter);

    /** Controller owning @p line's channel. */
    MemoryController &memFor(Addr line);

    CacheHierConfig config_;
    std::vector<MemoryController *> mems_;
    StatSet *stats_;

    std::vector<TagArray> l1_;  //!< per core
    std::vector<TagArray> l2_;  //!< per core
    TagArray llc_;

    std::unordered_map<Addr, Mshr> mshrs_;
    std::size_t mshrCapacity_;
};

} // namespace pracleak

#endif // PRACLEAK_CPU_CACHE_H
