/**
 * @file
 * Trace-driven core model with bounded memory-level parallelism.
 *
 * Substitution for ChampSim's out-of-order core (see DESIGN.md): the
 * core retires up to retireWidth non-memory instructions per cycle,
 * keeps up to mlp loads outstanding without stalling, and stalls only
 * when (a) the MLP budget is exhausted or (b) the workload marks a
 * load as *dependent* (pointer-chase style), in which case the core
 * waits for that specific load.  This converts added DRAM latency and
 * lost DRAM bandwidth into lost IPC -- the only core-side effects the
 * paper's performance experiments depend on.
 */

#ifndef PRACLEAK_CPU_TRACE_CORE_H
#define PRACLEAK_CPU_TRACE_CORE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "cpu/cache.h"

namespace pracleak {

/** One unit of work from a workload source. */
struct TraceOp
{
    std::uint32_t nonMemInstrs = 0; //!< retire these first
    bool isMem = false;
    bool isWrite = false;
    bool dependent = false;         //!< load the core must wait on
    Addr addr = 0;
};

/** Infinite instruction stream driving one core. */
class WorkloadSource
{
  public:
    virtual ~WorkloadSource() = default;

    /** Produce the next trace op.  Streams never terminate. */
    virtual TraceOp next() = 0;

    /** Display name for reports. */
    virtual const std::string &name() const = 0;
};

/** Core parameters (defaults approximate Table 3's 4 GHz OoO core). */
struct CoreParams
{
    std::uint32_t retireWidth = 4;
    std::uint32_t mlp = 16;     //!< max outstanding loads
};

/** One trace-driven core attached to the shared cache hierarchy. */
class TraceCore
{
  public:
    TraceCore(std::uint32_t id, WorkloadSource *source,
              CacheHierarchy *hierarchy, const CoreParams &params);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest future cycle at which this core could make progress,
     * valid after tick().  now+1 when the core still has retirable
     * work (or must retry a resource-blocked access); the earliest
     * in-core load completion when it is stalled on memory; and
     * kNeverCycle when the wake-up event lives in the memory system
     * (an outstanding DRAM miss).  Cycles strictly before the
     * returned value are provably no-ops for this core -- the
     * idle-cycle fast-forward contract.
     */
    Cycle nextEventAt() const { return nextEventAt_; }

    std::uint64_t instrsRetired() const { return instrs_; }
    std::uint32_t id() const { return id_; }
    const std::string &workloadName() const { return source_->name(); }

  private:
    void onLoadDone(Cycle issue_cycle, Cycle latency, bool dependent);
    void drainCompletions(Cycle now);
    Cycle earliestCompletion() const;

    std::uint32_t id_;
    WorkloadSource *source_;
    CacheHierarchy *hier_;
    CoreParams params_;

    Cycle now_ = 0;
    Cycle nextEventAt_ = 0;
    std::uint64_t instrs_ = 0;
    std::uint32_t backlog_ = 0;     //!< non-mem instrs left in op
    bool havePendingMem_ = false;
    TraceOp pending_{};

    std::uint32_t outstanding_ = 0;
    std::uint32_t dependentOutstanding_ = 0;

    struct Completion
    {
        Cycle readyAt;
        bool dependent;
    };
    std::vector<Completion> completions_;
};

} // namespace pracleak

#endif // PRACLEAK_CPU_TRACE_CORE_H
