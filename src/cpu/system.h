/**
 * @file
 * Multi-core system harness: N trace cores -> shared cache hierarchy
 * -> one DDR5 channel with a selectable RowHammer mitigation.
 *
 * Follows the paper's methodology: every core first retires a warm-up
 * instruction budget, then IPC is measured per core over a fixed
 * instruction count; cores that finish early keep executing so memory
 * contention stays representative.  Performance is reported as
 * weighted speedup against a baseline run of the same workloads.
 */

#ifndef PRACLEAK_CPU_SYSTEM_H
#define PRACLEAK_CPU_SYSTEM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "cpu/cache.h"
#include "cpu/trace_core.h"
#include "dram/energy.h"
#include "mem/controller.h"

namespace pracleak {

/** Full-system configuration. */
struct SystemConfig
{
    DramSpec spec = DramSpec::ddr5_8000b();
    ControllerConfig mem{};
    CacheHierConfig caches{};
    CoreParams core{};
    std::uint64_t warmupInstrs = 50'000;
    std::uint64_t measureInstrs = 500'000;
    Cycle maxCycles = 2'000'000'000; //!< hard safety stop
};

/** Per-core outcome of a run. */
struct CoreResult
{
    std::string workload;
    std::uint64_t instrs = 0;
    Cycle cycles = 0;
    double ipc = 0.0;
};

/** Whole-run outcome. */
struct RunResult
{
    std::vector<CoreResult> cores;
    Cycle measureCycles = 0;
    EnergyBreakdown energy;         //!< measure window only
    EnergyCounts energyCounts;      //!< raw events, measure window

    std::uint64_t aboRfms = 0;
    std::uint64_t acbRfms = 0;
    std::uint64_t tbRfms = 0;
    std::uint64_t tbRfmsSkipped = 0;
    std::uint64_t alerts = 0;
    std::uint64_t rowMisses = 0;    //!< measure window
    std::uint32_t maxCounterSeen = 0;

    /** Sum of per-core IPCs. */
    double ipcSum() const;

    /** Row-buffer misses per kilo-instruction over the run. */
    double rbmpki() const;
};

/**
 * Normalized weighted speedup of @p design against @p baseline run on
 * the same workloads: mean over cores of IPC_design / IPC_baseline.
 */
double normalizedPerf(const RunResult &design, const RunResult &baseline);

/** The simulated system. */
class System
{
  public:
    System(const SystemConfig &config,
           std::vector<std::unique_ptr<WorkloadSource>> sources);

    /** Run warm-up then measurement; may only be called once. */
    RunResult run();

    MemoryController &mem() { return *mem_; }
    StatSet &stats() { return stats_; }

  private:
    void stepAll();

    SystemConfig config_;
    StatSet stats_;
    std::unique_ptr<MemoryController> mem_;
    std::unique_ptr<CacheHierarchy> caches_;
    std::vector<std::unique_ptr<WorkloadSource>> sources_;
    std::vector<TraceCore> cores_;
    bool ran_ = false;
};

} // namespace pracleak

#endif // PRACLEAK_CPU_SYSTEM_H
