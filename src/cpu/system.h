/**
 * @file
 * Multi-core system harness: N trace cores -> shared cache hierarchy
 * -> one or more interleaved DDR5 channels with a selectable
 * RowHammer mitigation.
 *
 * Follows the paper's methodology: every core first retires a warm-up
 * instruction budget, then IPC is measured per core over a fixed
 * instruction count; cores that finish early keep executing so memory
 * contention stays representative.  Performance is reported as
 * weighted speedup against a baseline run of the same workloads.
 *
 * Channels tick in lockstep on one clock and are striped by the
 * ChannelInterleave (see mem/address_mapper.h); channels == 1
 * reproduces the classic single-channel system bit-identically.
 * When every core is stalled on memory and no controller has work
 * due before cycle X, the harness jumps the clock to X instead of
 * ticking through dead cycles (idle-cycle fast-forward); this is a
 * pure wall-clock optimization and never changes simulated results.
 */

#ifndef PRACLEAK_CPU_SYSTEM_H
#define PRACLEAK_CPU_SYSTEM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "cpu/cache.h"
#include "cpu/trace_core.h"
#include "dram/energy.h"
#include "mem/controller.h"

namespace pracleak {

/** Full-system configuration. */
struct SystemConfig
{
    DramSpec spec = DramSpec::ddr5_8000b();
    ControllerConfig mem{};
    CacheHierConfig caches{};
    CoreParams core{};
    std::uint64_t warmupInstrs = 50'000;
    std::uint64_t measureInstrs = 500'000;
    Cycle maxCycles = 2'000'000'000; //!< hard safety stop

    /**
     * Memory channels (power of two).  Each channel is a full
     * spec.org DRAM configuration with its own controller and PRAC
     * engine; addresses stripe per channelInterleaveBytes.
     */
    std::uint32_t channels = 1;

    /** Contiguous bytes per channel before switching (power of 2). */
    std::uint32_t channelInterleaveBytes = 256;

    /** XOR-fold high address bits into the channel selector. */
    bool xorFoldChannelBits = true;

    /** Idle-cycle fast-forward (wall-clock only; results identical). */
    bool fastForward = true;
};

/** Per-core outcome of a run. */
struct CoreResult
{
    std::string workload;
    std::uint64_t instrs = 0;
    Cycle cycles = 0;
    double ipc = 0.0;
};

/** Per-channel outcome of a run (measure window). */
struct ChannelResult
{
    EnergyBreakdown energy;
    EnergyCounts energyCounts;
    std::uint64_t aboRfms = 0;
    std::uint64_t acbRfms = 0;
    std::uint64_t tbRfms = 0;
    std::uint64_t tbRfmsSkipped = 0;
    std::uint64_t grapheneRfms = 0;     //!< "graphene" defense RFMpbs
    std::uint64_t pbRfms = 0;           //!< "pb-rfm" defense RFMpbs
    std::uint64_t mitigationEvents = 0; //!< Mitigation::eventsTriggered
    std::uint64_t alerts = 0;
    std::uint32_t maxCounterSeen = 0;

    /**
     * Scheduler-efficiency counters over the measure window
     * (mem/controller.h SchedCounters deltas).  Deterministic for a
     * fixed fastForward setting, but lockstep and event-driven runs
     * legitimately differ here -- equality checks between the two
     * must not include these.
     */
    SchedCounters sched;
};

/** Whole-run outcome. */
struct RunResult
{
    std::vector<CoreResult> cores;
    Cycle measureCycles = 0;
    EnergyBreakdown energy;         //!< all channels, measure window
    EnergyCounts energyCounts;      //!< raw events, measure window

    std::uint64_t aboRfms = 0;
    std::uint64_t acbRfms = 0;
    std::uint64_t tbRfms = 0;
    std::uint64_t tbRfmsSkipped = 0;
    std::uint64_t grapheneRfms = 0;     //!< "graphene" defense RFMpbs
    std::uint64_t pbRfms = 0;           //!< "pb-rfm" defense RFMpbs
    std::uint64_t mitigationEvents = 0; //!< defense-specific events
    std::uint64_t alerts = 0;
    std::uint64_t rowMisses = 0;    //!< measure window
    std::uint32_t maxCounterSeen = 0;

    /** Per-channel breakdown (aggregates above are their sums). */
    std::vector<ChannelResult> channels;

    /**
     * Dead cycles fast-forward skipped inside the measure window.
     * Skipped cycles still advance the clock, so this is a subset
     * of measureCycles, not an addition to it.
     */
    Cycle ffCyclesSkipped = 0;

    /** All-channel SchedCounters sums over the measure window. */
    SchedCounters sched;

    /**
     * System-wide request-queue occupancy, sampled at every accepted
     * enqueue over the whole run (warmup included -- a streaming
     * histogram has no measure-window delta).
     */
    Histogram queueOccupancy;

    /** Sum of per-core IPCs. */
    double ipcSum() const;

    /** Row-buffer misses per kilo-instruction over the run. */
    double rbmpki() const;
};

/**
 * Normalized weighted speedup of @p design against @p baseline run on
 * the same workloads: mean over cores of IPC_design / IPC_baseline.
 */
double normalizedPerf(const RunResult &design, const RunResult &baseline);

/** The simulated system. */
class System
{
  public:
    System(const SystemConfig &config,
           std::vector<std::unique_ptr<WorkloadSource>> sources);

    /** Run warm-up then measurement; may only be called once. */
    RunResult run();

    /** Channel-0 controller (single-channel convenience). */
    MemoryController &mem() { return *mems_[0]; }

    MemoryController &channel(std::size_t i) { return *mems_[i]; }
    std::size_t channelCount() const { return mems_.size(); }
    StatSet &stats() { return stats_; }

  private:
    void stepAll();
    void maybeFastForward();
    Cycle now() const { return mems_[0]->now(); }

    SystemConfig config_;
    StatSet stats_;
    std::vector<std::unique_ptr<MemoryController>> mems_;
    std::unique_ptr<CacheHierarchy> caches_;
    std::vector<std::unique_ptr<WorkloadSource>> sources_;
    std::vector<TraceCore> cores_;
    Cycle ffSkipped_ = 0;
    bool ran_ = false;
};

} // namespace pracleak

#endif // PRACLEAK_CPU_SYSTEM_H
