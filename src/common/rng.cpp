#include "common/rng.h"

namespace pracleak {

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t state = seed;
    for (auto &word : s_)
        word = splitMix(state);
}

std::uint64_t
Rng::splitMix(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    // Debiased multiply-shift; bias is negligible for bound << 2^64 and
    // the rejection loop handles the general case exactly.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::uint64_t
deriveRngStream(std::uint64_t seed, std::uint64_t stream)
{
    // Two SplitMix64 steps over a golden-ratio combination of the
    // inputs; consecutive stream ids land in unrelated states.
    auto mix = [](std::uint64_t &state) {
        state += 0x9E3779B97F4A7C15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    };
    std::uint64_t state = seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
    mix(state);
    return mix(state);
}

} // namespace pracleak
