/**
 * @file
 * Deterministic, fast pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload address streams,
 * random plaintext bytes, randomized decoy selection, ...) draws from
 * explicitly seeded Rng instances so every experiment is reproducible
 * bit-for-bit from its seed.
 */

#ifndef PRACLEAK_COMMON_RNG_H
#define PRACLEAK_COMMON_RNG_H

#include <cstdint>

namespace pracleak {

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Chosen over std::mt19937_64 for speed (the workload generators call
 * this on nearly every simulated instruction) and for a guaranteed
 * stable sequence across standard library implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p);

  private:
    static std::uint64_t splitMix(std::uint64_t &state);
    static std::uint64_t rotl(std::uint64_t x, int k);

    std::uint64_t s_[4];
};

/**
 * Derive the seed of an independent counter-based substream.
 *
 * Stochastic components that run side by side -- one PARA instance
 * per channel, one workload generator per scenario point -- must not
 * share a raw seed: seeding every consumer with
 * deriveRngStream(seed, stream) (stream = channel index, grid-point
 * ordinal, defense ordinal, ...) gives each a decorrelated sequence
 * that is a pure function of (seed, stream), so sweeps are
 * bit-reproducible at any `--jobs N`.  Stream 0 is NOT the identity;
 * never mix derived and raw seeding of the same generator.
 */
std::uint64_t deriveRngStream(std::uint64_t seed, std::uint64_t stream);

} // namespace pracleak

#endif // PRACLEAK_COMMON_RNG_H
