#include "common/log.h"

namespace pracleak {

namespace {
int g_level = 1;
} // namespace

int
logLevel()
{
    return g_level;
}

int
setLogLevel(int level)
{
    const int old = g_level;
    g_level = level;
    return old;
}

namespace detail {

void
logLine(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace detail

void
inform(const std::string &msg)
{
    if (g_level >= 2)
        detail::logLine("info", msg);
}

void
progress(const std::string &context, const std::string &msg)
{
    if (g_level >= 1)
        detail::logLine(context.c_str(), msg);
}

int
parseLogLevel(const std::string &text)
{
    if (text == "quiet")
        return 0;
    if (text == "warn")
        return 1;
    if (text == "info")
        return 2;
    if (text == "debug")
        return 3;
    if (text.size() == 1 && text[0] >= '0' && text[0] <= '9')
        return text[0] - '0';
    return -1;
}

void
warn(const std::string &msg)
{
    if (g_level >= 1)
        detail::logLine("warn", msg);
}

void
fatal(const std::string &msg)
{
    detail::logLine("fatal", msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    detail::logLine("panic", msg);
    std::abort();
}

} // namespace pracleak
