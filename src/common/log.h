/**
 * @file
 * Minimal leveled logging plus fatal/panic helpers in the spirit of
 * gem5's logging.hh: panic() for simulator bugs, fatal() for bad user
 * configuration.
 */

#ifndef PRACLEAK_COMMON_LOG_H
#define PRACLEAK_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pracleak {

/** Global verbosity: 0 = silent, 1 = warn, 2 = info, 3 = debug. */
int logLevel();

/** Set global verbosity (returns previous level). */
int setLogLevel(int level);

namespace detail {
void logLine(const char *tag, const std::string &msg);
} // namespace detail

/** Informational message (level >= 2). */
void inform(const std::string &msg);

/** Something works but is suspicious (level >= 1). */
void warn(const std::string &msg);

/** Unrecoverable user/configuration error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const std::string &msg);

} // namespace pracleak

#endif // PRACLEAK_COMMON_LOG_H
