/**
 * @file
 * Minimal leveled logging plus fatal/panic helpers in the spirit of
 * gem5's logging.hh: panic() for simulator bugs, fatal() for bad user
 * configuration.
 */

#ifndef PRACLEAK_COMMON_LOG_H
#define PRACLEAK_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace pracleak {

/** Global verbosity: 0 = silent, 1 = warn, 2 = info, 3 = debug. */
int logLevel();

/** Set global verbosity (returns previous level). */
int setLogLevel(int level);

namespace detail {
void logLine(const char *tag, const std::string &msg);
} // namespace detail

/** Informational message (level >= 2). */
void inform(const std::string &msg);

/**
 * User-facing progress line (level >= 1): `[context] msg`.  Sweep
 * runners use the context to identify the scenario/shard/worker, so
 * interleaved output from a fleet stays attributable.  Deliberately
 * visible at the default level -- progress is the product for a
 * long-running sweep, not debug chatter -- but silenced by --quiet
 * (level 0).
 */
void progress(const std::string &context, const std::string &msg);

/**
 * Parse a --log-level value: "quiet"/"warn"/"info"/"debug" or a bare
 * digit.  Returns -1 on anything unrecognized.
 */
int parseLogLevel(const std::string &text);

/** Something works but is suspicious (level >= 1). */
void warn(const std::string &msg);

/** Unrecoverable user/configuration error: print and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const std::string &msg);

} // namespace pracleak

#endif // PRACLEAK_COMMON_LOG_H
