/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Modules register scalar counters and histograms against a StatSet and
 * bump them during simulation; harnesses read them back by name to
 * build the paper's tables.  Intentionally simple: no formulas, no
 * hierarchy beyond dotted names.
 */

#ifndef PRACLEAK_COMMON_STATS_H
#define PRACLEAK_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pracleak {

/** A streaming histogram tracking count/sum/min/max plus fixed buckets. */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket in sample units.
     * @param num_buckets  Number of buckets; samples beyond the last
     *                     bucket are accumulated in an overflow bin.
     */
    explicit Histogram(double bucket_width = 100.0,
                       std::size_t num_buckets = 64);

    /** Record one sample. */
    void sample(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Approximate p-th percentile (p in [0,100]) from the buckets. */
    double percentile(double p) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * JSON rendering for sweep rows and journal records:
     * {bucket_width, count, sum, min, max, p50, p95, p99, overflow,
     * buckets}.  The percentiles are the bucket-approximated
     * percentile() values, precomputed so result consumers need not
     * re-derive them from the bucket array.  Trailing empty buckets
     * are trimmed so rows stay compact; the result round-trips
     * through the strict sim::parseJson.
     */
    std::string toJson() const;

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named collection of counters and histograms.
 *
 * Lookups create-on-first-use, so modules can stay decoupled from the
 * harness that eventually prints the values.
 */
class StatSet
{
  public:
    /** Mutable reference to (auto-created) scalar counter @p name. */
    std::uint64_t &counter(const std::string &name);

    /** Read a counter; returns 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** Mutable reference to (auto-created) histogram @p name. */
    Histogram &histogram(const std::string &name);

    /**
     * Like histogram(), but a histogram created by this call uses
     * the given shape instead of the defaults.  An existing
     * histogram keeps its shape: first registration wins.
     */
    Histogram &histogram(const std::string &name, double bucket_width,
                         std::size_t num_buckets);

    /** Whether a histogram named @p name exists. */
    bool hasHistogram(const std::string &name) const;

    /** Read-only histogram access; histogram must exist. */
    const Histogram &getHistogram(const std::string &name) const;

    /** All counters, sorted by name (std::map iteration order). */
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /** Drop all counters and histograms. */
    void reset();

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace pracleak

#endif // PRACLEAK_COMMON_STATS_H
