/**
 * @file
 * Fundamental types and time conversion helpers shared by every module.
 *
 * The whole simulator runs in a single clock domain: DDR5-8000 has a
 * 4 GHz command clock, and the paper's cores also run at 4 GHz, so one
 * simulator cycle is exactly 0.25 ns for both the memory system and the
 * CPU front end.
 */

#ifndef PRACLEAK_COMMON_TYPES_H
#define PRACLEAK_COMMON_TYPES_H

#include <cstdint>

namespace pracleak {

/** A point in (or span of) simulated time, in 0.25 ns cycles. */
using Cycle = std::uint64_t;

/** Physical (byte) address as seen by the memory controller. */
using Addr = std::uint64_t;

/** Sentinel for "no cycle" / "never". */
inline constexpr Cycle kNeverCycle = ~Cycle{0};

/** Simulator clock period in nanoseconds (DDR5-8000, 4 GHz). */
inline constexpr double kTckNs = 0.25;

/** Simulator clock frequency in Hz. */
inline constexpr double kClockHz = 4.0e9;

/** Cache line size in bytes (fixed across the whole model). */
inline constexpr std::uint32_t kLineBytes = 64;

/** log2(kLineBytes). */
inline constexpr std::uint32_t kLineShift = 6;

/** Convert a duration in nanoseconds to whole cycles (rounding up). */
constexpr Cycle
nsToCycles(double ns)
{
    const double cycles = ns / kTckNs;
    const auto whole = static_cast<Cycle>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

/** Convert a cycle count back to nanoseconds. */
constexpr double
cyclesToNs(Cycle cycles)
{
    return static_cast<double>(cycles) * kTckNs;
}

/** Convert a cycle count to microseconds. */
constexpr double
cyclesToUs(Cycle cycles)
{
    return cyclesToNs(cycles) / 1000.0;
}

} // namespace pracleak

#endif // PRACLEAK_COMMON_TYPES_H
