#include "common/stats.h"

#include <cstdio>
#include <stdexcept>

namespace pracleak {

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
}

void
Histogram::sample(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        if (value < min_) min_ = value;
        if (value > max_) max_ = value;
    }
    ++count_;
    sum_ += value;

    const auto idx = static_cast<std::size_t>(value / bucketWidth_);
    if (value < 0 || idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double target = count_ * p / 100.0;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (static_cast<double>(seen) >= target)
            return (static_cast<double>(i) + 0.5) * bucketWidth_;
    }
    return max_;
}

std::string
Histogram::toJson() const
{
    std::size_t used = buckets_.size();
    while (used > 0 && buckets_[used - 1] == 0)
        --used;

    char buffer[64];
    std::string out = "{\"bucket_width\": ";
    std::snprintf(buffer, sizeof(buffer), "%.17g", bucketWidth_);
    out += buffer;
    auto field = [&](const char *name, double value) {
        out += ", \"";
        out += name;
        out += "\": ";
        std::snprintf(buffer, sizeof(buffer), "%.17g", value);
        out += buffer;
    };
    out += ", \"count\": " + std::to_string(count_);
    field("sum", sum_);
    field("min", min());
    field("max", max());
    field("p50", percentile(50.0));
    field("p95", percentile(95.0));
    field("p99", percentile(99.0));
    out += ", \"overflow\": " + std::to_string(overflow_);
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < used; ++i) {
        if (i)
            out += ", ";
        out += std::to_string(buckets_[i]);
    }
    out += "]}";
    return out;
}

std::uint64_t &
StatSet::counter(const std::string &name)
{
    return counters_[name];
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

Histogram &
StatSet::histogram(const std::string &name)
{
    return histograms_[name];
}

Histogram &
StatSet::histogram(const std::string &name, double bucket_width,
                   std::size_t num_buckets)
{
    return histograms_
        .try_emplace(name, Histogram(bucket_width, num_buckets))
        .first->second;
}

bool
StatSet::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) != 0;
}

const Histogram &
StatSet::getHistogram(const std::string &name) const
{
    const auto it = histograms_.find(name);
    if (it == histograms_.end())
        throw std::out_of_range("no histogram named " + name);
    return it->second;
}

void
StatSet::reset()
{
    counters_.clear();
    histograms_.clear();
}

} // namespace pracleak
