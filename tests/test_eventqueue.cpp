/**
 * @file
 * Event-driven per-channel scheduling correctness: the event path
 * (MemoryController::advanceTo + the exact nextWorkAt() bound) must
 * be byte-identical to the lockstep per-cycle tick under every
 * registered defense, in multi-channel configurations, for both the
 * full-system and trace-replay drivers.  Any divergence here is a
 * bug in the next-work bookkeeping -- most likely a bound that went
 * stale (missed invalidation) or optimistic (skipped an effective
 * tick), the class of bug that motivated the maintenance-drain
 * fast-forward fix (src/mem/DESIGN.md).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cpu/system.h"
#include "sim/design.h"
#include "sim/trace_support.h"
#include "trace/replay.h"
#include "workload/suite.h"

namespace pracleak {
namespace {

/** The full registered-defense catalog (scenarios_defense order). */
const std::vector<std::string> &
allDefenses()
{
    static const std::vector<std::string> defenses = {
        "none",  "abo-only", "abo+acb-rfm", "tprac",
        "para",  "graphene", "pb-rfm"};
    return defenses;
}

void
expectReplaysIdentical(const trace::ReplayResult &lockstep,
                       const trace::ReplayResult &event,
                       const std::string &defense)
{
    EXPECT_EQ(lockstep.endCycle, event.endCycle) << defense;
    EXPECT_EQ(lockstep.replayedRequests, event.replayedRequests)
        << defense;
    EXPECT_EQ(lockstep.fullyDrained, event.fullyDrained) << defense;
    ASSERT_EQ(lockstep.channels.size(), event.channels.size())
        << defense;
    for (std::size_t c = 0; c < lockstep.channels.size(); ++c)
        EXPECT_TRUE(lockstep.channels[c] == event.channels[c])
            << defense << " channel " << c;
}

void
expectRunsIdentical(const RunResult &lockstep, const RunResult &event)
{
    EXPECT_EQ(lockstep.measureCycles, event.measureCycles);
    EXPECT_EQ(lockstep.aboRfms, event.aboRfms);
    EXPECT_EQ(lockstep.acbRfms, event.acbRfms);
    EXPECT_EQ(lockstep.tbRfms, event.tbRfms);
    EXPECT_EQ(lockstep.tbRfmsSkipped, event.tbRfmsSkipped);
    EXPECT_EQ(lockstep.grapheneRfms, event.grapheneRfms);
    EXPECT_EQ(lockstep.pbRfms, event.pbRfms);
    EXPECT_EQ(lockstep.mitigationEvents, event.mitigationEvents);
    EXPECT_EQ(lockstep.alerts, event.alerts);
    EXPECT_EQ(lockstep.rowMisses, event.rowMisses);
    EXPECT_EQ(lockstep.maxCounterSeen, event.maxCounterSeen);
    EXPECT_EQ(lockstep.energyCounts.acts, event.energyCounts.acts);
    EXPECT_EQ(lockstep.energyCounts.reads, event.energyCounts.reads);
    EXPECT_EQ(lockstep.energyCounts.writes,
              event.energyCounts.writes);
    EXPECT_EQ(lockstep.energyCounts.refreshes,
              event.energyCounts.refreshes);
    ASSERT_EQ(lockstep.cores.size(), event.cores.size());
    for (std::size_t i = 0; i < lockstep.cores.size(); ++i) {
        EXPECT_EQ(lockstep.cores[i].instrs, event.cores[i].instrs);
        EXPECT_EQ(lockstep.cores[i].cycles, event.cores[i].cycles);
    }
    ASSERT_EQ(lockstep.channels.size(), event.channels.size());
    for (std::size_t c = 0; c < lockstep.channels.size(); ++c) {
        EXPECT_EQ(lockstep.channels[c].energyCounts.acts,
                  event.channels[c].energyCounts.acts);
        EXPECT_EQ(lockstep.channels[c].tbRfms,
                  event.channels[c].tbRfms);
        EXPECT_EQ(lockstep.channels[c].pbRfms,
                  event.channels[c].pbRfms);
        EXPECT_EQ(lockstep.channels[c].alerts,
                  event.channels[c].alerts);
        EXPECT_EQ(lockstep.channels[c].maxCounterSeen,
                  event.channels[c].maxCounterSeen);
    }
}

/**
 * Golden: record once, replay under every registered defense with
 * the lockstep and the event scheduler; all per-channel stats, the
 * horizon, and the drain status must match exactly.  Cross-defense
 * replays exercise back-pressure (the blocked-core skip) and every
 * drain flavour (RFMab, RFMpb, refresh) against the bound.
 */
TEST(EventQueue, EveryDefenseMultiChannelReplayIdentical)
{
    sim::DesignConfig design;
    design.label = "eventqueue";
    design.mitigation = "none";
    design.nbo = 1024;
    design.channels = 2;
    sim::RunBudget budget;
    budget.warmup = 5'000;
    budget.measure = 40'000;
    const sim::RecordedRun recorded = sim::recordSuiteRun(
        sim::findSuiteEntry("h_scan_mix"), design, budget);

    for (const std::string &defense : allDefenses()) {
        trace::ReplayOptions options;
        options.mitigation = defense;
        options.fastForward = false;
        const trace::ReplayResult lockstep =
            trace::replayTrace(recorded.trace, options);
        options.fastForward = true;
        const trace::ReplayResult event =
            trace::replayTrace(recorded.trace, options);
        expectReplaysIdentical(lockstep, event, defense);
        if (defense == "none")
            EXPECT_TRUE(event.matchesRecorded(recorded.trace))
                << "same-defense event replay must reproduce the "
                   "recording bit-for-bit";
    }
}

/**
 * Golden: the full-system driver (System::stepAll channel stepping)
 * under both schedulers, for the defenses with the trickiest drain
 * behaviour, on a multi-channel config.
 */
TEST(EventQueue, SystemSchedulersIdenticalAcrossDefenses)
{
    for (const std::string &defense :
         {std::string("tprac"), std::string("graphene"),
          std::string("pb-rfm")}) {
        RunResult results[2];
        for (int ff = 0; ff < 2; ++ff) {
            sim::DesignConfig design;
            design.label = "eventqueue";
            design.mitigation = defense;
            design.channels = 2;
            design.fastForward = ff == 1;
            sim::RunBudget budget;
            budget.warmup = 5'000;
            budget.measure = 40'000;
            results[ff] =
                sim::runOne(sim::findSuiteEntry("m_blend"), design,
                            budget, 4);
        }
        SCOPED_TRACE(defense);
        expectRunsIdentical(results[0], results[1]);
    }
}

/**
 * A saturated 8-thread system keeps every channel busy nearly every
 * cycle -- the event path's worst case, where skips are short and
 * the cache-rebuild fusion carries the load.  Two independent event
 * runs must agree with each other (determinism) and with lockstep
 * (exactness).
 */
TEST(EventQueue, SaturatedEightThreadEventPathDeterministic)
{
    auto run = [](bool fast_forward) {
        sim::DesignConfig design;
        design.label = "eventqueue";
        design.mitigation = "tprac";
        design.channels = 2;
        design.fastForward = fast_forward;
        sim::RunBudget budget;
        budget.warmup = 2'000;
        budget.measure = 20'000;
        return sim::runOne(sim::findSuiteEntry("h_rand_heavy"),
                           design, budget, 8);
    };
    const RunResult lockstep = run(false);
    const RunResult event_a = run(true);
    const RunResult event_b = run(true);
    expectRunsIdentical(lockstep, event_a);
    expectRunsIdentical(event_a, event_b);
}

} // namespace
} // namespace pracleak
