/**
 * @file
 * Tests for physical <-> DRAM address translation, including the
 * structural properties the attacks rely on (pages sharing rows under
 * MOP).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "mem/address_mapper.h"

namespace pracleak {
namespace {

TEST(AddressMapper, RoundTripMop)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const Addr addr = (rng.next() & ((1ULL << 37) - 1)) &
                          ~static_cast<Addr>(kLineBytes - 1);
        const DramAddress da = mapper.map(addr);
        EXPECT_EQ(mapper.compose(da), addr);
    }
}

TEST(AddressMapper, RoundTripRowInterleaved)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::RowInterleaved);
    Rng rng(4);
    for (int i = 0; i < 10000; ++i) {
        const Addr addr = (rng.next() & ((1ULL << 37) - 1)) &
                          ~static_cast<Addr>(kLineBytes - 1);
        const DramAddress da = mapper.map(addr);
        EXPECT_EQ(mapper.compose(da), addr);
    }
}

TEST(AddressMapper, ComposeMapInverse)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4);
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        DramAddress da;
        da.rank = static_cast<std::uint32_t>(rng.range(4));
        da.bankGroup = static_cast<std::uint32_t>(rng.range(8));
        da.bank = static_cast<std::uint32_t>(rng.range(4));
        da.row = static_cast<std::uint32_t>(rng.range(128 * 1024));
        da.col = static_cast<std::uint32_t>(rng.range(128));
        const DramAddress back = mapper.map(mapper.compose(da));
        EXPECT_TRUE(back.sameRow(da));
        EXPECT_EQ(back.col, da.col);
    }
}

TEST(AddressMapper, MopKeepsFourLineBlocksTogether)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4);
    const Addr base = 0x12340000;
    const DramAddress first = mapper.map(base);
    for (Addr off = 0; off < 4 * kLineBytes; off += kLineBytes) {
        const DramAddress da = mapper.map(base + off);
        EXPECT_TRUE(da.sameRow(first));
    }
    // The fifth line moves to another bank.
    EXPECT_FALSE(mapper.map(base + 4 * kLineBytes).sameBank(first));
}

TEST(AddressMapper, MopSpreadsPageAcrossBanks)
{
    // A 4 KB page (64 lines) must touch many banks -- the bank-level
    // parallelism property that lets two processes share a row.
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4);
    std::set<std::uint32_t> banks;
    for (Addr off = 0; off < 4096; off += kLineBytes)
        banks.insert(mapper.flatBank(mapper.map(0x40000000 + off)));
    EXPECT_GE(banks.size(), 16u);
}

TEST(AddressMapper, MopRowHoldsManyPages)
{
    // The 128 columns of one row must come from multiple distinct
    // 4 KB-aligned physical regions (shared-row attack surface).
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4);
    const DramAddress row0{0, 0, 0, 1000, 0};
    std::set<Addr> pages;
    for (std::uint32_t col = 0; col < 128; ++col) {
        DramAddress da = row0;
        da.col = col;
        pages.insert(mapper.compose(da) >> 12);
    }
    EXPECT_GE(pages.size(), 16u);
}

TEST(AddressMapper, RowInterleavedKeepsRowContiguous)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::RowInterleaved);
    const DramAddress first = mapper.map(0x80000000);
    for (Addr off = 0; off < 128 * kLineBytes; off += kLineBytes)
        EXPECT_TRUE(mapper.map(0x80000000 + off).sameRow(first));
}

TEST(AddressMapper, DistinctAddressesDistinctCoordinates)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4);
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
        seen;
    for (Addr line = 0; line < 4096; ++line) {
        const DramAddress da = mapper.map(line << kLineShift);
        seen.insert({mapper.flatBank(da), da.row, da.col});
    }
    EXPECT_EQ(seen.size(), 4096u);
}

TEST(AddressMapper, FlatBankCoversFullRange)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4);
    std::set<std::uint32_t> banks;
    for (Addr line = 0; line < 1024; ++line)
        banks.insert(mapper.flatBank(mapper.map(line << kLineShift)));
    EXPECT_EQ(banks.size(), 128u);
}

} // namespace
} // namespace pracleak
