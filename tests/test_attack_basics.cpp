/**
 * @file
 * Integration tests for the attack building blocks: the probe's
 * ability to observe RFM latency spikes, the hammer agent's ability
 * to trigger Alert Back-Off, and the characterization behaviour of
 * Section 3.1 (latency grows with the PRAC level).
 */

#include <gtest/gtest.h>

#include "attack/agents.h"
#include "attack/harness.h"
#include "common/types.h"

namespace pracleak {
namespace {

DramSpec
specWith(std::uint32_t nbo, std::uint32_t nmit)
{
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = nbo;
    spec.prac.nmit = nmit;
    return spec;
}

ControllerConfig
aboOnlyConfig()
{
    ControllerConfig config;
    config.mode = MitigationMode::AboOnly;
    return config;
}

TEST(AttackBasics, HammerTriggersAlert)
{
    const DramSpec spec = specWith(256, 1);
    AttackHarness harness(spec, aboOnlyConfig());
    const AddressMapper &mapper = harness.mem().mapper();

    const DramAddress target{0, 4, 2, 0x100, 0};
    std::vector<DramAddress> decoys{{0, 4, 2, 0x200, 0},
                                    {0, 4, 2, 0x201, 0},
                                    {0, 4, 2, 0x202, 0},
                                    {0, 4, 2, 0x203, 0}};
    HammerAgent hammer(mapper, target, decoys);
    harness.add(&hammer);

    hammer.startHammer(300);
    harness.runUntil([&] { return harness.mem().prac().alerts() > 0; },
                     nsToCycles(200000));

    EXPECT_EQ(harness.mem().prac().alerts(), 1u);
    EXPECT_EQ(harness.mem().prac().lastAlertRow(), 0x100u);
    // Service completes with one ABO-RFM at PRAC level 1.
    harness.run(nsToCycles(2000));
    EXPECT_EQ(harness.mem().rfmCount(RfmReason::Abo), 1u);
}

TEST(AttackBasics, BelowNboNeverAlerts)
{
    const DramSpec spec = specWith(256, 1);
    AttackHarness harness(spec, aboOnlyConfig());
    const AddressMapper &mapper = harness.mem().mapper();

    const DramAddress target{0, 4, 2, 0x100, 0};
    std::vector<DramAddress> decoys{{0, 4, 2, 0x200, 0},
                                    {0, 4, 2, 0x201, 0},
                                    {0, 4, 2, 0x202, 0},
                                    {0, 4, 2, 0x203, 0}};
    HammerAgent hammer(mapper, target, decoys);
    harness.add(&hammer);

    hammer.startHammer(200); // < NBO
    harness.runUntil([&] { return hammer.done(); },
                     nsToCycles(200000));
    EXPECT_TRUE(hammer.done());
    EXPECT_EQ(harness.mem().prac().alerts(), 0u);
}

TEST(AttackBasics, ProbeSeesRfmSpike)
{
    const DramSpec spec = specWith(256, 4);
    ControllerConfig base_config = aboOnlyConfig();
    // Disable refresh so the only >300 ns events are RFMs; the real
    // receiver separates REF from RFM with the two-rank coincidence
    // detector (see covert.cpp) instead.
    base_config.refreshEnabled = false;
    AttackHarness harness(spec, base_config);
    const AddressMapper &mapper = harness.mem().mapper();

    // Probe in a different bank from the hammer.
    ProbeAgent probe(mapper.compose(DramAddress{0, 0, 0, 3, 0}));
    const DramAddress target{0, 4, 2, 0x100, 0};
    std::vector<DramAddress> decoys{{0, 4, 2, 0x200, 0},
                                    {0, 4, 2, 0x201, 0},
                                    {0, 4, 2, 0x202, 0},
                                    {0, 4, 2, 0x203, 0}};
    HammerAgent hammer(mapper, target, decoys);
    harness.add(&probe);
    harness.add(&hammer);

    // Quiet period: no spike beyond refresh.
    harness.run(spec.timing.tREFI);
    const Cycle quiet_mark = harness.now();

    hammer.startHammer(280);
    harness.runUntil([&] { return probe.spikeSince(quiet_mark); },
                     nsToCycles(300000));
    EXPECT_TRUE(probe.spikeSince(quiet_mark));
    EXPECT_GT(harness.mem().prac().alerts(), 0u);
}

TEST(AttackBasics, ProbeLatencyStableWithoutAbo)
{
    const DramSpec spec = specWith(1024, 1);
    ControllerConfig config = aboOnlyConfig();
    config.refreshEnabled = false; // isolate: no REF spikes either
    AttackHarness harness(spec, config);
    const AddressMapper &mapper = harness.mem().mapper();

    ProbeAgent probe(mapper.compose(DramAddress{0, 0, 0, 3, 0}));
    harness.add(&probe);
    harness.run(nsToCycles(100000));

    ASSERT_GT(probe.completed(), 100u);
    for (const auto &sample : probe.samples())
        EXPECT_LT(sample.latency, ProbeAgent::spikeThreshold());
}

/**
 * Section 3.1 characterization: the observed spike latency grows with
 * the number of RFMs per ABO (paper: ~545/976/1669 ns for 1/2/4).
 */
class PracLevelLatency : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PracLevelLatency, SpikeScalesWithPracLevel)
{
    const std::uint32_t nmit = GetParam();
    const DramSpec spec = specWith(256, nmit);
    ControllerConfig config = aboOnlyConfig();
    config.refreshEnabled = false;
    AttackHarness harness(spec, config);
    const AddressMapper &mapper = harness.mem().mapper();

    ProbeAgent probe(mapper.compose(DramAddress{0, 0, 0, 3, 0}));
    const DramAddress target{0, 4, 2, 0x100, 0};
    std::vector<DramAddress> decoys{{0, 4, 2, 0x200, 0},
                                    {0, 4, 2, 0x201, 0},
                                    {0, 4, 2, 0x202, 0},
                                    {0, 4, 2, 0x203, 0}};
    HammerAgent hammer(mapper, target, decoys);
    harness.add(&probe);
    harness.add(&hammer);

    hammer.startHammer(280);
    harness.runUntil([&] { return probe.lastSpikeAt() != 0; },
                     nsToCycles(300000));
    ASSERT_NE(probe.lastSpikeAt(), 0u);

    // Find the largest observed latency: it must bracket the RFM
    // burst duration nmit * 350 ns.
    Cycle max_lat = 0;
    for (const auto &sample : probe.samples())
        max_lat = std::max(max_lat, sample.latency);
    EXPECT_GE(cyclesToNs(max_lat), 350.0 * nmit);
    EXPECT_LE(cyclesToNs(max_lat), 350.0 * nmit + 900.0);
}

INSTANTIATE_TEST_SUITE_P(Levels, PracLevelLatency,
                         ::testing::Values(1u, 2u, 4u));

} // namespace
} // namespace pracleak
