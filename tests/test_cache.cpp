/**
 * @file
 * Unit tests for the cache hierarchy: tag arrays, LRU, MSHR merging,
 * writebacks, and clflush.
 */

#include <gtest/gtest.h>

#include "cpu/cache.h"

namespace pracleak {
namespace {

TEST(TagArray, HitAfterInsert)
{
    TagArray tags(CacheLevelConfig{8 * 1024, 4, 1});
    EXPECT_FALSE(tags.lookup(100));
    tags.insert(100, false);
    EXPECT_TRUE(tags.lookup(100));
}

TEST(TagArray, LruEviction)
{
    // One set: 4 ways, 4 sets -> pick lines mapping to set 0.
    TagArray tags(CacheLevelConfig{16 * 64, 4, 1}); // 4 sets x 4 ways
    // Lines 0, 4, 8, ... all map to set 0 (line & 3).
    for (Addr line = 0; line < 16; line += 4)
        tags.insert(line, false);
    tags.lookup(0); // refresh line 0: line 4 is now LRU
    const auto victim = tags.insert(16, false);
    ASSERT_TRUE(victim);
    EXPECT_EQ(victim->line, 4u);
    EXPECT_TRUE(tags.probe(0));
    EXPECT_FALSE(tags.probe(4));
}

TEST(TagArray, DirtyBitSurvivesEviction)
{
    TagArray tags(CacheLevelConfig{4 * 64, 4, 1}); // 1 set x 4 ways
    tags.insert(0, false);
    tags.markDirty(0);
    tags.insert(1, false);
    tags.insert(2, false);
    tags.insert(3, false);
    const auto victim = tags.insert(4, false); // evicts LRU line 0
    ASSERT_TRUE(victim);
    EXPECT_EQ(victim->line, 0u);
    EXPECT_TRUE(victim->dirty);
}

TEST(TagArray, InvalidateReportsDirty)
{
    TagArray tags(CacheLevelConfig{8 * 1024, 4, 1});
    tags.insert(7, false);
    tags.markDirty(7);
    const auto dirty = tags.invalidate(7);
    ASSERT_TRUE(dirty);
    EXPECT_TRUE(*dirty);
    EXPECT_FALSE(tags.probe(7));
    EXPECT_FALSE(tags.invalidate(7)); // already gone
}

TEST(TagArray, ReinsertMergesDirty)
{
    TagArray tags(CacheLevelConfig{8 * 1024, 4, 1});
    tags.insert(9, true);
    tags.insert(9, false); // must not lose the dirty bit
    const auto dirty = tags.invalidate(9);
    ASSERT_TRUE(dirty);
    EXPECT_TRUE(*dirty);
}

class CacheHierarchyTest : public ::testing::Test
{
  protected:
    CacheHierarchyTest()
        : spec_(DramSpec::ddr5_8000b())
    {
        ControllerConfig config;
        config.refreshEnabled = false;
        mem_ = std::make_unique<MemoryController>(spec_, config,
                                                  &stats_);
        hier_ = std::make_unique<CacheHierarchy>(CacheHierConfig{}, 2,
                                                 mem_.get(), &stats_);
    }

    /** Load and spin the controller until the callback fires. */
    Cycle
    load(std::uint32_t core, Addr addr)
    {
        Cycle latency = kNeverCycle;
        EXPECT_TRUE(hier_->tryLoad(core, addr, [&](Cycle lat) {
            latency = lat;
        }));
        for (int i = 0; i < 100000 && latency == kNeverCycle; ++i)
            mem_->tick();
        EXPECT_NE(latency, kNeverCycle);
        return latency;
    }

    DramSpec spec_;
    StatSet stats_;
    std::unique_ptr<MemoryController> mem_;
    std::unique_ptr<CacheHierarchy> hier_;
};

TEST_F(CacheHierarchyTest, MissThenHit)
{
    const Cycle miss = load(0, 0x1000000);
    const Cycle hit = load(0, 0x1000000);
    EXPECT_GT(miss, hit);
    // L1 hit costs exactly the L1 latency.
    EXPECT_EQ(hit, CacheHierConfig{}.l1.latency);
    EXPECT_EQ(stats_.get("cache.l1_hits"), 1u);
    EXPECT_EQ(stats_.get("cache.llc_misses"), 1u);
}

TEST_F(CacheHierarchyTest, CrossCoreLlcSharing)
{
    load(0, 0x2000000);
    // Other core: misses its private L1/L2 but hits the shared LLC.
    const Cycle latency = load(1, 0x2000000);
    const CacheHierConfig config;
    EXPECT_EQ(latency, config.l1.latency + config.l2.latency +
                           config.llc.latency);
    EXPECT_EQ(stats_.get("cache.llc_hits"), 1u);
}

TEST_F(CacheHierarchyTest, MshrMergesConcurrentMisses)
{
    int done = 0;
    ASSERT_TRUE(hier_->tryLoad(0, 0x3000000,
                               [&](Cycle) { ++done; }));
    ASSERT_TRUE(hier_->tryLoad(1, 0x3000000,
                               [&](Cycle) { ++done; }));
    EXPECT_EQ(hier_->outstandingMisses(), 1u); // merged
    EXPECT_EQ(stats_.get("cache.mshr_merges"), 1u);
    for (int i = 0; i < 100000 && done < 2; ++i)
        mem_->tick();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(mem_->dram().issueCount(CmdType::RD), 1u);
}

TEST_F(CacheHierarchyTest, FlushForcesNextAccessToDram)
{
    load(0, 0x4000000);
    const std::uint64_t reads_before =
        mem_->dram().issueCount(CmdType::RD);
    hier_->flush(0x4000000);
    load(0, 0x4000000);
    EXPECT_EQ(mem_->dram().issueCount(CmdType::RD), reads_before + 1);
}

TEST_F(CacheHierarchyTest, StoreAllocatesAndDirties)
{
    ASSERT_TRUE(hier_->tryStore(0, 0x5000000));
    for (int i = 0; i < 100000 && hier_->outstandingMisses() > 0; ++i)
        mem_->tick();
    // Line present now; flushing it must produce a writeback.
    const std::uint64_t wb_before = stats_.get("cache.writebacks");
    hier_->flush(0x5000000);
    EXPECT_EQ(stats_.get("cache.writebacks"), wb_before + 1);
}

TEST_F(CacheHierarchyTest, MshrCapacityBounded)
{
    // Capacity = 64 per core x 2 cores = 128.
    int accepted = 0;
    for (int i = 0; i < 200; ++i) {
        const Addr addr = 0x6000000 + (static_cast<Addr>(i) << 20);
        if (hier_->tryLoad(0, addr, [](Cycle) {}))
            ++accepted;
    }
    // The controller queue (64) backpressures before MSHRs run out.
    EXPECT_LE(hier_->outstandingMisses(), 128u);
    EXPECT_LT(accepted, 200);
}

} // namespace
} // namespace pracleak
