/**
 * @file
 * Tests for the Section-7.2 extension: per-bank RFM (RFMpb) and the
 * TPRAC-PB variant that uses it.
 */

#include <gtest/gtest.h>

#include "attack/agents.h"
#include "attack/harness.h"
#include "mem/controller.h"
#include "tprac/tb_rfm.h"

namespace pracleak {
namespace {

TEST(RfmPb, BlocksOnlyTargetBank)
{
    const DramSpec spec = DramSpec::ddr5_8000b();
    DramDevice dev(spec);
    dev.issue(Command{CmdType::RFMpb, 0, 0, 0, 0, 0}, 0);

    // Target bank gated for tRFMpb; a neighbour is free immediately.
    EXPECT_GE(dev.earliestIssue(Command{CmdType::ACT, 0, 0, 0, 5, 0}),
              spec.timing.tRFMpb);
    EXPECT_EQ(dev.earliestIssue(Command{CmdType::ACT, 0, 0, 1, 5, 0}),
              0u);
    EXPECT_EQ(dev.channelBlockedUntil(), 0u);
}

TEST(RfmPb, RequiresClosedBank)
{
    DramDevice dev(DramSpec::ddr5_8000b());
    dev.issue(Command{CmdType::ACT, 0, 0, 0, 7, 0}, 0);
    EXPECT_EQ(dev.earliestIssue(Command{CmdType::RFMpb, 0, 0, 0, 0, 0}),
              kNeverCycle);
}

TEST(RfmPb, ListenerMitigatesOneBank)
{
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = 1024;
    PracEngineConfig config;
    config.queue = QueueKind::Ideal;
    PracEngine engine(spec, config);

    engine.onActivate(3, 42, 0);
    engine.onActivate(7, 43, 1);
    engine.onRfmPb(3, 100);
    EXPECT_EQ(engine.counters().get(3, 42), 0u);  // mitigated
    EXPECT_EQ(engine.counters().get(7, 43), 1u);  // untouched
    EXPECT_EQ(engine.mitigatedRows(), 1u);
}

TEST(TpracPb, RotatesThroughEveryBank)
{
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = 1024;

    ControllerConfig config;
    config.mode = MitigationMode::Tprac;
    config.tbRfm = TbRfmConfig::forNbo(1024, true, spec);
    config.tbRfm.perBank = true;
    MemoryController mem(spec, config);

    // One full window must produce one RFMpb per bank.
    mem.run(config.tbRfm.windowCycles + spec.timing.tREFI);
    const std::uint64_t pbs = mem.dram().issueCount(CmdType::RFMpb);
    EXPECT_GE(pbs, static_cast<std::uint64_t>(
                       spec.org.totalBanks()));
    EXPECT_EQ(mem.dram().issueCount(CmdType::RFMab), 0u);
}

TEST(TpracPb, StillPreventsAlerts)
{
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = 512;
    spec.timing.tREFW = nsToCycles(2.0e6); // scaled universe

    ControllerConfig config;
    config.mode = MitigationMode::Tprac;
    config.tbRfm = TbRfmConfig::forNbo(512, true, spec);
    config.tbRfm.perBank = true;

    AttackHarness harness(spec, config);
    const AddressMapper &mapper = harness.mem().mapper();
    const DramAddress target{0, 4, 2, 0x100, 0};
    std::vector<DramAddress> decoys;
    for (std::uint32_t i = 0; i < 4; ++i)
        decoys.push_back(DramAddress{0, 4, 2, 0x200 + i, 0});
    HammerAgent hammer(mapper, target, decoys);
    harness.add(&hammer);

    // Aggressive re-hammering across many windows.
    const Cycle end = config.tbRfm.windowCycles * 24;
    while (harness.now() < end) {
        if (hammer.done())
            hammer.startHammer(400);
        harness.step();
    }
    EXPECT_EQ(harness.mem().prac().alerts(), 0u);
    EXPECT_LT(harness.mem().prac().counters().maxEverSeen(), 512u);
}

TEST(TpracPb, NeverStallsOtherBanksObservably)
{
    // The receiver's probe (different bank) must not see RFM-scale
    // spikes under TPRAC-PB even at an aggressive window.
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = 128;

    ControllerConfig config;
    config.mode = MitigationMode::Tprac;
    config.tbRfm = TbRfmConfig::forNbo(128, true, spec);
    config.tbRfm.perBank = true;
    config.refreshEnabled = false;

    AttackHarness harness(spec, config);
    ProbeAgent probe(harness.mem().mapper().compose(
        DramAddress{0, 0, 0, 3, 0}));
    harness.add(&probe);
    harness.run(nsToCycles(200000));

    ASSERT_GT(probe.completed(), 500u);
    for (const auto &sample : probe.samples()) {
        // tRFMpb (210 ns) on the probe's own bank once per rotation
        // is the worst admissible delay; the channel-wide 350 ns+
        // stall of RFMab must never appear.
        EXPECT_LT(cyclesToNs(sample.latency), 330.0);
    }
}

} // namespace
} // namespace pracleak
