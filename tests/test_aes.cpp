/**
 * @file
 * Correctness tests for the T-table AES-128 victim implementation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/aes128t.h"

namespace pracleak {
namespace {

Aes128T::Key
keyFromBytes(std::initializer_list<int> bytes)
{
    Aes128T::Key key{};
    int i = 0;
    for (int b : bytes)
        key[i++] = static_cast<std::uint8_t>(b);
    return key;
}

TEST(Aes, Fips197Vector)
{
    // FIPS-197 Appendix C.1 AES-128 test vector.
    const Aes128T::Key key = keyFromBytes(
        {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09,
         0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f});
    Aes128T::Block pt{};
    const std::uint8_t pt_bytes[16] = {0x00, 0x11, 0x22, 0x33, 0x44,
                                       0x55, 0x66, 0x77, 0x88, 0x99,
                                       0xaa, 0xbb, 0xcc, 0xdd, 0xee,
                                       0xff};
    std::copy(std::begin(pt_bytes), std::end(pt_bytes), pt.begin());

    const std::uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a,
                                       0x7b, 0x04, 0x30, 0xd8, 0xcd,
                                       0xb7, 0x80, 0x70, 0xb4, 0xc5,
                                       0x5a};

    const Aes128T aes(key);
    const Aes128T::Block ct = aes.encrypt(pt);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(ct[i], expected[i]) << "byte " << i;
}

TEST(Aes, Nist800_38aVector)
{
    // SP 800-38A F.1.1 ECB-AES128 first block.
    const Aes128T::Key key = keyFromBytes(
        {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7,
         0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
    Aes128T::Block pt{};
    const std::uint8_t pt_bytes[16] = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e,
                                       0x40, 0x9f, 0x96, 0xe9, 0x3d,
                                       0x7e, 0x11, 0x73, 0x93, 0x17,
                                       0x2a};
    std::copy(std::begin(pt_bytes), std::end(pt_bytes), pt.begin());

    const std::uint8_t expected[16] = {0x3a, 0xd7, 0x7b, 0xb4, 0x0d,
                                       0x7a, 0x36, 0x60, 0xa8, 0x9e,
                                       0xca, 0xf3, 0x24, 0x66, 0xef,
                                       0x97};

    const Aes128T aes(key);
    const Aes128T::Block ct = aes.encrypt(pt);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(ct[i], expected[i]) << "byte " << i;
}

TEST(Aes, TableStructure)
{
    // Each Te table must contain the S-box in the byte lane the final
    // round extracts, and the MixColumns multiples elsewhere.
    for (int x = 0; x < 256; ++x) {
        const auto s =
            static_cast<std::uint32_t>(Aes128T::sbox(
                static_cast<std::uint8_t>(x)));
        EXPECT_EQ((Aes128T::tableWord(2, x) >> 24) & 0xff, s);
        EXPECT_EQ((Aes128T::tableWord(3, x) >> 16) & 0xff, s);
        EXPECT_EQ((Aes128T::tableWord(0, x) >> 8) & 0xff, s);
        EXPECT_EQ(Aes128T::tableWord(1, x) & 0xff, s);
    }
}

TEST(Aes, TablesAreRotationsOfEachOther)
{
    for (int x = 0; x < 256; ++x) {
        const std::uint32_t t0 = Aes128T::tableWord(0, x);
        EXPECT_EQ(Aes128T::tableWord(1, x), (t0 >> 8) | (t0 << 24));
        EXPECT_EQ(Aes128T::tableWord(2, x), (t0 >> 16) | (t0 << 16));
        EXPECT_EQ(Aes128T::tableWord(3, x), (t0 >> 24) | (t0 << 8));
    }
}

TEST(Aes, HookSeesFirstRoundIndices)
{
    // The first-round lookup indices must equal p_i XOR k_i in the
    // byte positions the attack exploits (x0 = p0 ^ k0 indexes Te0).
    const Aes128T::Key key = keyFromBytes(
        {0x5a, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09,
         0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f});
    Aes128T aes(key);

    Aes128T::Block pt{};
    pt[0] = 0x3c;

    std::vector<std::uint8_t> te0_round1;
    aes.setAccessHook(
        [&](int table, std::uint8_t index, int round) {
            if (table == 0 && round == 1)
                te0_round1.push_back(index);
        });
    aes.encrypt(pt);

    ASSERT_EQ(te0_round1.size(), 4u);
    EXPECT_EQ(te0_round1[0], 0x3c ^ 0x5a); // x0 = p0 ^ k0
    EXPECT_EQ(te0_round1[1], pt[4] ^ key[4]);
    EXPECT_EQ(te0_round1[2], pt[8] ^ key[8]);
    EXPECT_EQ(te0_round1[3], pt[12] ^ key[12]);
}

TEST(Aes, HookCountsAllLookups)
{
    Aes128T aes(Aes128T::Key{});
    std::map<int, int> per_round;
    aes.setAccessHook([&](int, std::uint8_t, int round) {
        ++per_round[round];
    });
    aes.encrypt(Aes128T::Block{});
    // 16 lookups in each of 10 rounds.
    ASSERT_EQ(per_round.size(), 10u);
    for (const auto &[round, count] : per_round)
        EXPECT_EQ(count, 16) << "round " << round;
}

TEST(Aes, EncryptIsDeterministic)
{
    const Aes128T aes(keyFromBytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                    12, 13, 14, 15, 16}));
    Aes128T::Block pt{};
    pt[7] = 0x42;
    EXPECT_EQ(aes.encrypt(pt), aes.encrypt(pt));
}

TEST(Aes, DifferentKeysDiffer)
{
    Aes128T::Block pt{};
    const Aes128T a(keyFromBytes({0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                  0, 0, 0, 0}));
    const Aes128T b(keyFromBytes({1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                  0, 0, 0, 0}));
    EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

} // namespace
} // namespace pracleak
