/**
 * @file
 * Telemetry subsystem tests: Histogram JSON round-trip through the
 * strict parser, sweep-output invariance under tracing (the
 * zero-interference contract), Chrome-trace structure and span
 * nesting, heartbeat round-trip/throttling, and fleet status over a
 * real work-stealing checkpoint directory including mtime-based
 * staleness.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/stats.h"
#include "sim/json.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "telemetry/fleet_status.h"
#include "telemetry/heartbeat.h"
#include "telemetry/io.h"
#include "telemetry/trace.h"

namespace pracleak {
namespace {

using sim::JsonValue;
using sim::ParamSet;
using sim::parseJson;
using sim::ResultRow;
using sim::RunOptions;
using sim::runScenario;
using sim::Scenario;
using sim::SweepResult;

/** A cheap deterministic scenario for sweep-level telemetry tests. */
Scenario
telemetryScenario()
{
    Scenario scenario;
    scenario.name = "unit_telemetry";
    scenario.title = "telemetry unit scenario";
    scenario.grid.axis("x", {1, 2, 3})
        .axis("tag", {JsonValue("a"), JsonValue("b")});
    scenario.checkpointEvery = 1;
    scenario.runPoint = [](const ParamSet &params) {
        ResultRow row = JsonValue::object();
        row.set("ratio",
                static_cast<double>(params.getInt("x")) / 3.0);
        row.set("label", params.getString("tag"));
        return std::vector<ResultRow>{std::move(row)};
    };
    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        double sum = 0.0;
        for (const ResultRow &row : rows)
            sum += row.get("ratio")->asDouble();
        ResultRow total = JsonValue::object();
        total.set("sum_ratio", sum);
        return std::vector<ResultRow>{std::move(total)};
    };
    return scenario;
}

/** Sweep JSON with its only nondeterministic fields zeroed. */
std::string
canonical(const SweepResult &result)
{
    JsonValue json = result.toJson();
    json.set("wall_seconds", 0.0);
    JsonValue provenance = *json.get("provenance");
    provenance.set("generated_at", "");
    json.set("provenance", provenance);
    return json.dump(2);
}

class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        directory_ =
            (std::filesystem::temp_directory_path() /
             ("pracleak_telemetry_" + std::to_string(::getpid()) +
              "_" + std::to_string(counter_++)))
                .string();
        std::filesystem::create_directories(directory_);
    }

    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(directory_, ec);
    }

    std::string readFile(const std::string &path) const
    {
        std::ifstream in(path, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }

    /** Shift a file's mtime @p seconds into the past. */
    static void ageFile(const std::string &path, double seconds)
    {
        const auto mtime = std::filesystem::last_write_time(path);
        std::filesystem::last_write_time(
            path, mtime - std::chrono::duration_cast<
                              std::filesystem::file_time_type::
                                  duration>(
                              std::chrono::duration<double>(
                                  seconds)));
    }

    std::string directory_;
    static int counter_;
};

int TelemetryTest::counter_ = 0;

TEST(HistogramJson, RoundTripsThroughStrictParser)
{
    Histogram histogram(1.0, 4);
    histogram.sample(0.5); // bucket 0
    histogram.sample(1.5); // bucket 1
    histogram.sample(1.6); // bucket 1
    histogram.sample(9.0); // overflow

    const std::string text = histogram.toJson();
    std::string error;
    const JsonValue parsed = parseJson(text, &error);
    ASSERT_TRUE(error.empty()) << error << " in " << text;

    EXPECT_DOUBLE_EQ(parsed.get("bucket_width")->asDouble(), 1.0);
    EXPECT_EQ(parsed.get("count")->asInt(), 4);
    EXPECT_DOUBLE_EQ(parsed.get("sum")->asDouble(), 12.6);
    EXPECT_DOUBLE_EQ(parsed.get("min")->asDouble(), 0.5);
    EXPECT_DOUBLE_EQ(parsed.get("max")->asDouble(), 9.0);
    // Percentiles are exported precomputed and must round-trip to
    // exactly what percentile() reports: p50 lands mid-bucket-1,
    // p95/p99 run past the buckets into max().
    EXPECT_DOUBLE_EQ(parsed.get("p50")->asDouble(),
                     histogram.percentile(50.0));
    EXPECT_DOUBLE_EQ(parsed.get("p50")->asDouble(), 1.5);
    EXPECT_DOUBLE_EQ(parsed.get("p95")->asDouble(), 9.0);
    EXPECT_DOUBLE_EQ(parsed.get("p99")->asDouble(), 9.0);
    EXPECT_EQ(parsed.get("overflow")->asInt(), 1);
    const JsonValue &buckets = *parsed.get("buckets");
    ASSERT_EQ(buckets.items().size(), 2u); // trailing zeros trimmed
    EXPECT_EQ(buckets.items()[0].asInt(), 1);
    EXPECT_EQ(buckets.items()[1].asInt(), 2);

    // An empty histogram must still parse (and stay compact).
    const Histogram empty(2.0, 8);
    const JsonValue reparsed = parseJson(empty.toJson(), &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(reparsed.get("count")->asInt(), 0);
    EXPECT_DOUBLE_EQ(reparsed.get("p99")->asDouble(), 0.0);
    EXPECT_EQ(reparsed.get("buckets")->items().size(), 0u);
}

TEST_F(TelemetryTest, SweepOutputIsInvariantUnderTracing)
{
    RunOptions plain;
    plain.jobs = 2;
    plain.progress = false;
    const std::string reference =
        canonical(runScenario(telemetryScenario(), plain));

    RunOptions traced = plain;
    traced.telemetry.traceOut = directory_ + "/trace.json";
    traced.checkpoint.directory = directory_;
    const std::string withTrace =
        canonical(runScenario(telemetryScenario(), traced));

    // The zero-interference contract: rows, summary, grid -- every
    // byte of the sweep JSON -- identical with tracing on or off.
    EXPECT_EQ(reference, withTrace);
    EXPECT_TRUE(
        std::filesystem::exists(directory_ + "/trace.json"));
}

TEST_F(TelemetryTest, TraceJsonParsesAndSpansNestPerLane)
{
    RunOptions options;
    options.jobs = 2;
    options.progress = false;
    options.telemetry.traceOut = directory_ + "/trace.json";
    options.checkpoint.directory = directory_;
    runScenario(telemetryScenario(), options);

    std::string error;
    const JsonValue root =
        parseJson(readFile(options.telemetry.traceOut), &error);
    ASSERT_TRUE(error.empty()) << error;
    const JsonValue &events = *root.get("traceEvents");
    ASSERT_EQ(events.kind(), JsonValue::Kind::Array);

    bool sawProcessName = false;
    std::size_t pointSpans = 0;
    std::size_t checkpointInstants = 0;
    // Per tid, the X events in buffer order: spans recorded by one
    // lane must nest (a stack discipline), since phases live inside
    // their point span.
    std::map<std::int64_t, std::vector<std::pair<std::uint64_t,
                                                 std::uint64_t>>>
        spansByTid;
    for (const JsonValue &event : events.items()) {
        const std::string phase = event.get("ph")->asString();
        if (phase == "M") {
            sawProcessName =
                sawProcessName ||
                event.get("name")->asString() == "process_name";
            continue;
        }
        ASSERT_TRUE(event.get("ts"));
        ASSERT_TRUE(event.get("tid"));
        if (phase == "i") {
            if (event.get("name")->asString() ==
                "checkpoint-write")
                ++checkpointInstants;
            continue;
        }
        ASSERT_EQ(phase, "X");
        ASSERT_TRUE(event.get("dur"));
        if (event.get("cat")->asString() == "point")
            ++pointSpans;
        spansByTid[event.get("tid")->asInt()].push_back(
            {static_cast<std::uint64_t>(
                 event.get("ts")->asInt()),
             static_cast<std::uint64_t>(
                 event.get("dur")->asInt())});
    }
    EXPECT_TRUE(sawProcessName);
    EXPECT_EQ(pointSpans, 6u); // one per grid point
    EXPECT_EQ(checkpointInstants, 6u);

    for (auto &[tid, spans] : spansByTid) {
        (void)tid;
        // Events are buffered in end order (TraceSpan emits at
        // end()), so walk them and require every pair to be either
        // nested or disjoint.
        for (std::size_t a = 0; a < spans.size(); ++a)
            for (std::size_t b = a + 1; b < spans.size(); ++b) {
                const auto [ts1, dur1] = spans[a];
                const auto [ts2, dur2] = spans[b];
                const bool disjoint = ts1 + dur1 <= ts2 ||
                                      ts2 + dur2 <= ts1;
                const bool nested1 = ts2 <= ts1 &&
                                     ts1 + dur1 <= ts2 + dur2;
                const bool nested2 = ts1 <= ts2 &&
                                     ts2 + dur2 <= ts1 + dur1;
                EXPECT_TRUE(disjoint || nested1 || nested2)
                    << "spans overlap without nesting: [" << ts1
                    << "," << ts1 + dur1 << ") vs [" << ts2 << ","
                    << ts2 + dur2 << ")";
            }
    }
}

TEST_F(TelemetryTest, HeartbeatRoundTripAndThrottle)
{
    telemetry::Heartbeat beat;
    beat.worker = "w1";
    beat.pid = 4242;
    beat.scenario = "unit_telemetry";
    beat.totalPoints = 10;
    beat.pointsDone = 3;
    beat.currentPoint = 7;
    beat.pointsPerSec = 1.5;
    beat.uptimeSeconds = 2.0;

    telemetry::Heartbeat parsed;
    std::string error;
    ASSERT_TRUE(
        telemetry::Heartbeat::fromJson(beat.toJson(), &parsed,
                                       &error))
        << error;
    EXPECT_EQ(parsed.worker, "w1");
    EXPECT_EQ(parsed.pid, 4242);
    EXPECT_EQ(parsed.totalPoints, 10);
    EXPECT_EQ(parsed.pointsDone, 3);
    EXPECT_EQ(parsed.currentPoint, 7);
    EXPECT_DOUBLE_EQ(parsed.pointsPerSec, 1.5);

    EXPECT_FALSE(telemetry::Heartbeat::fromJson(
        JsonValue::object(), &parsed, &error));

    // A huge interval throttles unforced beats; force always writes.
    telemetry::HeartbeatWriter writer(directory_, "unit_telemetry",
                                      "w1", 10, 3600.0);
    writer.beat(1, 0, true);
    std::string first = readFile(writer.path());
    EXPECT_NE(first.find("\"points_done\": 1"), std::string::npos);
    writer.beat(2, 1); // throttled: within the interval
    EXPECT_EQ(readFile(writer.path()), first);
    writer.beat(2, 1, true);
    EXPECT_NE(readFile(writer.path()).find("\"points_done\": 2"),
              std::string::npos);
}

TEST_F(TelemetryTest, FleetStatusCountsDoneClaimsAndStaleness)
{
    // A real single-worker stealing sweep leaves journals, done
    // markers, and a heartbeat behind.
    RunOptions options;
    options.jobs = 1;
    options.progress = false;
    options.checkpoint.directory = directory_;
    options.steal.enabled = true;
    options.steal.workerId = "w1";
    runScenario(telemetryScenario(), options);

    const std::vector<std::string> scenarios =
        telemetry::fleetScenarios(directory_);
    ASSERT_EQ(scenarios.size(), 1u);
    EXPECT_EQ(scenarios[0], "unit_telemetry");

    telemetry::FleetStatus status = telemetry::collectFleetStatus(
        directory_, "unit_telemetry", 60.0);
    EXPECT_EQ(status.points, 6u);
    EXPECT_EQ(status.done, 6u);
    EXPECT_EQ(status.remaining(), 0u);
    EXPECT_EQ(status.claimedFresh, 0u);
    EXPECT_EQ(status.claimedStale, 0u);
    ASSERT_EQ(status.workers.size(), 1u);
    EXPECT_EQ(status.workers[0].beat.worker, "w1");
    EXPECT_FALSE(status.workers[0].stale);
    EXPECT_NE(telemetry::renderFleetStatus(status).find("live"),
              std::string::npos);

    // Age the heartbeat past the TTL and plant an aged claim file:
    // exactly what a SIGKILLed worker leaves behind (the atomic
    // rename means the last heartbeat is always complete -- it just
    // stops getting younger).
    ageFile(telemetry::heartbeatPath(directory_, "unit_telemetry",
                                     "w1"),
            3600.0);
    const std::string claim =
        directory_ + "/unit_telemetry.claims/point-99.claim";
    {
        std::ofstream out(claim, std::ios::binary);
        out << "w1\n";
    }
    ageFile(claim, 3600.0);

    status = telemetry::collectFleetStatus(directory_,
                                           "unit_telemetry", 60.0);
    ASSERT_EQ(status.workers.size(), 1u);
    EXPECT_TRUE(status.workers[0].stale);
    EXPECT_EQ(status.claimedStale, 1u);
    EXPECT_DOUBLE_EQ(status.livePointsPerSec, 0.0);
    EXPECT_NE(telemetry::renderFleetStatus(status).find("STALE"),
              std::string::npos);

    EXPECT_THROW(telemetry::collectFleetStatus(
                     directory_ + "/does_not_exist",
                     "unit_telemetry", 60.0),
                 std::runtime_error);
}

TEST_F(TelemetryTest, WriteAtomicAndFileAge)
{
    const std::string path = directory_ + "/nested/dir/file.json";
    ASSERT_TRUE(telemetry::writeAtomic(path, "{\"ok\": true}\n"));
    EXPECT_EQ(readFile(path), "{\"ok\": true}\n");
    EXPECT_GE(telemetry::fileAgeSeconds(path), 0.0);
    EXPECT_LT(telemetry::fileAgeSeconds(directory_ + "/missing"),
              0.0);

    // Overwrite through the same temp+rename path.
    ASSERT_TRUE(telemetry::writeAtomic(path, "{}\n"));
    EXPECT_EQ(readFile(path), "{}\n");
}

TEST(ParseLogLevel, MapsNamesAndDigits)
{
    EXPECT_EQ(parseLogLevel("quiet"), 0);
    EXPECT_EQ(parseLogLevel("warn"), 1);
    EXPECT_EQ(parseLogLevel("info"), 2);
    EXPECT_EQ(parseLogLevel("debug"), 3);
    EXPECT_EQ(parseLogLevel("0"), 0);
    EXPECT_EQ(parseLogLevel("3"), 3);
    EXPECT_EQ(parseLogLevel("verbose"), -1);
    EXPECT_EQ(parseLogLevel(""), -1);
    EXPECT_EQ(parseLogLevel("10"), -1);
}

} // namespace
} // namespace pracleak
