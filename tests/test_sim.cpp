/**
 * @file
 * Unit tests for the scenario-runner subsystem: JSON emission,
 * parameter grids, the thread pool (including nested fan-out), the
 * scenario registry, and an end-to-end sweep through the runner.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "sim/json.h"
#include "sim/param_grid.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "sim/thread_pool.h"

namespace pracleak::sim {
namespace {

// --- JSON ----------------------------------------------------------

TEST(Json, ScalarsDump)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(std::int64_t{-7}).dump(), "-7");
    EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
    EXPECT_EQ(JsonValue("hi \"there\"\n").dump(),
              "\"hi \\\"there\\\"\\n\"");
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites)
{
    JsonValue obj = JsonValue::object();
    obj.set("b", 1);
    obj.set("a", 2);
    obj.set("b", 3);
    EXPECT_EQ(obj.dump(), "{\"b\": 3, \"a\": 2}");
    ASSERT_NE(obj.get("a"), nullptr);
    EXPECT_EQ(obj.get("a")->asInt(), 2);
    EXPECT_EQ(obj.get("missing"), nullptr);
}

TEST(Json, NestedDumpRoundTripsThroughPython)
{
    JsonValue root = JsonValue::object();
    JsonValue arr = JsonValue::array();
    arr.push(1);
    arr.push("two");
    arr.push(3.0);
    root.set("items", std::move(arr));
    EXPECT_EQ(root.dump(), "{\"items\": [1, \"two\", 3]}");
    // Indented form contains newlines but the same tokens.
    EXPECT_NE(root.dump(2).find("\"items\": ["), std::string::npos);
}

TEST(Json, ParseScalarDetectsTypes)
{
    EXPECT_EQ(parseScalar("true").kind(), JsonValue::Kind::Bool);
    EXPECT_EQ(parseScalar("42").kind(), JsonValue::Kind::Int);
    EXPECT_EQ(parseScalar("42").asInt(), 42);
    EXPECT_EQ(parseScalar("0.5").kind(), JsonValue::Kind::Double);
    EXPECT_EQ(parseScalar("tprac").kind(), JsonValue::Kind::String);
}

TEST(Json, NumbersCompareAcrossKinds)
{
    EXPECT_TRUE(JsonValue(2).scalarEquals(JsonValue(2.0)));
    EXPECT_FALSE(JsonValue(2).scalarEquals(JsonValue("2")));
}

// --- Param grid ----------------------------------------------------

TEST(ParamGrid, EnumeratesCartesianProductRowMajor)
{
    ParamGrid grid;
    grid.axis("a", {1, 2}).axis("b", {"x", "y", "z"});
    ASSERT_EQ(grid.size(), 6u);

    // Last axis varies fastest.
    EXPECT_EQ(grid.point(0).label(), "a=1 b=x");
    EXPECT_EQ(grid.point(1).label(), "a=1 b=y");
    EXPECT_EQ(grid.point(3).label(), "a=2 b=x");

    std::set<std::string> labels;
    for (std::size_t i = 0; i < grid.size(); ++i)
        labels.insert(grid.point(i).label());
    EXPECT_EQ(labels.size(), 6u);
}

TEST(ParamGrid, EmptyGridHasOnePoint)
{
    ParamGrid grid;
    EXPECT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid.point(0).entries().size(), 0u);
}

TEST(ParamGrid, OverrideReplacesValuesAndRejectsUnknownAxes)
{
    ParamGrid grid;
    grid.axis("nrh", {128, 1024}).constant("measure", 1000);
    grid.overrideAxis("nrh", {std::vector<JsonValue>{512}[0]});
    EXPECT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid.point(0).getInt("nrh"), 512);
    EXPECT_THROW(grid.overrideAxis("bogus", {1}),
                 std::invalid_argument);
}

TEST(ParamSet, CoerciveGettersAndMissingKeyThrows)
{
    ParamSet set;
    set.add("n", 1024);
    set.add("flag", true);
    set.add("name", "tprac");
    EXPECT_EQ(set.getInt("n"), 1024);
    EXPECT_DOUBLE_EQ(set.getDouble("n"), 1024.0);
    EXPECT_TRUE(set.getBool("flag"));
    EXPECT_EQ(set.getString("name"), "tprac");
    EXPECT_THROW(set.at("missing"), std::out_of_range);
}

// --- Thread pool ---------------------------------------------------

TEST(ThreadPool, MapPreservesOrder)
{
    ThreadPool pool(4);
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 100; ++i)
        jobs.push_back([i] { return i * i; });
    const std::vector<int> results = pool.map(std::move(jobs));
    ASSERT_EQ(results.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPool, NestedMapDoesNotDeadlock)
{
    ThreadPool pool(2); // fewer workers than nested collectors
    std::vector<std::function<int()>> outer;
    for (int i = 0; i < 8; ++i)
        outer.push_back([&pool, i] {
            std::vector<std::function<int()>> inner;
            for (int j = 0; j < 8; ++j)
                inner.push_back([i, j] { return i + j; });
            int sum = 0;
            for (const int v : pool.map(std::move(inner)))
                sum += v;
            return sum;
        });
    const std::vector<int> sums = pool.map(std::move(outer));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sums[i], 8 * i + 28);
}

TEST(ThreadPool, MapPropagatesExceptionsAfterDraining)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 10; ++i)
        jobs.push_back([&ran, i]() -> int {
            ++ran;
            if (i == 3)
                throw std::runtime_error("boom");
            return i;
        });
    EXPECT_THROW(pool.map(std::move(jobs)), std::runtime_error);
    EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, RunParallelShimUsesSharedPool)
{
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 4; ++i)
        jobs.push_back([i] { return i; });
    const std::vector<int> results = runParallel(std::move(jobs));
    EXPECT_EQ(results, (std::vector<int>{0, 1, 2, 3}));
}

// --- Registry + runner ---------------------------------------------

TEST(ScenarioRegistry, BuiltinsCoverEveryFigureAndTable)
{
    registerBuiltinScenarios();
    registerBuiltinScenarios(); // idempotent
    const ScenarioRegistry &registry = ScenarioRegistry::instance();
    // EXACT name set: registering a new scenario must update this
    // list AND the PRACLEAK_SMOKE_SCENARIOS list in CMakeLists.txt
    // (so every scenario keeps `ctest -L smoke` coverage).
    const char *names[] = {
        "fig03_timing_variation", "fig04_side_channel_trace",
        "fig05_key_sweep", "fig07_tmax_analysis",
        "fig09_defense_validation", "fig10_performance",
        "fig11_prac_levels", "fig12_tref_sensitivity",
        "fig13_nrh_sweep", "fig14_counter_reset",
        "table2_covert_channels", "table4_rbmpki", "table5_energy",
        "ablation_obfuscation", "ablation_queues", "ablation_rfmpb",
        "perf_channel_sweep", "sidechannel_cross_channel",
        "covert_channel_parallel", "fastforward_benchmark",
        "defense_matrix_adaptive", "defense_matrix_leakage",
        "defense_matrix_perf", "defense_matrix_security",
        "trace_replay_defense_sweep", "eventqueue_benchmark",
        "leakage_timeline"};
    EXPECT_EQ(registry.size(), std::size(names));
    for (const char *name : names)
        EXPECT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.find("nope"), nullptr);

    // Every scenario carries at least one catalog tag (--list).
    for (const Scenario *scenario : registry.all())
        EXPECT_FALSE(scenario->tags.empty()) << scenario->name;
}

TEST(Runner, SweepMergesParamsAndSummarizes)
{
    Scenario scenario;
    scenario.name = "unit_square";
    scenario.title = "squares";
    scenario.grid.axis("x", {1, 2, 3, 4});
    scenario.runPoint = [](const ParamSet &params) {
        ResultRow row = JsonValue::object();
        row.set("square", params.getInt("x") * params.getInt("x"));
        return std::vector<ResultRow>{std::move(row)};
    };
    scenario.summarize = [](const std::vector<ResultRow> &rows) {
        std::int64_t sum = 0;
        for (const ResultRow &row : rows)
            sum += row.get("square")->asInt();
        ResultRow total = JsonValue::object();
        total.set("sum", sum);
        return std::vector<ResultRow>{std::move(total)};
    };

    SweepOptions options;
    options.jobs = 2;
    options.progress = false;
    const SweepResult result = runScenario(scenario, options);

    ASSERT_EQ(result.rows.size(), 4u);
    // Point order matches grid enumeration; params merged into rows.
    EXPECT_EQ(result.rows[2].get("x")->asInt(), 3);
    EXPECT_EQ(result.rows[2].get("square")->asInt(), 9);
    ASSERT_EQ(result.summary.size(), 1u);
    EXPECT_EQ(result.summary[0].get("sum")->asInt(), 30);

    const JsonValue json = result.toJson();
    EXPECT_EQ(json.get("scenario")->asString(), "unit_square");
    EXPECT_EQ(json.get("rows")->items().size(), 4u);

    const std::string csv = result.toCsv();
    EXPECT_NE(csv.find("x,square"), std::string::npos);
    EXPECT_NE(csv.find("3,9"), std::string::npos);
}

TEST(Runner, OverridesNarrowTheSweepAndBadAxisThrows)
{
    Scenario scenario;
    scenario.name = "unit_override";
    scenario.title = "override";
    scenario.grid.axis("x", {1, 2, 3, 4});
    scenario.runPoint = [](const ParamSet &params) {
        ResultRow row = JsonValue::object();
        row.set("value", params.getInt("x"));
        return std::vector<ResultRow>{std::move(row)};
    };

    SweepOptions options;
    options.progress = false;
    options.overrides["x"] = {JsonValue(7), JsonValue(9)};
    const SweepResult result = runScenario(scenario, options);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_EQ(result.rows[1].get("value")->asInt(), 9);

    options.overrides.clear();
    options.overrides["bogus"] = {JsonValue(1)};
    EXPECT_THROW(runScenario(scenario, options),
                 std::invalid_argument);
}

TEST(Runner, EmptyPointRowsAreSkipped)
{
    Scenario scenario;
    scenario.name = "unit_skip";
    scenario.title = "skip";
    scenario.grid.axis("x", {1, 2, 3});
    scenario.runPoint = [](const ParamSet &params) {
        if (params.getInt("x") == 2)
            return std::vector<ResultRow>{};
        ResultRow row = JsonValue::object();
        row.set("kept", true);
        return std::vector<ResultRow>{std::move(row)};
    };
    SweepOptions options;
    options.progress = false;
    const SweepResult result = runScenario(scenario, options);
    EXPECT_EQ(result.rows.size(), 2u);
    EXPECT_EQ(result.points, 3u);
}

} // namespace
} // namespace pracleak::sim
