/**
 * @file
 * Multi-channel memory-system tests:
 *
 *  - Address-mapper bijectivity over every channel/rank/granularity
 *    configuration (round trips in both directions, channel routing
 *    consistency), and channel balance on a linear sweep.
 *  - N=1 equivalence: the refactored multi-channel System must
 *    reproduce the pre-refactor single-channel RunResult
 *    field-for-field (golden values captured from the seed tree),
 *    with fast-forward on and off.
 *  - Multi-channel runs: per-channel results sum to the aggregates,
 *    traffic reaches every channel, and added channels add
 *    bandwidth.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "cpu/system.h"
#include "mem/address_mapper.h"
#include "sim/design.h"
#include "workload/suite.h"

namespace pracleak {
namespace {

// --- Mapper bijectivity and balance --------------------------------

std::vector<ChannelInterleave>
interleaveConfigs()
{
    std::vector<ChannelInterleave> configs;
    for (const std::uint32_t channels : {1u, 2u, 4u, 8u})
        for (const std::uint32_t granularity : {64u, 256u, 4096u})
            for (const bool fold : {true, false})
                configs.push_back(
                    ChannelInterleave{channels, granularity, fold});
    return configs;
}

TEST(MultiChannelMapper, RoundTripAllConfigs)
{
    Rng rng(11);
    for (const std::uint32_t ranks : {1u, 2u, 4u}) {
        DramOrg org;
        org.ranks = ranks;
        for (const ChannelInterleave &interleave :
             interleaveConfigs()) {
            for (const MappingScheme scheme :
                 {MappingScheme::Mop4, MappingScheme::RowInterleaved}) {
                const AddressMapper mapper(org, scheme, interleave);
                const Addr space = org.totalLines() *
                                   interleave.channels * kLineBytes;
                for (int i = 0; i < 500; ++i) {
                    const Addr addr =
                        (rng.next() % space) &
                        ~static_cast<Addr>(kLineBytes - 1);
                    const DramAddress da = mapper.map(addr);
                    ASSERT_EQ(mapper.compose(da), addr)
                        << "channels=" << interleave.channels
                        << " gran=" << interleave.granularityBytes
                        << " fold=" << interleave.xorFold
                        << " ranks=" << ranks;
                    ASSERT_LT(da.channel, interleave.channels);
                    ASSERT_EQ(da.channel, mapper.channelOf(addr));
                }
            }
        }
    }
}

TEST(MultiChannelMapper, ComposeMapInverseWithChannels)
{
    const DramOrg org;
    const AddressMapper mapper(org, MappingScheme::Mop4,
                               ChannelInterleave{4, 256, true});
    Rng rng(12);
    for (int i = 0; i < 2000; ++i) {
        DramAddress da;
        da.channel = static_cast<std::uint32_t>(rng.range(4));
        da.rank = static_cast<std::uint32_t>(rng.range(org.ranks));
        da.bankGroup =
            static_cast<std::uint32_t>(rng.range(org.bankGroups));
        da.bank =
            static_cast<std::uint32_t>(rng.range(org.banksPerGroup));
        da.row =
            static_cast<std::uint32_t>(rng.range(org.rowsPerBank));
        da.col =
            static_cast<std::uint32_t>(rng.range(org.colsPerRow));
        const DramAddress back = mapper.map(mapper.compose(da));
        EXPECT_EQ(back.channel, da.channel);
        EXPECT_TRUE(back.sameRow(da));
        EXPECT_EQ(back.col, da.col);
    }
}

TEST(MultiChannelMapper, DistinctAddressesDistinctCoordinates)
{
    const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4,
                               ChannelInterleave{4, 256, true});
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                        std::uint32_t>>
        seen;
    for (Addr line = 0; line < 8192; ++line) {
        const DramAddress da = mapper.map(line << kLineShift);
        seen.insert({da.channel, mapper.flatBank(da), da.row, da.col});
    }
    EXPECT_EQ(seen.size(), 8192u);
}

TEST(MultiChannelMapper, LinearSweepBalancesChannels)
{
    for (const ChannelInterleave &interleave : interleaveConfigs()) {
        const AddressMapper mapper(DramOrg{}, MappingScheme::Mop4,
                                   interleave);
        const std::size_t lines = 1 << 16;
        std::vector<std::size_t> perChannel(interleave.channels, 0);
        for (Addr line = 0; line < lines; ++line)
            ++perChannel[mapper.channelOf(line << kLineShift)];
        const double even =
            static_cast<double>(lines) / interleave.channels;
        for (const std::size_t count : perChannel)
            EXPECT_NEAR(static_cast<double>(count), even,
                        0.01 * even)
                << "channels=" << interleave.channels
                << " gran=" << interleave.granularityBytes
                << " fold=" << interleave.xorFold;
    }
}

TEST(MultiChannelMapper, SingleChannelMatchesLegacyMapper)
{
    // channels == 1 must be bit-identical to the pre-multi-channel
    // mapper: same coordinates, identity strip, channel always 0.
    const AddressMapper multi(DramOrg{}, MappingScheme::Mop4,
                              ChannelInterleave{1, 256, true});
    const AddressMapper legacy(DramOrg{}, MappingScheme::Mop4);
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = (rng.next() & ((1ULL << 37) - 1)) &
                          ~static_cast<Addr>(kLineBytes - 1);
        const DramAddress a = multi.map(addr);
        const DramAddress b = legacy.map(addr);
        ASSERT_EQ(a.channel, 0u);
        ASSERT_EQ(multi.stripChannel(addr), addr);
        ASSERT_TRUE(a.sameRow(b));
        ASSERT_EQ(a.col, b.col);
    }
}

// --- N=1 equivalence against pre-refactor golden values ------------

/** Golden RunResult captured from the seed (pre-refactor) tree. */
struct Golden
{
    const char *entry;
    MitigationMode mode;
    Cycle measureCycles;
    std::uint64_t tbRfms, alerts, rowMisses;
    std::uint32_t maxCounterSeen;
    std::uint64_t acts, reads, writes, refreshes, mitigatedRows;
    double totalNj, mitigationNj;
    Cycle cycles0, cycles1; //!< per-core measure cycles
};

// Captured with: warmup=20000, measure=100000, cores=2, nbo=1024,
// DramSpec::ddr5_8000b(), on the seed (single-channel) tree.
const Golden kGolden[] = {
    {"h_rand_heavy", MitigationMode::Tprac, 135545, 6, 0, 10163, 3,
     10163, 10071, 0, 35, 768, 75341.800000000003, 3072.0, 133621,
     135545},
    {"m_blend", MitigationMode::NoMitigation, 38808, 0, 0, 1460, 3,
     1460, 3293, 0, 10, 0, 19108.700000000001, 0.0, 38334, 38808},
    {"l_resident", MitigationMode::AboOnly, 54550, 0, 0, 1334, 14,
     1334, 4483, 0, 14, 0, 25683.900000000001, 0.0, 54550, 52188},
};

void
expectMatchesGolden(const RunResult &result, const Golden &golden)
{
    EXPECT_EQ(result.measureCycles, golden.measureCycles);
    EXPECT_EQ(result.tbRfms, golden.tbRfms);
    EXPECT_EQ(result.alerts, golden.alerts);
    EXPECT_EQ(result.aboRfms, 0u);
    EXPECT_EQ(result.acbRfms, 0u);
    EXPECT_EQ(result.rowMisses, golden.rowMisses);
    EXPECT_EQ(result.maxCounterSeen, golden.maxCounterSeen);
    EXPECT_EQ(result.energyCounts.acts, golden.acts);
    EXPECT_EQ(result.energyCounts.reads, golden.reads);
    EXPECT_EQ(result.energyCounts.writes, golden.writes);
    EXPECT_EQ(result.energyCounts.refreshes, golden.refreshes);
    EXPECT_EQ(result.energyCounts.mitigatedRows,
              golden.mitigatedRows);
    EXPECT_EQ(result.energyCounts.elapsed, golden.measureCycles);
    // Doubles are derived from the integer counts; tolerate only
    // cross-compiler last-ulp noise (FMA contraction).
    EXPECT_NEAR(result.energy.totalNj(), golden.totalNj,
                1e-9 * golden.totalNj);
    EXPECT_NEAR(result.energy.mitigationNj, golden.mitigationNj,
                1e-9 * golden.mitigationNj + 1e-12);
    ASSERT_EQ(result.cores.size(), 2u);
    EXPECT_EQ(result.cores[0].instrs, 100'000u);
    EXPECT_EQ(result.cores[1].instrs, 100'000u);
    EXPECT_EQ(result.cores[0].cycles, golden.cycles0);
    EXPECT_EQ(result.cores[1].cycles, golden.cycles1);

    // The single channel's breakdown is the aggregate.
    ASSERT_EQ(result.channels.size(), 1u);
    EXPECT_EQ(result.channels[0].energyCounts.acts, golden.acts);
    EXPECT_EQ(result.channels[0].tbRfms, golden.tbRfms);
    EXPECT_EQ(result.channels[0].alerts, golden.alerts);
}

TEST(MultiChannelSystem, SingleChannelMatchesPreRefactorGolden)
{
    for (const Golden &golden : kGolden) {
        for (const bool fast_forward : {false, true}) {
            sim::DesignConfig design;
            design.label = "equivalence";
            design.mode = golden.mode;
            design.fastForward = fast_forward;
            sim::RunBudget budget;
            budget.warmup = 20'000;
            budget.measure = 100'000;
            const RunResult result = sim::runOne(
                sim::findSuiteEntry(golden.entry), design, budget, 2);
            SCOPED_TRACE(std::string(golden.entry) +
                         (fast_forward ? " ff=on" : " ff=off"));
            expectMatchesGolden(result, golden);
        }
    }
}

// --- Multi-channel runs --------------------------------------------

TEST(MultiChannelSystem, PerChannelResultsSumToAggregates)
{
    sim::DesignConfig design;
    design.label = "tprac-2ch";
    design.mode = MitigationMode::Tprac;
    design.channels = 2;
    sim::RunBudget budget;
    budget.warmup = 10'000;
    budget.measure = 60'000;
    const RunResult result = sim::runOne(
        sim::findSuiteEntry("h_rand_heavy"), design, budget, 2);

    ASSERT_EQ(result.channels.size(), 2u);
    std::uint64_t acts = 0, tb_rfms = 0, alerts = 0;
    double energy = 0.0;
    std::uint32_t max_counter = 0;
    for (const ChannelResult &channel : result.channels) {
        EXPECT_GT(channel.energyCounts.acts, 0u)
            << "a channel saw no traffic";
        acts += channel.energyCounts.acts;
        tb_rfms += channel.tbRfms;
        alerts += channel.alerts;
        energy += channel.energy.totalNj();
        max_counter =
            std::max(max_counter, channel.maxCounterSeen);
    }
    EXPECT_EQ(result.energyCounts.acts, acts);
    EXPECT_EQ(result.tbRfms, tb_rfms);
    EXPECT_EQ(result.alerts, alerts);
    EXPECT_EQ(result.maxCounterSeen, max_counter);
    EXPECT_NEAR(result.energy.totalNj(), energy, 1e-6);
    EXPECT_GT(result.tbRfms, 0u); // both channels mitigate
    EXPECT_EQ(result.alerts, 0u);
}

TEST(MultiChannelSystem, MoreChannelsMoreBandwidth)
{
    sim::RunBudget budget;
    budget.warmup = 10'000;
    budget.measure = 60'000;
    auto ipc = [&](std::uint32_t channels) {
        sim::DesignConfig design;
        design.label = "bw";
        design.mode = MitigationMode::NoMitigation;
        design.channels = channels;
        return sim::runOne(sim::findSuiteEntry("h_rand_heavy"),
                           design, budget, 4)
            .ipcSum();
    };
    const double one = ipc(1);
    const double two = ipc(2);
    EXPECT_GT(two, one * 1.1)
        << "a second channel should relieve the bandwidth bottleneck";
}

TEST(MultiChannelSystem, RankSweepRuns)
{
    for (const std::uint32_t ranks : {1u, 2u}) {
        sim::DesignConfig design;
        design.label = "ranks";
        design.mode = MitigationMode::NoMitigation;
        design.channels = 2;
        design.ranks = ranks;
        sim::RunBudget budget;
        budget.warmup = 5'000;
        budget.measure = 20'000;
        const RunResult result = sim::runOne(
            sim::findSuiteEntry("m_blend"), design, budget, 2);
        EXPECT_GT(result.ipcSum(), 0.0);
        EXPECT_EQ(result.channels.size(), 2u);
    }
}

} // namespace
} // namespace pracleak
