/**
 * @file
 * Idle-cycle fast-forward correctness: with fast-forward on vs off,
 * every reported statistic -- IPC, cycles, alerts, RFMs, energy
 * counts -- must be identical.  Fast-forward is purely a wall-clock
 * optimization; any divergence here is a bug in the next-event
 * bookkeeping (TraceCore::nextEventAt / MemoryController::nextWorkAt).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/system.h"
#include "sim/design.h"
#include "workload/suite.h"
#include "workload/synthetic.h"

namespace pracleak {
namespace {

void
expectIdentical(const RunResult &off, const RunResult &on)
{
    EXPECT_EQ(off.measureCycles, on.measureCycles);
    EXPECT_EQ(off.aboRfms, on.aboRfms);
    EXPECT_EQ(off.acbRfms, on.acbRfms);
    EXPECT_EQ(off.tbRfms, on.tbRfms);
    EXPECT_EQ(off.tbRfmsSkipped, on.tbRfmsSkipped);
    EXPECT_EQ(off.alerts, on.alerts);
    EXPECT_EQ(off.rowMisses, on.rowMisses);
    EXPECT_EQ(off.maxCounterSeen, on.maxCounterSeen);
    EXPECT_EQ(off.energyCounts.acts, on.energyCounts.acts);
    EXPECT_EQ(off.energyCounts.reads, on.energyCounts.reads);
    EXPECT_EQ(off.energyCounts.writes, on.energyCounts.writes);
    EXPECT_EQ(off.energyCounts.refreshes, on.energyCounts.refreshes);
    EXPECT_EQ(off.energyCounts.mitigatedRows,
              on.energyCounts.mitigatedRows);
    EXPECT_DOUBLE_EQ(off.energy.totalNj(), on.energy.totalNj());
    ASSERT_EQ(off.cores.size(), on.cores.size());
    for (std::size_t i = 0; i < off.cores.size(); ++i) {
        EXPECT_EQ(off.cores[i].instrs, on.cores[i].instrs);
        EXPECT_EQ(off.cores[i].cycles, on.cores[i].cycles);
        EXPECT_DOUBLE_EQ(off.cores[i].ipc, on.cores[i].ipc);
    }
    ASSERT_EQ(off.channels.size(), on.channels.size());
    for (std::size_t c = 0; c < off.channels.size(); ++c) {
        EXPECT_EQ(off.channels[c].energyCounts.acts,
                  on.channels[c].energyCounts.acts);
        EXPECT_EQ(off.channels[c].tbRfms, on.channels[c].tbRfms);
        EXPECT_EQ(off.channels[c].alerts, on.channels[c].alerts);
    }
}

RunResult
runSuiteEntry(const char *entry, MitigationMode mode,
              bool fast_forward, std::uint32_t channels = 1)
{
    sim::DesignConfig design;
    design.label = "ff-test";
    design.mode = mode;
    design.fastForward = fast_forward;
    design.channels = channels;
    sim::RunBudget budget;
    budget.warmup = 10'000;
    budget.measure = 80'000;
    return sim::runOne(sim::findSuiteEntry(entry), design, budget, 4);
}

TEST(FastForward, MixedWorkloadIdenticalWithTprac)
{
    // The heterogeneous cloud mix exercises refreshes, TB-RFMs, and
    // four different stall patterns at once.
    const RunResult off =
        runSuiteEntry("cloud_mix", MitigationMode::Tprac, false);
    const RunResult on =
        runSuiteEntry("cloud_mix", MitigationMode::Tprac, true);
    expectIdentical(off, on);
}

TEST(FastForward, PointerChaseIdenticalAndActuallySkips)
{
    const RunResult off =
        runSuiteEntry("h_chase", MitigationMode::Tprac, false);
    const RunResult on =
        runSuiteEntry("h_chase", MitigationMode::Tprac, true);
    expectIdentical(off, on);
    EXPECT_EQ(off.ffCyclesSkipped, 0u);
    EXPECT_GT(on.ffCyclesSkipped, 0u)
        << "a dependent chase must trigger idle-cycle skips";
}

TEST(FastForward, MultiChannelIdentical)
{
    const RunResult off =
        runSuiteEntry("h_chase", MitigationMode::Tprac, false, 2);
    const RunResult on =
        runSuiteEntry("h_chase", MitigationMode::Tprac, true, 2);
    expectIdentical(off, on);
}

TEST(FastForward, CacheResidentChaseSkipsDeepAndStaysExact)
{
    // An LLC-resident pointer chase is the fast-forward sweet spot:
    // long all-core stalls with no DRAM work due.  The majority of
    // cycles must be skipped and every statistic must still match.
    const WorkloadParams params = pointerChaseParams(4096);

    RunResult results[2];
    for (int ff = 0; ff < 2; ++ff) {
        sim::DesignConfig design;
        design.label = "chase";
        design.mode = MitigationMode::Tprac;
        design.fastForward = ff == 1;
        sim::RunBudget budget;
        budget.warmup = 60'000;
        budget.measure = 200'000;
        std::vector<std::unique_ptr<WorkloadSource>> sources;
        sources.push_back(makeWorkload(params, 0));
        System system(sim::makeSystemConfig(design, budget),
                      std::move(sources));
        results[ff] = system.run();
    }
    expectIdentical(results[0], results[1]);
    EXPECT_GT(results[1].ffCyclesSkipped,
              results[1].measureCycles / 4)
        << "expected deep skips on a serialized cache-hit chase";
}

TEST(FastForward, ObfuscationModeIdentical)
{
    // Random-RFM injection draws once per tREFI from a controller-
    // owned RNG: the draw schedule must survive fast-forward.
    const RunResult off =
        runSuiteEntry("m_blend", MitigationMode::Obfuscation, false);
    const RunResult on =
        runSuiteEntry("m_blend", MitigationMode::Obfuscation, true);
    expectIdentical(off, on);
}

} // namespace
} // namespace pracleak
