/**
 * @file
 * Trace record/replay subsystem tests: binary-format round trips and
 * rejection of malformed files, the spec-variant registry, the
 * bit-identity fidelity contract (replaying a trace under the
 * recorded defense must reproduce the recorded controller/mitigation
 * stats exactly, for every registered defense and across channel
 * counts and spec variants), and replay determinism under a
 * saturated thread pool.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/design.h"
#include "sim/thread_pool.h"
#include "sim/trace_support.h"
#include "trace/recorder.h"
#include "trace/replay.h"
#include "trace/trace.h"

namespace pracleak {
namespace {

using sim::DesignConfig;
using sim::RecordedRun;
using sim::RunBudget;
using trace::ChannelTrace;
using trace::TraceChannelStats;
using trace::TraceData;
using trace::TraceHeader;
using trace::TraceReader;
using trace::TraceRecord;
using trace::TraceWriter;

TraceHeader
sampleHeader(std::uint32_t channels)
{
    TraceHeader header;
    header.workload = "unit";
    header.spec = "ddr5-8000b";
    header.mitigation = "none";
    const DramSpec spec = DramSpec::ddr5_8000b();
    header.ranks = spec.org.ranks;
    header.bankGroups = spec.org.bankGroups;
    header.banksPerGroup = spec.org.banksPerGroup;
    header.rowsPerBank = spec.org.rowsPerBank;
    header.colsPerRow = spec.org.colsPerRow;
    header.nbo = 512;
    header.nmit = 1;
    header.channels = channels;
    header.endCycle = 123'456;
    return header;
}

void
expectEqual(const TraceData &a, const TraceData &b)
{
    const TraceHeader &ha = a.header;
    const TraceHeader &hb = b.header;
    EXPECT_EQ(ha.workload, hb.workload);
    EXPECT_EQ(ha.spec, hb.spec);
    EXPECT_EQ(ha.mitigation, hb.mitigation);
    EXPECT_EQ(ha.ranks, hb.ranks);
    EXPECT_EQ(ha.bankGroups, hb.bankGroups);
    EXPECT_EQ(ha.banksPerGroup, hb.banksPerGroup);
    EXPECT_EQ(ha.rowsPerBank, hb.rowsPerBank);
    EXPECT_EQ(ha.colsPerRow, hb.colsPerRow);
    EXPECT_EQ(ha.nbo, hb.nbo);
    EXPECT_EQ(ha.nmit, hb.nmit);
    EXPECT_EQ(ha.channels, hb.channels);
    EXPECT_EQ(ha.granularityBytes, hb.granularityBytes);
    EXPECT_EQ(ha.xorFold, hb.xorFold);
    EXPECT_EQ(ha.mapping, hb.mapping);
    EXPECT_EQ(ha.queueCapacity, hb.queueCapacity);
    EXPECT_EQ(ha.frfcfsCap, hb.frfcfsCap);
    EXPECT_EQ(ha.refreshEnabled, hb.refreshEnabled);
    EXPECT_EQ(ha.pracQueue, hb.pracQueue);
    EXPECT_EQ(ha.fifoThreshold, hb.fifoThreshold);
    EXPECT_EQ(ha.counterResetAtTrefw, hb.counterResetAtTrefw);
    EXPECT_EQ(ha.trefPeriodRefs, hb.trefPeriodRefs);
    EXPECT_EQ(ha.randomRfmPerTrefi, hb.randomRfmPerTrefi);
    EXPECT_EQ(ha.obfuscationSeed, hb.obfuscationSeed);
    EXPECT_EQ(ha.endCycle, hb.endCycle);

    ASSERT_EQ(a.channels.size(), b.channels.size());
    for (std::size_t c = 0; c < a.channels.size(); ++c) {
        EXPECT_TRUE(a.channels[c].stats == b.channels[c].stats)
            << "channel " << c;
        ASSERT_EQ(a.channels[c].records.size(),
                  b.channels[c].records.size())
            << "channel " << c;
        for (std::size_t i = 0; i < a.channels[c].records.size();
             ++i)
            EXPECT_TRUE(a.channels[c].records[i] ==
                        b.channels[c].records[i])
                << "channel " << c << " record " << i;
    }
}

// --- format round trips --------------------------------------------

TEST(TraceFormat, RoundTripEmpty)
{
    TraceData data;
    data.header = sampleHeader(1);
    data.channels.resize(1);
    expectEqual(data,
                TraceReader::parse(trace::serializeTrace(data)));
}

TEST(TraceFormat, RoundTripSingleRequest)
{
    TraceWriter writer(sampleHeader(1));
    writer.append(0, TraceRecord{42, ReqType::Write, 0xDEAD'BEEF'00ULL,
                                 3});
    TraceChannelStats stats;
    stats.requests = 1;
    stats.acts = 7;
    stats.rfms[2] = 5;
    stats.maxCounterSeen = 99;
    writer.setChannelStats(0, stats);
    expectEqual(
        writer.data(),
        TraceReader::parse(trace::serializeTrace(writer.data())));
}

TEST(TraceFormat, RoundTripMultiChannel)
{
    TraceWriter writer(sampleHeader(4));
    // Uneven streams, large cycle gaps and addresses, all request
    // flavours -- every varint width gets exercised.
    for (std::uint32_t c = 0; c < 4; ++c) {
        Cycle cycle = c;
        for (std::uint32_t i = 0; i < 97 + 13 * c; ++i) {
            cycle += (i * 2654435761u) % 100'000;
            writer.append(
                c, TraceRecord{cycle,
                               i % 3 == 0 ? ReqType::Write
                                          : ReqType::Read,
                               (static_cast<Addr>(i) << 33) ^ c,
                               i % 4});
        }
        TraceChannelStats stats;
        stats.requests = 97 + 13 * c;
        stats.alerts = c * 1'000'000'007ULL;
        writer.setChannelStats(c, stats);
    }
    writer.setEndCycle(1ULL << 40);
    expectEqual(
        writer.data(),
        TraceReader::parse(trace::serializeTrace(writer.data())));
}

TEST(TraceFormat, FileRoundTripAndMissingFile)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "pracleak_trace_unit.trc")
            .string();
    TraceWriter writer(sampleHeader(2));
    writer.append(0, TraceRecord{1, ReqType::Read, 64, 0});
    writer.append(1, TraceRecord{2, ReqType::Write, 128, 1});
    writer.writeFile(path);
    const TraceReader reader(path);
    expectEqual(writer.data(), reader.data());
    std::remove(path.c_str());

    EXPECT_THROW(TraceReader("/nonexistent/dir/nope.trc"),
                 std::runtime_error);
}

// --- malformed input -----------------------------------------------

TEST(TraceFormat, RejectsBadMagic)
{
    std::string image = trace::serializeTrace(
        TraceData{sampleHeader(1), {ChannelTrace{}}});
    image[0] = 'X';
    try {
        TraceReader::parse(image);
        FAIL() << "bad magic accepted";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("magic"),
                  std::string::npos);
    }
}

TEST(TraceFormat, RejectsVersionMismatch)
{
    std::string image = trace::serializeTrace(
        TraceData{sampleHeader(1), {ChannelTrace{}}});
    // The version varint sits directly after the 8-byte magic.
    image[8] = static_cast<char>(trace::kTraceVersion + 1);
    try {
        TraceReader::parse(image);
        FAIL() << "future version accepted";
    } catch (const std::runtime_error &error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("version"), std::string::npos) << what;
        EXPECT_NE(what.find("re-record"), std::string::npos) << what;
    }
}

TEST(TraceFormat, RejectsTruncation)
{
    TraceWriter writer(sampleHeader(2));
    for (std::uint32_t i = 0; i < 50; ++i)
        writer.append(i % 2, TraceRecord{i * 10, ReqType::Read,
                                         i * 4096ULL, i % 4});
    const std::string image = trace::serializeTrace(writer.data());

    // Every proper prefix must be rejected, never crash or succeed.
    for (std::size_t cut = 0; cut < image.size(); cut += 7)
        EXPECT_THROW(TraceReader::parse(image.substr(0, cut)),
                     std::runtime_error)
            << "prefix of " << cut << " bytes accepted";
    EXPECT_NO_THROW(TraceReader::parse(image));
}

TEST(TraceFormat, RejectsTrailingGarbage)
{
    std::string image = trace::serializeTrace(
        TraceData{sampleHeader(1), {ChannelTrace{}}});
    image += "extra";
    try {
        TraceReader::parse(image);
        FAIL() << "trailing bytes accepted";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("trailing"),
                  std::string::npos);
    }
}

// --- spec registry -------------------------------------------------

TEST(SpecRegistry, NamesAndLookup)
{
    const std::vector<std::string> &names = specNames();
    ASSERT_GE(names.size(), 5u);
    EXPECT_EQ(names.front(), "ddr5-8000b");
    for (const std::string &name : names)
        EXPECT_NO_THROW(specByName(name)) << name;
    EXPECT_THROW(specByName("ddr4-3200"), std::invalid_argument);

    const DramSpec one_rank = specByName("ddr5-4800-1r");
    const DramSpec two_rank = specByName("ddr5-4800-2r");
    EXPECT_EQ(one_rank.org.ranks, 1u);
    EXPECT_EQ(two_rank.org.ranks, 2u);
    EXPECT_LT(one_rank.org.rowsPerBank,
              DramSpec::ddr5_8000b().org.rowsPerBank);
}

TEST(SpecRegistry, GeometryMismatchRejected)
{
    TraceHeader header = sampleHeader(1);
    header.ranks = 3; // no registered spec has 3 ranks
    try {
        trace::specFromHeader(header);
        FAIL() << "geometry mismatch accepted";
    } catch (const std::runtime_error &error) {
        EXPECT_NE(std::string(error.what()).find("geometry"),
                  std::string::npos);
    }
}

// --- replay fidelity -----------------------------------------------

RecordedRun
recordEntry(const std::string &defense, std::uint32_t channels = 1,
            const std::string &spec = "")
{
    DesignConfig design;
    design.label = defense;
    design.mitigation = defense;
    design.spec = spec;
    design.nbo = 512;
    design.channels = channels;
    RunBudget budget;
    budget.warmup = 5'000;
    budget.measure = 20'000;
    return sim::recordSuiteRun(sim::findSuiteEntry("h_rand_heavy"),
                               design, budget);
}

/**
 * The fidelity contract of the subsystem: for every registered
 * bake-off defense, replaying the trace under the recorded defense
 * reproduces the recorded run's cumulative controller/mitigation
 * stats bit-identically.
 */
TEST(Golden, TraceReplayBitIdentical)
{
    const char *defenses[] = {"none",  "abo-only", "abo+acb-rfm",
                              "tprac", "para",     "graphene",
                              "pb-rfm"};
    for (const char *defense : defenses) {
        const RecordedRun recorded = recordEntry(defense);
        EXPECT_EQ(recorded.trace.header.mitigation, defense);
        const trace::ReplayResult replay =
            trace::replayTrace(recorded.trace);
        EXPECT_EQ(replay.mitigation, defense);
        EXPECT_TRUE(replay.fullyDrained) << defense;
        EXPECT_EQ(replay.endCycle, recorded.trace.header.endCycle)
            << defense;
        EXPECT_TRUE(replay.matchesRecorded(recorded.trace))
            << defense;
    }
}

TEST(Golden, TraceReplayBitIdenticalMultiChannel)
{
    const RecordedRun recorded = recordEntry("tprac", /*channels=*/2);
    ASSERT_EQ(recorded.trace.channels.size(), 2u);
    EXPECT_GT(recorded.trace.channels[1].records.size(), 0u);
    const trace::ReplayResult replay =
        trace::replayTrace(recorded.trace);
    EXPECT_TRUE(replay.matchesRecorded(recorded.trace));
}

TEST(Golden, TraceReplayBitIdenticalSpecVariant)
{
    const RecordedRun recorded =
        recordEntry("graphene", 1, "ddr5-4800-2r");
    EXPECT_EQ(recorded.trace.header.spec, "ddr5-4800-2r");
    EXPECT_EQ(recorded.trace.header.ranks, 2u);
    const trace::ReplayResult replay =
        trace::replayTrace(recorded.trace);
    EXPECT_TRUE(replay.matchesRecorded(recorded.trace));
}

TEST(TraceReplay, FastForwardInvariant)
{
    const RecordedRun recorded = recordEntry("tprac");
    trace::ReplayOptions slow;
    slow.fastForward = false;
    const trace::ReplayResult with_ff =
        trace::replayTrace(recorded.trace);
    const trace::ReplayResult without_ff =
        trace::replayTrace(recorded.trace, slow);
    ASSERT_EQ(with_ff.channels.size(), without_ff.channels.size());
    for (std::size_t c = 0; c < with_ff.channels.size(); ++c)
        EXPECT_TRUE(with_ff.channels[c] == without_ff.channels[c]);
}

/** Cross-defense replay reacts: the defense's own telemetry moves. */
TEST(TraceReplay, CrossDefenseReplayExercisesDefense)
{
    const RecordedRun recorded = recordEntry("none");
    trace::ReplayOptions options;
    options.mitigation = "para";
    const trace::ReplayResult para =
        trace::replayTrace(recorded.trace, options);
    EXPECT_GT(para.total().mitigationEvents, 0u);
    options.mitigation = "tprac";
    const trace::ReplayResult tprac =
        trace::replayTrace(recorded.trace, options);
    EXPECT_GT(
        tprac.total().rfms[static_cast<std::size_t>(
            RfmReason::TimingBased)],
        0u);
}

/**
 * Replay determinism under a saturated pool (the `--jobs 8` case):
 * eight concurrent replays of one trace must agree field-for-field.
 */
TEST(TraceReplay, DeterministicUnderEightJobs)
{
    const RecordedRun recorded = recordEntry("none");
    sim::ThreadPool pool(8);
    std::vector<std::function<trace::ReplayResult()>> jobs;
    for (int i = 0; i < 8; ++i)
        jobs.push_back([&recorded] {
            trace::ReplayOptions options;
            options.mitigation = "graphene";
            return trace::replayTrace(recorded.trace, options);
        });
    const std::vector<trace::ReplayResult> results =
        pool.map(std::move(jobs));
    for (std::size_t i = 1; i < results.size(); ++i) {
        ASSERT_EQ(results[i].channels.size(),
                  results[0].channels.size());
        EXPECT_EQ(results[i].endCycle, results[0].endCycle);
        EXPECT_EQ(results[i].replayedRequests,
                  results[0].replayedRequests);
        for (std::size_t c = 0; c < results[0].channels.size(); ++c)
            EXPECT_TRUE(results[i].channels[c] ==
                        results[0].channels[c])
                << "job " << i << " channel " << c;
    }
}

} // namespace
} // namespace pracleak
