/**
 * @file
 * Unit tests for the common utilities: RNG, stats, time conversion.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace pracleak {
namespace {

TEST(Types, NsToCyclesRoundsUp)
{
    EXPECT_EQ(nsToCycles(0.25), 1u);
    EXPECT_EQ(nsToCycles(0.26), 2u);
    EXPECT_EQ(nsToCycles(1.0), 4u);
    EXPECT_EQ(nsToCycles(350.0), 1400u);
    EXPECT_EQ(nsToCycles(0.0), 0u);
}

TEST(Types, RoundTrip)
{
    for (const double ns : {16.0, 36.0, 52.0, 350.0, 3900.0})
        EXPECT_DOUBLE_EQ(cyclesToNs(nsToCycles(ns)), ns);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 3ull, 16ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.range(bound), bound);
    }
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Stats, CountersCreateOnUse)
{
    StatSet stats;
    EXPECT_EQ(stats.get("x"), 0u);
    ++stats.counter("x");
    stats.counter("x") += 5;
    EXPECT_EQ(stats.get("x"), 6u);
}

TEST(Stats, ResetClearsEverything)
{
    StatSet stats;
    stats.counter("a") = 3;
    stats.histogram("h").sample(1.0);
    stats.reset();
    EXPECT_EQ(stats.get("a"), 0u);
    EXPECT_FALSE(stats.hasHistogram("h"));
}

TEST(Histogram, TracksMoments)
{
    Histogram h(10.0, 16);
    for (const double v : {5.0, 15.0, 25.0, 35.0})
        h.sample(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_DOUBLE_EQ(h.min(), 5.0);
    EXPECT_DOUBLE_EQ(h.max(), 35.0);
}

TEST(Histogram, PercentileApproximation)
{
    Histogram h(1.0, 128);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(90), 90.0, 2.0);
}

TEST(Histogram, OverflowDoesNotCrash)
{
    Histogram h(1.0, 4);
    h.sample(1000.0);
    h.sample(-5.0);
    EXPECT_EQ(h.count(), 2u);
}

} // namespace
} // namespace pracleak
