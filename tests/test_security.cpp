/**
 * @file
 * Security property tests: the Feinting/Wave attack (the proven
 * worst-case pattern for RFM-based mitigations) is run against the
 * full controller, and TPRAC configured from the analytic TB-Window
 * must never let any row reach the Back-Off threshold (Section 4.2.3).
 * A FIFO mitigation queue, by contrast, must be beatable -- the
 * motivation for the frequency-based queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "attack/harness.h"
#include "mem/controller.h"
#include "tprac/analysis.h"
#include "tprac/tb_rfm.h"

namespace pracleak {
namespace {

/**
 * Memory-level Feinting attacker: uniformly sweeps a decoy pool each
 * round, drops mitigated rows (it knows the queue state by assumption
 * of full system knowledge), and finally concentrates on the target.
 */
class FeintingAgent : public MemAgent
{
  public:
    FeintingAgent(MemoryController &mem, std::uint32_t pool_size,
                  std::uint32_t target_row)
        : mem_(mem), targetRow_(target_row)
    {
        for (std::uint32_t i = 0; i < pool_size; ++i)
            pool_.push_back(target_row + 1 + i);
        pool_.push_back(target_row);
    }

    void
    tick(MemoryController &mem, Cycle) override
    {
        while (outstanding_ < 2) {
            const std::uint32_t row = nextRow();
            Request req;
            req.addr = mem.mapper().compose(
                DramAddress{0, 0, 0, row, 0});
            req.onComplete = [this](const Request &) {
                --outstanding_;
            };
            if (!mem.enqueue(std::move(req)))
                return;
            ++outstanding_;
        }
    }

  private:
    std::uint32_t
    nextRow()
    {
        // Refresh the pool from the engine's view: drop mitigated
        // rows (counter returned to zero) except the target.
        if (cursor_ >= pool_.size()) {
            cursor_ = 0;
            std::vector<std::uint32_t> alive;
            const std::uint32_t bank = 0;
            for (const std::uint32_t row : pool_) {
                if (row == targetRow_ ||
                    mem_.prac().counters().get(bank, row) > 0)
                    alive.push_back(row);
            }
            pool_ = std::move(alive);
        }
        if (pool_.size() <= 1)
            return targetRow_; // final phase: hammer the target
        return pool_[cursor_++];
    }

    MemoryController &mem_;
    std::uint32_t targetRow_;
    std::vector<std::uint32_t> pool_;
    std::size_t cursor_ = 0;
    std::uint32_t outstanding_ = 0;
};

/** Feinting vs TPRAC across NBO values and reset policies. */
class FeintingVsTprac
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>>
{
};

TEST_P(FeintingVsTprac, NoRowEverReachesNbo)
{
    const auto [nbo, counter_reset] = GetParam();

    // Full worst-case pressure is reached within one tREFW; scale the
    // refresh window down (a consistent scaled universe: the analytic
    // TB-Window shrinks with it) so the complete Feinting attack fits
    // in a unit-test budget.
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = nbo;
    spec.timing.tREFW = nsToCycles(2.0e6); // 2 ms

    ControllerConfig config;
    config.mode = MitigationMode::Tprac;
    config.prac.queue = QueueKind::SingleEntry;
    config.prac.counterResetAtTrefw = counter_reset;
    config.tbRfm = TbRfmConfig::forNbo(nbo, counter_reset, spec);

    AttackHarness harness(spec, config);

    // Pool sized at the analytic optimum for this (scaled) window.
    const FeintingParams fp = FeintingParams::fromSpec(spec);
    const double window_ns = cyclesToNs(config.tbRfm.windowCycles);
    const std::uint64_t act_w = actsPerWindow(window_ns, fp);
    const auto pool = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(
            maxActsPerTrefw(window_ns, fp) /
                std::max<std::uint64_t>(act_w, 1),
            fp.rowsPerBank),
        2048));

    FeintingAgent attacker(harness.mem(), pool, 5000);
    harness.add(&attacker);

    // Run the complete attack: every decoy must be eliminated plus
    // the final all-on-target round.
    harness.run(config.tbRfm.windowCycles * (pool + 16));

    EXPECT_EQ(harness.mem().prac().alerts(), 0u)
        << "TPRAC let the Alert fire";
    EXPECT_EQ(harness.mem().rfmCount(RfmReason::Abo), 0u);
    const std::uint32_t reached =
        harness.mem().prac().counters().maxEverSeen();
    EXPECT_LT(reached, nbo);
    // The attack must have exerted real pressure: at least one full
    // window of concentrated activations on some row.
    EXPECT_GT(reached, static_cast<std::uint32_t>(act_w));
    EXPECT_GT(harness.mem().rfmCount(RfmReason::TimingBased), 32u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FeintingVsTprac,
    ::testing::Combine(::testing::Values(128u, 256u, 512u, 1024u),
                       ::testing::Bool()));

TEST(Security, SingleEntryQueueMatchesIdealUnderFeinting)
{
    // Section 4.2.3: the single-entry frequency queue achieves the
    // same security as the UPRAC oracle.  Run the same attack against
    // both and compare the worst counter value seen.
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = 512;

    auto max_count = [&](QueueKind queue) {
        ControllerConfig config;
        config.mode = MitigationMode::Tprac;
        config.prac.queue = queue;
        config.tbRfm = TbRfmConfig::forNbo(512, true, spec);
        AttackHarness harness(spec, config);
        FeintingAgent attacker(harness.mem(), 256, 5000);
        harness.add(&attacker);
        harness.run(config.tbRfm.windowCycles * 48);
        EXPECT_EQ(harness.mem().prac().alerts(), 0u);
        return harness.mem().prac().counters().maxEverSeen();
    };

    const std::uint32_t single = max_count(QueueKind::SingleEntry);
    const std::uint32_t ideal = max_count(QueueKind::Ideal);
    EXPECT_LT(single, 512u);
    EXPECT_LT(ideal, 512u);
    // "Equivalent security": within one TB-Window of activations.
    EXPECT_NEAR(static_cast<double>(single),
                static_cast<double>(ideal), 80.0);
}

TEST(Security, AboOnlyIsBreachedByFeinting)
{
    // Sanity for the attack itself: with no proactive mitigation the
    // same pattern must reach NBO and raise Alerts.
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = 256;

    ControllerConfig config;
    config.mode = MitigationMode::AboOnly;
    config.prac.queue = QueueKind::SingleEntry;

    AttackHarness harness(spec, config);
    FeintingAgent attacker(harness.mem(), 64, 5000);
    harness.add(&attacker);
    harness.run(nsToCycles(2.0e6));

    EXPECT_GT(harness.mem().prac().alerts(), 0u);
}

TEST(Security, FifoQueueWastesMitigations)
{
    // QPRAC/MOAT motivation: a FIFO queue mitigates stale rows while
    // the attacker redirects to fresh ones; the frequency queue does
    // not.  Compare ABO pressure under the same TB-RFM budget with a
    // FIFO whose enqueue threshold the attacker straddles.
    DramSpec spec = DramSpec::ddr5_8000b();
    spec.prac.nbo = 256;

    auto alerts_with = [&](QueueKind queue) {
        ControllerConfig config;
        config.mode = MitigationMode::Tprac;
        config.prac.queue = queue;
        config.prac.fifoThreshold = 32;
        // Deliberately lax window: 4x the safe one.
        config.tbRfm.windowCycles =
            TbRfmConfig::forNbo(256, true, spec).windowCycles * 4;
        AttackHarness harness(spec, config);
        FeintingAgent attacker(harness.mem(), 128, 5000);
        harness.add(&attacker);
        harness.run(config.tbRfm.windowCycles * 32);
        return harness.mem().prac().counters().maxEverSeen();
    };

    // Under an under-provisioned window the frequency queue still
    // suppresses the maximum better than (or equal to) FIFO.
    EXPECT_LE(alerts_with(QueueKind::SingleEntry),
              alerts_with(QueueKind::Fifo));
}

} // namespace
} // namespace pracleak
